"""Fig 3 bench: the PRIME+PROBE attack, end to end."""

from repro.experiments import fig03_attack


def test_fig3_attack(benchmark, emit):
    result = benchmark.pedantic(fig03_attack.run, rounds=1, iterations=1)
    emit(result)
    assert "SUCCESS" in result.notes
    vulnerable = result.column("latency_vulnerable_cycles")
    protected = result.column("latency_linear_scan_cycles")
    # The victim's set stands out by the miss/hit gap; the defence flattens.
    assert max(vulnerable) - sorted(vulnerable)[-2] > 100
    assert max(protected) - min(protected) < 10
