"""Fig 6 bench: switching-threshold grid over batch sizes and threads."""

from repro.experiments import fig06_thresholds


def test_fig6_thresholds(benchmark, emit):
    result = benchmark.pedantic(fig06_thresholds.run, rounds=1, iterations=1)
    emit(result)
    values = {(batch, threads): threshold
              for batch, threads, threshold in result.rows}
    # Paper anchor: ~3300 rows at batch 32 / 1 thread.
    assert 2000 < values[(32, 1)] < 5000
    # Monotone trends of Fig 6.
    for threads in (1, 16):
        assert values[(1, threads)] > values[(32, threads)] \
            > values[(128, threads)]
    for batch in (1, 32, 128):
        assert values[(batch, 16)] > values[(batch, 1)]
