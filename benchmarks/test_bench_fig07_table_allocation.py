"""Fig 7 bench: dataset tables vs the hybrid-eligible threshold band."""

from repro.experiments import fig07_table_allocation


def test_fig7_allocation_bands(benchmark, emit):
    result = benchmark.pedantic(fig07_table_allocation.run, rounds=1,
                                iterations=1)
    emit(result)
    by_dataset = {row[0]: dict(zip(result.headers, row))
                  for row in result.rows}
    for name, stats in by_dataset.items():
        assert stats["always_scan"] + stats["hybrid_eligible"] \
            + stats["always_dhe"] == 26
        # Paper: only a handful of tables are configuration-sensitive.
        assert 1 <= stats["hybrid_eligible"] <= 8
    # Kaggle's big tables always use DHE (paper: 7); Terabyte more (9-11).
    assert by_dataset["criteo-kaggle"]["always_dhe"] >= 6
    assert by_dataset["criteo-terabyte"]["always_dhe"] >= 8
