"""Table V bench: accuracy parity via real DLRM training (3 variants)."""

from repro.experiments import table05_accuracy


def test_table5_accuracy_parity(benchmark, emit):
    result = benchmark.pedantic(
        table05_accuracy.run,
        kwargs=dict(max_rows=500, steps=200, batch_size=128,
                    eval_samples=4096, k=48, fc_sizes=(48,)),
        rounds=1, iterations=1)
    emit(result)
    accuracies = result.column("accuracy")
    aucs = result.column("auc")
    # Every representation learns well above chance ...
    assert min(accuracies) > 0.7
    # ... and they match each other (paper: identical to 2 decimals).
    assert max(accuracies) - min(accuracies) < 0.04
    assert max(aucs) - min(aucs) < 0.04
