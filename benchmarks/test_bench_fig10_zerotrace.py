"""Fig 10 bench: ZeroTrace optimization levels + measured ORAM lookups."""

import numpy as np
import pytest

from repro.experiments import fig10_zerotrace
from repro.oram import CircuitORAM, PathORAM


def test_fig10_zerotrace_levels(benchmark, emit):
    result = benchmark.pedantic(fig10_zerotrace.run, rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        size, scheme, original, gramine, opt = row
        assert original > gramine > opt
    # Paper: the Gramine step helps Circuit (60%) more than Path (20%).
    by_scheme = {row[1]: row for row in result.rows if row[0] == 1_000_000}
    path_gain = by_scheme["path"][2] / by_scheme["path"][3]
    circuit_gain = by_scheme["circuit"][2] / by_scheme["circuit"][3]
    assert circuit_gain > path_gain


# -- measured single-lookup latency of the executable controllers ----------
@pytest.mark.parametrize("oram_class", [PathORAM, CircuitORAM],
                         ids=["path", "circuit"])
def test_measured_single_lookup(benchmark, oram_class):
    oram = oram_class(1024, 64, rng=0)
    rng = np.random.default_rng(0)
    benchmark(lambda: oram.read(int(rng.integers(0, 1024))))
