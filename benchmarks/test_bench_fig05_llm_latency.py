"""Fig 5 bench: LLM embedding latency vs embedding dimension."""

from repro.experiments import fig05_llm_latency


def test_fig5_llm_embedding_latency(benchmark, emit):
    result = benchmark.pedantic(fig05_llm_latency.run, rounds=1, iterations=1)
    emit(result)
    rows = {(r[0], r[1]): dict(zip(result.headers, r)) for r in result.rows}
    # Prefill-scale batches: DHE best secure option at GPT-2's dim.
    big = rows[(1024, 3072)]
    assert big["dhe_ms"] < big["circuit_oram_ms"] < big["path_oram_ms"]
    # Decode-scale batch at large dims: Circuit ORAM competitive (paper's
    # motivation for the LLM dual representation).
    small = rows[(8192, 1)]
    assert small["circuit_oram_ms"] < small["dhe_ms"]
