"""Fig 15 bench: GPT-2 medium prefill/decode latencies per technique,
plus a measured end-to-end generation comparison on the tiny GPT."""

import numpy as np

from repro.experiments import fig15_llm_e2e


def test_fig15_llm_e2e(benchmark, emit):
    result = benchmark.pedantic(fig15_llm_e2e.run, rounds=1, iterations=1)
    emit(result)
    rows = {(r[0], r[1]): dict(zip(result.headers, r)) for r in result.rows}
    for batch in (1, 8, 12):
        prefill = rows[(batch, "prefill")]
        # Prefill: DHE best secure technique; Path worst (paper Fig 15).
        assert prefill["dhe"] < prefill["circuit_oram"] \
            < prefill["path_oram"]
        assert prefill["dhe"] < prefill["linear_scan"]
    # Decode: batched favours DHE; batch-1 is a near-tie with Circuit.
    assert rows[(12, "decode")]["dhe"] < rows[(12, "decode")]["circuit_oram"]
    tie = rows[(1, "decode")]
    assert abs(tie["dhe"] - tie["circuit_oram"]) < 0.1 * tie["circuit_oram"]


def test_measured_generation_with_secure_argmax(benchmark):
    """Wall-clock generation through the executable tiny GPT with the
    oblivious cmov argmax (the §V-C sampling path)."""
    from repro.models.gpt import GPT, tiny_config

    model = GPT(tiny_config(vocab_size=64, embed_dim=32, num_layers=2,
                            num_heads=2), rng=0)
    prompt = np.random.default_rng(0).integers(0, 64, size=(1, 8))
    benchmark.pedantic(
        lambda: model.generate(prompt, max_new_tokens=8,
                               oblivious_sampling=True),
        rounds=3, iterations=1)
