"""Fig 9 bench: mixed scan/DHE allocation across 24 co-located models."""

from repro.experiments import fig09_allocation_sweep


def test_fig9_allocation_sweep(benchmark, emit):
    result = benchmark.pedantic(fig09_allocation_sweep.run, rounds=1,
                                iterations=1)
    emit(result)
    rows = {row[0]: row[1:] for row in result.rows}
    # Small tables: all-scan (first column) beats all-DHE (last).
    assert rows[1000][0] < rows[1000][-1]
    # Large tables: all-DHE wins.
    assert rows[1_000_000][-1] < rows[1_000_000][0]


def test_fig9_crossover_near_paper_value(benchmark):
    """Paper: co-located crossover ~4500, close to the single-model 3300."""
    crossover = benchmark.pedantic(fig09_allocation_sweep.colocated_crossover,
                                   rounds=1, iterations=1)
    assert 1500 < crossover < 20_000
