"""Fig 11 bench: latency vs threshold split, profiled vs empirical best."""

import numpy as np

from repro.experiments import fig11_threshold_sweep


def test_fig11_threshold_sweep(benchmark, emit):
    result = benchmark.pedantic(fig11_threshold_sweep.run, rounds=1,
                                iterations=1)
    emit(result)
    latencies = result.column("latency_ms")
    flags = result.column("is_profiled_split")
    best = int(np.argmin(latencies))
    profiled = flags.index("<-- profiled")
    # Paper: profiled split within +-1 of the empirical optimum.
    assert abs(best - profiled) <= 1
    # The sweep spans orders of magnitude (all-scan is catastrophic).
    assert max(latencies) > 50 * min(latencies)
