"""Table VII bench: end-to-end DLRM latency per protection technique."""

from repro.experiments import table07_e2e_latency


def test_table7_e2e_latency(benchmark, emit):
    result = benchmark.pedantic(table07_e2e_latency.run, rounds=1,
                                iterations=1)
    emit(result)
    for dataset in ("kaggle", "terabyte"):
        latency = dict(zip(result.column("technique"),
                           result.column(f"{dataset}_ms")))
        # Paper ordering: lookup << hybrid < circuit < path << scan.
        assert latency["index_lookup"] < latency["hybrid_varied"]
        assert latency["hybrid_varied"] < latency["circuit_oram"]
        assert latency["circuit_oram"] < latency["path_oram"]
        assert latency["path_oram"] < latency["linear_scan"]
        speedup = dict(zip(result.column("technique"),
                           result.column(f"{dataset}_vs_circuit")))
        # Paper: 2.01x (Kaggle) / 2.28x (Terabyte); accept the right band.
        assert 1.5 < speedup["hybrid_varied"] < 4.5
