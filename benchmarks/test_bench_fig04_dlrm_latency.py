"""Fig 4 bench: DLRM embedding latency vs table size (modelled curves) and
measured microbenchmarks of the executable implementations for the same
shape claims."""

import numpy as np
import pytest

from repro.embedding import (
    CircuitOramEmbedding,
    DHEEmbedding,
    LinearScanEmbedding,
)
from repro.experiments import fig04_dlrm_latency


def test_fig4_curves(benchmark, emit):
    result = benchmark.pedantic(fig04_dlrm_latency.run, rounds=1,
                                iterations=1)
    emit(result)
    scan = result.column("linear_scan_ms")
    dhe_uniform = result.column("dhe_uniform_ms")
    circuit = result.column("circuit_oram_ms")
    path = result.column("path_oram_ms")
    # Paper shape: scan wins small, loses big; Circuit < Path everywhere.
    assert scan[0] < min(dhe_uniform[0], circuit[0], path[0])
    assert scan[-1] > max(dhe_uniform[-1], circuit[-1], path[-1])
    assert all(c < p for c, p in zip(circuit, path))


# -- measured microbenchmarks on our executable generators -----------------
BATCH = 8


@pytest.mark.parametrize("rows", [256, 4096])
def test_measured_linear_scan(benchmark, rows):
    generator = LinearScanEmbedding(rows, 16, rng=0)
    indices = np.random.default_rng(0).integers(0, rows, size=BATCH)
    benchmark(generator.generate, indices)


@pytest.mark.parametrize("rows", [256, 4096])
def test_measured_circuit_oram(benchmark, rows):
    generator = CircuitOramEmbedding(rows, 16, rng=0)
    indices = np.random.default_rng(0).integers(0, rows, size=BATCH)
    benchmark(generator.generate, indices)


def test_measured_dhe(benchmark):
    generator = DHEEmbedding(4096, 16, k=256, fc_sizes=(128, 64), rng=0)
    indices = np.random.default_rng(0).integers(0, 4096, size=BATCH)
    benchmark(generator.generate, indices)


def test_measured_shape_scan_linear_in_rows(benchmark):
    """Measured counterpart of the O(n) column in Table I."""
    from repro.utils.timing import time_callable

    indices = np.zeros(BATCH, dtype=np.int64)
    small = LinearScanEmbedding(8192, 16, rng=0)
    large = LinearScanEmbedding(8 * 8192, 16, rng=0)
    benchmark(lambda: large.generate(indices))
    t_small = time_callable(lambda: small.generate(indices), repeats=3)
    t_large = time_callable(lambda: large.generate(indices), repeats=3)
    assert t_large > 3 * t_small  # ~8x work, allow generous noise margin
