"""Fig 13 bench: co-located latency-throughput, DHE vs Hybrid Varied."""

from repro.data import KAGGLE_SPEC
from repro.experiments import fig13_throughput


def test_fig13_terabyte(benchmark, emit):
    result = benchmark.pedantic(fig13_throughput.run, rounds=1, iterations=1)
    emit(result)
    # The hybrid's SLA-bounded throughput beats all-DHE (paper: 1.4x).
    assert "Hybrid" in result.notes
    dhe_col = result.column("dhe_varied_ips")
    hybrid_col = result.column("hybrid_varied_ips")
    sla_rows_hybrid = [tp for latency, tp in
                       zip(result.column("hybrid_varied_ms"), hybrid_col)
                       if latency <= 20.0]
    sla_rows_dhe = [tp for latency, tp in
                    zip(result.column("dhe_varied_ms"), dhe_col)
                    if latency <= 20.0]
    assert max(sla_rows_hybrid) > max(sla_rows_dhe)


def test_fig13_kaggle(benchmark, emit):
    result = benchmark.pedantic(fig13_throughput.run,
                                kwargs=dict(spec=KAGGLE_SPEC),
                                rounds=1, iterations=1)
    result.experiment_id = "fig13-kaggle"
    emit(result)
    assert "Hybrid" in result.notes
