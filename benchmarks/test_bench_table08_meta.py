"""Table VIII bench: the Meta-scale DLRM (788 tables)."""

from repro.experiments import table08_meta


def test_table8_meta_scale(benchmark, emit):
    result = benchmark.pedantic(table08_meta.run, rounds=1, iterations=1)
    emit(result)
    latency = dict(zip(result.column("technique"),
                       result.column("latency_ms")))
    memory = dict(zip(result.column("technique"),
                      result.column("memory_mb")))
    speedup = dict(zip(result.column("technique"),
                       result.column("vs_circuit")))
    # Paper: Hybrid Varied 2.40x over Circuit; Circuit ~1.3s.
    assert 1.5 < speedup["hybrid_varied"] < 4.0
    assert 500 < latency["circuit_oram"] < 3000
    # Paper: tables ~910 GB, ORAM ~3 TB (impractical), hybrid ~1.2 GB.
    assert memory["path_oram"] > 2.5 * memory["index_lookup"]
    assert memory["index_lookup"] / memory["hybrid_varied"] > 250
    # The hybrid fits in the 64 GB EPC; the ORAM model does not.
    epc_mb = 64 * 1024
    assert memory["hybrid_varied"] < epc_mb
    assert memory["circuit_oram"] > epc_mb
