"""Cross-validation: the calibrated cost model vs wall-clock measurements.

The figure benchmarks rely on `repro.costmodel` for SGX-scale absolutes.
This bench checks the model's *shape* claims against real timings of the
executable implementations at laptop scale:

* linear scan grows linearly in table size,
* Circuit ORAM grows far slower than linearly,
* DHE latency is independent of table size,
* the scan/DHE ordering flips between small and large tables —
  i.e. a measured crossover exists, as the modelled Fig 4/6 predict.
"""

import numpy as np

from repro.costmodel.latency import DheShape
from repro.embedding import CircuitOramEmbedding, DHEEmbedding, LinearScanEmbedding
from repro.utils.timing import time_callable

BATCH = 8
DIM = 16
SHAPE = DheShape(k=512, fc_sizes=(512, 256), out_dim=DIM)


def measure(generator, rows: int, repeats: int = 3) -> float:
    indices = np.random.default_rng(0).integers(0, rows, size=BATCH)
    return time_callable(lambda: generator.generate(indices),
                         repeats=repeats)


def test_measured_scan_linear_growth(benchmark):
    small = measure(LinearScanEmbedding(4096, DIM, rng=0), 4096)
    big_gen = LinearScanEmbedding(16 * 4096, DIM, rng=0)
    benchmark(lambda: big_gen.generate(np.zeros(BATCH, dtype=np.int64)))
    big = measure(big_gen, 16 * 4096)
    assert big > 6 * small  # 16x work; generous noise margin


def test_measured_oram_sublinear_growth(benchmark):
    small_oram = CircuitOramEmbedding(512, DIM, rng=0)
    big_oram = CircuitOramEmbedding(8192, DIM, rng=0)
    benchmark.pedantic(lambda: big_oram.generate(
        np.zeros(BATCH, dtype=np.int64)), rounds=3, iterations=1)
    small = measure(small_oram, 512)
    big = measure(big_oram, 8192)
    assert big < 8 * small  # 16x table, far less than 16x time


def test_measured_dhe_flat_in_table_size(benchmark):
    small_gen = DHEEmbedding(1000, DIM, shape=SHAPE, rng=0)
    big_gen = DHEEmbedding(1_000_000, DIM, shape=SHAPE, rng=0)
    benchmark(lambda: big_gen.generate(np.zeros(BATCH, dtype=np.int64)))
    small = measure(small_gen, 1000, repeats=5)
    big = measure(big_gen, 1_000_000, repeats=5)
    assert 0.4 < big / small < 2.5


def test_measured_scan_dhe_crossover_exists(benchmark):
    """Scan beats this DHE on a small table and loses on a big one — the
    measured counterpart of the Fig 6 threshold."""
    dhe = DHEEmbedding(1000, DIM, shape=SHAPE, rng=0)
    benchmark(lambda: dhe.generate(np.zeros(BATCH, dtype=np.int64)))
    dhe_time = measure(dhe, 1000, repeats=5)
    scan_small = measure(LinearScanEmbedding(256, DIM, rng=0), 256,
                         repeats=5)
    scan_large = measure(LinearScanEmbedding(262_144, DIM, rng=0), 262_144)
    assert scan_small < dhe_time < scan_large
