"""DHE design-space ablations (DESIGN.md §5).

* Hash-count/FC-width quality-vs-cost: fit quality of DHE stacks of
  increasing size against a fixed target table (the mechanism behind "DHE
  sized for no loss" in Table I).
* Varied sizing rule: the adopted k-only 0.125x/decade rule vs the
  aggressive all-width shrink, checked against the paper's measured
  Varied/Uniform ratios.
* TT vs DHE: the compressed-but-insecure alternative of §VII.
"""

import numpy as np

from repro.costmodel.latency import (
    DLRM_DHE_UNIFORM_16,
    DheShape,
    dhe_latency,
    dhe_varied_shape,
)
from repro.costmodel.memory import dhe_bytes
from repro.data import KAGGLE_TABLE_SIZES
from repro.embedding import DHEEmbedding, TTEmbedding
from repro.nn.losses import mse
from repro.nn.optim import Adam


def fit_quality(k: int, width: int, steps: int = 250, rows: int = 64,
                dim: int = 8, seed: int = 0) -> float:
    """Final MSE of a DHE stack trained to reproduce a random table."""
    rng = np.random.default_rng(seed)
    target = rng.normal(size=(rows, dim))
    dhe = DHEEmbedding(rows, dim, k=k, fc_sizes=(width,), rng=seed)
    optimizer = Adam(dhe.parameters(), lr=0.01)
    indices = np.arange(rows)
    loss_value = float("inf")
    for _ in range(steps):
        optimizer.zero_grad()
        loss = mse(dhe(indices), target)
        loss.backward()
        optimizer.step()
        loss_value = loss.item()
    return loss_value


def test_ablation_dhe_capacity_vs_quality(benchmark):
    """Bigger stacks fit better — the accuracy/latency dial of §IV-A3."""
    small = fit_quality(k=8, width=8)
    large = benchmark.pedantic(lambda: fit_quality(k=64, width=128),
                               rounds=1, iterations=1)
    assert large < 0.5 * small
    # And cost scales accordingly in the latency model:
    assert dhe_latency(DheShape(64, (128,), 8), 32) > \
        dhe_latency(DheShape(8, (8,), 8), 32)


def test_ablation_varied_rule_vs_allwidth(benchmark):
    """The adopted k-only rule matches the paper's measured Varied/Uniform
    ratios; shrinking all widths overshoots by ~10x."""
    def ratios(all_width: bool):
        uniform_total = varied_total = 0.0
        uniform_mem = varied_mem = 0
        for size in KAGGLE_TABLE_SIZES:
            uniform_total += dhe_latency(DLRM_DHE_UNIFORM_16, 32)
            uniform_mem += dhe_bytes(DLRM_DHE_UNIFORM_16)
            if all_width:
                from repro.costmodel.latency import varied_scale_factor
                shape = DLRM_DHE_UNIFORM_16.scaled(
                    varied_scale_factor(size))
            else:
                shape = dhe_varied_shape(size, DLRM_DHE_UNIFORM_16)
            varied_total += dhe_latency(shape, 32)
            varied_mem += dhe_bytes(shape)
        return varied_total / uniform_total, varied_mem / uniform_mem

    k_only = benchmark.pedantic(lambda: ratios(all_width=False),
                                rounds=1, iterations=1)
    all_width = ratios(all_width=True)
    # Paper measured: latency ratio ~0.57, memory ratio ~0.49 (Kaggle).
    assert 0.25 < k_only[0] < 0.8
    assert 0.25 < k_only[1] < 0.8
    # The all-width rule collapses both ratios far below the measurements.
    assert all_width[0] < 0.5 * k_only[0]
    assert all_width[1] < 0.5 * k_only[1]


def test_ablation_tt_vs_dhe(benchmark):
    """TT compresses even harder than DHE but is not oblivious — the
    security/efficiency separation of §VII."""
    rows, dim = 100_000, 16
    tt = TTEmbedding(rows, dim, rank=8, rng=0)
    dhe = DHEEmbedding(rows, dim, k=256, fc_sizes=(128,), rng=0)
    indices = np.random.default_rng(0).integers(0, rows, size=32)
    benchmark(lambda: tt.generate(indices))

    table_bytes = rows * dim * 4
    assert tt.footprint_bytes() < dhe.footprint_bytes() < table_bytes
    assert not tt.is_oblivious and dhe.is_oblivious
    assert tt.modelled_latency(32) < dhe.modelled_latency(32)
