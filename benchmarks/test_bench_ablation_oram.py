"""Ablations on the ORAM design axes DESIGN.md calls out.

* Eviction discipline: Path ORAM's full-path writeback vs Circuit ORAM's
  metadata-driven single-block moves — bucket traffic and stash occupancy.
* Tree packing: classic one-leaf-per-block sizing vs ZeroTrace's n/Z
  packing — memory vs stash pressure.
* Position-map recursion cutoff (the paper tuned 2^12 vs 2^16).
"""

import numpy as np
import pytest

from repro.costmodel.latency import oram_access_bytes
from repro.oram import CircuitORAM, PathORAM, RingORAM

N, WIDTH, ACCESSES = 256, 8, 200


def run_workload(oram, accesses=ACCESSES, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(accesses):
        oram.read(int(rng.integers(0, oram.num_blocks)))
    return oram


def test_ablation_eviction_discipline(benchmark):
    """Circuit's eviction moves far fewer payload rows per access than
    Path's full-path writeback, and runs with a ~15x smaller stash — the
    paper's §IV-A2 rationale for preferring Circuit ORAM."""
    path = run_workload(PathORAM(N, WIDTH, rng=1))
    circuit = run_workload(CircuitORAM(N, WIDTH, rng=1))
    benchmark.pedantic(lambda: run_workload(CircuitORAM(N, WIDTH, rng=2),
                                            accesses=50),
                       rounds=1, iterations=1)

    # Path moves every slot of the path twice per access; Circuit's bucket
    # traffic is higher per sweep but its stash scans are tiny. Compare the
    # controllers' stash requirements (the paper's 150-vs-10 observation):
    assert path.stash.peak_occupancy > circuit.stash.peak_occupancy
    assert PathORAM.DEFAULT_STASH / CircuitORAM.DEFAULT_STASH == 15
    # And the modelled oblivious byte traffic (stash scans dominate Path):
    assert oram_access_bytes("path", 10**6, 64) > \
        5 * oram_access_bytes("circuit", 10**6, 64)


def test_ablation_tree_packing(benchmark):
    """ZeroTrace's n/Z packing cuts tree memory ~4x at the cost of stash
    occupancy — this is what makes Table VI's ORAM footprint ~330% instead
    of ~800%."""
    loose = run_workload(PathORAM(N, WIDTH, rng=3))
    packed = run_workload(PathORAM(N, WIDTH, pack_factor=4, rng=3))
    benchmark.pedantic(lambda: run_workload(
        PathORAM(N, WIDTH, pack_factor=4, rng=4), accesses=50),
        rounds=1, iterations=1)

    loose_slots = loose.tree.num_buckets * loose.bucket_size
    packed_slots = packed.tree.num_buckets * packed.bucket_size
    assert packed_slots <= loose_slots / 3
    assert packed.stash.peak_occupancy >= loose.stash.peak_occupancy
    # Both remain correct stores (spot check).
    assert packed.total_resident_blocks() == N


def test_ablation_ring_oram_bandwidth(benchmark):
    """The third design point (§VII's 'other ORAM proposals'): Ring ORAM's
    single-slot reads cut bucket traffic below both Path and Circuit at the
    cost of dummy-slot memory and reshuffle machinery."""
    traffic = {}
    for name, cls in (("ring", RingORAM), ("path", PathORAM),
                      ("circuit", CircuitORAM)):
        oram = run_workload(cls(N, WIDTH, rng=9), accesses=100)
        traffic[name] = (oram.stats.bucket_reads
                         + oram.stats.bucket_writes) / 100
    benchmark.pedantic(lambda: run_workload(RingORAM(N, WIDTH, rng=10),
                                            accesses=50),
                       rounds=1, iterations=1)
    # Ring touches the fewest buckets per access (single-slot reads);
    # Circuit's higher *op* count is metadata-dominated (its per-op payload
    # is what makes it fast in the byte model), so compare against Path.
    assert traffic["ring"] < traffic["path"]
    # Ring pays with memory: Z+S slots per bucket vs Z.
    ring = RingORAM(N, WIDTH, rng=0)
    path = PathORAM(N, WIDTH, rng=0)
    assert ring.tree.num_buckets * ring.bucket_size > \
        path.tree.num_buckets * path.bucket_size


@pytest.mark.parametrize("cutoff", [16, 64, 10_000])
def test_ablation_recursion_cutoff(benchmark, cutoff):
    """Deeper position-map recursion trades flat-scan cost for more tree
    accesses; the paper picked 2^12 (Circuit) / 2^16 (Path) empirically."""
    oram = CircuitORAM(300, 4, recursion_cutoff=cutoff, rng=5)
    rng = np.random.default_rng(0)
    benchmark(lambda: oram.read(int(rng.integers(0, 300))))


def test_ablation_recursion_cutoff_latency_model(benchmark):
    """In the calibrated model, recursing a *small* table is slower than a
    flat position map (the paper enables recursion only past the cutoff)."""
    from repro.costmodel.latency import (
        CIRCUIT_RECURSION_CUTOFF,
        oram_access_bytes,
    )
    just_below = benchmark(
        lambda: oram_access_bytes("circuit", CIRCUIT_RECURSION_CUTOFF, 64))
    just_above = oram_access_bytes("circuit", CIRCUIT_RECURSION_CUTOFF + 1, 64)
    assert just_above > just_below  # recursion adds a whole child access
