"""Fig 14 bench: real finetuning of table- vs DHE-embedded GPT."""

from repro.experiments import fig14_llm_finetune


def test_fig14_llm_finetune(benchmark, emit):
    result = benchmark.pedantic(fig14_llm_finetune.run, rounds=1,
                                iterations=1)
    emit(result)
    table_curve = result.column("table_ppl")
    dhe_curve = result.column("dhe_ppl")
    # Both improve with finetuning; DHE converges near the table model
    # (paper: within 2.7%; we allow 15% at this miniature scale).
    assert dhe_curve[-1] < dhe_curve[0]
    assert min(dhe_curve) < 1.15 * min(table_curve)
