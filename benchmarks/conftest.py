"""Shared helpers for the benchmark harness.

Every ``test_bench_*`` module regenerates one of the paper's tables or
figures. The ``emit`` fixture prints the reproduced table and archives it
under ``benchmarks/results/`` so a benchmark run leaves the full set of
paper-format artifacts behind.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def emit():
    """Print + archive an ExperimentResult; returns it for assertions."""

    def _emit(result):
        rendered = result.render()
        print("\n" + rendered)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{result.experiment_id}.txt")
        with open(path, "w") as handle:
            handle.write(rendered + "\n")
        return result

    return _emit
