"""Table I bench: complexity fits (analytic) + measured growth exponents."""

import numpy as np

from repro.experiments import table01_complexity
from repro.utils.timing import time_callable


def test_table1_complexity(benchmark, emit):
    result = benchmark.pedantic(table01_complexity.run, rounds=1,
                                iterations=1)
    emit(result)
    exponents = dict(zip(result.column("technique"),
                         result.column("fitted_exponent")))
    assert 0.8 < exponents["linear scan"] < 1.3
    assert 1.7 < exponents["DHE"] < 2.3


def test_measured_dhe_quadratic_in_k(benchmark):
    """Wall-clock DHE latency grows ~k^2 (Table I's O(k^2))."""
    from repro.embedding import DHEEmbedding

    indices = np.zeros(8, dtype=np.int64)
    timings = {}
    for k in (128, 512):
        generator = DHEEmbedding(1000, 16, k=k, fc_sizes=(k // 2, k // 4),
                                 rng=0)
        timings[k] = time_callable(lambda g=generator: g.generate(indices),
                                   repeats=3)
    benchmark(lambda: DHEEmbedding(1000, 16, k=512,
                                   fc_sizes=(256, 128),
                                   rng=0).generate(indices))
    # 4x wider stack => ~16x FLOPs; allow wide tolerance for BLAS effects.
    assert timings[512] > 3 * timings[128]
