"""Fig 2 (taxonomy) and Table II (security matrix) benches."""

from repro.experiments import fig02_taxonomy, table02_security


def test_fig2_taxonomy(benchmark, emit):
    result = benchmark.pedantic(fig02_taxonomy.run, rounds=1, iterations=1)
    emit(result)
    rows = {row[0]: dict(zip(result.headers, row)) for row in result.rows}
    # Storage: fast & big; computation: slower & tiny (Fig 2's trade-off).
    assert rows["table lookup"]["normalized_latency"] == 1.0
    assert rows["DHE"]["normalized_latency"] > 10
    assert rows["DHE"]["memory_mb"] < rows["table lookup"]["memory_mb"] / 10


def test_table2_security_matrix(benchmark, emit):
    result = benchmark.pedantic(table02_security.run, rounds=1, iterations=1)
    emit(result)
    verdicts = dict(zip(result.column("technique"),
                        result.column("secret_dependent_data_access")))
    assert "NOT protected" in verdicts["Table: non-secure"]
    assert "protected" in verdicts["Table: Linear Scan"]
    assert "protected" in verdicts["Table: ORAM"]
