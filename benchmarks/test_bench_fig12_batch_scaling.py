"""Fig 12 bench: end-to-end DLRM latency vs batch size."""

from repro.experiments import fig12_batch_scaling


def test_fig12_batch_scaling(benchmark, emit):
    result = benchmark.pedantic(fig12_batch_scaling.run, rounds=1,
                                iterations=1)
    emit(result)
    by_key = {(row[0], row[1]): dict(zip(result.headers, row))
              for row in result.rows}
    for dataset in ("criteo-kaggle", "criteo-terabyte"):
        speedups = [by_key[(dataset, batch)]["hybrid_speedup_vs_circuit"]
                    for batch in (1, 8, 32, 128)]
        # Paper: the hybrid's advantage over Circuit ORAM grows with batch.
        assert speedups[-1] > speedups[1] > speedups[0]
        assert speedups[-1] > 2.0  # paper: 2.61x / 3.08x at batch 128
