"""Table VI bench: DLRM model footprints per representation."""

from repro.experiments import table06_footprint


def test_table6_footprints(benchmark, emit):
    result = benchmark.pedantic(table06_footprint.run, rounds=1, iterations=1)
    emit(result)
    kaggle = dict(zip(result.column("representation"),
                      result.column("kaggle_pct")))
    terabyte = dict(zip(result.column("representation"),
                        result.column("terabyte_pct")))
    for pct in (kaggle, terabyte):
        # Paper: ORAM ~330%, DHE/hybrid under a few percent.
        assert 250 < pct["tree_oram"] < 450
        assert pct["dhe_uniform"] < 5
        assert pct["hybrid_varied"] <= pct["dhe_uniform"]
    # Paper: reduction vs Tree-ORAM reaches 100x+ (Kaggle) / 1000x+ (TB).
    kaggle_mb = dict(zip(result.column("representation"),
                         result.column("kaggle_mb")))
    terabyte_mb = dict(zip(result.column("representation"),
                           result.column("terabyte_mb")))
    assert kaggle_mb["tree_oram"] / kaggle_mb["hybrid_varied"] > 100
    assert terabyte_mb["tree_oram"] / terabyte_mb["hybrid_varied"] > 500
