"""Fig 8 bench: latency inflation under technique co-location."""

from repro.experiments import fig08_colocation


def test_fig8_colocation(benchmark, emit):
    result = benchmark.pedantic(fig08_colocation.run, rounds=1, iterations=1)
    emit(result)
    scan = result.column("scan_ms")
    dhe = result.column("dhe_ms")
    circuit = result.column("circuit_oram_ms")
    # Everyone's latency is non-decreasing in co-location.
    for series in (scan, dhe, circuit):
        assert all(a <= b * 1.001 for a, b in zip(series, series[1:]))
    # Paper shape: scan inflates relatively more than DHE at 24 copies.
    scan_inflation = scan[-1] / scan[0]
    dhe_inflation = dhe[-1] / dhe[0]
    assert scan_inflation > dhe_inflation
