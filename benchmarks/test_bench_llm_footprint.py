"""§VI-D3 bench: GPT-2 medium footprint per token-embedding scheme."""

import pytest

from repro.experiments import llm_footprint


def test_llm_footprint(benchmark, emit):
    result = benchmark.pedantic(llm_footprint.run, rounds=1, iterations=1)
    emit(result)
    parts = dict(zip(result.column("scheme"),
                     result.column("embedding_part_mb")))
    overhead = dict(zip(result.column("scheme"),
                        result.column("overhead_vs_table_pct")))
    assert parts["table"] == pytest.approx(196.3, rel=0.03)
    assert parts["oram (circuit)"] == pytest.approx(513.6, rel=0.1)
    assert parts["dhe (+tied head table)"] == pytest.approx(56.0, rel=0.1)
    # Paper: DHE +4% model overhead; ORAM tens of percent.
    assert overhead["dhe (+tied head table)"] < 8
    assert overhead["oram (circuit)"] > 15
