"""The Fig 3 attack, step by step: PRIME+PROBE on an embedding lookup.

An attacker sharing the LLC with an enclave recovers which embedding-table
row the victim touched — then the linear-scan defence is switched on and
the signal disappears.

Run:  python examples/cache_attack_demo.py
"""

from repro.sidechannel import (
    CacheConfig,
    EmbeddingLookupVictim,
    PrimeProbeAttacker,
    SetAssociativeCache,
)


def bar(value: float, low: float, high: float, width: int = 40) -> str:
    filled = int(width * (value - low) / max(high - low, 1e-9))
    return "#" * max(0, min(width, filled))


def main() -> None:
    # Paper setup: 256-entry table, dim 64, victim index 2, 25 primed sets.
    cache = SetAssociativeCache(CacheConfig())
    victim = EmbeddingLookupVictim(cache, num_rows=256, embedding_dim=64)
    attacker = PrimeProbeAttacker(cache, victim,
                                  monitored_indices=range(25),
                                  noise_cycles=3.0, rng=7)
    secret_index = 2

    print("Phase (i): eviction sets built for 25 candidate indices")
    print(f"Phase (ii): PRIME -> victim lookup(index={secret_index}) -> PROBE, "
          f"averaged over 10 trials\n")

    result = attacker.run_trials(secret_index, repeats=10)
    low = min(result.mean_latencies.values())
    high = max(result.mean_latencies.values())
    print("  set  probe latency (cycles)")
    for index in range(25):
        latency = result.mean_latencies[index]
        marker = "  <-- victim's set" if index == result.recovered_index else ""
        print(f"  {index:>3}  {latency:7.1f} {bar(latency, low, high)}{marker}")
    print(f"\nRecovered index: {result.recovered_index} "
          f"(true index {secret_index}) — attack "
          f"{'SUCCEEDED' if result.success else 'failed'}\n")

    print("Now the same attack against the linear-scan-protected lookup:\n")
    protected = attacker.run_trials(secret_index, repeats=10,
                                    victim_op=victim.lookup_linear_scan)
    values = protected.mean_latencies.values()
    print(f"  probe latencies span only "
          f"{max(values) - min(values):.1f} cycles across all 25 sets — "
          f"every set was touched, nothing to learn.\n")

    page_channel_demo()


def page_channel_demo() -> None:
    """§III-A2's second channel: the OS-controlled page-fault attack."""
    from repro.sidechannel import (
        ControlledChannelAttacker,
        PageChannelVictim,
        PageFaultObserver,
        combined_channel_candidates,
    )

    print("Bonus: the controlled-channel (page-fault) attack on a bigger "
          "table\n")
    observer = PageFaultObserver()
    victim = PageChannelVictim(observer, num_rows=100_000, embedding_dim=64)
    attacker = ControlledChannelAttacker(victim)
    secret = 54_321
    low, high = attacker.observe_lookup(secret)
    print(f"  table: 100,000 rows; secret index {secret}")
    print(f"  page faults narrow it to [{low}, {high}) — "
          f"{high - low} candidates")
    remaining = combined_channel_candidates(100_000, 64)
    print(f"  combining with the cache channel (line granularity) leaves "
          f"{remaining} candidate — the exact index, as §III-A2 describes")
    print(f"  against the linear scan, the page channel sees "
          f"{attacker.observe_scan(secret)} candidates (the whole table)")


if __name__ == "__main__":
    main()
