"""Secure LLM text generation with a DHE token embedding (§IV-D, §VI-D).

Pretrains a small GPT on a synthetic corpus with its usual embedding table,
swaps the input embedding for a DHE stack (keeping the tied output head),
finetunes to recover perplexity, and generates text through the fully
oblivious path: DHE embedding -> transformer -> cmov argmax sampling.

Run:  python examples/secure_llm.py
"""

import numpy as np

from repro.costmodel import DheShape
from repro.data import MarkovCorpusGenerator
from repro.embedding import DHEEmbedding
from repro.models import GPT, evaluate_perplexity, tiny_config, train_gpt

VOCAB, DIM, LAYERS = 96, 32, 2


def main() -> None:
    generator = MarkovCorpusGenerator(vocab_size=VOCAB, branching=6, seed=0)
    corpus = generator.build_corpus(train_length=30_000, val_length=4_000)
    config = tiny_config(vocab_size=VOCAB, embed_dim=DIM, num_layers=LAYERS)

    print("Pretraining the base GPT (table embedding) ...")
    base = GPT(config, rng=1)
    train_gpt(base, corpus.train_tokens, steps=250, batch_size=8,
              seq_len=24, lr=2e-3, rng=0)
    base_ppl = evaluate_perplexity(base, corpus.val_tokens, seq_len=24)
    print(f"  base validation perplexity: {base_ppl:.2f} "
          f"(corpus entropy floor ~{2 ** generator.entropy_rate_bits():.2f})\n")

    print("Swapping the token embedding for DHE and finetuning (Fig 14) ...")
    dhe = DHEEmbedding(VOCAB, DIM,
                       shape=DheShape(k=2 * DIM, fc_sizes=(2 * DIM, 2 * DIM),
                                      out_dim=DIM),
                       rng=2)
    secure = GPT(config, token_embedding=dhe, rng=3)
    secure.load_state_dict(base.state_dict(), strict=False)  # inherit blocks+head
    train_gpt(secure, corpus.train_tokens, steps=450, batch_size=8,
              seq_len=24, lr=1e-3, rng=0)
    secure_ppl = evaluate_perplexity(secure, corpus.val_tokens, seq_len=24)
    print(f"  DHE validation perplexity: {secure_ppl:.2f} "
          f"({100 * (secure_ppl - base_ppl) / base_ppl:+.1f}% vs table; "
          f"paper: +2.7%)\n")

    print("Oblivious generation (prefill + KV-cache decode + cmov argmax):")
    tokenizer = corpus.tokenizer
    prompt_text = tokenizer.decode(corpus.val_tokens[:8])
    prompt = np.array([tokenizer.encode(prompt_text)])
    output = secure.generate(prompt, max_new_tokens=12,
                             oblivious_sampling=True)
    print(f"  prompt:    {prompt_text}")
    print(f"  generated: {tokenizer.decode(output[0, 8:])}")
    print("\nEvery stage of that generation has an input-independent memory "
          "access pattern: hashing+FC embedding, dense transformer blocks, "
          "and a linear-scan argmax over the logits.")


if __name__ == "__main__":
    main()
