"""Full deployment lifecycle of a secure hybrid DLRM (Algorithm 2 + 3).

train → size-search the DHE → profile thresholds → package to disk →
load in a fresh "server" → allocate for the live configuration → serve.
Every hand-off is verified: the restored model is bit-identical and
reallocation never changes predictions.

Run:  python examples/deployment_lifecycle.py
"""

import tempfile

import numpy as np

from repro.costmodel.latency import DheShape
from repro.data import KAGGLE_SPEC, SyntheticCtrDataset, scaled_spec
from repro.embedding import DHEEmbedding, HybridEmbedding
from repro.hybrid import (
    OfflineProfiler,
    build_threshold_database,
    default_shape_ladder,
    dlrm_quality_fn,
    find_minimal_dhe_shape,
    load_hybrid_deployment,
    save_hybrid_deployment,
)
from repro.models import DLRM, evaluate_dlrm, table_factory, train_dlrm

BOTTOM_TAIL = (64,)


def main() -> None:
    spec = scaled_spec(KAGGLE_SPEC, max_rows=20_000)
    bottom = (spec.num_dense, 64, spec.embedding_dim)

    # -- 1. baseline + DHE size search (§IV-C3 step 1) ----------------------
    print("Step 1: train the table baseline and size-search the DHE ...")
    baseline = DLRM(spec, table_factory(rng=0), bottom_sizes=bottom,
                    top_hidden_sizes=BOTTOM_TAIL, rng=1)
    train_dlrm(baseline, SyntheticCtrDataset(spec, seed=0), steps=150,
               batch_size=128, lr=2e-3)
    baseline_auc = evaluate_dlrm(baseline,
                                 SyntheticCtrDataset(spec, seed=0))["auc"]
    search = find_minimal_dhe_shape(
        dlrm_quality_fn(spec, dataset_seed=0, steps=150, batch_size=128),
        baseline_metric=baseline_auc,
        candidates=default_shape_ladder(spec.embedding_dim,
                                        ks=(16, 48, 128)),
        tolerance=0.01)
    shape = search.chosen or search.trace[-1][0]
    print(f"  baseline AUC {baseline_auc:.3f}; "
          f"search tried {[s.k for s, _ in search.trace]} -> k={shape.k}")
    if shape.k < 128:
        # This synthetic dataset is easy enough that a tiny stack matches
        # the baseline; production deployments floor the capacity (the
        # paper ships k=1024) so harder live traffic does not underfit —
        # and a floored stack also makes the scan/DHE trade-off non-trivial.
        shape = DheShape(k=128, fc_sizes=(128,), out_dim=spec.embedding_dim)
        print(f"  flooring deployed stack to k={shape.k} (production margin)")
    print()

    # -- 2. train the shippable all-DHE model ------------------------------
    print("Step 2: train the all-DHE hybrid model ...")
    hybrids, seeds = [], []

    def factory(size: int, dim: int) -> HybridEmbedding:
        seed = 1000 + len(hybrids)
        seeds.append(seed)
        hybrid = HybridEmbedding(DHEEmbedding(size, dim, shape=shape,
                                              rng=seed))
        hybrids.append(hybrid)
        return hybrid

    model = DLRM(spec, factory, bottom_sizes=bottom,
                 top_hidden_sizes=BOTTOM_TAIL, rng=1)
    train_dlrm(model, SyntheticCtrDataset(spec, seed=0), steps=150,
               batch_size=128, lr=2e-3)
    trained_auc = evaluate_dlrm(model,
                                SyntheticCtrDataset(spec, seed=0))["auc"]
    print(f"  hybrid-model AUC {trained_auc:.3f}\n")

    # -- 3. profile thresholds & package -----------------------------------
    print("Step 3: profile thresholds and package the deployment ...")
    profiler = OfflineProfiler(DheShape(k=shape.k, fc_sizes=shape.fc_sizes,
                                        out_dim=spec.embedding_dim))
    profile = profiler.profile(techniques=("scan", "dhe-uniform"),
                               dims=(spec.embedding_dim,),
                               batches=(1, 32, 128), threads_list=(1, 8))
    thresholds = build_threshold_database(profile,
                                          dims=(spec.embedding_dim,),
                                          batches=(1, 32, 128),
                                          threads_list=(1, 8))
    directory = tempfile.mkdtemp(prefix="secemb-deploy-")
    save_hybrid_deployment(directory, model, hybrids, thresholds, bottom,
                           BOTTOM_TAIL, seeds)
    print(f"  packaged to {directory}\n")

    # -- 4. the "server" loads and serves ----------------------------------
    print("Step 4: fresh process loads the package and serves ...")
    deployment = load_hybrid_deployment(directory)
    request = SyntheticCtrDataset(spec, seed=7).batch(32)
    reference = model.predict_proba(request.dense, request.sparse)
    for batch, threads in ((1, 1), (32, 1), (128, 8)):
        num_scan = deployment.configure(batch=batch, threads=threads)
        probabilities = deployment.model.predict_proba(request.dense,
                                                       request.sparse)
        drift = float(np.max(np.abs(probabilities - reference)))
        print(f"  config (batch={batch:>3}, threads={threads}): "
              f"{num_scan:>2}/26 features on scan, prediction drift "
              f"{drift:.2e}")
    print("\nPredictions are identical under every allocation — the "
          "hybrid's 'no accuracy loss' guarantee, live.")


if __name__ == "__main__":
    main()
