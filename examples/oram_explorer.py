"""ORAM internals explorer: watch Path and Circuit ORAM work.

Runs both controllers side by side on the same workload and reports the
numbers behind the paper's §IV-A2 comparison: per-access bucket traffic,
stash occupancy, revealed-leaf uniformity, and the memory blow-up of the
tree representation.

Run:  python examples/oram_explorer.py
"""

import numpy as np

from repro.costmodel import table_bytes, tree_oram_bytes
from repro.oram import CircuitORAM, PathORAM

NUM_BLOCKS, WIDTH, ACCESSES = 256, 16, 400


def explore(oram_class, name: str) -> None:
    rng = np.random.default_rng(0)
    data = rng.normal(size=(NUM_BLOCKS, WIDTH))
    oram = oram_class(NUM_BLOCKS, WIDTH, initial_payloads=data.copy(), rng=1)

    mirror = data.copy()
    for _ in range(ACCESSES):
        block = int(rng.integers(0, NUM_BLOCKS))
        if rng.random() < 0.5:
            got = oram.read(block)
            assert np.allclose(got, mirror[block])
        else:
            value = rng.normal(size=WIDTH)
            oram.write(block, value)
            mirror[block] = value

    stats = oram.stats
    leaves = np.asarray(stats.revealed_leaves)
    print(f"--- {name} ---")
    print(f"  tree: {oram.tree.levels} levels, {oram.tree.num_buckets} "
          f"buckets x Z={oram.bucket_size}")
    print(f"  {stats.accesses} accesses: "
          f"{stats.bucket_reads / stats.accesses:.1f} bucket reads + "
          f"{stats.bucket_writes / stats.accesses:.1f} writes per access")
    print(f"  stash: capacity bound {oram.persistent_stash_capacity}, "
          f"peak occupancy {oram.stash.peak_occupancy}")
    unique = len(set(stats.revealed_leaves))
    print(f"  revealed leaves: {unique}/{oram.tree.num_leaves} distinct, "
          f"mean {leaves.mean():.1f} (uniform would be "
          f"{(oram.tree.num_leaves - 1) / 2:.1f})")
    print(f"  all {NUM_BLOCKS} blocks verified intact\n")


def main() -> None:
    print("=== Tree ORAM, executable ===\n")
    explore(PathORAM, "Path ORAM (stash 150, full-path writeback)")
    explore(CircuitORAM, "Circuit ORAM (stash 10, two-pass eviction)")

    print("=== Why the paper calls ORAM tables expensive (Table VI) ===\n")
    for rows in (10**5, 10**6, 10**7):
        raw = table_bytes(rows, 64)
        oram = tree_oram_bytes(rows, 64, scheme="circuit")
        print(f"  {rows:>9} rows x dim 64: table {raw / 2**20:8.1f} MB -> "
              f"ORAM {oram / 2**20:8.1f} MB ({100 * oram / raw:.0f}%)")


if __name__ == "__main__":
    main()
