"""Quickstart: the five embedding generation methods behind one interface.

Builds one embedding table, protects it four different ways, shows that all
secure methods return identical embeddings to the plain lookup, compares
their (modelled) latency/footprint, and verifies obliviousness with the
memory tracer.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.embedding import (
    CircuitOramEmbedding,
    DHEEmbedding,
    LinearScanEmbedding,
    PathOramEmbedding,
    TableEmbedding,
)
from repro.oblivious import MemoryTracer, compare_traces


def main() -> None:
    num_rows, dim = 1000, 16
    rng = np.random.default_rng(0)
    trained_rows = rng.normal(size=(num_rows, dim))
    queries = np.array([3, 999, 3, 512])

    print("=== Secure embedding generation, one interface ===\n")

    generators = [
        TableEmbedding(num_rows, dim, rng=1),
        LinearScanEmbedding(num_rows, dim, weight=trained_rows),
        PathOramEmbedding(num_rows, dim, weight=trained_rows, rng=2),
        CircuitOramEmbedding(num_rows, dim, weight=trained_rows, rng=3),
        DHEEmbedding(num_rows, dim, k=64, fc_sizes=(64,), rng=4),
    ]
    generators[0].weight.data[...] = trained_rows  # share the trained table

    header = f"{'technique':>14} {'oblivious':>10} {'latency(b=32)':>14} {'footprint':>10}"
    print(header)
    print("-" * len(header))
    for generator in generators:
        out = generator.generate(queries)
        if generator.technique != "dhe":
            assert np.allclose(out, trained_rows[queries]), generator.technique
        latency_ms = generator.modelled_latency(batch=32) * 1e3
        footprint_kb = generator.footprint_bytes() / 1024
        print(f"{generator.technique:>14} {str(generator.is_oblivious):>10} "
              f"{latency_ms:>11.3f} ms {footprint_kb:>7.0f} KB")

    print("\n=== Trace obliviousness, verified ===\n")

    def scan_run(tracer: MemoryTracer, secret: int) -> None:
        scan = LinearScanEmbedding(num_rows, dim, weight=trained_rows)
        scan.generate_traced(np.array([secret]), tracer)

    def table_run(tracer: MemoryTracer, secret: int) -> None:
        table = TableEmbedding(num_rows, dim, rng=1)
        table.generate_traced(np.array([secret]), tracer)

    print("linear scan:", compare_traces(scan_run, [1, 500, 999]))
    print("table lookup:", compare_traces(table_run, [1, 500]))
    print("\nThe table lookup's first access already reveals the index; the "
          "scan's trace is identical for every secret.")


if __name__ == "__main__":
    main()
