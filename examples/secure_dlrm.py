"""End-to-end secure DLRM: train, hybridise, profile, deploy (Algorithms 2-3).

1. Train an all-DHE DLRM on a synthetic Criteo-schema CTR dataset and show
   it matches the accuracy of a plain table-based DLRM.
2. Wrap every feature in a HybridEmbedding and materialise scan tables.
3. Profile the platform, extract the scan/DHE threshold for the live
   configuration, and allocate each feature (Algorithm 3).
4. Run secure inference and report the per-feature allocation, the modelled
   latency advantage, and the memory savings.

Run:  python examples/secure_dlrm.py
"""

import numpy as np

from repro.costmodel import DLRM_DHE_UNIFORM_16, DheShape
from repro.data import KAGGLE_SPEC, SyntheticCtrDataset, scaled_spec
from repro.embedding import DHEEmbedding, HybridEmbedding
from repro.hybrid import (
    OfflineProfiler,
    allocate_for_configuration,
    apply_allocations,
    build_threshold_database,
    count_scan_features,
)
from repro.models import DLRM, evaluate_dlrm, table_factory, train_dlrm

BATCH, THREADS = 32, 1


def main() -> None:
    # Cap the largest tables so training finishes in seconds while keeping
    # several tables above the dim-16 scan/DHE threshold (~1e4 rows), so
    # the hybrid allocation below actually splits.
    spec = scaled_spec(KAGGLE_SPEC, max_rows=50_000)
    dataset = SyntheticCtrDataset(spec, seed=0)
    uniform = DheShape(k=48, fc_sizes=(48,), out_dim=spec.embedding_dim)

    # -- 1. train table baseline and all-DHE model -------------------------
    print("Training table-based DLRM baseline ...")
    baseline = DLRM(spec, table_factory(rng=1),
                    bottom_sizes=(13, 64, spec.embedding_dim),
                    top_hidden_sizes=(64,), rng=2)
    train_dlrm(baseline, SyntheticCtrDataset(spec, seed=0), steps=200,
               batch_size=128, lr=2e-3)
    baseline_metrics = evaluate_dlrm(baseline, SyntheticCtrDataset(spec, seed=0))

    print("Training all-DHE DLRM (Algorithm 2 offline step) ...")
    hybrids = []

    def hybrid_factory(size: int, dim: int) -> HybridEmbedding:
        hybrid = HybridEmbedding(DHEEmbedding(size, dim, shape=uniform,
                                              rng=len(hybrids)))
        hybrids.append(hybrid)
        return hybrid

    model = DLRM(spec, hybrid_factory,
                 bottom_sizes=(13, 64, spec.embedding_dim),
                 top_hidden_sizes=(64,), rng=2)
    train_dlrm(model, SyntheticCtrDataset(spec, seed=0), steps=200,
               batch_size=128, lr=2e-3)
    dhe_metrics = evaluate_dlrm(model, SyntheticCtrDataset(spec, seed=0))
    print(f"  table accuracy {baseline_metrics['accuracy']:.3f} "
          f"(AUC {baseline_metrics['auc']:.3f})  vs  "
          f"DHE accuracy {dhe_metrics['accuracy']:.3f} "
          f"(AUC {dhe_metrics['auc']:.3f})  -> parity, as in Table V\n")

    # -- 2./3. profile and allocate (uses full-scale Kaggle table sizes) ---
    print("Profiling the platform and extracting thresholds (Fig 6) ...")
    profiler = OfflineProfiler(DLRM_DHE_UNIFORM_16)
    profile = profiler.profile(techniques=("scan", "dhe-uniform"),
                               dims=(spec.embedding_dim,), batches=(BATCH,),
                               threads_list=(THREADS,))
    thresholds = build_threshold_database(profile, dims=(spec.embedding_dim,),
                                          batches=(BATCH,),
                                          threads_list=(THREADS,))
    threshold = thresholds.threshold(spec.embedding_dim, BATCH, THREADS)
    print(f"  scan/DHE threshold at batch={BATCH}, threads={THREADS}: "
          f"{threshold:.0f} rows")

    allocations = allocate_for_configuration(spec.table_sizes, thresholds,
                                             spec.embedding_dim, BATCH,
                                             THREADS)
    apply_allocations(hybrids, allocations)
    print(f"  allocation: {count_scan_features(allocations)} features on "
          f"linear scan, {len(allocations) - count_scan_features(allocations)} "
          f"on DHE (Algorithm 3)\n")

    # -- 4. secure inference ------------------------------------------------
    batch = SyntheticCtrDataset(spec, seed=99).batch(BATCH)
    probabilities = model.predict_proba(batch.dense, batch.sparse)
    print(f"Secure inference on a batch of {BATCH}: "
          f"CTR predictions in [{probabilities.min():.3f}, "
          f"{probabilities.max():.3f}]")
    print(f"  modelled embedding latency: "
          f"{model.embedding_latency(BATCH, THREADS) * 1e3:.2f} ms "
          f"(hybrid) ")
    print(f"  embedding footprint: "
          f"{model.embedding_footprint_bytes() / 1024:.0f} KB "
          f"(dual representations, smaller one shipped per feature)")


if __name__ == "__main__":
    main()
