"""Footprint-model tests, anchored to the paper's Table VI / §VI-D3."""

import pytest

from repro.costmodel.latency import DLRM_DHE_UNIFORM_16, LLM_DHE_GPT2_MEDIUM
from repro.costmodel.memory import (
    _tree_slots,
    dhe_bytes,
    mlp_bytes,
    table_bytes,
    tree_oram_bytes,
)

MB = 2**20


class TestTableBytes:
    def test_formula(self):
        assert table_bytes(1000, 64) == 1000 * 64 * 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            table_bytes(0, 64)


class TestTreeSlots:
    def test_between_2x_and_4x(self):
        for blocks in (100, 5000, 10**6, 10**7):
            slots = _tree_slots(blocks)
            assert 1.5 * blocks <= slots <= 4.5 * blocks

    def test_power_of_two_blocks(self):
        # n = 4 * 2^k packs exactly: slots = (2*2^k - 1) * 4
        assert _tree_slots(4 * 1024) == (2 * 1024 - 1) * 4


class TestTreeOramBytes:
    def test_paper_ratio_three_ish(self):
        """Table VI: Tree-ORAM ~327-337% of the raw table."""
        raw = table_bytes(10**7, 64)
        oram = tree_oram_bytes(10**7, 64, scheme="circuit")
        assert 2.5 * raw < oram < 4.5 * raw

    def test_gpt2_vocab_oram_near_514mb(self):
        """§VI-D3: ORAM table for GPT-2 medium = 513.6 MB."""
        oram_mb = tree_oram_bytes(50257, 1024, scheme="circuit") / MB
        assert 450 < oram_mb < 580

    def test_recursion_included(self):
        small = tree_oram_bytes(1 << 12, 64, scheme="circuit")
        # Doubling past the cutoff adds posmap trees, not just 2x payload.
        big = tree_oram_bytes(1 << 13, 64, scheme="circuit")
        assert big > 2 * small * 0.9

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            tree_oram_bytes(100, 64, scheme="square")


class TestDheBytes:
    def test_kaggle_uniform_near_2_6mb(self):
        assert 2.2 * MB < dhe_bytes(DLRM_DHE_UNIFORM_16) < 3.0 * MB

    def test_llm_dhe_near_56mb(self):
        assert 50 * MB < dhe_bytes(LLM_DHE_GPT2_MEDIUM) < 62 * MB

    def test_far_smaller_than_large_table(self):
        assert dhe_bytes(DLRM_DHE_UNIFORM_16) < 0.01 * table_bytes(10**7, 16)


class TestMlpBytes:
    def test_formula(self):
        # 2 layers: 4*8+8 and 8*2+2 params.
        assert mlp_bytes([4, 8, 2]) == (4 * 8 + 8 + 8 * 2 + 2) * 4
