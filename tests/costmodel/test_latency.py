"""Latency-model tests: asymptotics, calibration anchors, DHE shapes."""


import pytest

from repro.costmodel.latency import (
    DLRM_DHE_UNIFORM_16,
    DLRM_DHE_UNIFORM_64,
    LLM_DHE_GPT2_MEDIUM,
    DheShape,
    dhe_latency,
    dhe_varied_shape,
    linear_scan_latency,
    lookup_latency,
    oram_access_bytes,
    oram_latency,
    varied_scale_factor,
    zerotrace_variant_factor,
)


class TestDheShape:
    def test_flops_formula(self):
        shape = DheShape(k=4, fc_sizes=(3,), out_dim=2)
        assert shape.flops_per_embedding() == 2 * (4 * 3 + 3 * 2)

    def test_parameter_count_includes_biases(self):
        shape = DheShape(k=4, fc_sizes=(3,), out_dim=2)
        assert shape.parameter_count() == (4 * 3 + 3) + (3 * 2 + 2)

    def test_paper_uniform_kaggle_memory(self):
        # Table VI: DHE Uniform Kaggle = 68.2 MB over 26 tables => ~2.6 MB.
        per_table_mb = DLRM_DHE_UNIFORM_16.parameter_bytes() / 2**20
        assert 2.2 < per_table_mb < 3.0

    def test_paper_llm_dhe_memory(self):
        # §VI-D3: DHE adds 56 MB to GPT-2 medium.
        mb = LLM_DHE_GPT2_MEDIUM.parameter_bytes() / 2**20
        assert 50 < mb < 62

    def test_scaled_reduces_parameters(self):
        shape = DheShape(k=1024, fc_sizes=(512, 256), out_dim=64)
        smaller = shape.scaled(0.25)
        assert smaller.parameter_count() < shape.parameter_count()

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            DLRM_DHE_UNIFORM_64.scaled(0.0)


class TestVariedScaling:
    def test_factor_one_at_base(self):
        assert varied_scale_factor(10**7) == 1.0
        assert varied_scale_factor(10**8) == 1.0

    def test_factor_eighth_per_decade(self):
        assert varied_scale_factor(10**6) == pytest.approx(0.125)
        assert varied_scale_factor(10**5) == pytest.approx(0.125 ** 2)

    def test_varied_shape_scales_k_only(self):
        varied = dhe_varied_shape(10**5, DLRM_DHE_UNIFORM_64)
        assert varied.fc_sizes == DLRM_DHE_UNIFORM_64.fc_sizes
        assert varied.k < DLRM_DHE_UNIFORM_64.k

    def test_k_floor(self):
        varied = dhe_varied_shape(10, DLRM_DHE_UNIFORM_64)
        assert varied.k == 128

    def test_monotone_in_table_size(self):
        ks = [dhe_varied_shape(n, DLRM_DHE_UNIFORM_64).k
              for n in (10**3, 10**5, 10**6, 10**7)]
        assert ks == sorted(ks)


class TestScanLatency:
    def test_linear_in_table_size(self):
        small = linear_scan_latency(10**6, 64, 32)
        large = linear_scan_latency(2 * 10**6, 64, 32)
        assert large == pytest.approx(2 * small, rel=0.01)

    def test_linear_in_batch(self):
        assert linear_scan_latency(10**6, 64, 64) == pytest.approx(
            2 * linear_scan_latency(10**6, 64, 32))

    def test_llc_to_dram_knee(self):
        # Crossing the LLC boundary slows the per-byte rate.
        per_byte_small = linear_scan_latency(10**4, 64, 1) / 10**4
        per_byte_large = linear_scan_latency(10**7, 64, 1) / 10**7
        assert per_byte_large > 2 * per_byte_small


class TestOramLatency:
    def test_grows_slowly_with_table_size(self):
        ratio = (oram_latency("circuit", 10**7, 64, 1)
                 / oram_latency("circuit", 10**4, 64, 1))
        assert 1.0 < ratio < 10.0  # polylog, not linear

    def test_path_slower_than_circuit(self):
        for n in (10**4, 10**6):
            assert oram_latency("path", n, 64, 1) > \
                oram_latency("circuit", n, 64, 1)

    def test_sequential_in_batch(self):
        assert oram_latency("circuit", 10**5, 64, 32) == pytest.approx(
            32 * oram_latency("circuit", 10**5, 64, 1))

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            oram_access_bytes("square", 100, 64)

    def test_recursion_adds_bytes(self):
        without = oram_access_bytes("circuit", 1 << 12, 64)
        with_recursion = oram_access_bytes("circuit", 1 << 13, 64)
        assert with_recursion > without


class TestCalibrationAnchors:
    """Spot checks against the paper's measured values."""

    def test_dhe_uniform_34us_per_embedding(self):
        per_embedding = dhe_latency(DLRM_DHE_UNIFORM_64, 32) / 32
        assert 25e-6 < per_embedding < 45e-6  # paper: ~34 us

    def test_circuit_1e7_access_near_45us(self):
        per_access = oram_latency("circuit", 10**7, 64, 1)
        assert 30e-6 < per_access < 90e-6

    def test_path_1e7_access_near_1ms(self):
        per_access = oram_latency("path", 10**7, 64, 1)
        assert 0.5e-3 < per_access < 2.5e-3

    def test_fig4_orderings_at_extremes(self):
        # Small table: scan beats everything.
        n = 100
        scan = linear_scan_latency(n, 64, 32)
        assert scan < oram_latency("circuit", n, 64, 32)
        assert scan < dhe_latency(DLRM_DHE_UNIFORM_64, 32)
        # Large table: scan is by far the worst; DHE beats Circuit.
        n = 10**7
        assert linear_scan_latency(n, 64, 32) > \
            100 * oram_latency("circuit", n, 64, 32)
        assert dhe_latency(DLRM_DHE_UNIFORM_64, 32) < \
            oram_latency("circuit", n, 64, 32)


class TestZeroTraceVariants:
    def test_opt_is_reference(self):
        assert zerotrace_variant_factor("path", "zt-gramine-opt") == 1.0

    def test_paper_reduction_chain(self):
        original = zerotrace_variant_factor("circuit", "zt-original")
        gramine = zerotrace_variant_factor("circuit", "zt-gramine")
        # Gramine = 60% reduction from original.
        assert gramine / original == pytest.approx(0.40, rel=1e-6)

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            zerotrace_variant_factor("path", "zt-fast")


class TestLookupLatency:
    def test_far_below_secure_methods(self):
        assert lookup_latency(10**6, 64, 32) < \
            0.01 * linear_scan_latency(10**6, 64, 32)
