"""Platform model tests: rates, saturation, thread scaling."""

import pytest

from repro.costmodel.platform import DEFAULT_PLATFORM


class TestFlopRate:
    def test_increases_with_batch(self):
        p = DEFAULT_PLATFORM
        assert p.flop_rate(1) < p.flop_rate(8) < p.flop_rate(256)

    def test_saturates(self):
        p = DEFAULT_PLATFORM
        assert p.flop_rate(10_000) <= p.flops_large_batch

    def test_threads_sublinear(self):
        p = DEFAULT_PLATFORM
        assert p.flop_rate(32, threads=16) < 16 * p.flop_rate(32, threads=1)
        assert p.flop_rate(32, threads=16) > 8 * p.flop_rate(32, threads=1)

    def test_threads_capped_at_cores(self):
        p = DEFAULT_PLATFORM
        assert p.flop_rate(32, threads=p.cores) == \
            p.flop_rate(32, threads=p.cores * 4)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            DEFAULT_PLATFORM.flop_rate(0)


class TestScanBandwidth:
    def test_llc_faster_than_dram(self):
        p = DEFAULT_PLATFORM
        assert p.scan_bandwidth(1024) > p.scan_bandwidth(p.llc_bytes + 1)

    def test_dram_bandwidth_saturates(self):
        p = DEFAULT_PLATFORM
        big = p.llc_bytes * 10
        assert p.scan_bandwidth(big, threads=p.cores) <= p.dram_total_bw

    def test_scan_threads_scale_linearly_up_to_cores(self):
        p = DEFAULT_PLATFORM
        assert p.scan_bandwidth(1024, threads=4) == pytest.approx(
            4 * p.scan_bandwidth(1024, threads=1))


class TestCalibration:
    """The back-solved constants of the paper (see module docstring)."""

    def test_scan_dram_near_nine_gbs(self):
        assert 7e9 < DEFAULT_PLATFORM.scan_dram_bw < 11e9

    def test_epc_is_64gb(self):
        assert DEFAULT_PLATFORM.epc_bytes == 64 * 1024 ** 3

    def test_platform_matches_table_iii(self):
        p = DEFAULT_PLATFORM
        assert p.cores == 28
        assert p.smt_threads == 56
        assert p.llc_bytes == 42 * 1024 * 1024
