"""LLM inference cost-model tests (Fig 15 mechanisms)."""

import pytest

from repro.costmodel.llm import (
    GPT2_MEDIUM,
    decode_step_latency,
    embedding_stage_latency,
    generation_latency,
    prefill_latency,
    stage_latency,
)


class TestLlmShape:
    def test_gpt2_medium_param_count(self):
        # GPT-2 medium non-embedding params ~ 300M.
        params = GPT2_MEDIUM.non_embedding_params
        assert 280e6 < params < 330e6

    def test_kv_bytes(self):
        assert GPT2_MEDIUM.kv_bytes_per_token() == 2 * 24 * 1024 * 4

    def test_dhe_shape_is_2x_dim(self):
        shape = GPT2_MEDIUM.dhe_shape()
        assert shape.k == 2048
        assert shape.fc_sizes == (2048, 2048, 2048)


class TestPrefill:
    def test_scales_with_tokens(self):
        short = prefill_latency(GPT2_MEDIUM, 1, 128)
        long = prefill_latency(GPT2_MEDIUM, 1, 256)
        assert long > 1.8 * short

    def test_paper_anchor_batch1(self):
        """Paper non-secure TTFT = 183.7 ms; accept the right decade."""
        ttft = stage_latency("lookup", "prefill", GPT2_MEDIUM, 1, 256)
        assert 0.08 < ttft < 0.8


class TestDecode:
    def test_paper_anchor_batch1(self):
        """Paper non-secure TBT = 37.2 ms at batch 1."""
        tbt = stage_latency("lookup", "decode", GPT2_MEDIUM, 1, 256)
        assert 0.02 < tbt < 0.08

    def test_grows_with_batch(self):
        one = decode_step_latency(GPT2_MEDIUM, 1, 256)
        twelve = decode_step_latency(GPT2_MEDIUM, 12, 256)
        assert twelve > 1.5 * one

    def test_grows_with_context(self):
        assert decode_step_latency(GPT2_MEDIUM, 8, 1024) > \
            decode_step_latency(GPT2_MEDIUM, 8, 128)


class TestTechniqueComparisons:
    def test_dhe_beats_circuit_on_prefill(self):
        for batch in (1, 8, 12):
            dhe = stage_latency("dhe", "prefill", GPT2_MEDIUM, batch, 256)
            circuit = stage_latency("circuit", "prefill", GPT2_MEDIUM,
                                    batch, 256)
            assert dhe < circuit

    def test_decode_batch1_nearly_tied(self):
        """Paper: Circuit edges DHE by ~1% at batch-1 decode."""
        dhe = stage_latency("dhe", "decode", GPT2_MEDIUM, 1, 256)
        circuit = stage_latency("circuit", "decode", GPT2_MEDIUM, 1, 256)
        assert abs(dhe - circuit) < 0.1 * circuit

    def test_dhe_beats_circuit_at_batched_decode(self):
        dhe = stage_latency("dhe", "decode", GPT2_MEDIUM, 12, 256)
        circuit = stage_latency("circuit", "decode", GPT2_MEDIUM, 12, 256)
        assert dhe < circuit

    def test_dhe_overhead_over_nonsecure_small(self):
        """Paper: DHE end-to-end overhead 2-5% over non-secure."""
        for batch in (1, 8):
            secure = generation_latency("dhe", GPT2_MEDIUM, batch,
                                        prompt_tokens=256, new_tokens=16)
            plain = generation_latency("lookup", GPT2_MEDIUM, batch,
                                       prompt_tokens=256, new_tokens=16)
            overhead = (secure - plain) / plain
            assert 0 <= overhead < 0.15

    def test_path_oram_is_worst_secure_option(self):
        for stage in ("prefill", "decode"):
            path = stage_latency("path", stage, GPT2_MEDIUM, 8, 256)
            circuit = stage_latency("circuit", stage, GPT2_MEDIUM, 8, 256)
            assert path > circuit

    def test_unknown_technique(self):
        with pytest.raises(ValueError):
            embedding_stage_latency("magic", GPT2_MEDIUM, 8)

    def test_unknown_stage(self):
        with pytest.raises(ValueError):
            stage_latency("dhe", "sampling", GPT2_MEDIUM, 8)
