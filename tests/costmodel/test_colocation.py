"""Co-location contention model tests (Figs 8/9/13 mechanisms)."""

import pytest

from repro.costmodel.colocation import (
    colocated_latencies,
    dhe_demand,
    oram_demand,
    scan_demand,
    throughput_inferences_per_second,
)
from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.costmodel.platform import DEFAULT_PLATFORM


class TestDemands:
    def test_scan_large_table_is_bandwidth_hungry(self):
        demand = scan_demand(10**7, 64, 32)
        assert demand.bandwidth_bytes > 0
        assert demand.llc_bytes == 0  # streams; no residency at stake

    def test_scan_small_table_wants_llc(self):
        demand = scan_demand(1000, 64, 32)
        assert demand.llc_bytes == 1000 * 64 * 4

    def test_dhe_mostly_compute(self):
        dhe = dhe_demand(DLRM_DHE_UNIFORM_64, 32)
        scan = scan_demand(10**7, 64, 32)
        assert dhe.bandwidth_bytes < 0.01 * scan.bandwidth_bytes

    def test_oram_demand_positive(self):
        demand = oram_demand("circuit", 10**6, 64, 32)
        assert demand.solo_latency > 0
        assert demand.bandwidth_bytes > 0


class TestColocatedLatencies:
    def test_empty(self):
        assert colocated_latencies([]) == []

    def test_single_tenant_is_solo(self):
        demand = dhe_demand(DLRM_DHE_UNIFORM_64, 32)
        assert colocated_latencies([demand])[0] == \
            pytest.approx(demand.solo_latency)

    def test_scan_degrades_faster_than_dhe(self):
        copies = 24
        scan = scan_demand(10**7, 64, 32)
        dhe = dhe_demand(DLRM_DHE_UNIFORM_64, 32)
        scan_dilation = (colocated_latencies([scan] * copies)[0]
                         / scan.solo_latency)
        dhe_dilation = (colocated_latencies([dhe] * copies)[0]
                        / dhe.solo_latency)
        assert scan_dilation > dhe_dilation

    def test_core_oversubscription_dilates_everyone(self):
        cores = DEFAULT_PLATFORM.cores
        demand = dhe_demand(DLRM_DHE_UNIFORM_64, 32)
        at_cores = colocated_latencies([demand] * cores)[0]
        over = colocated_latencies([demand] * (2 * cores))[0]
        assert over > 1.8 * at_cores

    def test_llc_pressure_hits_resident_scans(self):
        # Each tenant wants 8 MB resident; 24 of them far exceed 42 MB.
        demand = scan_demand(32_000, 64, 32)
        solo = demand.solo_latency
        crowded = colocated_latencies([demand] * 24)[0]
        assert crowded > 1.5 * solo


class TestThroughput:
    def test_additive_when_uncontended(self):
        demand = dhe_demand(DLRM_DHE_UNIFORM_64, 32)
        one = throughput_inferences_per_second([demand], 32)
        four = throughput_inferences_per_second([demand] * 4, 32)
        assert four == pytest.approx(4 * one, rel=0.01)
