"""Ring ORAM entries in the cost model + the RingOramEmbedding generator."""

import numpy as np

from repro.costmodel.latency import oram_access_bytes, oram_latency
from repro.costmodel.memory import tree_oram_bytes
from repro.embedding import RingOramEmbedding


class TestRingLatencyModel:
    def test_between_circuit_and_path(self):
        for rows in (10**4, 10**6):
            ring = oram_latency("ring", rows, 64, 1)
            circuit = oram_latency("circuit", rows, 64, 1)
            path = oram_latency("path", rows, 64, 1)
            assert circuit < ring < path

    def test_polylog_growth(self):
        ratio = (oram_access_bytes("ring", 10**7, 64)
                 / oram_access_bytes("ring", 10**4, 64))
        assert 1.0 < ratio < 10.0


class TestRingMemoryModel:
    def test_dummies_cost_memory(self):
        ring = tree_oram_bytes(10**5, 64, scheme="ring")
        path = tree_oram_bytes(10**5, 64, scheme="path")
        assert ring > 1.5 * path


class TestRingOramEmbedding:
    def test_generator_roundtrip(self, rng):
        weights = rng.normal(size=(48, 8))
        generator = RingOramEmbedding(48, 8, weight=weights, rng=1)
        indices = np.array([0, 47, 13, 13])
        np.testing.assert_allclose(generator.generate(indices),
                                   weights[indices])

    def test_flags_and_accounting(self):
        generator = RingOramEmbedding(48, 8, rng=0)
        assert generator.is_oblivious
        assert generator.technique == "ring-oram"
        assert generator.modelled_latency(8) > 0
        assert generator.footprint_bytes() > 48 * 8 * 4
