"""EPC-capacity arguments (§II-B, §VI-B4): what fits where."""

import pytest

from repro.costmodel import DLRM_DHE_UNIFORM_64
from repro.costmodel.platform import CLIENT_SGX_PLATFORM, DEFAULT_PLATFORM
from repro.data import TERABYTE_SPEC
from repro.metrics.footprint import dlrm_embedding_footprints


@pytest.fixture(scope="module")
def terabyte_report():
    return dlrm_embedding_footprints(TERABYTE_SPEC.table_sizes, 64,
                                     DLRM_DHE_UNIFORM_64,
                                     hybrid_threshold=3300)


class TestScalableSgx:
    def test_single_table_model_fits(self, terabyte_report):
        assert terabyte_report.table < DEFAULT_PLATFORM.epc_bytes

    def test_oram_model_fits_but_barely_scales(self, terabyte_report):
        epc = DEFAULT_PLATFORM.epc_bytes
        assert terabyte_report.tree_oram < epc
        # Co-locating even two ORAM Terabyte models exceeds the EPC...
        assert 2 * terabyte_report.tree_oram > epc / 2
        # ...while thousands of hybrid models fit (§VI-B2's claim).
        assert epc // terabyte_report.hybrid_varied > 1000


class TestClientSgx:
    def test_obsolete_edition_cannot_hold_the_table(self, terabyte_report):
        epc = CLIENT_SGX_PLATFORM.epc_bytes
        assert terabyte_report.table > epc
        assert terabyte_report.tree_oram > epc

    def test_dhe_model_fits_even_there(self, terabyte_report):
        assert terabyte_report.hybrid_varied < CLIENT_SGX_PLATFORM.epc_bytes
