"""ScatterGatherEngine: cross-shard joins, deadlines, and failover."""

import numpy as np
import pytest

from repro.cluster.placement import ShardPlanner
from repro.cluster.router import ShardRouter
from repro.cluster.scatter import ClusterUnavailableError, ScatterGatherEngine
from repro.costmodel.latency import DLRM_DHE_UNIFORM_64, MLP_OVERHEAD_SECONDS
from repro.data import TERABYTE_SPEC
from repro.resilience.dispatch import ResilientDispatcher
from repro.resilience.retry import RetryPolicy
from repro.serving import BatchingPolicy, ExecutionEngine
from repro.serving.requests import RequestQueue

from .conftest import BATCH, DIM

SIZES = TERABYTE_SPEC.table_sizes


def make_engine(thresholds, config, nodes=4, replication=2, **kwargs):
    plan = ShardPlanner(nodes, thresholds, DIM,
                        uniform_shape=DLRM_DHE_UNIFORM_64
                        ).plan(SIZES, config)
    router = ShardRouter(nodes, replication=replication, plan=plan)
    return ScatterGatherEngine(SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds,
                               router, retry=RetryPolicy(
                                   deadline_seconds=0.500), **kwargs)


@pytest.fixture
def arrivals():
    return RequestQueue.poisson(128, 2000.0, rng=3)


@pytest.fixture
def policy():
    return BatchingPolicy(max_batch_size=BATCH, max_wait_seconds=0.002)


class TestGather:
    def test_every_request_answered_once(self, thresholds, config, arrivals,
                                         policy):
        result = make_engine(thresholds, config).serve(config, arrivals,
                                                       policy)
        assert result.num_requests == len(arrivals)
        assert result.report.latencies.shape == (len(arrivals),)
        assert result.shed_requests == 0
        assert result.availability == 1.0

    def test_latency_is_slowest_shard_plus_front_end(self, thresholds,
                                                     config, arrivals,
                                                     policy):
        engine = make_engine(thresholds, config)
        result = engine.serve(config, arrivals, policy)
        nodes = sorted(result.shard_reports)
        stacked = np.stack([result.shard_reports[n].latencies
                            for n in nodes])
        overhead = MLP_OVERHEAD_SECONDS + engine.gather_overhead_seconds * \
            len(nodes)
        np.testing.assert_allclose(result.report.latencies,
                                   stacked.max(axis=0) + overhead)

    def test_feature_counts_partition_the_model(self, thresholds, config,
                                                arrivals, policy):
        result = make_engine(thresholds, config).serve(config, arrivals,
                                                       policy)
        single = ExecutionEngine(SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds)
        scans, dhes = single.allocation_counts(config)
        assert result.report.scan_features == scans
        assert result.report.dhe_features == dhes

    def test_fleet_report_merges_all_shards(self, thresholds, config,
                                            arrivals, policy):
        result = make_engine(thresholds, config).serve(config, arrivals,
                                                       policy)
        assert result.fleet.num_requests == 4 * len(arrivals)
        assert result.fleet.batch_time_total == pytest.approx(
            sum(r.batch_time_total for r in result.shard_reports.values()))

    def test_sharding_beats_single_node_capacity(self, thresholds, config,
                                                 arrivals, policy):
        single = make_engine(thresholds, config, nodes=1, replication=1)
        sharded = make_engine(thresholds, config, nodes=4)
        a = single.serve(config, arrivals, policy)
        b = sharded.serve(config, arrivals, policy)
        assert b.capacity_rps > 2.0 * a.capacity_rps
        assert b.report.p99 < a.report.p99

    def test_deterministic_given_trace(self, thresholds, config, policy):
        engine = make_engine(thresholds, config)
        a = engine.serve(config, RequestQueue.poisson(64, 2000.0, rng=9),
                         policy)
        b = engine.serve(config, RequestQueue.poisson(64, 2000.0, rng=9),
                         policy)
        assert a.to_dict(sla_seconds=0.02) == b.to_dict(sla_seconds=0.02)


class TestDeadlines:
    def test_tight_deadline_sheds_and_censors(self, thresholds, config,
                                              arrivals, policy):
        plan = ShardPlanner(1, thresholds, DIM,
                            uniform_shape=DLRM_DHE_UNIFORM_64
                            ).plan(SIZES, config)
        router = ShardRouter(1, replication=1, plan=plan)
        engine = ScatterGatherEngine(
            SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds, router,
            retry=RetryPolicy(deadline_seconds=0.010))
        result = engine.serve(config, arrivals, policy)
        assert result.shed_requests > 0
        assert result.availability < 1.0
        assert result.report.latencies.max() <= 0.010 + 1e-12

    def test_deadline_composes_from_retry_policy(self, thresholds, config):
        engine = make_engine(thresholds, config)
        assert engine.retry.deadline_seconds == 0.500
        result = engine.serve(config,
                              RequestQueue.poisson(32, 2000.0, rng=1))
        assert result.deadline_seconds == 0.500


class TestFailover:
    def test_kill_one_node_of_r2_loses_zero_requests(self, thresholds,
                                                     config, arrivals,
                                                     policy):
        """ISSUE 4 acceptance: killing one node at replication 2 must lose
        nothing — the router fails over through the dispatcher."""
        dispatcher = ResilientDispatcher(num_replicas=4)
        dispatcher.mark_down(0, until_seconds=1e9, now_seconds=0.0)
        plan = ShardPlanner(4, thresholds, DIM,
                            uniform_shape=DLRM_DHE_UNIFORM_64
                            ).plan(SIZES, config)
        router = ShardRouter(4, replication=2, plan=plan)
        engine = ScatterGatherEngine(
            SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds, router,
            retry=RetryPolicy(deadline_seconds=0.500),
            dispatcher=dispatcher)
        result = engine.serve(config, arrivals, policy)
        assert result.unroutable_tables == ()
        assert result.shed_requests == 0
        assert result.availability == 1.0
        assert result.num_shards == 3
        assert 0 not in result.assignment

    def test_whole_fleet_down_raises(self, thresholds, config, arrivals):
        dispatcher = ResilientDispatcher(num_replicas=2)
        for node in range(2):
            dispatcher.mark_down(node, until_seconds=1e9, now_seconds=0.0)
        engine = make_engine(thresholds, config, nodes=2,
                             dispatcher=dispatcher)
        with pytest.raises(ClusterUnavailableError):
            engine.serve(config, arrivals)

    def test_unreplicated_kill_sheds_everything(self, thresholds, config,
                                                arrivals, policy):
        # R=1 and a dead node: its tables are unroutable, every request is
        # missing embeddings, and the whole trace is shed at the deadline.
        dispatcher = ResilientDispatcher(num_replicas=4)
        dispatcher.mark_down(0, until_seconds=1e9, now_seconds=0.0)
        plan = ShardPlanner(4, thresholds, DIM,
                            uniform_shape=DLRM_DHE_UNIFORM_64
                            ).plan(SIZES, config)
        router = ShardRouter(4, replication=1, plan=plan)
        engine = ScatterGatherEngine(
            SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds, router,
            retry=RetryPolicy(deadline_seconds=0.500),
            dispatcher=dispatcher)
        result = engine.serve(config, arrivals, policy)
        assert len(result.unroutable_tables) > 0
        assert result.shed_requests == result.num_requests
        assert result.availability == 0.0


class TestValidation:
    def test_empty_table_set_rejected(self, thresholds):
        router = ShardRouter(1)
        with pytest.raises(ValueError, match="at least one table"):
            ScatterGatherEngine((), DIM, DLRM_DHE_UNIFORM_64, thresholds,
                                router)

    def test_policy_validated_against_retry(self, thresholds, config,
                                            arrivals):
        engine = make_engine(thresholds, config)
        bad_policy = BatchingPolicy(max_batch_size=BATCH,
                                    max_wait_seconds=1.0)
        with pytest.raises(ValueError):
            engine.serve(config, arrivals, bad_policy)


class TestAllShedGuards:
    def _all_shed_result(self, thresholds, config):
        # a deadline far below one batch latency sheds every request
        plan = ShardPlanner(4, thresholds, DIM,
                            uniform_shape=DLRM_DHE_UNIFORM_64
                            ).plan(SIZES, config)
        router = ShardRouter(4, replication=2, plan=plan)
        engine = ScatterGatherEngine(
            SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds, router,
            retry=RetryPolicy(deadline_seconds=0.001))
        return engine.serve(config, RequestQueue.poisson(64, 2000.0, rng=2))

    def test_throughput_is_zero_when_everything_sheds(self, thresholds,
                                                      config):
        result = self._all_shed_result(thresholds, config)
        assert result.shed_requests == result.num_requests > 0
        assert result.availability == 0.0
        assert result.cluster_throughput() == 0.0
        assert result.capacity_rps > 0.0  # capacity is a property of the
        # topology, not of this (entirely shed) trace

    def test_all_shed_report_is_nan_free(self, thresholds, config):
        import json

        result = self._all_shed_result(thresholds, config)
        payload = result.to_dict(sla_seconds=0.020)
        text = json.dumps(payload, allow_nan=False)  # raises on NaN/inf
        assert "NaN" not in text
        assert payload["sla_attainment"] == 0.0
        assert payload["p99_seconds"] <= 0.001 + 1e-12


class TestZeroCapacityEdge:
    """ISSUE 8 satellite: a zero-capacity cell must never divide."""

    def _zero_capacity(self, thresholds, config, arrivals, policy):
        import dataclasses

        result = make_engine(thresholds, config).serve(config, arrivals,
                                                       policy)
        return dataclasses.replace(result, capacity_rps=0.0)

    def test_utilisation_is_zero_not_inf(self, thresholds, config, arrivals,
                                         policy):
        result = self._zero_capacity(thresholds, config, arrivals, policy)
        assert result.utilisation(8000.0) == 0.0
        assert result.utilisation(0.0) == 0.0
        assert result.utilisation(-1.0) == 0.0

    def test_to_dict_survives_allow_nan_false(self, thresholds, config,
                                              arrivals, policy):
        import json

        result = self._zero_capacity(thresholds, config, arrivals, policy)
        json.dumps(result.to_dict(sla_seconds=0.020), allow_nan=False)

    def test_infinite_deadline_serialises_as_none(self, thresholds, config,
                                                  arrivals, policy):
        import dataclasses
        import json
        import math

        result = make_engine(thresholds, config).serve(config, arrivals,
                                                       policy)
        free = dataclasses.replace(result, deadline_seconds=math.inf)
        payload = free.to_dict()
        json.dumps(payload, allow_nan=False)
        assert payload["deadline_seconds"] is None


class TestMergeCounters:
    """ISSUE 8 satellite: autoscale counters SUM under merge."""

    def _intervals(self, thresholds, config, policy, count=3):
        engine = make_engine(thresholds, config)
        return [engine.serve(config,
                             RequestQueue.poisson(32, 2000.0, rng=i),
                             policy)
                for i in range(count)]

    def test_event_counters_sum_never_average(self, thresholds, config,
                                              policy):
        from repro.cluster.scatter import ClusterServingReport

        intervals = self._intervals(thresholds, config, policy)
        intervals[0].scale_up_events = 2
        intervals[1].scale_up_events = 1
        intervals[1].scale_down_events = 1
        intervals[2].heal_events = 3
        merged = ClusterServingReport.merge(intervals)
        assert merged.scale_up_events == 3
        assert merged.scale_down_events == 1
        assert merged.heal_events == 3
        digest = merged.to_dict()
        assert digest["scale_up_events"] == 3
        assert digest["heal_events"] == 3

    def test_requests_and_sheds_sum(self, thresholds, config, policy):
        from repro.cluster.scatter import ClusterServingReport

        intervals = self._intervals(thresholds, config, policy)
        merged = ClusterServingReport.merge(intervals)
        assert merged.num_requests == sum(r.num_requests for r in intervals)
        assert merged.shed_requests == sum(r.shed_requests
                                           for r in intervals)

    def test_capacity_is_peak_and_zero_merges_cleanly(self, thresholds,
                                                      config, policy):
        import dataclasses
        import json

        from repro.cluster.scatter import ClusterServingReport

        intervals = self._intervals(thresholds, config, policy, count=2)
        dead = dataclasses.replace(intervals[0], capacity_rps=0.0)
        merged = ClusterServingReport.merge([dead, intervals[1]])
        assert merged.capacity_rps == intervals[1].capacity_rps
        json.dumps(merged.to_dict(sla_seconds=0.020), allow_nan=False)

    def test_merged_percentiles_are_union_percentiles(self, thresholds,
                                                      config, policy):
        import numpy as np

        from repro.cluster.scatter import ClusterServingReport

        intervals = self._intervals(thresholds, config, policy)
        merged = ClusterServingReport.merge(intervals)
        union = np.concatenate([r.report.latencies for r in intervals])
        assert merged.p99 == pytest.approx(
            float(np.percentile(union, 99.0)))

    def test_empty_merge_rejected(self):
        from repro.cluster.scatter import ClusterServingReport

        with pytest.raises(ValueError, match="at least one report"):
            ClusterServingReport.merge([])


class TestMergeHeterogeneousIntervals:
    """ISSUE 10 satellite: resilient intervals survive the fleet merge."""

    def _intervals(self, thresholds, config, policy, count=2):
        engine = make_engine(thresholds, config)
        return [engine.serve(config,
                             RequestQueue.poisson(32, 2000.0, rng=i),
                             policy)
                for i in range(count)]

    def test_resilient_interval_keeps_fault_counters(self, thresholds,
                                                     config, policy):
        import dataclasses

        from repro.cluster.scatter import ClusterServingReport
        from repro.resilience.report import ResilientServingReport

        intervals = self._intervals(thresholds, config, policy)
        lifted = ResilientServingReport.from_serving_report(
            intervals[0].report, attempts_total=9, retries_total=3,
            shed_requests=1)
        intervals[0] = dataclasses.replace(intervals[0], report=lifted)
        merged = ClusterServingReport.merge(intervals)
        assert isinstance(merged.report, ResilientServingReport)
        assert merged.report.attempts_total == 9
        assert merged.report.retries_total == 3
        assert merged.report.shed_requests == 1
        # the plain interval's latencies are still in the union
        assert merged.num_requests == sum(r.num_requests
                                          for r in intervals)
