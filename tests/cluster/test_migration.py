"""MigrationEngine: move-sets, double-serve, zero loss, and the audit."""

import numpy as np
import pytest

from repro.cluster.epoch import PlanEpoch
from repro.cluster.migration import (
    MIGRATION_REGION,
    HotFirstMigrationPlanner,
    MigrationEngine,
    MigrationPlanner,
    TransitioningOwnerMap,
    audit_migration,
    check_oblivious_migration,
    default_migration_workloads,
)
from repro.cluster.placement import PlacementLeakageError, RingPlanner
from repro.cluster.scatter import ScatterGatherEngine
from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC
from repro.oblivious.trace import MemoryTracer
from repro.resilience.degradation import DegradationLadder
from repro.resilience.retry import RetryPolicy
from repro.serving.batcher import BatchingPolicy
from repro.serving.requests import RequestQueue
from repro.telemetry.runtime import use_registry

from .conftest import BATCH, DIM

SIZES = TERABYTE_SPEC.table_sizes
NUM_TABLES = len(SIZES)


@pytest.fixture(scope="module")
def epochs(thresholds):
    """(source 4-node epoch, target 5-node epoch) at R=2, ring placement."""
    from repro.serving import ServingConfig

    config = ServingConfig(batch_size=BATCH, threads=1)
    planner = RingPlanner(4, thresholds, DIM,
                          uniform_shape=DLRM_DHE_UNIFORM_64)
    source = PlanEpoch.create(0, planner.plan(SIZES, config), replication=2)
    target = source.successor(planner.for_nodes(5).plan(SIZES, config))
    return source, target


@pytest.fixture
def migrator(epochs):
    return MigrationEngine(*epochs, step_size=4)


class TestMoveSet:
    def test_only_changed_owner_sets_move(self, epochs, migrator):
        source, target = epochs
        moved_ids = {move.table_id for move in migrator.move_set()}
        for table_id in range(NUM_TABLES):
            changed = (set(source.owners(table_id))
                       != set(target.owners(table_id)))
            assert (table_id in moved_ids) == changed

    def test_ring_reshard_is_incremental(self, migrator):
        # 4 -> 5 nodes at R=2: the ring promises ~ tables * R / 5 moves.
        assert len(migrator.move_set()) <= NUM_TABLES * 2 // 5 + 3

    def test_moves_price_new_copies_only(self, migrator, epochs):
        _, target = epochs
        for move in migrator.move_set():
            assert move.new_owners
            assert set(move.new_owners).isdisjoint(move.from_owners)
            assert move.bytes_modelled == \
                target.footprint_of(move.table_id) * len(move.new_owners)

    def test_identical_epochs_rejected(self, epochs):
        source, _ = epochs
        with pytest.raises(ValueError, match="must succeed"):
            MigrationEngine(source, source)


class TestPlanSteps:
    def test_steps_are_bounded_and_cover_move_set(self, migrator):
        steps = migrator.plan_steps()
        assert all(len(step.moves) <= 4 for step in steps)
        covered = [table_id for step in steps
                   for table_id in step.table_ids]
        assert sorted(covered) == sorted(
            move.table_id for move in migrator.move_set())
        assert len(covered) == len(set(covered))  # each table moves once

    def test_default_order_is_by_table_id(self, migrator):
        ordered = [table_id for step in migrator.plan_steps()
                   for table_id in step.table_ids]
        assert ordered == sorted(ordered)

    def test_trace_records_every_phase_per_step(self, migrator):
        tracer = MemoryTracer()
        steps = migrator.plan_steps(tracer=tracer)
        addresses = tracer.addresses(MIGRATION_REGION)
        assert len(addresses) == len(steps) * NUM_TABLES
        assert len(set(addresses)) == len(addresses)


class TestTransitioningOwnerMap:
    def test_phases_route_to_the_right_epoch(self, epochs, migrator):
        source, target = epochs
        steps = migrator.plan_steps()
        owner_map = migrator.owner_map_for(1, steps)
        for table_id in steps[0].table_ids:       # already moved
            assert owner_map.owners(table_id) == target.owners(table_id)
        for table_id in steps[1].table_ids:       # in flight: both sides
            owners = owner_map.owners(table_id)
            assert set(source.owners(table_id)) <= set(owners)
            assert set(target.owners(table_id)) <= set(owners)

    def test_in_flight_tables_are_double_served(self, epochs, migrator):
        source, target = epochs
        steps = migrator.plan_steps()
        doubly_held = 0
        for step in steps:
            owner_map = migrator.owner_map_for(step.index, steps)
            routed, unroutable = owner_map.assignment(NUM_TABLES)
            assert unroutable == []
            for table_id in step.table_ids:
                holders = {node for node, tables in routed.items()
                           if table_id in tables}
                # one serving copy per side, deduped when the first owner
                # did not change (only a secondary replica moved)
                expected = {source.owners(table_id)[0],
                            target.owners(table_id)[0]}
                assert holders == expected
                doubly_held += len(holders) == 2
        assert doubly_held > 0  # the reshard double-serves some tables

    def test_moved_and_in_flight_must_be_disjoint(self, epochs):
        source, target = epochs
        with pytest.raises(ValueError, match="both moved and in flight"):
            TransitioningOwnerMap(source, target,
                                  moved=frozenset({3}),
                                  in_flight=frozenset({3}))

    def test_final_map_matches_target_epoch(self, epochs, migrator):
        _, target = epochs
        owner_map = migrator.final_owner_map()
        for table_id in range(NUM_TABLES):
            assert owner_map.owners(table_id) == target.owners(table_id)


class TestExecute:
    def test_zero_loss_at_replication_two(self, epochs, migrator,
                                          thresholds, config):
        engine = ScatterGatherEngine(
            SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds,
            epochs[0].router, retry=RetryPolicy(deadline_seconds=0.5))
        arrivals = RequestQueue.poisson(96, 2000.0, rng=0)
        policy = BatchingPolicy(max_batch_size=BATCH,
                                max_wait_seconds=0.002)
        report = migrator.execute(engine, config, arrivals, policy)
        assert report.num_requests == 96
        assert report.shed_requests == 0
        assert report.unroutable_events == 0
        assert report.availability == 1.0
        assert report.num_steps == len(migrator.plan_steps())
        assert report.window_p99 > 0.0
        assert report.window_latencies.size == 96

    def test_execute_counts_telemetry(self, epochs, migrator,
                                      thresholds, config):
        engine = ScatterGatherEngine(
            SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds,
            epochs[0].router, retry=RetryPolicy(deadline_seconds=0.5))
        arrivals = RequestQueue.poisson(64, 2000.0, rng=1)
        with use_registry() as registry:
            report = migrator.execute(engine, config, arrivals)
            snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["cluster.migration.steps_total"] == report.num_steps
        assert counters["cluster.migration.tables_moved_total"] == \
            report.tables_moved
        assert counters["cluster.migration.shed_total"] == 0.0
        assert snapshot["gauges"][
            "cluster.migration.window_p99_seconds"] == report.window_p99


class TestBandwidthContention:
    """ISSUE 8: the copy traffic prices latency, not just bytes."""

    def test_multiplier_scales_with_overlap(self):
        from repro.cluster.migration import BandwidthContentionModel

        model = BandwidthContentionModel(
            copy_bandwidth_bytes_per_second=1e9, contention_weight=0.8)
        assert model.copy_seconds(5e8) == pytest.approx(0.5)
        # half the window occupied -> half the weight
        assert model.multiplier(int(5e8), 1.0) == pytest.approx(1.4)
        # copy longer than the window saturates at 1 + weight
        assert model.multiplier(int(4e9), 1.0) == pytest.approx(1.8)

    def test_zero_copy_is_free(self):
        from repro.cluster.migration import BandwidthContentionModel

        assert BandwidthContentionModel().multiplier(0, 1.0) == 1.0

    def test_zero_window_is_conservative(self):
        from repro.cluster.migration import BandwidthContentionModel

        model = BandwidthContentionModel(contention_weight=0.5)
        assert model.multiplier(1024, 0.0) == pytest.approx(1.5)

    def test_validation(self):
        from repro.cluster.migration import BandwidthContentionModel

        with pytest.raises(ValueError, match="copy_bandwidth"):
            BandwidthContentionModel(copy_bandwidth_bytes_per_second=0.0)
        with pytest.raises(ValueError, match="contention_weight"):
            BandwidthContentionModel(contention_weight=-0.1)

    def test_default_engine_is_contention_free(self, epochs, migrator,
                                               thresholds, config):
        # contention=None keeps PR 5's output bit-for-bit: the model is
        # opt-in, so existing migration reports do not shift.
        from repro.cluster.migration import BandwidthContentionModel

        engine = ScatterGatherEngine(
            SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds,
            epochs[0].router, retry=RetryPolicy(deadline_seconds=0.5))
        policy = BatchingPolicy(max_batch_size=BATCH,
                                max_wait_seconds=0.002)
        plain = migrator.execute(engine, config,
                                 RequestQueue.poisson(96, 2000.0, rng=0),
                                 policy)
        priced = MigrationEngine(
            *epochs, step_size=4,
            contention=BandwidthContentionModel()).execute(
                engine, config, RequestQueue.poisson(96, 2000.0, rng=0),
                policy)
        assert "contention_multiplier" not in plain.step_cells[0]
        assert plain.window_p99 <= priced.window_p99
        for cell in priced.step_cells:
            assert cell["contention_multiplier"] >= 1.0
            assert cell["copy_seconds"] >= 0.0
            assert "window_seconds" in cell

    def test_contention_inflates_service_not_queueing(self, epochs,
                                                      thresholds, config):
        # A fat pipe (fast copy) inflates less than a thin one.
        from repro.cluster.migration import BandwidthContentionModel

        engine = ScatterGatherEngine(
            SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds,
            epochs[0].router, retry=RetryPolicy(deadline_seconds=0.5))
        policy = BatchingPolicy(max_batch_size=BATCH,
                                max_wait_seconds=0.002)

        def run(bandwidth):
            migrator = MigrationEngine(
                *epochs, step_size=4,
                contention=BandwidthContentionModel(
                    copy_bandwidth_bytes_per_second=bandwidth))
            return migrator.execute(
                engine, config, RequestQueue.poisson(96, 2000.0, rng=0),
                policy)

        fat, thin = run(12.5e9), run(1e8)
        assert thin.window_p99 > fat.window_p99
        assert all(t["contention_multiplier"]
                   >= f["contention_multiplier"]
                   for t, f in zip(thin.step_cells, fat.step_cells))

    def test_inflated_past_deadline_is_shed_and_censored(self, epochs,
                                                         thresholds,
                                                         config):
        from repro.cluster.migration import BandwidthContentionModel

        engine = ScatterGatherEngine(
            SIZES, DIM, DLRM_DHE_UNIFORM_64, thresholds,
            epochs[0].router,
            retry=RetryPolicy(deadline_seconds=0.0105))
        policy = BatchingPolicy(max_batch_size=BATCH,
                                max_wait_seconds=0.002)
        arrivals = RequestQueue.poisson(96, 2000.0, rng=0)
        plain = MigrationEngine(*epochs, step_size=4).execute(
            engine, config, arrivals, policy)
        squeezed = MigrationEngine(
            *epochs, step_size=4,
            contention=BandwidthContentionModel(
                copy_bandwidth_bytes_per_second=1e8,
                contention_weight=5.0)).execute(
                    engine, config, arrivals, policy)
        assert squeezed.shed_requests > plain.shed_requests
        assert squeezed.window_latencies.max() <= 0.0105 + 1e-12

    def test_override_moves_must_reference_placed_tables(self, epochs):
        from repro.cluster.migration import TableMove

        bogus = TableMove(table_id=NUM_TABLES, from_owners=(0,),
                          to_owners=(1,), new_owners=(1,),
                          bytes_modelled=1)
        with pytest.raises(ValueError, match="outside"):
            MigrationEngine(*epochs, moves=[bogus])


class TestMigrationAudit:
    def test_compliant_planner_passes(self, migrator):
        finding = check_oblivious_migration(migrator)
        assert finding.passed
        assert not finding.leak_detected

    def test_hot_first_planner_is_caught(self, epochs):
        hot = MigrationEngine(*epochs, step_size=1,
                              planner=HotFirstMigrationPlanner())
        with pytest.raises(PlacementLeakageError, match="hot-first"):
            check_oblivious_migration(hot)

    def test_hot_first_expected_leaky_subject_passes(self, epochs):
        hot = MigrationEngine(*epochs, step_size=1,
                              planner=HotFirstMigrationPlanner())
        finding = audit_migration(hot, expect_oblivious=False)
        assert finding.leak_detected
        assert finding.passed

    def test_default_workloads_key_on_move_set(self, migrator):
        move_ids = sorted(move.table_id
                          for move in migrator.move_set())
        head, tail, uniform = default_migration_workloads(
            NUM_TABLES, move_ids)
        assert set(head) == {move_ids[0]}
        assert set(tail) == {move_ids[-1]}
        assert len(set(uniform)) == NUM_TABLES


class TestDegradeInFlight:
    def test_mid_move_degradation_counted_exactly_once(self, migrator):
        table_id = migrator.move_set()[0].table_id
        ladder = DegradationLadder(table_size=SIZES[table_id])
        with use_registry() as registry:
            event = migrator.degrade_in_flight(table_id, ladder,
                                               cause="hot-shard",
                                               batch_index=2)
            snapshot = registry.snapshot()
        assert event is not None
        assert ladder.degradations == 1
        # one logical event: the ladder steps once and both the ladder's
        # counter and the migration counter record exactly one transition,
        # even though the table is materialised on two owners mid-move.
        assert snapshot["counters"][
            "resilience.degradations_total"] == 1.0
        assert snapshot["counters"][
            "cluster.migration.degradations_total"] == 1.0

    def test_table_outside_move_set_rejected(self, epochs, migrator):
        source, target = epochs
        stationary = next(
            table_id for table_id in range(NUM_TABLES)
            if set(source.owners(table_id)) == set(target.owners(table_id)))
        ladder = DegradationLadder(table_size=SIZES[stationary])
        with pytest.raises(ValueError, match="not part of this migration"):
            migrator.degrade_in_flight(stationary, ladder, cause="noise")


class TestCustomStepSize:
    def test_step_size_one_serialises_moves(self, epochs):
        single = MigrationEngine(*epochs, step_size=1)
        steps = single.plan_steps()
        assert all(len(step.moves) == 1 for step in steps)
        assert len(steps) == len(single.move_set())

    def test_step_size_must_be_positive(self, epochs):
        with pytest.raises(ValueError, match="step_size"):
            MigrationEngine(*epochs, step_size=0)


class TestCustomPlannerContract:
    def test_base_planner_ignores_workload(self, migrator):
        moves = migrator.move_set()
        planner = MigrationPlanner()
        hot_order = planner.move_order(moves, workload=[moves[-1].table_id] * 32)
        cold_order = planner.move_order(moves, workload=None)
        assert [m.table_id for m in hot_order] == \
            [m.table_id for m in cold_order]

    def test_hot_first_reorders_by_heat(self, migrator):
        moves = migrator.move_set()
        hottest = moves[-1].table_id
        order = HotFirstMigrationPlanner().move_order(
            moves, workload=[hottest] * 32)
        assert order[0].table_id == hottest
