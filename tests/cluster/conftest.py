"""Shared fixtures for the cluster tests: one profiled threshold DB."""

import pytest

from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.hybrid import OfflineProfiler, build_threshold_database
from repro.serving import ServingConfig

DIM = 64
BATCH = 32


@pytest.fixture(scope="package")
def thresholds():
    profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
    profile = profiler.profile(techniques=("scan", "dhe-varied"),
                               dims=(DIM,), batches=(BATCH,),
                               threads_list=(1,))
    return build_threshold_database(profile, dhe_technique="dhe-varied",
                                    dims=(DIM,), batches=(BATCH,),
                                    threads_list=(1,))


@pytest.fixture
def config():
    return ServingConfig(batch_size=BATCH, threads=1)
