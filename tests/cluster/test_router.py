"""ShardRouter: consistent hashing, replication, and failover routing."""

import pytest

from repro.cluster.placement import ShardPlanner
from repro.cluster.router import ShardRouter, replica_table_sets, ring_hash
from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC
from repro.resilience.dispatch import ResilientDispatcher

from .conftest import DIM

SIZES = TERABYTE_SPEC.table_sizes
NUM_TABLES = len(SIZES)


class TestRingHash:
    def test_deterministic(self):
        assert ring_hash("table-3") == ring_hash("table-3")

    def test_spreads_keys(self):
        assert len({ring_hash(f"table-{i}") for i in range(100)}) == 100


class TestOwnership:
    def test_replica_sets_are_distinct_nodes(self):
        router = ShardRouter(4, replication=3)
        for table_id in range(NUM_TABLES):
            owners = router.owners(table_id)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_replication_cannot_exceed_nodes(self):
        with pytest.raises(ValueError, match="exceeds num_nodes"):
            ShardRouter(2, replication=3)

    def test_plan_primary_leads_owner_set(self, thresholds, config):
        plan = ShardPlanner(4, thresholds, DIM,
                            uniform_shape=DLRM_DHE_UNIFORM_64
                            ).plan(SIZES, config)
        router = ShardRouter(4, replication=2, plan=plan)
        for table_id in range(NUM_TABLES):
            assert router.owners(table_id)[0] == plan.node_of(table_id)

    def test_plan_node_count_mismatch(self, thresholds, config):
        plan = ShardPlanner(2, thresholds, DIM,
                            uniform_shape=DLRM_DHE_UNIFORM_64
                            ).plan(SIZES, config)
        with pytest.raises(ValueError, match="plan places onto"):
            ShardRouter(4, replication=2, plan=plan)

    def test_consistent_hashing_is_incremental(self):
        # Adding a node must only remap tables onto the new node, never
        # shuffle tables between surviving nodes.
        before = ShardRouter(4, replication=1)
        after = ShardRouter(5, replication=1)
        moved = 0
        for table_id in range(NUM_TABLES):
            old, new = before.owners(table_id)[0], after.owners(table_id)[0]
            if old != new:
                moved += 1
                assert new == 4
        assert moved < NUM_TABLES


class TestRouting:
    def test_routes_to_primary_without_dispatcher(self):
        router = ShardRouter(4, replication=2)
        for table_id in range(NUM_TABLES):
            assert router.route(table_id) == router.owners(table_id)[0]

    def test_fails_over_to_replica_when_primary_down(self):
        router = ShardRouter(4, replication=2)
        dispatcher = ResilientDispatcher(num_replicas=4)
        victim = router.owners(0)[0]
        dispatcher.mark_down(victim, until_seconds=1e9, now_seconds=0.0)
        routed = router.route(0, now_seconds=0.0, dispatcher=dispatcher)
        assert routed == router.owners(0)[1]

    def test_route_none_when_all_owners_down(self):
        router = ShardRouter(2, replication=2)
        dispatcher = ResilientDispatcher(num_replicas=2)
        for node in range(2):
            dispatcher.mark_down(node, until_seconds=1e9, now_seconds=0.0)
        assert router.route(0, now_seconds=0.0,
                            dispatcher=dispatcher) is None

    def test_assignment_partitions_routable_tables(self):
        router = ShardRouter(4, replication=2)
        routed, unroutable = router.assignment(NUM_TABLES)
        assert unroutable == []
        flat = sorted(t for tables in routed.values() for t in tables)
        assert flat == list(range(NUM_TABLES))

    def test_assignment_with_one_node_down_loses_nothing(self):
        router = ShardRouter(4, replication=2)
        dispatcher = ResilientDispatcher(num_replicas=4)
        dispatcher.mark_down(0, until_seconds=1e9, now_seconds=0.0)
        routed, unroutable = router.assignment(NUM_TABLES, 0.0, dispatcher)
        assert unroutable == []
        assert 0 not in routed
        flat = sorted(t for tables in routed.values() for t in tables)
        assert flat == list(range(NUM_TABLES))


class TestProvisioning:
    def test_replica_table_sets_cover_replication_factor(self):
        router = ShardRouter(4, replication=2)
        holdings = replica_table_sets(router, SIZES)
        total = sum(len(tables) for tables in holdings.values())
        assert total == 2 * NUM_TABLES

    def test_ownership_counts_match_holdings(self):
        router = ShardRouter(4, replication=2)
        holdings = replica_table_sets(router, SIZES)
        counts = router.ownership_counts(NUM_TABLES)
        assert [len(holdings[node]) for node in range(4)] == counts

    def test_to_dict_includes_owner_map(self):
        digest = ShardRouter(2, replication=2).to_dict(num_tables=4)
        assert digest["replication"] == 2
        assert len(digest["owners"]) == 4


class TestOwnersMemoisation:
    def test_memoized_owners_match_ring_walk(self):
        # the cache must be a pure speedup: every table's memoized owner
        # set equals the unmemoized ring walk
        router = ShardRouter(4, replication=2)
        for table_id in range(NUM_TABLES):
            assert router.owners_for(table_id) == \
                router._compute_owners(table_id)

    def test_memoized_owners_match_with_plan_primary(self, thresholds,
                                                     config):
        plan = ShardPlanner(4, thresholds, DIM,
                            uniform_shape=DLRM_DHE_UNIFORM_64
                            ).plan(SIZES, config)
        router = ShardRouter(4, replication=2, plan=plan)
        for table_id in range(NUM_TABLES):
            assert router.owners_for(table_id) == \
                router._compute_owners(table_id)

    def test_cache_fills_once_per_table(self):
        router = ShardRouter(4, replication=2)
        for _ in range(3):
            for table_id in range(NUM_TABLES):
                router.owners_for(table_id)
        assert len(router._owners_cache) == NUM_TABLES

    def test_set_epoch_invalidates_cache(self):
        router = ShardRouter(4, replication=2, epoch=0)
        router.owners_for(0)
        assert router._owners_cache
        router.set_epoch(1)
        assert not router._owners_cache
        assert router.epoch == 1

    def test_same_epoch_keeps_cache_warm(self):
        router = ShardRouter(4, replication=2, epoch=5)
        router.owners_for(0)
        router.set_epoch(5)
        assert 0 in router._owners_cache

    def test_owners_alias_resolves_to_memoized_path(self):
        router = ShardRouter(4, replication=2)
        assert router.owners(7) == router.owners_for(7)
        assert 7 in router._owners_cache

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError, match="epoch must be >= 0"):
            ShardRouter(4, epoch=-1)
        router = ShardRouter(4)
        with pytest.raises(ValueError, match="epoch must be >= 0"):
            router.set_epoch(-2)

    def test_to_dict_reports_epoch(self):
        assert ShardRouter(2, epoch=3).to_dict(num_tables=1)["epoch"] == 3
