"""The autoscale control loop: signals, controller, supervisor, audits."""

import math

import pytest

from repro.cluster.autoscale import (
    AUTOSCALE_REGION,
    Autoscaler,
    AutoscaleConfig,
    ClusterSignals,
    HotLoadChasingController,
    ScalingLeakageError,
    SignalPlane,
    Supervisor,
    audit_scaling,
    check_oblivious_scaling,
    default_scaling_workloads,
)
from repro.cluster.epoch import EpochControlPlane, PlanEpoch
from repro.cluster.migration import BandwidthContentionModel
from repro.cluster.placement import RingPlanner
from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC
from repro.oblivious.trace import MemoryTracer
from repro.resilience.dispatch import ResilientDispatcher

from .conftest import DIM

SIZES = TERABYTE_SPEC.table_sizes
NUM_TABLES = len(SIZES)
FOREVER = 1e9

CONFIG = AutoscaleConfig(min_nodes=2, max_nodes=5, high_utilisation=0.8,
                         low_utilisation=0.3, breach_ticks=2,
                         cooldown_ticks=1)


def signals_for(tick, utilisation, nodes=3, replication=2, crashed=0,
                open_breakers=0):
    """Hand-rolled signals: utilisation is what the control law reads."""
    capacity = 10000.0
    return ClusterSignals(
        tick=tick, now_seconds=tick * 0.25,
        offered_rps=utilisation * capacity,
        achieved_rps=utilisation * capacity, capacity_rps=capacity,
        utilisation=utilisation, queue_delay_seconds=0.0, shed_requests=0,
        current_nodes=nodes, replication=replication,
        healthy_nodes=nodes - crashed - open_breakers,
        open_breakers=open_breakers, half_open_breakers=0,
        crashed_nodes=crashed)


class TestAutoscaleConfig:
    def test_rejects_inverted_bands(self):
        with pytest.raises(ValueError, match="low_utilisation"):
            AutoscaleConfig(min_nodes=1, max_nodes=4, high_utilisation=0.3,
                            low_utilisation=0.8)

    def test_rejects_min_above_max(self):
        with pytest.raises(ValueError, match="exceeds max_nodes"):
            AutoscaleConfig(min_nodes=5, max_nodes=2)

    def test_rejects_negative_cooldown(self):
        with pytest.raises(ValueError, match="cooldown_ticks"):
            AutoscaleConfig(min_nodes=1, max_nodes=4, cooldown_ticks=-1)


class TestAutoscaler:
    def test_single_breach_holds_hysteresis(self):
        scaler = Autoscaler(CONFIG)
        assert scaler.decide(signals_for(0, 0.95)).action == "hold"
        decision = scaler.decide(signals_for(1, 0.95))
        assert decision.action == "scale-up"
        assert decision.target_nodes == 4

    def test_interrupted_streak_resets(self):
        scaler = Autoscaler(CONFIG)
        scaler.decide(signals_for(0, 0.95))
        scaler.decide(signals_for(1, 0.5))        # back inside the band
        assert scaler.decide(signals_for(2, 0.95)).action == "hold"

    def test_cooldown_holds_after_a_scale(self):
        scaler = Autoscaler(CONFIG)
        scaler.decide(signals_for(0, 0.95))
        assert scaler.decide(signals_for(1, 0.95)).action == "scale-up"
        held = scaler.decide(signals_for(2, 0.95))
        assert held.action == "hold"
        assert held.reason == "cooldown"
        # The tick after the cooldown the streak has rebuilt.
        assert scaler.decide(signals_for(3, 0.95)).action == "scale-up"

    def test_scale_up_capped_at_max_nodes(self):
        scaler = Autoscaler(CONFIG)
        scaler.decide(signals_for(0, 0.95, nodes=5))
        decision = scaler.decide(signals_for(1, 0.95, nodes=5))
        assert decision.action == "blocked"
        assert decision.reason == "at-max-nodes"
        assert decision.target_nodes == 5

    def test_scale_down_on_sustained_low(self):
        scaler = Autoscaler(CONFIG)
        scaler.decide(signals_for(0, 0.1, nodes=4))
        decision = scaler.decide(signals_for(1, 0.1, nodes=4))
        assert decision.action == "scale-down"
        assert decision.target_nodes == 3

    def test_scale_down_blocked_below_replication_floor(self):
        scaler = Autoscaler(CONFIG)
        scaler.decide(signals_for(0, 0.1, nodes=3, replication=3))
        decision = scaler.decide(signals_for(1, 0.1, nodes=3,
                                             replication=3))
        assert decision.action == "blocked"
        assert decision.reason == "replication-floor"

    def test_scale_down_blocked_while_unhealthy(self):
        scaler = Autoscaler(CONFIG)
        scaler.decide(signals_for(0, 0.1, nodes=4, crashed=1))
        decision = scaler.decide(signals_for(1, 0.1, nodes=4, crashed=1))
        assert decision.action == "blocked"
        assert decision.reason == "breakers-open"

    def test_blocked_keeps_the_streak_alive(self):
        # The tick the fleet heals, the backlog of low-utilisation
        # evidence fires immediately — no need to re-accumulate.
        scaler = Autoscaler(CONFIG)
        scaler.decide(signals_for(0, 0.1, nodes=4, crashed=1))
        assert scaler.decide(signals_for(1, 0.1, nodes=4,
                                         crashed=1)).action == "blocked"
        assert scaler.decide(signals_for(2, 0.1,
                                         nodes=4)).action == "scale-down"

    def test_open_breakers_also_block(self):
        scaler = Autoscaler(CONFIG)
        scaler.decide(signals_for(0, 0.1, nodes=4, open_breakers=1))
        decision = scaler.decide(signals_for(1, 0.1, nodes=4,
                                             open_breakers=1))
        assert decision.action == "blocked"

    def test_decision_traced_in_autoscale_region(self):
        scaler = Autoscaler(CONFIG)
        tracer = MemoryTracer()
        scaler.decide(signals_for(0, 0.95), tracer=tracer)
        decision = scaler.decide(signals_for(1, 0.95), tracer=tracer)
        addresses = tracer.addresses(AUTOSCALE_REGION)
        assert len(addresses) == 2
        # (tick * 1024 + target) * 4 + action encodes the decision.
        assert addresses[1] == (1 * 1024 + decision.target_nodes) * 4 + 1


class TestScalingAudit:
    @staticmethod
    def timeline():
        utils = [0.5, 0.9, 0.95, 0.95, 0.5, 0.2, 0.2, 0.2]
        return [signals_for(tick, util)
                for tick, util in enumerate(utils)]

    def test_compliant_controller_passes(self):
        finding = check_oblivious_scaling(
            lambda: Autoscaler(CONFIG), self.timeline(),
            default_scaling_workloads(NUM_TABLES))
        assert finding.passed
        assert not finding.leak_detected

    def test_hot_load_chaser_is_caught(self):
        finding = audit_scaling(
            lambda: HotLoadChasingController(CONFIG), self.timeline(),
            default_scaling_workloads(NUM_TABLES),
            name="hot-load-chasing", expect_oblivious=False)
        assert finding.leak_detected
        assert finding.passed  # expected to leak, and it did

    def test_gate_raises_on_the_chaser(self):
        with pytest.raises(ScalingLeakageError, match="side channel"):
            check_oblivious_scaling(
                lambda: HotLoadChasingController(CONFIG), self.timeline(),
                default_scaling_workloads(NUM_TABLES))

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_oblivious_scaling(
                lambda: Autoscaler(CONFIG), [],
                default_scaling_workloads(NUM_TABLES))


class TestSignalPlane:
    def test_snapshot_increments_tick_and_guards_division(self):
        plane = SignalPlane(interval_seconds=0.25)
        first = plane.snapshot(offered_rps=1000.0, achieved_rps=900.0,
                               capacity_rps=0.0, queue_delay_seconds=0.0,
                               shed_requests=0, current_nodes=2,
                               replication=2)
        second = plane.snapshot(offered_rps=1000.0, achieved_rps=900.0,
                                capacity_rps=4000.0,
                                queue_delay_seconds=0.001,
                                shed_requests=3, current_nodes=2,
                                replication=2)
        assert (first.tick, second.tick) == (0, 1)
        assert first.utilisation == 0.0            # zero capacity: no NaN
        assert second.utilisation == pytest.approx(0.25)
        assert math.isfinite(second.utilisation)

    def test_snapshot_reads_dispatcher_health(self):
        dispatcher = ResilientDispatcher(num_replicas=3)
        dispatcher.mark_down(1, until_seconds=FOREVER, now_seconds=0.0)
        plane = SignalPlane(dispatcher)
        signals = plane.snapshot(offered_rps=100.0, achieved_rps=100.0,
                                 capacity_rps=1000.0,
                                 queue_delay_seconds=0.0, shed_requests=0,
                                 current_nodes=3, replication=2,
                                 now_seconds=0.0)
        assert signals.crashed_nodes == 1
        assert signals.healthy_nodes == 2
        assert signals.unhealthy_nodes >= 1


@pytest.fixture(scope="module")
def epoch4(thresholds):
    from repro.serving import ServingConfig

    planner = RingPlanner(4, thresholds, DIM,
                          uniform_shape=DLRM_DHE_UNIFORM_64)
    plan = planner.plan(SIZES, ServingConfig(batch_size=32, threads=1))
    return PlanEpoch.create(0, plan, replication=2)


class TestSupervisor:
    def test_detection_needs_confirm_ticks(self):
        dispatcher = ResilientDispatcher(num_replicas=3)
        supervisor = Supervisor(dispatcher, confirm_ticks=2)
        dispatcher.mark_down(2, until_seconds=FOREVER, now_seconds=0.0)
        assert supervisor.observe(0.0) == []      # first sighting
        assert supervisor.observe(0.25) == [2]    # confirmed

    def test_recovered_replica_clears_the_streak(self):
        dispatcher = ResilientDispatcher(num_replicas=3)
        supervisor = Supervisor(dispatcher, confirm_ticks=2)
        dispatcher.mark_down(2, until_seconds=0.1, now_seconds=0.0)
        assert supervisor.observe(0.0) == []
        # The crash window has lapsed: not dead, streak resets.
        assert supervisor.observe(0.25) == []
        dispatcher.mark_down(2, until_seconds=FOREVER, now_seconds=0.5)
        assert supervisor.observe(0.5) == []

    def test_heal_moves_cover_exactly_the_dead_nodes_tables(self, epoch4):
        dispatcher = ResilientDispatcher(num_replicas=4)
        supervisor = Supervisor(dispatcher)
        moves = supervisor.heal_moves(epoch4, [1])
        expected = [table_id for table_id in range(NUM_TABLES)
                    if 1 in epoch4.owners(table_id)]
        assert [move.table_id for move in moves] == expected
        for move in moves:
            assert move.new_owners == (1,)
            assert 1 not in move.from_owners
            assert set(move.to_owners) == set(epoch4.owners(move.table_id))
            assert move.bytes_modelled == epoch4.footprint_of(move.table_id)

    def test_heal_issues_same_plan_successor_epoch(self, epoch4):
        dispatcher = ResilientDispatcher(num_replicas=4)
        control = EpochControlPlane(epoch4, dispatcher=dispatcher)
        supervisor = Supervisor(dispatcher)
        dispatcher.mark_down(1, until_seconds=FOREVER, now_seconds=0.0)
        assert supervisor.observe(0.0) == [1]
        migrator = supervisor.heal(control, [1],
                                   contention=BandwidthContentionModel())
        assert control.current.epoch == epoch4.epoch + 1
        assert migrator.target.plan is epoch4.plan
        assert migrator.move_set()                 # explicit override set
        # The epoch diff alone would be empty — the override carries it.
        assert all(move.new_owners == (1,) for move in migrator.move_set())

    def test_heal_without_dead_nodes_rejected(self, epoch4):
        dispatcher = ResilientDispatcher(num_replicas=4)
        control = EpochControlPlane(epoch4, dispatcher=dispatcher)
        supervisor = Supervisor(dispatcher)
        with pytest.raises(ValueError, match="at least one dead node"):
            supervisor.heal(control, [])

    def test_mark_replaced_restores_health(self, epoch4):
        dispatcher = ResilientDispatcher(num_replicas=4)
        supervisor = Supervisor(dispatcher)
        dispatcher.mark_down(1, until_seconds=FOREVER, now_seconds=0.0)
        assert supervisor.observe(0.0) == [1]
        supervisor.mark_replaced([1])
        assert dispatcher.health_summary(0.0)["healthy"] == 4
        assert supervisor.observe(0.25) == []
