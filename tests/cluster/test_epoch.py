"""PlanEpoch + EpochControlPlane: versioning, epoch routing, carry-over."""

import pytest

from repro.cluster.epoch import (
    EpochControlPlane,
    PlanEpoch,
    UnknownEpochError,
)
from repro.cluster.placement import RingPlanner
from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC
from repro.resilience import BreakerConfig, ResilientDispatcher
from repro.telemetry.runtime import use_registry

from .conftest import DIM

SIZES = TERABYTE_SPEC.table_sizes
NUM_TABLES = len(SIZES)
TRIPPY = BreakerConfig(failure_threshold=2, cooldown_seconds=1e6,
                       probe_successes=1)


@pytest.fixture(scope="module")
def plans(thresholds):
    planner = RingPlanner(4, thresholds, DIM,
                          uniform_shape=DLRM_DHE_UNIFORM_64)
    from repro.serving import ServingConfig

    config = ServingConfig(batch_size=32, threads=1)
    return {nodes: planner.for_nodes(nodes).plan(SIZES, config)
            for nodes in (3, 4, 5)}


class TestPlanEpoch:
    def test_create_binds_router_to_epoch(self, plans):
        epoch = PlanEpoch.create(3, plans[4], replication=2)
        assert epoch.router.epoch == 3
        assert epoch.num_nodes == 4
        assert epoch.replication == 2
        assert epoch.num_tables == NUM_TABLES

    def test_negative_epoch_rejected(self, plans):
        with pytest.raises(ValueError, match="epoch must be >= 0"):
            PlanEpoch.create(-1, plans[4])

    def test_successor_increments_and_keeps_replication(self, plans):
        epoch = PlanEpoch.create(0, plans[4], replication=2)
        nxt = epoch.successor(plans[5])
        assert nxt.epoch == 1
        assert nxt.replication == 2
        assert nxt.num_nodes == 5

    def test_owners_follow_plan_primary(self, plans):
        epoch = PlanEpoch.create(0, plans[4], replication=2)
        for table_id in range(NUM_TABLES):
            owners = epoch.owners(table_id)
            assert owners[0] == plans[4].node_of(table_id)
            assert len(owners) == 2

    def test_footprint_of_unknown_table_raises(self, plans):
        epoch = PlanEpoch.create(0, plans[4])
        assert epoch.footprint_of(0) > 0
        with pytest.raises(KeyError):
            epoch.footprint_of(NUM_TABLES)

    def test_to_dict_lists_every_owner_set(self, plans):
        payload = PlanEpoch.create(0, plans[4], replication=2).to_dict()
        assert payload["epoch"] == 0
        assert len(payload["owners"]) == NUM_TABLES


class TestControlPlane:
    def test_advance_issues_successor(self, plans):
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
        issued = control.advance(plans[5])
        assert issued.epoch == 1
        assert control.current is issued
        assert control.live_epochs == [0, 1]

    def test_advance_counts_epochs(self, plans):
        with use_registry() as registry:
            control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
            control.advance(plans[5])
            snapshot = registry.snapshot()
        assert snapshot["counters"]["cluster.epochs_total"] == 1.0
        assert snapshot["gauges"]["cluster.current_epoch"] == 1.0

    def test_routes_by_arrival_epoch(self, plans):
        # A request that arrived under epoch 0 keeps routing by epoch 0's
        # owner map even after the cutover to epoch 1.
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
        control.advance(plans[5])
        before = control.epoch(0)
        after = control.epoch(1)
        moved = [table_id for table_id in range(NUM_TABLES)
                 if before.owners(table_id) != after.owners(table_id)]
        assert moved  # the 4->5 reshard moves some tables
        for table_id in moved:
            assert control.route(table_id, epoch=0) == \
                before.owners(table_id)[0]
            assert control.route(table_id) == after.owners(table_id)[0]

    def test_unknown_epoch_raises(self, plans):
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
        with pytest.raises(UnknownEpochError, match="never issued"):
            control.epoch(9)

    def test_retire_drops_old_epochs(self, plans):
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
        control.advance(plans[5])
        control.retire_through(0)
        assert control.live_epochs == [1]
        with pytest.raises(UnknownEpochError):
            control.epoch(0)

    def test_cannot_retire_current_epoch(self, plans):
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
        with pytest.raises(ValueError, match="cannot retire the current"):
            control.retire_through(0)


class TestRapidDerivation:
    """ISSUE 8 satellite: back-to-back epoch derivations with in-flight
    traffic — each epoch routes by its own owner map until it drains, and
    only retirement makes it unknown."""

    def _three_epochs(self, plans, dispatcher=None):
        control = EpochControlPlane(PlanEpoch.create(0, plans[3],
                                                     replication=2),
                                    dispatcher=dispatcher)
        control.advance(plans[4], replication=2)
        control.advance(plans[5], replication=2)
        return control

    def test_three_back_to_back_epochs_stay_live(self, plans):
        control = self._three_epochs(plans)
        assert control.live_epochs == [0, 1, 2]
        assert control.current.epoch == 2
        assert [control.epoch(e).num_nodes for e in (0, 1, 2)] == [3, 4, 5]

    def test_in_flight_traffic_routes_by_origin_epoch(self, plans):
        control = self._three_epochs(plans)
        epochs = {e: control.epoch(e) for e in (0, 1, 2)}
        # requests that arrived under each epoch keep that epoch's owners,
        # even while two newer plans are already live
        for table_id in range(NUM_TABLES):
            for epoch_id, plan_epoch in epochs.items():
                assert control.route(table_id, epoch=epoch_id) == \
                    plan_epoch.owners(table_id)[0]

    def test_drain_then_retire_in_order(self, plans):
        control = self._three_epochs(plans)
        control.retire_through(0)
        assert control.live_epochs == [1, 2]
        # epoch 1 traffic still in flight: must stay routable
        assert control.route(0, epoch=1) is not None
        control.retire_through(1)
        assert control.live_epochs == [2]

    def test_unknown_only_after_retirement(self, plans):
        control = self._three_epochs(plans)
        assert control.epoch(0).epoch == 0  # live before retirement
        control.retire_through(1)
        for stale in (0, 1):
            with pytest.raises(UnknownEpochError):
                control.epoch(stale)
            with pytest.raises(UnknownEpochError):
                control.route(0, epoch=stale)
        assert control.route(0, epoch=2) is not None

    def test_retire_through_skips_already_retired(self, plans):
        control = self._three_epochs(plans)
        control.retire_through(0)
        control.retire_through(0)  # idempotent: nothing <= 0 is live
        assert control.live_epochs == [1, 2]

    def test_shrink_waits_for_the_widest_live_epoch(self, plans):
        # Scale-down cutover: 5 -> 4 nodes. The dispatcher may only give
        # up slot 4 once no live epoch routes to it.
        dispatcher = ResilientDispatcher(num_replicas=3, min_replicas=2)
        control = self._three_epochs(plans, dispatcher=dispatcher)
        assert dispatcher.num_replicas == 5  # advance() grew the fleet
        down = control.advance(plans[4], replication=2)
        assert down.epoch == 3
        control.retire_through(1, shrink_dispatcher=True)
        # epoch 2 (5 nodes) is still draining: no shrink yet
        assert dispatcher.num_replicas == 5
        control.retire_through(2, shrink_dispatcher=True)
        assert dispatcher.num_replicas == 4


class TestDispatcherCarryOver:
    def test_breaker_state_survives_epoch_change(self, plans):
        # Trip node 1's breaker under epoch 0; after advancing to a
        # 5-node epoch the same breaker must still be open — a plan
        # change does not heal a sick node — and the new replica joins
        # the rotation healthy.
        dispatcher = ResilientDispatcher(num_replicas=4,
                                         breaker_config=TRIPPY)
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]),
                                    dispatcher=dispatcher)
        dispatcher.record_failure(1, 0.0)
        dispatcher.record_failure(1, 0.0)
        assert dispatcher.admitted(0.0) == [0, 2, 3]

        control.advance(plans[5])
        assert dispatcher.num_replicas == 5
        assert dispatcher.admitted(0.0) == [0, 2, 3, 4]

    def test_route_skips_downed_replica_in_both_epochs(self, plans):
        dispatcher = ResilientDispatcher(num_replicas=4,
                                         breaker_config=TRIPPY)
        control = EpochControlPlane(PlanEpoch.create(0, plans[4],
                                                     replication=2),
                                    dispatcher=dispatcher)
        control.advance(plans[5], replication=2)
        victim = control.epoch(0).owners(0)[0]
        dispatcher.mark_down(victim, until_seconds=1e6, now_seconds=0.0)
        for epoch_id in (0, 1):
            owner = control.route(0, epoch=epoch_id)
            assert owner is not None
            assert owner != victim
