"""PlanEpoch + EpochControlPlane: versioning, epoch routing, carry-over."""

import pytest

from repro.cluster.epoch import (
    EpochControlPlane,
    PlanEpoch,
    UnknownEpochError,
)
from repro.cluster.placement import RingPlanner
from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC
from repro.resilience import BreakerConfig, ResilientDispatcher
from repro.telemetry.runtime import use_registry

from .conftest import DIM

SIZES = TERABYTE_SPEC.table_sizes
NUM_TABLES = len(SIZES)
TRIPPY = BreakerConfig(failure_threshold=2, cooldown_seconds=1e6,
                       probe_successes=1)


@pytest.fixture(scope="module")
def plans(thresholds):
    planner = RingPlanner(4, thresholds, DIM,
                          uniform_shape=DLRM_DHE_UNIFORM_64)
    from repro.serving import ServingConfig

    config = ServingConfig(batch_size=32, threads=1)
    return {nodes: planner.for_nodes(nodes).plan(SIZES, config)
            for nodes in (4, 5)}


class TestPlanEpoch:
    def test_create_binds_router_to_epoch(self, plans):
        epoch = PlanEpoch.create(3, plans[4], replication=2)
        assert epoch.router.epoch == 3
        assert epoch.num_nodes == 4
        assert epoch.replication == 2
        assert epoch.num_tables == NUM_TABLES

    def test_negative_epoch_rejected(self, plans):
        with pytest.raises(ValueError, match="epoch must be >= 0"):
            PlanEpoch.create(-1, plans[4])

    def test_successor_increments_and_keeps_replication(self, plans):
        epoch = PlanEpoch.create(0, plans[4], replication=2)
        nxt = epoch.successor(plans[5])
        assert nxt.epoch == 1
        assert nxt.replication == 2
        assert nxt.num_nodes == 5

    def test_owners_follow_plan_primary(self, plans):
        epoch = PlanEpoch.create(0, plans[4], replication=2)
        for table_id in range(NUM_TABLES):
            owners = epoch.owners(table_id)
            assert owners[0] == plans[4].node_of(table_id)
            assert len(owners) == 2

    def test_footprint_of_unknown_table_raises(self, plans):
        epoch = PlanEpoch.create(0, plans[4])
        assert epoch.footprint_of(0) > 0
        with pytest.raises(KeyError):
            epoch.footprint_of(NUM_TABLES)

    def test_to_dict_lists_every_owner_set(self, plans):
        payload = PlanEpoch.create(0, plans[4], replication=2).to_dict()
        assert payload["epoch"] == 0
        assert len(payload["owners"]) == NUM_TABLES


class TestControlPlane:
    def test_advance_issues_successor(self, plans):
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
        issued = control.advance(plans[5])
        assert issued.epoch == 1
        assert control.current is issued
        assert control.live_epochs == [0, 1]

    def test_advance_counts_epochs(self, plans):
        with use_registry() as registry:
            control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
            control.advance(plans[5])
            snapshot = registry.snapshot()
        assert snapshot["counters"]["cluster.epochs_total"] == 1.0
        assert snapshot["gauges"]["cluster.current_epoch"] == 1.0

    def test_routes_by_arrival_epoch(self, plans):
        # A request that arrived under epoch 0 keeps routing by epoch 0's
        # owner map even after the cutover to epoch 1.
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
        control.advance(plans[5])
        before = control.epoch(0)
        after = control.epoch(1)
        moved = [table_id for table_id in range(NUM_TABLES)
                 if before.owners(table_id) != after.owners(table_id)]
        assert moved  # the 4->5 reshard moves some tables
        for table_id in moved:
            assert control.route(table_id, epoch=0) == \
                before.owners(table_id)[0]
            assert control.route(table_id) == after.owners(table_id)[0]

    def test_unknown_epoch_raises(self, plans):
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
        with pytest.raises(UnknownEpochError, match="never issued"):
            control.epoch(9)

    def test_retire_drops_old_epochs(self, plans):
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
        control.advance(plans[5])
        control.retire_through(0)
        assert control.live_epochs == [1]
        with pytest.raises(UnknownEpochError):
            control.epoch(0)

    def test_cannot_retire_current_epoch(self, plans):
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]))
        with pytest.raises(ValueError, match="cannot retire the current"):
            control.retire_through(0)


class TestDispatcherCarryOver:
    def test_breaker_state_survives_epoch_change(self, plans):
        # Trip node 1's breaker under epoch 0; after advancing to a
        # 5-node epoch the same breaker must still be open — a plan
        # change does not heal a sick node — and the new replica joins
        # the rotation healthy.
        dispatcher = ResilientDispatcher(num_replicas=4,
                                         breaker_config=TRIPPY)
        control = EpochControlPlane(PlanEpoch.create(0, plans[4]),
                                    dispatcher=dispatcher)
        dispatcher.record_failure(1, 0.0)
        dispatcher.record_failure(1, 0.0)
        assert dispatcher.admitted(0.0) == [0, 2, 3]

        control.advance(plans[5])
        assert dispatcher.num_replicas == 5
        assert dispatcher.admitted(0.0) == [0, 2, 3, 4]

    def test_route_skips_downed_replica_in_both_epochs(self, plans):
        dispatcher = ResilientDispatcher(num_replicas=4,
                                         breaker_config=TRIPPY)
        control = EpochControlPlane(PlanEpoch.create(0, plans[4],
                                                     replication=2),
                                    dispatcher=dispatcher)
        control.advance(plans[5], replication=2)
        victim = control.epoch(0).owners(0)[0]
        dispatcher.mark_down(victim, until_seconds=1e6, now_seconds=0.0)
        for epoch_id in (0, 1):
            owner = control.route(0, epoch=epoch_id)
            assert owner is not None
            assert owner != victim
