"""Migration simulator: gates, determinism, and the CLI contract."""

import json
import subprocess
import sys

import pytest

from repro.cluster.migrate import main, move_bound, render, run_migration

SMALL = dict(num_requests=96, rate_rps=2000.0)


@pytest.fixture(scope="module")
def report():
    return run_migration(seed=7, **SMALL)


class TestGates:
    def test_all_gates_pass(self, report):
        assert report["gates"]["passed"]
        assert report["gates"] == {name: True for name in report["gates"]}

    def test_zero_loss_in_every_cell(self, report):
        # the SMALL workload never saturates a shard, so even R=1 cells
        # come through clean; the gate itself only binds at R>=2
        for cell in report["cells"]:
            assert cell["shed_requests"] == 0
            assert cell["unroutable_events"] == 0
            assert cell["availability"] == 1.0

    def test_window_p99_within_ceiling(self, report):
        for cell in report["cells"]:
            assert cell["p99_inflation"] <= report["p99_inflation_ceiling"]

    def test_move_sets_are_incremental(self, report):
        for cell in report["cells"]:
            assert cell["tables_moved"] <= cell["move_bound"]

    def test_per_epoch_placement_audits_pass(self, report):
        assert {audit["num_nodes"] for audit in report["epoch_audits"]} == \
            {report["nodes_before"], report["nodes_after"]}
        for audit in report["epoch_audits"]:
            assert audit["audit_passed"]
            assert audit["audit_divergence"] == 0.0

    def test_failover_during_migration_zero_loss(self, report):
        failover = report["failover"]
        assert failover["applicable"]
        assert failover["shed_requests"] == 0
        assert failover["unroutable_events"] == 0
        assert failover["zero_loss"]

    def test_negative_audit_catches_hot_first_planner(self, report):
        assert report["negative_audit"]["leak_detected"]
        # expectation for the anti-pattern is "leaky", so the subject passes
        assert report["negative_audit"]["passed"]


class TestDeterminism:
    def test_same_seed_same_report(self, report):
        again = run_migration(seed=7, **SMALL)
        assert json.dumps(report, sort_keys=True) == \
            json.dumps(again, sort_keys=True)

    def test_json_is_serialisable_without_inf(self, report):
        payload = json.dumps(report, allow_nan=False, sort_keys=True)
        assert "Infinity" not in payload

    def test_different_seed_different_window(self, report):
        other = run_migration(seed=8, **SMALL)
        assert other["cells"][0]["window_p99_seconds"] != \
            report["cells"][0]["window_p99_seconds"]

    def test_move_sets_do_not_depend_on_the_seed(self, report):
        again = run_migration(seed=99, **SMALL)
        assert [c["tables_moved"] for c in report["cells"]] == \
            [c["tables_moved"] for c in again["cells"]]


class TestSweepShape:
    def test_every_cell_present(self, report):
        cells = {(c["direction"], c["replication"], c["step_size"])
                 for c in report["cells"]}
        assert cells == {(d, r, s) for d in ("add", "remove")
                         for r in (1, 2) for s in (2, 4)}

    def test_remove_direction_reverses_node_counts(self, report):
        for cell in report["cells"]:
            if cell["direction"] == "add":
                assert (cell["nodes_before"], cell["nodes_after"]) == (4, 5)
            else:
                assert (cell["nodes_before"], cell["nodes_after"]) == (5, 4)

    def test_render_mentions_gates(self, report):
        text = render(report)
        assert "gates:" in text
        assert "ZERO LOSS" in text

    def test_identical_node_counts_rejected(self):
        with pytest.raises(ValueError, match="nodes_before != nodes_after"):
            run_migration(nodes_before=4, nodes_after=4, **SMALL)

    def test_move_bound_formula(self):
        assert move_bound(26, 1, 5) == 6 + 3
        assert move_bound(26, 2, 5) == 11 + 3


class TestCli:
    def test_cli_json_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            code = subprocess.run(
                [sys.executable, "-m", "repro.cluster.migrate",
                 "--seed", "7", "--requests", "96",
                 "--nodes-before", "4", "--nodes-after", "5",
                 "--step-size", "2", "--json", str(path)],
                capture_output=True, text=True).returncode
            assert code == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_step_size_flag_narrows_the_sweep(self, tmp_path):
        path = tmp_path / "single.json"
        code = subprocess.run(
            [sys.executable, "-m", "repro.cluster.migrate", "--seed", "7",
             "--requests", "96", "--step-size", "3",
             "--json", str(path)],
            capture_output=True, text=True).returncode
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["step_sizes"] == [3]
        assert {c["step_size"] for c in payload["cells"]} == {3}

    def test_main_returns_zero_on_pass(self, capsys):
        assert main(["--seed", "7", "--requests", "64"]) == 0
        assert "migration sweep" in capsys.readouterr().out

    def test_main_honours_topology_flags(self, capsys):
        assert main(["--seed", "7", "--requests", "64",
                     "--nodes-before", "3", "--nodes-after", "4",
                     "--step-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "3<->4 nodes" in out
