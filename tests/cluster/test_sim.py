"""ClusterSimulator: gates, determinism, and the CLI contract."""

import json
import subprocess
import sys

import pytest

from repro.cluster.sim import main, plan_digest, render, run_cluster
from repro.data import scaled_spec, TERABYTE_SPEC

SMALL = dict(num_requests=96, rate_rps=2000.0)


@pytest.fixture(scope="module")
def report():
    return run_cluster(seed=7, **SMALL)


class TestGates:
    def test_all_gates_pass(self, report):
        assert report["gates"]["passed"]
        assert report["gates"] == {name: True for name in report["gates"]}

    def test_scaling_meets_floor(self, report):
        assert report["scaling"] >= report["scaling_floor"]

    def test_p99_inflation_under_ceiling(self, report):
        assert report["p99_inflation"] <= report["p99_inflation_ceiling"]

    def test_failover_zero_loss(self, report):
        failover = report["failover"]
        assert failover["applicable"]
        assert failover["shed_requests"] == 0
        assert failover["unroutable_tables"] == []
        assert failover["availability"] == 1.0

    def test_negative_audit_catches_frequency_keyed_planner(self, report):
        assert report["negative_audit"]["leak_detected"]
        # expectation for the anti-pattern is "leaky", so the subject passes
        assert report["negative_audit"]["passed"]

    def test_skew_invariance_per_topology(self, report):
        for topology in report["topologies"]:
            assert topology["skew_invariant"]
            assert len(set(topology["plan_digests_by_skew"].values())) == 1


class TestDeterminism:
    def test_same_seed_same_report(self, report):
        again = run_cluster(seed=7, **SMALL)
        assert json.dumps(report, sort_keys=True) == \
            json.dumps(again, sort_keys=True)

    def test_json_is_serialisable_without_inf(self, report):
        payload = json.dumps(report, allow_nan=False, sort_keys=True)
        assert "Infinity" not in payload

    def test_different_seed_different_arrivals(self, report):
        other = run_cluster(seed=8, **SMALL)
        assert other["cells"][0]["p99_seconds"] != \
            report["cells"][0]["p99_seconds"]

    def test_plan_digest_is_stable(self, report):
        digests = {t["nodes"]: t["plan_digest"]
                   for t in report["topologies"]}
        again = {t["nodes"]: t["plan_digest"]
                 for t in run_cluster(seed=99, **SMALL)["topologies"]}
        assert digests == again  # placement never depends on the seed


class TestSweepShape:
    def test_every_topology_cell_present(self, report):
        cells = {(c["nodes"], c["replication"]) for c in report["cells"]}
        assert cells == {(1, 1), (2, 1), (2, 2), (4, 1), (4, 2)}

    def test_render_mentions_gates(self, report):
        text = render(report)
        assert "gates:" in text
        assert "ZERO LOSS" in text

    def test_small_spec_single_node_sweep(self):
        spec = scaled_spec(TERABYTE_SPEC, max_rows=50_000)
        report = run_cluster(seed=1, spec=spec, num_requests=48,
                             node_counts=(1,), replications=(1,))
        assert report["gates"]["scaling"]  # vacuous on one node
        assert not report["failover"]["applicable"]


class TestCli:
    def test_cli_json_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            code = subprocess.run(
                [sys.executable, "-m", "repro.cluster.sim", "--seed", "7",
                 "--requests", "96", "--json", str(path)],
                capture_output=True, text=True).returncode
            assert code == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_main_returns_zero_on_pass(self, capsys):
        assert main(["--seed", "7", "--requests", "64"]) == 0
        assert "cluster sweep" in capsys.readouterr().out


class TestPlanDigest:
    def test_digest_is_sha256_hex(self, report):
        for topology in report["topologies"]:
            assert len(topology["plan_digest"]) == 64
            int(topology["plan_digest"], 16)
