"""Autoscale simulator: gates, storm storyline, determinism, CLI."""

import json
import subprocess
import sys

import pytest

from repro.cluster.autoscale.sim import (
    KILL_TICK,
    MAX_NODES,
    MIN_NODES,
    REPLICATION,
    main,
    rate_schedule,
    render,
    run_autoscale,
)


@pytest.fixture(scope="module")
def report():
    return run_autoscale(seed=7)


class TestGates:
    def test_all_gates_pass(self, report):
        assert report["gates"]["passed"]
        assert report["gates"] == {name: True for name in report["gates"]}

    def test_converged_within_budget(self, report):
        assert report["converged_tick"] is not None
        assert (report["converged_tick"] - report["first_peak_tick"]
                <= report["convergence_budget_ticks"])

    def test_event_windows_respect_p99_ceiling(self, report):
        event_cells = [cell for cell in report["intervals"]
                       if cell["kind"] != "serve"]
        assert event_cells
        for cell in event_cells:
            assert cell["p99_inflation"] <= report["p99_event_ceiling"]

    def test_every_reshape_is_audited(self, report):
        assert report["plan_audits"]
        assert report["migration_audits"]
        for audit in report["plan_audits"] + report["migration_audits"]:
            assert audit["audit_passed"]
            assert audit["audit_divergence"] == 0.0

    def test_scaling_decisions_are_skew_invariant(self, report):
        audit = report["scaling_audit"]
        assert audit["passed"]
        assert not audit["leak_detected"]

    def test_negative_control_is_caught(self, report):
        negative = report["negative_audit"]
        assert negative["leak_detected"]
        # expectation for the anti-pattern is "leaky", so the subject passes
        assert negative["passed"]


class TestStorm:
    def test_kill_blocks_the_scale_down(self, report):
        kill = report["intervals"][KILL_TICK]
        assert kill["killed"]
        assert kill["decision"]["action"] == "blocked"
        assert kill["decision"]["reason"] == "breakers-open"

    def test_heal_sheds_nothing(self, report):
        heals = [cell for cell in report["intervals"]
                 if cell["kind"] == "heal"]
        assert len(heals) == 1
        assert heals[0]["shed_requests"] == 0
        assert heals[0]["unroutable_events"] == 0
        assert heals[0]["tables_moved"] > 0

    def test_storm_events(self, report):
        assert report["events"] == {"scale_up_events": 2,
                                    "scale_down_events": 1,
                                    "heal_events": 1}

    def test_fleet_scales_up_then_back_down(self, report):
        nodes = [cell["signals"]["current_nodes"]
                 for cell in report["intervals"]]
        assert max(nodes) > nodes[0]
        assert report["final_nodes"] == 3
        assert all(max(MIN_NODES, REPLICATION) <= n <= MAX_NODES
                   for n in nodes)

    def test_epochs_advance_once_per_reshape(self, report):
        reshapes = sum(report["events"].values())
        assert report["final_epoch"] == reshapes

    def test_merged_counters_sum_to_events(self, report):
        fleet = report["fleet"]
        for key, value in report["events"].items():
            assert fleet[key] == value

    def test_schedule_shape(self):
        rates = rate_schedule()
        assert max(rates) == rates[3]
        assert KILL_TICK < len(rates)
        # the kill lands in the trough, after the peak plateau
        assert rates[KILL_TICK] < max(rates)


class TestDeterminism:
    def test_same_seed_same_report(self, report):
        again = run_autoscale(seed=7)
        assert json.dumps(report, sort_keys=True) == \
            json.dumps(again, sort_keys=True)

    def test_json_is_serialisable_without_inf(self, report):
        payload = json.dumps(report, allow_nan=False, sort_keys=True)
        assert "Infinity" not in payload

    def test_different_seed_different_arrivals(self, report):
        other = run_autoscale(seed=8)
        assert [c["p99_seconds"] for c in other["intervals"]] != \
            [c["p99_seconds"] for c in report["intervals"]]

    def test_decisions_do_not_depend_on_the_seed(self, report):
        other = run_autoscale(seed=8)
        assert [c["decision"]["action"] for c in other["intervals"]] == \
            [c["decision"]["action"] for c in report["intervals"]]


class TestCli:
    def test_cli_json_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            code = subprocess.run(
                [sys.executable, "-m", "repro.cluster.autoscale",
                 "--seed", "7", "--json", str(path)],
                capture_output=True, text=True).returncode
            assert code == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_main_returns_zero_on_pass(self, capsys):
        assert main(["--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "autoscale storm" in out
        assert "gates:" in out

    def test_render_shows_blocked_reason(self, report):
        text = render(report)
        assert "blocked (breakers-open)" in text
        assert "KILL" in text
        assert f"final nodes={report['final_nodes']}" in text
