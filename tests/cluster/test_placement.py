"""ShardPlanner: static placement, capacity, and the leakage gate."""

import pytest

from repro.cluster.placement import (
    PLACEMENT_REGION,
    FrequencyKeyedPlanner,
    PlacementError,
    PlacementLeakageError,
    ShardPlanner,
    audit_placement,
    check_oblivious_placement,
    default_placement_workloads,
)
from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC
from repro.oblivious.trace import MemoryTracer

from .conftest import DIM

SIZES = TERABYTE_SPEC.table_sizes


def make_planner(thresholds, nodes=4, **kwargs):
    return ShardPlanner(nodes, thresholds, DIM,
                        uniform_shape=DLRM_DHE_UNIFORM_64, **kwargs)


class TestShardPlan:
    def test_every_table_placed_exactly_once(self, thresholds, config):
        plan = make_planner(thresholds).plan(SIZES, config)
        placed = sorted(p.table_id for p in plan.placements)
        assert placed == list(range(len(SIZES)))
        for table_id in range(len(SIZES)):
            assert 0 <= plan.node_of(table_id) < 4

    def test_tables_on_partitions_the_set(self, thresholds, config):
        plan = make_planner(thresholds).plan(SIZES, config)
        union = sorted(t for node in range(4) for t in plan.tables_on(node))
        assert union == list(range(len(SIZES)))

    def test_latency_loads_are_balanced(self, thresholds, config):
        # LPT on per-table latency: max/mean load should be close to 1.
        plan = make_planner(thresholds).plan(SIZES, config)
        assert plan.latency_imbalance() < 1.5

    def test_plan_is_deterministic(self, thresholds, config):
        planner = make_planner(thresholds)
        a = planner.plan(SIZES, config)
        b = planner.plan(SIZES, config)
        assert a.to_dict() == b.to_dict()

    def test_to_dict_roundtrips_key_fields(self, thresholds, config):
        digest = make_planner(thresholds).plan(SIZES, config).to_dict()
        assert digest["num_nodes"] == 4
        assert len(digest["placements"]) == len(SIZES)
        assert len(digest["node_latency_seconds"]) == 4


class TestCapacity:
    def test_capacity_violation_raises(self, thresholds, config):
        planner = make_planner(thresholds, nodes=2, node_capacity_bytes=1)
        with pytest.raises(PlacementError, match="fits no node"):
            planner.plan(SIZES, config)

    def test_ample_capacity_places_everything(self, thresholds, config):
        planner = make_planner(thresholds, nodes=2,
                               node_capacity_bytes=10**12)
        plan = planner.plan(SIZES, config)
        assert len(plan.placements) == len(SIZES)


class TestObliviousnessInvariant:
    def test_workload_does_not_move_placement(self, thresholds, config):
        planner = make_planner(thresholds)
        digests = set()
        for workload in default_placement_workloads(len(SIZES)):
            plan = planner.plan(SIZES, config, workload=workload)
            digests.add(str(plan.to_dict()))
        assert len(digests) == 1

    def test_placement_trace_recorded(self, thresholds, config):
        tracer = MemoryTracer()
        make_planner(thresholds).plan(SIZES, config, tracer=tracer)
        assert len(tracer.addresses(PLACEMENT_REGION)) == len(SIZES)

    def test_compliant_planner_passes_audit(self, thresholds, config):
        finding = check_oblivious_placement(make_planner(thresholds), SIZES,
                                            config)
        assert finding.passed
        assert not finding.leak_detected

    def test_frequency_keyed_planner_is_caught(self, thresholds, config):
        """The negative test the issue demands: a deliberately
        frequency-keyed placement must fail the gate loudly."""
        leaky = FrequencyKeyedPlanner(4, thresholds, DIM,
                                      uniform_shape=DLRM_DHE_UNIFORM_64)
        with pytest.raises(PlacementLeakageError, match="side channel"):
            check_oblivious_placement(leaky, SIZES, config)

    def test_frequency_keyed_audit_finding(self, thresholds, config):
        leaky = FrequencyKeyedPlanner(4, thresholds, DIM,
                                      uniform_shape=DLRM_DHE_UNIFORM_64)
        finding = audit_placement(leaky, SIZES, config,
                                  expect_oblivious=False)
        assert finding.leak_detected
        assert finding.passed  # expectation (leaky) matched reality


class TestRingPlanner:
    def test_primaries_follow_the_ring(self, thresholds, config):
        from repro.cluster.placement import RingPlanner
        from repro.cluster.router import ShardRouter

        plan = RingPlanner(4, thresholds, DIM,
                           uniform_shape=DLRM_DHE_UNIFORM_64
                           ).plan(SIZES, config)
        ring = ShardRouter(4, replication=1, virtual_nodes=32)
        for table_id in range(len(SIZES)):
            assert plan.node_of(table_id) == ring.owners_for(table_id)[0]

    def test_ring_placement_passes_the_audit(self, thresholds, config):
        from repro.cluster.placement import RingPlanner

        planner = RingPlanner(4, thresholds, DIM,
                              uniform_shape=DLRM_DHE_UNIFORM_64)
        finding = check_oblivious_placement(planner, SIZES, config)
        assert finding.passed
        assert not finding.leak_detected

    def test_for_nodes_keeps_the_subclass(self, thresholds):
        from repro.cluster.placement import RingPlanner

        clone = RingPlanner(4, thresholds, DIM,
                            uniform_shape=DLRM_DHE_UNIFORM_64).for_nodes(5)
        assert isinstance(clone, RingPlanner)
        assert clone.num_nodes == 5

    def test_replans_are_incremental(self, thresholds, config):
        # the property the epoch control plane leans on: replanning for
        # one more node must move only ~1/5 of the primaries
        from repro.cluster.placement import RingPlanner

        planner = RingPlanner(4, thresholds, DIM,
                              uniform_shape=DLRM_DHE_UNIFORM_64)
        before = planner.plan(SIZES, config)
        after = planner.for_nodes(5).plan(SIZES, config)
        moved = sum(before.node_of(t) != after.node_of(t)
                    for t in range(len(SIZES)))
        assert 0 < moved <= len(SIZES) // 5 + 3
