"""Cache wiring through ExecutionEngine, SecureDlrmServer, and the cluster."""

import pytest

from repro.cache import (
    BatchResultCache,
    CachePolicy,
    DecoderWeightCache,
    StaticResidencyCache,
)
from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC
from repro.hybrid import OfflineProfiler, build_threshold_database
from repro.serving import (
    BatchingPolicy,
    ExecutionEngine,
    SecureDlrmServer,
    ServingConfig,
)
from repro.serving.requests import RequestQueue

DIM = 64
BATCH = 32


@pytest.fixture(scope="module")
def thresholds():
    profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
    profile = profiler.profile(techniques=("scan", "dhe-varied"),
                               dims=(DIM,), batches=(BATCH,),
                               threads_list=(1,))
    return build_threshold_database(profile, dhe_technique="dhe-varied",
                                    dims=(DIM,), batches=(BATCH,),
                                    threads_list=(1,))


@pytest.fixture(scope="module")
def arrivals():
    return RequestQueue.poisson(192, 2000.0, rng=11)


@pytest.fixture
def config():
    return ServingConfig(batch_size=BATCH, threads=1)


def make_engine(thresholds, cache=None, **kwargs):
    return ExecutionEngine(TERABYTE_SPEC.table_sizes, DIM,
                           DLRM_DHE_UNIFORM_64, thresholds, varied=True,
                           cache=cache, **kwargs)


class TestEngineCaching:
    def test_uncached_report_has_no_cache_fields(self, thresholds, config,
                                                 arrivals):
        report = make_engine(thresholds).serve(config, arrivals)
        assert report.cache_hits is None
        assert report.cache_misses is None
        assert not report.tracks_cache
        assert report.cache_hit_rate == 0.0

    def test_residency_beats_uncached(self, thresholds, config, arrivals):
        base = make_engine(thresholds).serve(config, arrivals)
        cached = make_engine(
            thresholds,
            cache=CachePolicy("static-residency")).serve(config, arrivals)
        assert cached.tracks_cache
        assert cached.cache_hits > 0
        assert cached.p50 < base.p50
        assert cached.p99 < base.p99
        assert cached.num_requests == base.num_requests

    def test_report_carries_per_serve_deltas(self, thresholds, config,
                                             arrivals):
        engine = make_engine(thresholds, cache=CachePolicy("static-residency"))
        first = engine.serve(config, arrivals)
        second = engine.serve(config, arrivals)
        # Stats are cumulative on the instance; reports carry the delta.
        assert second.cache_hits == first.cache_hits
        assert second.cache_misses == first.cache_misses

    def test_shared_instance_passes_verbatim(self, thresholds, config,
                                             arrivals):
        cache = DecoderWeightCache()
        engine = make_engine(thresholds, cache=cache)
        assert engine.cache_instance is cache
        cold = engine.serve(config, arrivals)
        assert cold.cache_misses > 0 and cold.cache_hits == 0
        warm_engine = make_engine(thresholds, cache=cache)
        warm = warm_engine.serve(config, arrivals)
        assert warm.cache_hits == cold.cache_misses
        assert warm.cache_misses == 0

    def test_batch_shared_mirror_hits_everything(self, thresholds, config,
                                                 arrivals):
        cache = BatchResultCache(epoch_seconds=0.05)
        engine = make_engine(thresholds, cache=cache)
        primary = engine.serve(config, arrivals)
        mirror = engine.serve(config, arrivals)
        assert primary.cache_hits == 0
        assert mirror.cache_misses == 0
        assert mirror.cache_hits == primary.cache_misses
        assert mirror.p50 < primary.p50

    def test_cache_composes_with_inert_resilience_bit_for_bit(
            self, thresholds, config, arrivals):
        # Pin: cache + a fault-free ResiliencePolicy() is byte-identical to
        # the cached plain engine — the resilient executor adds nothing
        # when no faults fire (slip stays 0.0, hedges never trigger).
        import numpy as np

        from repro.resilience import ResiliencePolicy
        from repro.resilience.report import ResilientServingReport

        plain = make_engine(
            thresholds,
            cache=CachePolicy("static-residency")).serve(config, arrivals)
        composed = make_engine(
            thresholds, cache=CachePolicy("static-residency"),
            resilience=ResiliencePolicy()).serve(config, arrivals)
        assert isinstance(composed, ResilientServingReport)
        assert np.array_equal(composed.latencies, plain.latencies)
        assert np.array_equal(composed.queue_delays, plain.queue_delays)
        assert np.array_equal(composed.service_latencies,
                              plain.service_latencies)
        # The composed report carries BOTH cache counters and fault stats.
        assert composed.cache_hits == plain.cache_hits
        assert composed.cache_misses == plain.cache_misses
        assert composed.tracks_cache
        assert composed.retries_total == 0
        assert composed.shed_requests == 0
        assert composed.availability == 1.0

    def test_empty_cache_plus_resilience_matches_uncached(
            self, thresholds, config, arrivals):
        # Pin: a cache that admits nothing leaves every batch at its
        # uncached service time, so cache + resilience is byte-identical
        # to the uncached resilient engine — faults and all.
        import numpy as np

        from repro.resilience import ResiliencePolicy
        from repro.resilience.faults import (
            FaultInjector,
            LatencySpikeFault,
            TransientErrorFault,
        )

        def policy():
            return ResiliencePolicy(injector=FaultInjector(
                seed=5,
                spike=LatencySpikeFault(probability=0.2, multiplier=3.0),
                transient=TransientErrorFault(probability=0.15)))

        uncached = make_engine(
            thresholds, resilience=policy()).serve(config, arrivals)
        composed = make_engine(
            thresholds,
            cache=CachePolicy("static-residency", budget_bytes=1),
            resilience=policy()).serve(config, arrivals)
        assert composed.cache_hits == 0
        assert np.array_equal(composed.latencies, uncached.latencies)
        assert np.array_equal(composed.queue_delays, uncached.queue_delays)
        assert np.array_equal(composed.service_latencies,
                              uncached.service_latencies)
        assert composed.retries_total == uncached.retries_total
        assert composed.spike_events == uncached.spike_events

    def test_closed_loop_serve_uses_the_cache_too(self, thresholds, config):
        # serve_closed funnels through serve(), so a cached engine is
        # cached in every serving mode; the uncached engine's seed parity
        # is pinned by the existing serve_closed regression tests.
        base = make_engine(thresholds).serve_closed(64, config)
        cached = make_engine(
            thresholds,
            cache=CachePolicy("static-residency")).serve_closed(64, config)
        assert base.cache_hits is None
        assert cached.tracks_cache
        assert cached.p50 < base.p50


class TestServerPassThrough:
    def test_server_accepts_cache_policy(self, thresholds, config):
        server = SecureDlrmServer(TERABYTE_SPEC.table_sizes, DIM,
                                  DLRM_DHE_UNIFORM_64, thresholds,
                                  cache=CachePolicy("static-residency"))
        report = server.serve_poisson(128, 2000.0, config, rng=3)
        assert report.tracks_cache
        assert report.cache_hits > 0


class TestScatterGather:
    @staticmethod
    def make_cluster_engine(thresholds, cache):
        from repro.cluster.router import ShardRouter
        from repro.cluster.scatter import ScatterGatherEngine

        router = ShardRouter(2)
        return ScatterGatherEngine(TERABYTE_SPEC.table_sizes, DIM,
                                   DLRM_DHE_UNIFORM_64, thresholds, router,
                                   cache=cache)

    def test_takes_policy_not_instance(self, thresholds):
        with pytest.raises(TypeError, match="CachePolicy"):
            self.make_cluster_engine(thresholds,
                                     StaticResidencyCache(2 ** 24))

    def test_gathered_report_sums_shard_caches(self, thresholds, config,
                                               arrivals):
        engine = self.make_cluster_engine(
            thresholds, CachePolicy("static-residency"))
        result = engine.serve(config, arrivals,
                              BatchingPolicy(max_batch_size=BATCH,
                                             max_wait_seconds=0.002))
        shard_hits = sum(r.cache_hits or 0
                         for r in result.shard_reports.values())
        assert result.report.tracks_cache
        assert result.report.cache_hits == shard_hits
        assert shard_hits > 0
