"""The cache leakage audit: honest policies pass, the LRU is caught."""

import pytest

from repro.cache.audit import (
    CacheLeakageError,
    audit_cache,
    check_oblivious_cache,
    default_cache_workloads,
    replay_cache,
)
from repro.cache.policy import (
    CACHE_REGION,
    BatchResultCache,
    DecoderWeightCache,
    IndexKeyedLRUCache,
    StaticResidencyCache,
)
from repro.oblivious.trace import MemoryTracer

FACTORIES = {
    "static-residency": lambda t: StaticResidencyCache(2 ** 24, tracer=t),
    "decoder-reuse": lambda t: DecoderWeightCache(tracer=t),
    "batch-shared": lambda t: BatchResultCache(tracer=t),
}


class TestHonestPolicies:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_exact_mode_audit_passes(self, name):
        finding = audit_cache(FACTORIES[name], name=name)
        assert finding.passed, finding
        assert not finding.leak_detected
        assert finding.divergence == 0.0

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_check_returns_finding(self, name):
        finding = check_oblivious_cache(FACTORIES[name], name=name)
        assert finding.passed

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_decisions_are_traced(self, name):
        tracer = MemoryTracer()
        replay_cache(FACTORIES[name](tracer),
                     default_cache_workloads()[0])
        events = tracer.snapshot()
        assert events, "policy recorded no admission decisions"
        assert {event.region for event in events} == {CACHE_REGION}


class TestNegativeControl:
    def test_lru_is_flagged(self):
        finding = audit_cache(lambda t: IndexKeyedLRUCache(64, tracer=t),
                              name="index-keyed-lru",
                              expect_oblivious=False)
        assert finding.leak_detected
        assert finding.divergence > 0.0
        assert finding.passed      # leak expected -> finding passes

    def test_check_raises(self):
        with pytest.raises(CacheLeakageError, match="side channel"):
            check_oblivious_cache(lambda t: IndexKeyedLRUCache(64, tracer=t),
                                  name="index-keyed-lru")


class TestWorkloads:
    def test_default_workloads_are_contrasting(self):
        workloads = default_cache_workloads()
        assert len(workloads) == 3
        assert len({tuple(w) for w in workloads}) == 3
        lengths = {len(w) for w in workloads}
        assert len(lengths) == 1    # equal length: divergence is shape-free

    def test_validation(self):
        with pytest.raises(ValueError):
            default_cache_workloads(num_rows=0)
