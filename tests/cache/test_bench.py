"""Cache bench determinism + gate wiring (the CI cache-smoke job in
miniature)."""

import json

import pytest

from repro.cache import bench


@pytest.fixture(scope="module")
def report():
    return bench.run_bench(seed=3)


class TestBenchReport:
    def test_all_gates_pass(self, report):
        assert report["gates"]["passed"], report["gates"]

    def test_covers_every_scenario(self, report):
        names = [scenario["name"] for scenario in report["scenarios"]]
        assert names == ["baseline", "static-residency",
                         "decoder-reuse-cold", "decoder-reuse-shared",
                         "batch-shared"]

    def test_latency_win_is_in_the_numbers(self, report):
        by_name = {s["name"]: s for s in report["scenarios"]}
        base = by_name["baseline"]
        assert base["cache_hits"] is None
        assert by_name["static-residency"]["p99_seconds"] \
            < base["p99_seconds"]
        assert by_name["batch-shared"]["p50_seconds"] < base["p50_seconds"]

    def test_decoder_admissions_counted_not_timed(self, report):
        assert report["decoder_admissions_shared"] == report["dhe_features"]
        assert report["decoder_admissions_cold"] \
            == report["dhe_features"] * report["epochs"]

    def test_skew_stats_identical_per_policy(self, report):
        for name, per_skew in report["skew_stats"].items():
            assert len(per_skew) == len(report["skews"])
            assert all(stats == per_skew[0] for stats in per_skew), name

    def test_audit_includes_negative_control(self, report):
        findings = {f["subject"]: f for f in report["audit"]["findings"]}
        assert findings["index-keyed-lru"]["leak_detected"]
        for name in ("static-residency", "decoder-reuse", "batch-shared"):
            assert not findings[name]["leak_detected"], name

    def test_report_is_deterministic_and_json_stable(self, report):
        again = bench.run_bench(seed=3)
        assert (json.dumps(report, sort_keys=True)
                == json.dumps(again, sort_keys=True))

    def test_different_seed_still_passes(self, report):
        other = bench.run_bench(seed=4)
        assert other["gates"]["passed"]
        assert other["scenarios"][0]["p50_seconds"] \
            != report["scenarios"][0]["p50_seconds"]


class TestCli:
    def test_main_json_round_trips(self, tmp_path):
        out = tmp_path / "cache_bench.json"
        code = bench.main(["--seed", "3", "--json", str(out), "--no-timing"])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["gates"]["passed"]
        assert payload["seed"] == 3
