"""Admission policies: budgets, determinism, and secret-independence."""

import pytest

from repro.cache.audit import (
    AUDIT_TABLE_SIZES,
    audit_allocations,
    audit_pricer,
)
from repro.cache.policy import (
    CACHE_KINDS,
    BatchMetadata,
    BatchResultCache,
    CachePolicy,
    DecoderWeightCache,
    IndexKeyedLRUCache,
    SecretIndependentCache,
    StaticResidencyCache,
    resolve_cache,
)
from repro.costmodel.memory import table_bytes
from repro.serving.engine import ServingConfig


@pytest.fixture(scope="module")
def pricer():
    return audit_pricer()


@pytest.fixture(scope="module")
def allocations():
    return audit_allocations()


@pytest.fixture
def config(pricer):
    return ServingConfig(batch_size=pricer.batch_size)


def meta(epoch=0, index=0, size=8):
    return BatchMetadata(epoch=epoch, index_in_epoch=index, size=size)


class TestCachePolicy:
    def test_unknown_kind_lists_valid_kinds(self):
        with pytest.raises(ValueError) as excinfo:
            CachePolicy("hot-lru")
        message = str(excinfo.value)
        for kind in CACHE_KINDS:
            assert repr(kind) in message

    def test_builds_every_kind(self):
        built = {kind: CachePolicy(kind).build() for kind in CACHE_KINDS}
        assert isinstance(built["static-residency"], StaticResidencyCache)
        assert isinstance(built["decoder-reuse"], DecoderWeightCache)
        assert isinstance(built["batch-shared"], BatchResultCache)

    def test_index_lru_is_not_buildable(self):
        with pytest.raises(ValueError, match="side channel"):
            CachePolicy("index-keyed-lru")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CachePolicy("static-residency", budget_bytes=0)
        with pytest.raises(ValueError):
            CachePolicy("batch-shared", epoch_seconds=0.0)


class TestResolveCache:
    def test_none_passthrough(self):
        assert resolve_cache(None) is None

    def test_policy_builds(self):
        cache = resolve_cache(CachePolicy("decoder-reuse"))
        assert isinstance(cache, DecoderWeightCache)

    def test_instance_passthrough(self):
        cache = DecoderWeightCache()
        assert resolve_cache(cache) is cache

    def test_duck_typed_passthrough(self):
        class Fake:
            def plan(self, *args, **kwargs):
                pass

            def schedule_seconds(self):
                return 1.0

            def batch_seconds(self, meta, indices=None):
                return 1.0

        fake = Fake()
        assert resolve_cache(fake) is fake

    def test_not_a_cache(self):
        with pytest.raises(TypeError):
            resolve_cache(42)


class TestStaticResidency:
    def test_respects_budget(self, allocations, config, pricer):
        budget = table_bytes(AUDIT_TABLE_SIZES[0], pricer.embedding_dim) \
            + table_bytes(AUDIT_TABLE_SIZES[1], pricer.embedding_dim)
        cache = StaticResidencyCache(budget)
        cache.plan(allocations, config, pricer)
        assert cache.resident_tables == (0, 1)
        assert cache.stats.bytes_resident <= budget

    def test_pins_smallest_tables_first(self, allocations, config, pricer):
        cache = StaticResidencyCache(
            table_bytes(AUDIT_TABLE_SIZES[0], pricer.embedding_dim))
        cache.plan(allocations, config, pricer)
        assert cache.resident_tables == (0,)

    def test_dhe_feature_pays_full_table_bytes(self, config, pricer,
                                               allocations):
        # The 65536-row DHE feature's decoder is tiny, but pinning the
        # table must pay the materialised table, not the decoder.
        big = allocations[-1]
        assert big.technique != "scan"
        assert pricer.table_footprint_bytes(big) \
            == table_bytes(big.table_size, pricer.embedding_dim)
        assert pricer.table_footprint_bytes(big) > pricer.footprint_bytes(big)

    def test_resident_features_get_cheaper(self, allocations, config, pricer):
        cache = StaticResidencyCache(2 ** 40)   # everything fits
        cache.plan(allocations, config, pricer)
        assert cache.schedule_seconds() < pricer.batch_seconds(allocations)

    def test_workload_is_ignored(self, allocations, config, pricer):
        plain = StaticResidencyCache(2 ** 24)
        plain.plan(allocations, config, pricer)
        skewed = StaticResidencyCache(2 ** 24)
        skewed.plan(allocations, config, pricer, workload=[0] * 1024)
        assert skewed.resident_tables == plain.resident_tables
        assert skewed.schedule_seconds() == plain.schedule_seconds()

    def test_hits_and_misses_count_features(self, allocations, config,
                                            pricer):
        cache = StaticResidencyCache(2 ** 24)
        cache.plan(allocations, config, pricer)
        resident = len(cache.resident_tables)
        cache.batch_seconds(meta())
        cache.batch_seconds(meta(index=1))
        assert cache.stats.hits == 2 * resident
        assert cache.stats.misses == 2 * (len(allocations) - resident)

    def test_replanning_does_not_recount_admissions(self, allocations,
                                                    config, pricer):
        cache = StaticResidencyCache(2 ** 24)
        cache.plan(allocations, config, pricer)
        once = cache.stats.admissions
        cache.plan(allocations, config, pricer)
        assert cache.stats.admissions == once


class TestDecoderWeightCache:
    def test_second_plan_hits_every_decoder(self, allocations, config,
                                            pricer):
        cache = DecoderWeightCache()
        cache.plan(allocations, config, pricer)
        dhe = sum(1 for a in allocations if a.technique != "scan")
        assert cache.stats.misses == dhe
        assert cache.serve_setup_seconds() > 0.0
        cache.plan(allocations, config, pricer)
        assert cache.stats.hits == dhe
        assert cache.serve_setup_seconds() == 0.0

    def test_generator_store_shares_objects(self):
        cache = DecoderWeightCache()
        builds = []

        def builder():
            builds.append(1)
            return object()

        first = cache.generator(("dhe-varied", 4096, 16), builder)
        second = cache.generator(("dhe-varied", 4096, 16), builder)
        assert first is second
        assert len(builds) == 1
        assert cache.generators_built() == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_shared_runtime_is_singleton(self):
        cache = DecoderWeightCache()
        assert cache.shared_runtime() is cache.shared_runtime()


class TestBatchResultCache:
    def test_same_batch_key_hits(self, allocations, config, pricer):
        cache = BatchResultCache()
        cache.plan(allocations, config, pricer)
        miss = cache.batch_seconds(meta())
        hit = cache.batch_seconds(meta())
        assert hit < miss
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_distinct_metadata_misses(self, allocations, config, pricer):
        cache = BatchResultCache()
        cache.plan(allocations, config, pricer)
        cache.batch_seconds(meta())
        cache.batch_seconds(meta(epoch=1))
        cache.batch_seconds(meta(index=1))
        cache.batch_seconds(meta(size=4))
        assert cache.stats.misses == 4 and cache.stats.hits == 0

    def test_generation_roll_evicts_out_of_scope(self, allocations, config,
                                                 pricer):
        cache = BatchResultCache(keep_generations=1)
        cache.plan(allocations, config, pricer)
        cache.batch_seconds(meta())
        cache.advance_generation()          # still within keep_generations
        assert cache.entries() == 1
        cache.batch_seconds(meta())          # re-admitted under generation 1
        cache.advance_generation()
        assert cache.stats.evictions == 1
        assert cache.entries() == 1
        cache.advance_generation()
        assert cache.entries() == 0
        assert cache.stats.bytes_resident == 0

    def test_schedule_is_conservative_full_price(self, allocations, config,
                                                 pricer):
        cache = BatchResultCache()
        cache.plan(allocations, config, pricer)
        assert cache.schedule_seconds() \
            == pytest.approx(pricer.batch_seconds(allocations))


class TestIndexKeyedLRU:
    def test_behaves_as_an_lru(self, allocations, config, pricer):
        cache = IndexKeyedLRUCache(2)
        cache.plan(allocations, config, pricer)
        cache.batch_seconds(meta(), indices=[1, 2, 1, 3])
        # 1,2 admitted; 1 hits; 3 evicts 2 (LRU order after the 1-hit).
        assert cache.stats.hits == 1
        assert cache.stats.misses == 3
        assert cache.stats.evictions == 1
        cache.batch_seconds(meta(), indices=[2])
        assert cache.stats.misses == 4

    def test_stats_follow_the_secret(self, allocations, config, pricer):
        hot = IndexKeyedLRUCache(8)
        hot.plan(allocations, config, pricer)
        hot.batch_seconds(meta(), indices=[0] * 16)
        cold = IndexKeyedLRUCache(8)
        cold.plan(allocations, config, pricer)
        cold.batch_seconds(meta(), indices=list(range(16)))
        assert hot.stats.to_dict() != cold.stats.to_dict()


class TestProtocolDefaults:
    def test_defaults(self):
        cache = SecretIndependentCache()
        assert cache.serve_setup_seconds() == 0.0
        cache.advance_generation()           # no-op by default
        with pytest.raises(NotImplementedError):
            cache.schedule_seconds()
