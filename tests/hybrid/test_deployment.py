"""Hybrid-deployment packaging: save/load round-trips and reconfiguration."""

import numpy as np
import pytest

from repro.costmodel.latency import DheShape
from repro.data.criteo import DlrmDatasetSpec, SyntheticCtrDataset
from repro.embedding.dhe import DHEEmbedding
from repro.embedding.hybrid import HybridEmbedding
from repro.hybrid.deployment import (
    load_hybrid_deployment,
    save_hybrid_deployment,
)
from repro.hybrid.thresholds import ThresholdDatabase, ThresholdKey
from repro.models.dlrm import DLRM
from repro.models.training import train_dlrm

SPEC = DlrmDatasetSpec("deploy-test", 13, (40, 9000), embedding_dim=8)
BOTTOM = (13, 16, 8)
TOP = (16,)
SHAPE = DheShape(k=16, fc_sizes=(16,), out_dim=8)
SEEDS = (101, 202)


@pytest.fixture
def trained_bundle():
    hybrids = []

    def factory(size, dim):
        dhe = DHEEmbedding(size, dim, shape=SHAPE, rng=SEEDS[len(hybrids)])
        hybrid = HybridEmbedding(dhe)
        hybrids.append(hybrid)
        return hybrid

    model = DLRM(SPEC, factory, bottom_sizes=BOTTOM, top_hidden_sizes=TOP,
                 rng=3)
    train_dlrm(model, SyntheticCtrDataset(SPEC, seed=0), steps=30,
               batch_size=32, lr=2e-3)

    thresholds = ThresholdDatabase(dhe_technique="dhe-uniform")
    thresholds.thresholds[ThresholdKey(8, 32, 1)] = 1000.0
    thresholds.thresholds[ThresholdKey(8, 128, 1)] = 50.0
    return model, hybrids, thresholds


class TestRoundTrip:
    def test_predictions_survive_save_load(self, trained_bundle, tmp_path,
                                           rng):
        model, hybrids, thresholds = trained_bundle
        save_hybrid_deployment(str(tmp_path), model, hybrids, thresholds,
                               BOTTOM, TOP, SEEDS)
        deployment = load_hybrid_deployment(str(tmp_path))

        dense = rng.normal(size=(8, 13))
        sparse = np.stack([rng.integers(0, s, size=8)
                           for s in SPEC.table_sizes], axis=1)
        original = model(dense, sparse).data
        restored = deployment.model(dense, sparse).data
        np.testing.assert_allclose(original, restored, atol=1e-10)

    def test_configure_allocates_per_configuration(self, trained_bundle,
                                                   tmp_path):
        model, hybrids, thresholds = trained_bundle
        save_hybrid_deployment(str(tmp_path), model, hybrids, thresholds,
                               BOTTOM, TOP, SEEDS)
        deployment = load_hybrid_deployment(str(tmp_path))

        # threshold 1000 -> only the 40-row table scans
        assert deployment.configure(batch=32, threads=1) == 1
        assert deployment.hybrids[0].active == "scan"
        assert deployment.hybrids[1].active == "dhe"
        # threshold 50 -> everything above 50 uses DHE
        assert deployment.configure(batch=128, threads=1) == 1

    def test_reconfiguration_preserves_outputs(self, trained_bundle,
                                               tmp_path, rng):
        """Flipping representations at deploy time must not change the
        model function (the 'no accuracy loss' guarantee)."""
        model, hybrids, thresholds = trained_bundle
        save_hybrid_deployment(str(tmp_path), model, hybrids, thresholds,
                               BOTTOM, TOP, SEEDS)
        deployment = load_hybrid_deployment(str(tmp_path))

        dense = rng.normal(size=(4, 13))
        sparse = np.stack([rng.integers(0, s, size=4)
                           for s in SPEC.table_sizes], axis=1)
        deployment.configure(batch=32, threads=1)
        a = deployment.model(dense, sparse).data
        deployment.configure(batch=128, threads=1)
        b = deployment.model(dense, sparse).data
        np.testing.assert_allclose(a, b, atol=1e-10)


class TestValidation:
    def test_seed_count_checked(self, trained_bundle, tmp_path):
        model, hybrids, thresholds = trained_bundle
        with pytest.raises(ValueError):
            save_hybrid_deployment(str(tmp_path), model, hybrids, thresholds,
                                   BOTTOM, TOP, encoder_seeds=(1,))

    def test_hybrid_count_checked(self, trained_bundle, tmp_path):
        model, hybrids, thresholds = trained_bundle
        with pytest.raises(ValueError):
            save_hybrid_deployment(str(tmp_path), model, hybrids[:1],
                                   thresholds, BOTTOM, TOP, SEEDS)
