"""DHE size-search tests (§IV-C3)."""

import pytest

from repro.costmodel.latency import DheShape
from repro.data.criteo import DlrmDatasetSpec
from repro.hybrid.tuning import (
    default_shape_ladder,
    dlrm_quality_fn,
    find_minimal_dhe_shape,
)


class TestLadder:
    def test_costs_increasing(self):
        ladder = default_shape_ladder(out_dim=16)
        costs = [shape.flops_per_embedding() for shape in ladder]
        assert costs == sorted(costs)

    def test_out_dim_propagated(self):
        assert all(shape.out_dim == 8
                   for shape in default_shape_ladder(out_dim=8))


class TestSearch:
    def _ladder(self):
        return [DheShape(k, (k,), 8) for k in (8, 16, 32, 64)]

    def test_stops_at_first_sufficient(self):
        evaluated = []

        def quality(shape):
            evaluated.append(shape.k)
            return {8: 0.6, 16: 0.72, 32: 0.8, 64: 0.81}[shape.k]

        result = find_minimal_dhe_shape(quality, baseline_metric=0.7,
                                        candidates=self._ladder())
        assert result.succeeded
        assert result.chosen.k == 16
        assert evaluated == [8, 16]  # never trained the bigger stacks

    def test_tolerance_lowers_the_bar(self):
        result = find_minimal_dhe_shape(lambda s: 0.68,
                                        baseline_metric=0.7,
                                        candidates=self._ladder(),
                                        tolerance=0.03)
        assert result.chosen.k == 8

    def test_failure_reported_with_trace(self):
        result = find_minimal_dhe_shape(lambda s: 0.1, baseline_metric=0.9,
                                        candidates=self._ladder())
        assert not result.succeeded
        assert len(result.trace) == 4

    def test_unordered_candidates_rejected(self):
        ladder = self._ladder()[::-1]
        with pytest.raises(ValueError):
            find_minimal_dhe_shape(lambda s: 1.0, 0.5, ladder)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            find_minimal_dhe_shape(lambda s: 1.0, 0.5, [])


class TestDlrmQualityFn:
    def test_end_to_end_search_finds_small_stack(self):
        """On an easy dataset a modest DHE already matches a weak baseline —
        the search should terminate early and really train models."""
        spec = DlrmDatasetSpec("tune", 13, (40, 60), embedding_dim=8)
        quality = dlrm_quality_fn(spec, dataset_seed=0, steps=60,
                                  batch_size=64, eval_samples=1024)
        ladder = [DheShape(k, (max(k, 16),), 8) for k in (8, 32)]
        result = find_minimal_dhe_shape(quality, baseline_metric=0.75,
                                        candidates=ladder, tolerance=0.02)
        assert result.succeeded
        assert result.trace[0][1] > 0.5  # a real trained metric
