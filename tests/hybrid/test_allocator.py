"""Algorithm 3 allocation tests + end-to-end hybrid DLRM wiring."""

import math

import numpy as np
import pytest

from repro.data.criteo import KAGGLE_TABLE_SIZES
from repro.embedding.dhe import DHEEmbedding
from repro.embedding.hybrid import TECHNIQUE_DHE, TECHNIQUE_SCAN, HybridEmbedding
from repro.hybrid.allocator import (
    allocate_by_threshold,
    allocate_for_configuration,
    apply_allocations,
    count_scan_features,
)
from repro.hybrid.thresholds import ThresholdDatabase, ThresholdKey


class TestAllocateByThreshold:
    def test_split(self):
        allocations = allocate_by_threshold((10, 100, 1000), threshold=100)
        assert [a.technique for a in allocations] == \
            [TECHNIQUE_SCAN, TECHNIQUE_SCAN, TECHNIQUE_DHE]

    def test_zero_threshold_all_dhe(self):
        allocations = allocate_by_threshold((10, 100), threshold=0.0)
        assert count_scan_features(allocations) == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            allocate_by_threshold((10,), threshold=-1)

    def test_kaggle_split_at_paper_threshold(self):
        """Paper §VI-B4: 16 of 26 Kaggle tables scan. Kaggle uses dim 16,
        whose scan/DHE threshold sits near 1e4 (scanning narrow rows is
        cheap)."""
        allocations = allocate_by_threshold(KAGGLE_TABLE_SIZES, 10_000)
        assert count_scan_features(allocations) == 16


class TestAllocateForConfiguration:
    def _db(self, value):
        db = ThresholdDatabase(dhe_technique="dhe-uniform")
        db.thresholds[ThresholdKey(64, 32, 1)] = value
        return db

    def test_uses_profiled_threshold(self):
        allocations = allocate_for_configuration((10, 5000), self._db(100.0),
                                                 dim=64, batch=32, threads=1)
        assert [a.technique for a in allocations] == \
            [TECHNIQUE_SCAN, TECHNIQUE_DHE]

    def test_infinite_threshold_all_scan(self):
        allocations = allocate_for_configuration((10, 5000),
                                                 self._db(math.inf),
                                                 dim=64, batch=32, threads=1)
        assert count_scan_features(allocations) == 2


class TestAllocatorEdgeCases:
    """Previously untested paths: empty table set, a one-row table, and a
    profile that forces every table over the threshold (uniform DHE)."""

    def _db(self, value):
        db = ThresholdDatabase(dhe_technique="dhe-uniform")
        db.thresholds[ThresholdKey(64, 32, 1)] = value
        return db

    def test_empty_table_list_yields_no_allocations(self):
        allocations = allocate_for_configuration((), self._db(100.0),
                                                 dim=64, batch=32, threads=1)
        assert allocations == []
        assert count_scan_features(allocations) == 0

    def test_empty_table_list_with_infinite_threshold(self):
        # The inf clamp used to call max() on the empty set and crash.
        allocations = allocate_for_configuration((), self._db(math.inf),
                                                 dim=64, batch=32, threads=1)
        assert allocations == []

    def test_empty_table_list_by_threshold(self):
        assert allocate_by_threshold((), threshold=100.0) == []

    def test_single_one_row_table_scans(self):
        # A one-row table is the degenerate scan: any positive threshold
        # covers it, and the sweep is a single row.
        allocations = allocate_for_configuration((1,), self._db(100.0),
                                                 dim=64, batch=32, threads=1)
        assert [a.technique for a in allocations] == [TECHNIQUE_SCAN]
        assert allocations[0].table_size == 1

    def test_single_one_row_table_hybrid_end_to_end(self):
        hybrid = HybridEmbedding(DHEEmbedding(1, 4, k=8, fc_sizes=(8,),
                                              rng=0))
        allocations = allocate_by_threshold((1,), threshold=1.0)
        apply_allocations([hybrid], allocations)
        assert hybrid.active == TECHNIQUE_SCAN
        out = hybrid.generate(np.array([0, 0, 0]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out[0], out[1], atol=0)

    def test_all_tables_over_threshold_forces_uniform_dhe(self):
        # Threshold 0 (DHE always cheaper on the profiled grid): every
        # feature flips to the DHE representation.
        sizes = (10, 100, 1000)
        allocations = allocate_for_configuration(sizes, self._db(0.0),
                                                 dim=64, batch=32, threads=1)
        assert [a.technique for a in allocations] == [TECHNIQUE_DHE] * 3
        hybrids = [HybridEmbedding(DHEEmbedding(size, 4, k=8, fc_sizes=(8,),
                                                rng=i))
                   for i, size in enumerate(sizes)]
        apply_allocations(hybrids, allocations)
        assert all(h.active == TECHNIQUE_DHE for h in hybrids)


class TestApplyAllocations:
    def _hybrids(self, sizes):
        return [HybridEmbedding(DHEEmbedding(size, 4, k=8, fc_sizes=(8,),
                                             rng=i))
                for i, size in enumerate(sizes)]

    def test_flips_representations(self):
        sizes = (20, 5000)
        hybrids = self._hybrids(sizes)
        allocations = allocate_by_threshold(sizes, threshold=100)
        apply_allocations(hybrids, allocations)
        assert hybrids[0].active == TECHNIQUE_SCAN
        assert hybrids[1].active == TECHNIQUE_DHE

    def test_outputs_unchanged_by_allocation(self):
        """Switching representations must not change the model function —
        the paper's 'no accuracy loss' hybrid property."""
        sizes = (20, 40)
        hybrids = self._hybrids(sizes)
        indices = [np.array([3, 7]), np.array([11, 39])]
        before = [h.generate(i) for h, i in zip(hybrids, indices)]
        apply_allocations(hybrids, allocate_by_threshold(sizes, 30))
        after = [h.generate(i) for h, i in zip(hybrids, indices)]
        for b, a in zip(before, after):
            np.testing.assert_allclose(b, a, atol=1e-12)

    def test_count_mismatch_raises(self):
        hybrids = self._hybrids((20,))
        with pytest.raises(ValueError):
            apply_allocations(hybrids, allocate_by_threshold((20, 30), 25))

    def test_size_mismatch_raises(self):
        hybrids = self._hybrids((20,))
        allocations = allocate_by_threshold((21,), 25)
        with pytest.raises(ValueError):
            apply_allocations(hybrids, allocations)
