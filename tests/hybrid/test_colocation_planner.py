"""Co-location planner tests (Figs 9 and 13 mechanisms)."""

import pytest

from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.hybrid.allocator import allocate_by_threshold
from repro.hybrid.colocation_planner import (
    colocation_sweep,
    dlrm_tenant,
    latency_bounded_throughput,
    mixed_allocation_latency,
)

SIZES = (100, 1000, 50_000, 2_000_000)
DIM = 64


def make_tenant(threshold):
    allocations = allocate_by_threshold(SIZES, threshold)
    return dlrm_tenant(SIZES, DIM, allocations, DLRM_DHE_UNIFORM_64,
                       batch=32, varied=True)


class TestDlrmTenant:
    def test_counts_features(self):
        tenant = make_tenant(1000)
        assert tenant.num_scan_features == 2
        assert tenant.num_dhe_features == 2

    def test_solo_latency_sums(self):
        all_dhe = make_tenant(0)
        hybrid = make_tenant(1000)
        assert hybrid.demand.solo_latency < all_dhe.demand.solo_latency

    def test_dhe_dominated_tenant_labeled_dhe(self):
        assert make_tenant(1000).demand.technique == "dhe"

    def test_scan_dominated_tenant_labeled_scan(self):
        tenant = make_tenant(10**7)  # everything scans, incl. the 2e6 table
        assert tenant.demand.technique == "scan"

    def test_allocation_length_checked(self):
        with pytest.raises(ValueError):
            dlrm_tenant(SIZES, DIM, allocate_by_threshold(SIZES[:2], 10),
                        DLRM_DHE_UNIFORM_64, batch=32)


class TestColocationSweep:
    def test_throughput_monotone_until_contention(self):
        tenant = make_tenant(1000)
        sweep = colocation_sweep(tenant, max_copies=8, batch=32)
        throughputs = [tp for _, _, tp in sweep]
        assert throughputs == sorted(throughputs)

    def test_latency_never_below_solo(self):
        tenant = make_tenant(1000)
        sweep = colocation_sweep(tenant, max_copies=32, batch=32)
        assert all(latency >= tenant.demand.solo_latency * 0.999
                   for _, latency, _ in sweep)


class TestLatencyBoundedThroughput:
    def test_filters_by_sla(self):
        sweep = [(1, 0.010, 100.0), (2, 0.019, 190.0), (3, 0.030, 250.0)]
        assert latency_bounded_throughput(sweep, 0.020) == 190.0

    def test_no_feasible_point(self):
        assert latency_bounded_throughput([(1, 0.5, 10.0)], 0.020) == 0.0

    def test_fig13_hybrid_beats_all_dhe(self):
        """The paper's headline: hybrid lifts SLA-bounded throughput."""
        hybrid = make_tenant(1000)
        all_dhe = make_tenant(0)
        hybrid_tp = latency_bounded_throughput(
            colocation_sweep(hybrid, 28, 32), 0.020)
        dhe_tp = latency_bounded_throughput(
            colocation_sweep(all_dhe, 28, 32), 0.020)
        assert hybrid_tp > dhe_tp


class TestMixedAllocation:
    def test_small_table_all_scan_best(self):
        all_scan = mixed_allocation_latency(1000, DIM, 24, 0,
                                            DLRM_DHE_UNIFORM_64, 32)
        all_dhe = mixed_allocation_latency(1000, DIM, 24, 24,
                                           DLRM_DHE_UNIFORM_64, 32)
        assert all_scan < all_dhe

    def test_large_table_all_dhe_best(self):
        all_scan = mixed_allocation_latency(10**6, DIM, 24, 0,
                                            DLRM_DHE_UNIFORM_64, 32)
        all_dhe = mixed_allocation_latency(10**6, DIM, 24, 24,
                                           DLRM_DHE_UNIFORM_64, 32)
        assert all_dhe < all_scan

    def test_colocated_crossover_near_single_model_threshold(self):
        """Fig 9: the paper found 4500 co-located vs 3300 single-model."""
        from repro.experiments.fig09_allocation_sweep import \
            colocated_crossover

        crossover = colocated_crossover()
        assert 1000 < crossover < 20_000

    def test_count_validated(self):
        with pytest.raises(ValueError):
            mixed_allocation_latency(1000, DIM, 24, 25,
                                     DLRM_DHE_UNIFORM_64, 32)
