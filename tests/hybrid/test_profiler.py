"""Offline profiler tests (Algorithm 2 step 1)."""

import pytest

from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.hybrid.profiler import DEFAULT_SIZE_GRID, OfflineProfiler


@pytest.fixture(scope="module")
def profile():
    profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
    return profiler.profile(techniques=("scan", "dhe-uniform", "dhe-varied",
                                        "circuit-oram"),
                            sizes=(100, 10_000, 1_000_000),
                            dims=(64,), batches=(32,), threads_list=(1,))


class TestProfileDatabase:
    def test_latency_lookup(self, profile):
        latency = profile.latency("scan", 100, 64, 32, 1)
        assert latency > 0

    def test_missing_configuration_raises(self, profile):
        with pytest.raises(KeyError):
            profile.latency("scan", 12345, 64, 32, 1)

    def test_curve_ordered_by_size(self, profile):
        curve = profile.curve("scan", 64, 32, 1, (100, 10_000, 1_000_000))
        assert curve == sorted(curve)

    def test_profiled_sizes(self, profile):
        sizes = profile.profiled_sizes("scan", 64, 32, 1)
        assert sizes == [100, 10_000, 1_000_000]

    def test_dhe_uniform_flat_across_sizes(self, profile):
        curve = profile.curve("dhe-uniform", 64, 32, 1,
                              (100, 10_000, 1_000_000))
        assert max(curve) == pytest.approx(min(curve))

    def test_dhe_varied_cheaper_than_uniform_below_base_size(self, profile):
        # k floors at 128 for tables <= 1e6, so the curve is flat there but
        # strictly below the Uniform stack's cost.
        varied = profile.curve("dhe-varied", 64, 32, 1,
                               (100, 10_000, 1_000_000))
        uniform = profile.curve("dhe-uniform", 64, 32, 1,
                                (100, 10_000, 1_000_000))
        assert all(v < u for v, u in zip(varied, uniform))


class TestBackends:
    def test_unknown_technique(self):
        profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
        with pytest.raises(ValueError):
            profiler.profile(techniques=("quantum",), sizes=(100,),
                             dims=(64,))

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            OfflineProfiler(DLRM_DHE_UNIFORM_64, backend="guess")

    def test_measured_backend_runs(self):
        from repro.costmodel.latency import DheShape

        profiler = OfflineProfiler(DheShape(k=16, fc_sizes=(16,), out_dim=8),
                                   backend="measured")
        profile = profiler.profile(techniques=("scan", "dhe-uniform"),
                                   sizes=(64, 65_536), dims=(8,), batches=(4,),
                                   threads_list=(1,))
        assert profile.latency("scan", 64, 8, 4, 1) > 0
        assert profile.latency("dhe-uniform", 64, 8, 4, 1) > 0
        # Measured shape property: scanning 1000x more rows costs more
        # (tiny sizes are dispatch-noise dominated, so compare far apart).
        assert profile.latency("scan", 65_536, 8, 4, 1) > \
            profile.latency("scan", 64, 8, 4, 1)

    def test_backend_instance_passthrough(self):
        from repro.serving.backends import ModelledBackend

        backend = ModelledBackend(DLRM_DHE_UNIFORM_64)
        profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64, backend=backend)
        assert profiler.execution_backend is backend
        assert profiler.backend == "modelled"

    def test_shares_engine_latency_seam(self):
        """Profiler entries equal the backend's answers — one accounting."""
        profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
        profile = profiler.profile(techniques=("scan",), sizes=(10_000,),
                                   dims=(64,), batches=(32,),
                                   threads_list=(1,))
        assert profile.latency("scan", 10_000, 64, 32, 1) == \
            profiler.execution_backend.technique_latency("scan", 10_000, 64,
                                                         32, 1)

    def test_default_grid_spans_dlrm_range(self):
        assert min(DEFAULT_SIZE_GRID) == 100
        assert max(DEFAULT_SIZE_GRID) >= 10**7
