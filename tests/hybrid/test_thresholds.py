"""Threshold extraction tests (Fig 6 trends, curve intersection)."""


import pytest

from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.hybrid.profiler import OfflineProfiler
from repro.hybrid.thresholds import (
    build_threshold_database,
    hybrid_eligible_range,
    intersect_curves,
)


class TestIntersectCurves:
    def test_clean_crossing_interpolated(self):
        sizes = [10, 100, 1000]
        scan = [1.0, 10.0, 100.0]
        dhe = [20.0, 20.0, 20.0]
        crossing = intersect_curves(sizes, scan, dhe)
        assert 100 < crossing < 1000

    def test_scan_always_cheaper_returns_none(self):
        assert intersect_curves([10, 100], [1.0, 2.0], [10.0, 10.0]) is None

    def test_scan_never_cheaper_returns_zero(self):
        assert intersect_curves([10, 100], [5.0, 50.0], [1.0, 1.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            intersect_curves([1, 2], [1.0], [1.0, 2.0])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            intersect_curves([1], [1.0], [2.0])


@pytest.fixture(scope="module")
def thresholds():
    profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
    profile = profiler.profile(techniques=("scan", "dhe-uniform"),
                               dims=(64,), batches=(1, 32, 128),
                               threads_list=(1, 4, 16))
    return build_threshold_database(profile, dims=(64,),
                                    batches=(1, 32, 128),
                                    threads_list=(1, 4, 16))


class TestFig6Trends:
    def test_paper_anchor_batch32_thread1(self, thresholds):
        """Paper Fig 6: threshold ~3300 at batch 32 / 1 thread (dim 64)."""
        value = thresholds.threshold(64, 32, 1)
        assert 2000 < value < 5000

    def test_decreasing_in_batch(self, thresholds):
        values = [thresholds.threshold(64, batch, 1) for batch in (1, 32, 128)]
        assert values[0] > values[1] > values[2]

    def test_increasing_in_threads(self, thresholds):
        values = [thresholds.threshold(64, 32, t) for t in (1, 4, 16)]
        assert values[0] < values[1] < values[2]

    def test_missing_config_raises(self, thresholds):
        with pytest.raises(KeyError):
            thresholds.threshold(64, 999, 1)

    def test_configurations_sorted(self, thresholds):
        keys = thresholds.configurations()
        assert keys == sorted(keys, key=lambda k: (k.dim, k.batch, k.threads))


class TestEligibleRange:
    def test_band_spans_thresholds(self, thresholds):
        low, high = hybrid_eligible_range(thresholds, 64)
        assert low == min(v for v in thresholds.thresholds.values())
        assert high == max(v for v in thresholds.thresholds.values())

    def test_unknown_dim_raises(self, thresholds):
        with pytest.raises(ValueError):
            hybrid_eligible_range(thresholds, 128)
