"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_output, x_value: np.ndarray, atol: float = 1e-5,
                   rtol: float = 1e-4) -> None:
    """Compare autograd gradient to numerical for ``build_output(Tensor)``.

    ``build_output`` maps a Tensor to a scalar Tensor.
    """
    x_value = np.asarray(x_value, dtype=np.float64)
    x = Tensor(x_value.copy(), requires_grad=True)
    out = build_output(x)
    assert out.size == 1, "gradient check requires a scalar output"
    out.backward()
    analytic = x.grad

    def scalar_fn(value: np.ndarray) -> float:
        return float(build_output(Tensor(value)).data.reshape(()))

    numeric = numerical_gradient(scalar_fn, x_value.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
