"""Synthetic Criteo dataset tests: schema, signal, determinism."""

import numpy as np
import pytest

from repro.data.criteo import (
    KAGGLE_SPEC,
    KAGGLE_TABLE_SIZES,
    TERABYTE_SPEC,
    TERABYTE_TABLE_SIZES,
    DlrmDatasetSpec,
    SyntheticCtrDataset,
    scaled_spec,
)


class TestSchemas:
    def test_26_sparse_features(self):
        assert len(KAGGLE_TABLE_SIZES) == 26
        assert len(TERABYTE_TABLE_SIZES) == 26

    def test_13_dense_features(self):
        assert KAGGLE_SPEC.num_dense == 13

    def test_paper_embedding_dims(self):
        assert KAGGLE_SPEC.embedding_dim == 16
        assert TERABYTE_SPEC.embedding_dim == 64

    def test_sizes_capped_at_1e7(self):
        """Paper: 'Criteo [tables] only go up to 1e7'."""
        assert max(KAGGLE_TABLE_SIZES) < 1.1e7
        assert max(TERABYTE_TABLE_SIZES) < 1.1e7

    def test_largest_tables_in_the_millions(self):
        assert sum(1 for s in KAGGLE_TABLE_SIZES if s > 10**6) >= 5

    def test_scaled_spec_caps(self):
        spec = scaled_spec(KAGGLE_SPEC, 500)
        assert max(spec.table_sizes) == 500
        assert spec.num_sparse == 26
        assert spec.embedding_dim == 16

    def test_scaled_spec_preserves_small_tables(self):
        spec = scaled_spec(KAGGLE_SPEC, 500)
        assert spec.table_sizes[KAGGLE_TABLE_SIZES.index(3)] == 3


class TestSyntheticCtrDataset:
    @pytest.fixture
    def dataset(self):
        spec = DlrmDatasetSpec("t", 13, (50, 20, 1000), embedding_dim=8)
        return SyntheticCtrDataset(spec, seed=0)

    def test_batch_shapes(self, dataset):
        batch = dataset.batch(16)
        assert batch.dense.shape == (16, 13)
        assert batch.sparse.shape == (16, 3)
        assert batch.labels.shape == (16,)
        assert len(batch) == 16

    def test_indices_in_range(self, dataset):
        batch = dataset.batch(500)
        for table, size in enumerate((50, 20, 1000)):
            column = batch.sparse[:, table]
            assert column.min() >= 0
            assert column.max() < size

    def test_labels_binary_and_mixed(self, dataset):
        labels = dataset.batch(2000).labels
        assert set(np.unique(labels)) <= {0.0, 1.0}
        assert 0.05 < labels.mean() < 0.95

    def test_deterministic_under_seed(self):
        spec = DlrmDatasetSpec("t", 13, (50,), embedding_dim=8)
        a = SyntheticCtrDataset(spec, seed=7).batch(10)
        b = SyntheticCtrDataset(spec, seed=7).batch(10)
        np.testing.assert_allclose(a.dense, b.dense)
        np.testing.assert_array_equal(a.sparse, b.sparse)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_popularity_skew(self, dataset):
        """Power-law sampling: the head index appears orders of magnitude
        more often than the uniform share (1/1000)."""
        column = dataset.batch(5000).sparse[:, 2]
        counts = np.bincount(column, minlength=1000)
        assert counts[0] > 50 * counts.sum() / 1000
        # And the tail is still reachable.
        assert (counts[500:] > 0).any()

    def test_planted_signal_learnable(self, dataset):
        """The Bayes-optimal scorer must beat chance by a wide margin —
        otherwise the Table V parity experiment would be vacuous."""
        assert dataset.bayes_optimal_auc(num_samples=4000) > 0.8

    def test_batches_list(self, dataset):
        batches = dataset.batches(8, count=3)
        assert len(batches) == 3

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            dataset.batch(0)
