"""Meta table-size synthesis and the Markov text corpus."""

import numpy as np
import pytest

from repro.data.meta_dataset import (
    META_MAX_ROWS,
    META_NUM_TABLES,
    meta_table_sizes,
    total_table_bytes,
)
from repro.data.text import (
    MarkovCorpusGenerator,
    WordTokenizer,
    batchify,
)


class TestMetaTableSizes:
    def test_count_and_cap(self):
        sizes = meta_table_sizes()
        assert len(sizes) == META_NUM_TABLES == 788
        assert max(sizes) == META_MAX_ROWS

    def test_sorted_descending(self):
        sizes = meta_table_sizes()
        assert list(sizes) == sorted(sizes, reverse=True)

    def test_deterministic(self):
        assert meta_table_sizes(seed=1) == meta_table_sizes(seed=1)
        assert meta_table_sizes(seed=1) != meta_table_sizes(seed=2)

    def test_total_near_paper_910gb(self):
        total_gb = total_table_bytes(meta_table_sizes()) / 1e9
        assert 500 < total_gb < 1400

    def test_long_tail(self):
        sizes = meta_table_sizes()
        assert sum(1 for s in sizes if s < 10**5) > 50
        assert sum(1 for s in sizes if s > 10**7) > 10


class TestWordTokenizer:
    def test_roundtrip(self):
        tokenizer = WordTokenizer(100)
        text = "w0003 w0042 w0099"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_unknown_word(self):
        with pytest.raises(KeyError):
            WordTokenizer(10).encode("hello")


class TestMarkovCorpus:
    def test_tokens_in_vocab(self):
        generator = MarkovCorpusGenerator(vocab_size=40, branching=4, seed=0)
        tokens = generator.sample_tokens(500)
        assert tokens.min() >= 0 and tokens.max() < 40

    def test_entropy_below_uniform(self):
        """The chain must be predictable (else finetuning can't help)."""
        generator = MarkovCorpusGenerator(vocab_size=64, branching=4, seed=0)
        assert generator.entropy_rate_bits() < np.log2(64) * 0.5

    def test_deterministic(self):
        a = MarkovCorpusGenerator(32, 4, seed=5).sample_tokens(100)
        b = MarkovCorpusGenerator(32, 4, seed=5).sample_tokens(100)
        np.testing.assert_array_equal(a, b)

    def test_build_corpus(self):
        corpus = MarkovCorpusGenerator(32, 4, seed=0).build_corpus(1000, 200)
        assert corpus.train_tokens.size == 1000
        assert corpus.val_tokens.size == 200
        assert corpus.vocab_size == 32

    def test_branching_bounds_successors(self):
        generator = MarkovCorpusGenerator(vocab_size=32, branching=3, seed=0)
        tokens = generator.sample_tokens(3000)
        successors = {}
        for a, b in zip(tokens[:-1], tokens[1:]):
            successors.setdefault(int(a), set()).add(int(b))
        assert max(len(s) for s in successors.values()) <= 3

    def test_invalid_branching(self):
        with pytest.raises(ValueError):
            MarkovCorpusGenerator(vocab_size=4, branching=10)


class TestBatchify:
    def test_targets_shifted_by_one(self):
        tokens = np.arange(100)
        inputs, targets = batchify(tokens, batch_size=4, seq_len=8, rng=0)
        assert inputs.shape == targets.shape == (4, 8)
        np.testing.assert_array_equal(inputs[:, 1:], targets[:, :-1])

    def test_too_short_stream(self):
        with pytest.raises(ValueError):
            batchify(np.arange(5), batch_size=2, seq_len=8)
