"""GPT model tests: config, forward, prefill/decode equivalence, tying."""

import numpy as np
import pytest

from repro.embedding.dhe import DHEEmbedding
from repro.models.gpt import GPT, GPTConfig, tiny_config


@pytest.fixture
def config():
    return tiny_config(vocab_size=50, embed_dim=16, num_layers=2,
                       num_heads=2, context_length=32)


@pytest.fixture
def model(config):
    return GPT(config, rng=0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GPTConfig(embed_dim=10, num_heads=3)
        with pytest.raises(ValueError):
            GPTConfig(vocab_size=0)

    def test_gpt2_medium_defaults(self):
        config = GPTConfig()
        assert config.vocab_size == 50257
        assert config.embed_dim == 1024
        assert config.num_layers == 24


class TestForward:
    def test_logit_shape(self, model, rng):
        tokens = rng.integers(0, 50, size=(2, 7))
        assert model(tokens).shape == (2, 7, 50)

    def test_rejects_1d_tokens(self, model):
        with pytest.raises(ValueError):
            model(np.array([1, 2, 3]))

    def test_rejects_overlong_sequence(self, model):
        with pytest.raises(ValueError):
            model(np.zeros((1, 33), dtype=int))

    def test_causal(self, model, rng):
        tokens = rng.integers(0, 50, size=(1, 8))
        base = model(tokens).data.copy()
        tokens2 = tokens.copy()
        tokens2[0, 7] = (tokens2[0, 7] + 1) % 50
        out = model(tokens2).data
        np.testing.assert_allclose(out[0, :7], base[0, :7], atol=1e-10)


class TestWeightTying:
    def test_table_embedding_is_tied(self, model):
        assert model.tied_head
        assert model.lm_head_weight is model.token_embedding.weight

    def test_dhe_embedding_gets_own_head(self, config):
        dhe = DHEEmbedding(50, 16, k=8, fc_sizes=(8,), rng=0)
        model = GPT(config, token_embedding=dhe, rng=1)
        assert not model.tied_head
        assert model.lm_head_weight.shape == (50, 16)

    def test_embedding_shape_mismatch_rejected(self, config):
        with pytest.raises(ValueError):
            GPT(config, token_embedding=DHEEmbedding(49, 16, k=8,
                                                     fc_sizes=(8,), rng=0))


class TestPrefillDecodeEquivalence:
    def test_incremental_matches_full(self, model, rng):
        """Prefill + decode steps must equal the full forward pass —
        the correctness invariant of the KV cache."""
        tokens = rng.integers(0, 50, size=(2, 10))
        model.eval()
        full_logits = model(tokens).data

        caches = model.new_caches()
        prefill = model.prefill(tokens[:, :6], caches).data
        np.testing.assert_allclose(prefill, full_logits[:, 5], atol=1e-9)
        for t in range(6, 10):
            step = model.decode_step(tokens[:, t:t + 1], caches).data
            np.testing.assert_allclose(step, full_logits[:, t], atol=1e-9)

    def test_decode_requires_single_token(self, model, rng):
        caches = model.new_caches()
        model.prefill(rng.integers(0, 50, size=(1, 4)), caches)
        with pytest.raises(ValueError):
            model.decode_step(np.zeros((1, 2), dtype=int), caches)


class TestGenerate:
    def test_output_shape_and_range(self, model, rng):
        prompt = rng.integers(0, 50, size=(2, 5))
        out = model.generate(prompt, max_new_tokens=6)
        assert out.shape == (2, 11)
        assert out.min() >= 0 and out.max() < 50
        np.testing.assert_array_equal(out[:, :5], prompt)

    def test_oblivious_and_plain_argmax_agree(self, model, rng):
        prompt = rng.integers(0, 50, size=(1, 5))
        a = model.generate(prompt, max_new_tokens=4, oblivious_sampling=True)
        b = model.generate(prompt, max_new_tokens=4, oblivious_sampling=False)
        np.testing.assert_array_equal(a, b)

    def test_stops_at_context_length(self, config, rng):
        model = GPT(config, rng=0)
        prompt = rng.integers(0, 50, size=(1, 30))
        out = model.generate(prompt, max_new_tokens=10)
        assert out.shape[1] <= config.context_length

    def test_deterministic(self, model, rng):
        prompt = rng.integers(0, 50, size=(1, 4))
        a = model.generate(prompt, max_new_tokens=5)
        b = model.generate(prompt, max_new_tokens=5)
        np.testing.assert_array_equal(a, b)


class TestParameterAccounting:
    def test_non_embedding_excludes_table_and_head(self, model):
        total = model.num_parameters()
        non_emb = model.num_non_embedding_parameters()
        assert non_emb == total - 50 * 16  # tied: one table

    def test_dhe_model_excludes_head_but_counts_decoder(self, config):
        dhe = DHEEmbedding(50, 16, k=8, fc_sizes=(8,), rng=0)
        model = GPT(config, token_embedding=dhe, rng=1)
        non_emb = model.num_non_embedding_parameters()
        assert non_emb == model.num_parameters() - 50 * 16
