"""End-to-end equivalence: swapping the embedding backend must not change
model outputs when all backends hold the same trained rows.

This is the integration-level statement of the paper's design: protection
is a *representation* choice (scan/ORAM vs raw table), orthogonal to the
model function. DHE is the exception — it's a different function family —
and is covered by the parity training tests instead.
"""

import numpy as np

from repro.data.criteo import DlrmDatasetSpec, SyntheticCtrDataset
from repro.embedding import (
    CircuitOramEmbedding,
    LinearScanEmbedding,
    PathOramEmbedding,
)
from repro.models.dlrm import DLRM, table_factory
from repro.models.gpt import GPT, tiny_config
from repro.models.training import train_dlrm

SPEC = DlrmDatasetSpec("equiv", 13, (25, 40), embedding_dim=8)


class TestDlrmBackendEquivalence:
    def test_trained_table_model_served_from_any_backend(self, rng):
        dataset = SyntheticCtrDataset(SPEC, seed=0)
        model = DLRM(SPEC, table_factory(rng=0), bottom_sizes=(13, 16, 8),
                     top_hidden_sizes=(16,), rng=1)
        train_dlrm(model, dataset, steps=40, batch_size=32, lr=2e-3)
        batch = dataset.batch(16)
        reference = model(batch.dense, batch.sparse).data

        trained_rows = [emb.weight.data.copy() for emb in model.embeddings]
        backends = {
            "scan": lambda size, dim, rows: LinearScanEmbedding(
                size, dim, weight=rows),
            "path": lambda size, dim, rows: PathOramEmbedding(
                size, dim, weight=rows, rng=7),
            "circuit": lambda size, dim, rows: CircuitOramEmbedding(
                size, dim, weight=rows, rng=7),
        }
        for name, build in backends.items():
            for feature, rows in enumerate(trained_rows):
                size, dim = rows.shape
                model.embeddings[feature] = build(size, dim, rows)
                setattr(model, f"emb{feature}", model.embeddings[feature])
            served = model(batch.dense, batch.sparse).data
            np.testing.assert_allclose(served, reference, atol=1e-9,
                                       err_msg=name)


class TestGptBackendEquivalence:
    def test_generation_identical_with_oram_token_embedding(self, rng):
        config = tiny_config(vocab_size=40, embed_dim=16, num_layers=1,
                             num_heads=2)
        table_model = GPT(config, rng=0)
        rows = table_model.token_embedding.weight.data.copy()

        oram_embedding = CircuitOramEmbedding(40, 16, weight=rows, rng=5)
        oram_model = GPT(config, token_embedding=oram_embedding, rng=0)
        # Copy all shared weights; the ORAM model's separate head must hold
        # the same matrix the tied model uses.
        oram_model.load_state_dict(table_model.state_dict(), strict=False)
        oram_model.lm_head_weight.data[...] = rows

        prompt = rng.integers(0, 40, size=(2, 5))
        a = table_model.generate(prompt, max_new_tokens=6)
        b = oram_model.generate(prompt, max_new_tokens=6)
        np.testing.assert_array_equal(a, b)

    def test_scan_token_embedding_equivalent_forward(self, rng):
        config = tiny_config(vocab_size=40, embed_dim=16, num_layers=1,
                             num_heads=2)
        table_model = GPT(config, rng=0)
        rows = table_model.token_embedding.weight.data.copy()
        scan_model = GPT(config,
                         token_embedding=LinearScanEmbedding(40, 16,
                                                             weight=rows),
                         rng=0)
        scan_model.load_state_dict(table_model.state_dict(), strict=False)
        scan_model.lm_head_weight.data[...] = rows

        tokens = rng.integers(0, 40, size=(2, 7))
        np.testing.assert_allclose(scan_model(tokens).data,
                                   table_model(tokens).data, atol=1e-9)
