"""§IV-C3: DHE training is secure — no secret-indexed memory ops.

The framework's only index-addressed memory operation in training is the
scatter-add seam in :mod:`repro.nn.tensor`. It fires for two kinds of key:

* **plain integer arrays** — embedding-table row gathers, whose indices ARE
  the secret sparse features;
* **tuple keys** — structural slicing (e.g. the DLRM interaction's
  ``triu_indices``), which are compile-time constants independent of data.

Training a table-based model performs one secret-keyed scatter per sparse
feature per step; an all-DHE model performs none (its forward and backward
are dense). These tests instrument the seam and verify exactly that
separation.
"""

from contextlib import contextmanager

import numpy as np

from repro.data.criteo import DlrmDatasetSpec, SyntheticCtrDataset
from repro.models.dlrm import DLRM, dhe_factory, table_factory
from repro.nn.losses import bce_with_logits
from repro.nn.optim import SGD

SPEC = DlrmDatasetSpec("sec", 13, (20, 30), embedding_dim=8)


@contextmanager
def scatter_add_monitor():
    """Patch the framework's scatter-add seam to record every key."""
    import repro.nn.tensor as tensor_module

    calls = []
    original = tensor_module.scatter_add

    def spy(array, indices, values):
        calls.append(indices)
        original(array, indices, values)

    tensor_module.scatter_add = spy
    try:
        yield calls
    finally:
        tensor_module.scatter_add = original


def secret_gather_keys(calls):
    """Keys from embedding row gathers (secret); tuple keys are structural."""
    return [key for key in calls if isinstance(key, np.ndarray)]


def train_one_step(model, batch):
    optimizer = SGD(model.parameters(), lr=0.01)
    optimizer.zero_grad()
    loss = bce_with_logits(model(batch.dense, batch.sparse), batch.labels)
    loss.backward()
    optimizer.step()


class TestTrainingSideChannel:
    def test_table_training_scatters_at_secret_indices(self):
        dataset = SyntheticCtrDataset(SPEC, seed=0)
        batch = dataset.batch(16)
        model = DLRM(SPEC, table_factory(rng=0), bottom_sizes=(13, 8),
                     top_hidden_sizes=(8,), rng=1)
        with scatter_add_monitor() as calls:
            train_one_step(model, batch)
        gathers = secret_gather_keys(calls)
        # One secret-keyed scatter per sparse feature ...
        assert len(gathers) == SPEC.num_sparse
        # ... targeting exactly the secret indices of the batch (the leak).
        observed = {tuple(np.sort(np.unique(k)).tolist()) for k in gathers}
        secrets = {tuple(np.sort(np.unique(batch.sparse[:, f])).tolist())
                   for f in range(SPEC.num_sparse)}
        assert observed == secrets

    def test_dhe_training_has_no_secret_keyed_scatter(self):
        dataset = SyntheticCtrDataset(SPEC, seed=0)
        batch = dataset.batch(16)
        model = DLRM(SPEC, dhe_factory(k=16, fc_sizes=(16,), rng=0),
                     bottom_sizes=(13, 8), top_hidden_sizes=(8,), rng=1)
        with scatter_add_monitor() as calls:
            train_one_step(model, batch)
        assert secret_gather_keys(calls) == []  # dense end to end (§IV-C3)

    def test_structural_keys_are_input_independent(self):
        """The tuple keys that remain (interaction slicing) are identical
        for any two input batches — they carry no information."""
        dataset = SyntheticCtrDataset(SPEC, seed=0)
        structural = []
        for _ in range(2):
            batch = dataset.batch(16)
            model = DLRM(SPEC, dhe_factory(k=16, fc_sizes=(16,), rng=0),
                         bottom_sizes=(13, 8), top_hidden_sizes=(8,), rng=1)
            with scatter_add_monitor() as calls:
                train_one_step(model, batch)
            keys = [key for key in calls if isinstance(key, tuple)]
            structural.append(
                [tuple(np.asarray(part).tolist() if not isinstance(part, slice)
                       else ("slice",))
                 for key in keys for part in key])
        assert structural[0] == structural[1]

    def test_dhe_gradients_dense_shaped(self):
        """Every DHE gradient tensor has an index-independent shape."""
        dataset = SyntheticCtrDataset(SPEC, seed=0)
        batch = dataset.batch(16)
        model = DLRM(SPEC, dhe_factory(k=16, fc_sizes=(16,), rng=0),
                     bottom_sizes=(13, 8), top_hidden_sizes=(8,), rng=1)
        loss = bce_with_logits(model(batch.dense, batch.sparse), batch.labels)
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name
            assert param.grad.shape == param.shape
