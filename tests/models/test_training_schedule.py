"""LR-schedule integration in the GPT training loop."""

import numpy as np
import pytest

from repro.data import MarkovCorpusGenerator
from repro.models.gpt import GPT, tiny_config
from repro.models.training import train_gpt
from repro.nn.optim import AdamW, CosineSchedule


@pytest.fixture(scope="module")
def corpus():
    return MarkovCorpusGenerator(32, 4, seed=0).build_corpus(6000, 600)


def small_gpt():
    return GPT(tiny_config(vocab_size=32, embed_dim=16, num_layers=1,
                           num_heads=2), rng=0)


class TestScheduledTraining:
    def test_warmup_fraction_builds_schedule(self, corpus):
        model = small_gpt()
        optimizer = AdamW(model.parameters(), lr=1e-3)
        train_gpt(model, corpus.train_tokens, steps=10, batch_size=4,
                  seq_len=16, lr=1e-3, optimizer=optimizer,
                  warmup_fraction=0.5)
        # After 10 steps of a 10-step cosine, lr has decayed toward min_lr.
        assert optimizer.lr < 1e-3

    def test_explicit_schedule_wins(self, corpus):
        model = small_gpt()
        optimizer = AdamW(model.parameters(), lr=1e-3)
        schedule = CosineSchedule(base_lr=5e-4, warmup_steps=0,
                                  total_steps=10)
        train_gpt(model, corpus.train_tokens, steps=1, batch_size=4,
                  seq_len=16, optimizer=optimizer, schedule=schedule,
                  warmup_fraction=0.9)
        assert optimizer.lr == pytest.approx(5e-4)

    def test_no_schedule_keeps_lr(self, corpus):
        model = small_gpt()
        optimizer = AdamW(model.parameters(), lr=1e-3)
        train_gpt(model, corpus.train_tokens, steps=5, batch_size=4,
                  seq_len=16, optimizer=optimizer)
        assert optimizer.lr == pytest.approx(1e-3)

    def test_scheduled_run_still_learns(self, corpus):
        model = small_gpt()
        history = train_gpt(model, corpus.train_tokens, steps=60,
                            batch_size=8, seq_len=16, lr=2e-3,
                            warmup_fraction=0.1)
        assert np.mean(history.train_loss[-10:]) < \
            np.mean(history.train_loss[:10])
