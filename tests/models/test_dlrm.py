"""DLRM model tests: shapes, interaction, factories, latency accounting."""

import numpy as np
import pytest

from repro.data.criteo import DlrmDatasetSpec
from repro.embedding.dhe import DHEEmbedding
from repro.embedding.table import TableEmbedding
from repro.models.dlrm import DLRM, dhe_factory, table_factory

SPEC = DlrmDatasetSpec("t", 13, (20, 30, 10), embedding_dim=8)


def make_model(factory=None, interaction="dot"):
    return DLRM(SPEC, factory or table_factory(rng=0),
                bottom_sizes=(13, 16, 8), top_hidden_sizes=(16,),
                interaction=interaction, rng=1)


@pytest.fixture
def batch(rng):
    dense = rng.normal(size=(4, 13))
    sparse = np.stack([rng.integers(0, s, size=4)
                       for s in SPEC.table_sizes], axis=1)
    return dense, sparse


class TestForward:
    def test_logit_shape(self, batch):
        model = make_model()
        out = model(*batch)
        assert out.shape == (4,)

    def test_cat_interaction(self, batch):
        model = make_model(interaction="cat")
        assert model(*batch).shape == (4,)

    def test_predict_proba_in_unit_interval(self, batch):
        probs = make_model().predict_proba(*batch)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_wrong_sparse_count_raises(self, batch):
        dense, sparse = batch
        with pytest.raises(ValueError):
            make_model()(dense, sparse[:, :2])

    def test_dot_interaction_feature_count(self):
        # 3 sparse + 1 dense vector => C(4,2)=6 pairwise dots + dim 8.
        model = make_model()
        assert model.top.layer_sizes[0] == 8 + 6

    def test_invalid_interaction(self):
        with pytest.raises(ValueError):
            make_model(interaction="sum")

    def test_bottom_size_validation(self):
        with pytest.raises(ValueError):
            DLRM(SPEC, table_factory(rng=0), bottom_sizes=(12, 8),
                 rng=0)
        with pytest.raises(ValueError):
            DLRM(SPEC, table_factory(rng=0), bottom_sizes=(13, 9),
                 rng=0)


class TestFactories:
    def test_table_factory_builds_tables(self):
        model = make_model(table_factory(rng=0))
        assert all(isinstance(e, TableEmbedding) for e in model.embeddings)
        sizes = [e.num_embeddings for e in model.embeddings]
        assert sizes == list(SPEC.table_sizes)

    def test_dhe_factory_uniform(self):
        model = make_model(dhe_factory(k=16, fc_sizes=(16,), rng=0))
        assert all(isinstance(e, DHEEmbedding) for e in model.embeddings)
        assert all(e.shape.k == 16 for e in model.embeddings)

    def test_dhe_factory_varied_scales(self):
        spec = DlrmDatasetSpec("v", 13, (100, 10**7), embedding_dim=8)
        model = DLRM(spec, dhe_factory(k=1024, fc_sizes=(64,), rng=0,
                                       varied=True),
                     bottom_sizes=(13, 8), top_hidden_sizes=(8,), rng=0)
        assert model.embeddings[0].shape.k < model.embeddings[1].shape.k


class TestAccounting:
    def test_embedding_latency_sums_features(self):
        model = make_model()
        total = model.embedding_latency(batch=32)
        parts = sum(e.modelled_latency(32) for e in model.embeddings)
        assert total == pytest.approx(parts)

    def test_footprint_positive(self):
        assert make_model().embedding_footprint_bytes() > 0

    def test_dense_parameter_bytes_excludes_embeddings(self):
        model = make_model()
        dense_bytes = model.dense_parameter_bytes()
        emb_params = sum(e.num_parameters() for e in model.embeddings)
        assert dense_bytes == (model.num_parameters() - emb_params) * 4


class TestGradients:
    def test_all_parameters_receive_gradients(self, batch):
        from repro.nn.losses import bce_with_logits

        model = make_model()
        loss = bce_with_logits(model(*batch), np.ones(4))
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name
