"""Training-loop tests: losses fall, metrics computed, parity mechanism."""

import numpy as np
import pytest

from repro.data.criteo import DlrmDatasetSpec, SyntheticCtrDataset
from repro.data.text import MarkovCorpusGenerator
from repro.models.dlrm import DLRM, dhe_factory, table_factory
from repro.models.gpt import GPT, tiny_config
from repro.models.training import (
    TrainHistory,
    evaluate_dlrm,
    evaluate_perplexity,
    train_dlrm,
    train_gpt,
)

SPEC = DlrmDatasetSpec("t", 13, (30, 20, 40, 5), embedding_dim=8)


def small_dlrm(factory=None):
    return DLRM(SPEC, factory or table_factory(rng=0),
                bottom_sizes=(13, 16, 8), top_hidden_sizes=(16,), rng=1)


class TestTrainDlrm:
    def test_loss_decreases(self):
        dataset = SyntheticCtrDataset(SPEC, seed=0)
        history = train_dlrm(small_dlrm(), dataset, steps=80, batch_size=64,
                             lr=3e-3)
        early = np.mean(history.train_loss[:10])
        late = np.mean(history.train_loss[-10:])
        assert late < early - 0.05

    def test_beats_chance(self):
        dataset = SyntheticCtrDataset(SPEC, seed=0)
        model = small_dlrm()
        train_dlrm(model, dataset, steps=100, batch_size=64, lr=3e-3)
        metrics = evaluate_dlrm(model, dataset, num_samples=2048)
        assert metrics["auc"] > 0.75
        assert metrics["accuracy"] > 0.65

    def test_dhe_model_reaches_table_parity(self):
        """The Table V mechanism at miniature scale."""
        results = {}
        for name, factory in (("table", table_factory(rng=0)),
                              ("dhe", dhe_factory(k=32, fc_sizes=(32,),
                                                  rng=0))):
            dataset = SyntheticCtrDataset(SPEC, seed=0)
            model = small_dlrm(factory)
            train_dlrm(model, dataset, steps=150, batch_size=64, lr=3e-3)
            results[name] = evaluate_dlrm(model, dataset,
                                          num_samples=4096)["auc"]
        assert abs(results["table"] - results["dhe"]) < 0.05

    def test_eval_every_records(self):
        dataset = SyntheticCtrDataset(SPEC, seed=0)
        history = train_dlrm(small_dlrm(), dataset, steps=20, batch_size=32,
                             eval_every=10, eval_batch=256)
        assert len(history.eval_metric) == 2

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            train_dlrm(small_dlrm(), SyntheticCtrDataset(SPEC, seed=0),
                       steps=0)


class TestTrainGpt:
    def test_perplexity_improves(self):
        corpus = MarkovCorpusGenerator(32, branching=4,
                                       seed=0).build_corpus(8000, 1000)
        model = GPT(tiny_config(vocab_size=32, embed_dim=16, num_layers=1,
                                num_heads=2), rng=0)
        before = evaluate_perplexity(model, corpus.val_tokens, seq_len=16)
        train_gpt(model, corpus.train_tokens, steps=60, batch_size=8,
                  seq_len=16, lr=2e-3)
        after = evaluate_perplexity(model, corpus.val_tokens, seq_len=16)
        assert after < 0.6 * before

    def test_eval_curve_recorded(self):
        corpus = MarkovCorpusGenerator(32, branching=4,
                                       seed=0).build_corpus(4000, 800)
        model = GPT(tiny_config(vocab_size=32, embed_dim=16, num_layers=1,
                                num_heads=2), rng=0)
        history = train_gpt(model, corpus.train_tokens, steps=20,
                            batch_size=4, seq_len=16,
                            val_tokens=corpus.val_tokens, eval_every=10)
        assert len(history.eval_metric) == 2


class TestTrainHistory:
    def test_best_metric(self):
        history = TrainHistory(eval_metric=[3.0, 1.0, 2.0])
        assert history.best_metric(larger_is_better=False) == 1.0
        assert history.best_metric(larger_is_better=True) == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TrainHistory().best_metric()
