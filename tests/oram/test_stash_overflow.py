"""Stash overflow: the signal, background-evict recovery, telemetry.

The persistent stash bound counts blocks resident between accesses
(ZeroTrace convention). These tests drive Path and Circuit ORAM into
overflow and verify the full resilience contract: the overflow signal
fires (stats counter, telemetry counter, callback, StashOverflowError),
:meth:`background_evict` restores the invariant without losing a block,
and the stash gauges reflect the failing state.

Pressure source per scheme: Path ORAM's greedy writeback leaves blocks
stranded in the stash under a zero bound; Circuit ORAM's two-pass
deterministic eviction keeps the stash empty at test sizes, so its
pressure model is *eviction starvation* — the per-access eviction stalls
(as under a fault) while reads keep depositing blocks into the stash.
Background eviction then continues the reverse-lexicographic schedule to
recover, which is exactly the production recovery path.
"""

import numpy as np
import pytest

from repro.oram.circuit_oram import CircuitORAM
from repro.oram.path_oram import PathORAM
from repro.oram.stash import StashOverflowError
from repro.telemetry.runtime import use_registry

BLOCKS = 64
WIDTH = 4


class EvictionStalledCircuitORAM(CircuitORAM):
    """Circuit ORAM whose per-access eviction can be stalled (starved)."""

    stalled = False

    def _deterministic_evict_pass(self):
        if not self.stalled:
            super()._deterministic_evict_pass()


def payloads(n=BLOCKS, width=WIDTH):
    return np.arange(n * width, dtype=np.float64).reshape(n, width)


def build_pressured(oram_class, seed=0):
    """An ORAM under stash pressure + a ``relieve()`` restoring health."""
    if oram_class is CircuitORAM:
        oram = EvictionStalledCircuitORAM(
            BLOCKS, WIDTH, initial_payloads=payloads(),
            stash_capacity=BLOCKS, rng=seed)
        oram.stalled = True

        def relieve():
            oram.stalled = False
            oram.persistent_stash_capacity = BLOCKS
    else:
        oram = oram_class(BLOCKS, WIDTH, initial_payloads=payloads(),
                          stash_capacity=BLOCKS, rng=seed)

        def relieve():
            oram.persistent_stash_capacity = BLOCKS

    oram.persistent_stash_capacity = 0
    return oram, relieve


def force_overflow(oram, max_accesses=4096):
    """Access until the overflow signal fires; fail if it never does."""
    for step in range(max_accesses):
        try:
            oram.read(step % BLOCKS)
        except StashOverflowError:
            return step
    pytest.fail("stash never overflowed under pressure")


@pytest.mark.parametrize("oram_class", [PathORAM, CircuitORAM])
class TestOverflowSignal:
    def test_signal_fires_and_is_counted(self, oram_class):
        oram, _ = build_pressured(oram_class)
        with use_registry() as registry:
            force_overflow(oram)
        assert oram.stats.stash_overflows == 1
        assert registry.counter("oram.stash_overflows_total").value == 1.0

    def test_callback_runs_before_the_raise(self, oram_class):
        oram, _ = build_pressured(oram_class)
        seen = []
        oram.overflow_callback = seen.append
        force_overflow(oram)
        assert seen == [oram]

    def test_gauges_reflect_the_failing_state(self, oram_class):
        oram, _ = build_pressured(oram_class)
        with use_registry() as registry:
            force_overflow(oram)
        # The try/finally flush exports the occupancy that caused the
        # failure, and the peak gauge is at least that high.
        occupancy = registry.gauge("oram.stash_occupancy").value
        peak = registry.gauge("oram.stash_peak_occupancy").value
        assert occupancy > 0
        assert peak >= occupancy
        assert peak >= oram.stash.occupancy


@pytest.mark.parametrize("oram_class", [PathORAM, CircuitORAM])
class TestBackgroundEvictRecovery:
    def test_recovery_restores_the_invariant(self, oram_class):
        oram, relieve = build_pressured(oram_class)
        force_overflow(oram)
        stranded = oram.stash.occupancy
        assert stranded > 0
        relieve()
        occupancy = oram.background_evict(passes=2 * oram.levels + 4)
        assert occupancy < stranded          # eviction made progress
        assert occupancy <= oram.persistent_stash_capacity
        assert occupancy == oram.stash.occupancy

    def test_no_block_is_lost_across_overflow_and_recovery(self, oram_class):
        oram, relieve = build_pressured(oram_class)
        force_overflow(oram)
        relieve()
        oram.background_evict(passes=oram.levels + 2)
        # Conservation: every block still resident exactly once...
        assert oram.total_resident_blocks() == BLOCKS
        # ...and every payload still readable with its original value.
        expected = payloads()
        for block in range(BLOCKS):
            assert np.array_equal(oram.read(block), expected[block])

    def test_background_evict_counts_passes(self, oram_class):
        oram, relieve = build_pressured(oram_class)
        relieve()
        before = oram.stats.eviction_passes
        with use_registry() as registry:
            oram.background_evict(passes=3)
        assert oram.stats.eviction_passes == before + 3
        assert registry.counter(
            "oram.background_evictions_total").value == 3.0


@pytest.mark.parametrize("oram_class", [PathORAM, CircuitORAM])
class TestNormalOperationUnaffected:
    def test_generous_bound_never_overflows(self, oram_class):
        oram = oram_class(BLOCKS, WIDTH, initial_payloads=payloads(),
                          stash_capacity=BLOCKS, rng=0)
        for step in range(4 * BLOCKS):
            oram.read(step % BLOCKS)
        assert oram.stats.stash_overflows == 0

    def test_reads_after_recovery_stay_correct(self, oram_class):
        oram, relieve = build_pressured(oram_class)
        force_overflow(oram)
        relieve()
        oram.background_evict(passes=oram.levels + 2)
        expected = payloads()
        for step in range(2 * BLOCKS):
            block = step % BLOCKS
            assert np.array_equal(oram.read(block), expected[block])
