"""Batched lookahead ORAM: parity, dedup semantics, padding, audits."""

import numpy as np
import pytest

from repro.oblivious.trace import MemoryTracer
from repro.oram import (
    LOOKAHEAD_REGION,
    CircuitORAM,
    PathORAM,
    RingORAM,
    SequentialLeakingBatcher,
    SqrtORAM,
    Stash,
    contrasting_batches,
    lookahead_subjects,
)
from repro.oram.lookahead import ADDR_FETCH, build_fetch_schedule, plan_batch
from repro.oram.position_map import FlatPositionMap, OramPositionMap
from repro.telemetry.audit import LeakageAuditor

N, WIDTH = 32, 4
SCHEMES = (PathORAM, CircuitORAM)


def make_payloads(n=N, width=WIDTH):
    return np.arange(n * width, dtype=np.float64).reshape(n, width)


def make_oram(oram_class, seed=0, tracer=None, n=N, width=WIDTH):
    return oram_class(n, width, initial_payloads=make_payloads(n, width),
                      rng=seed, stash_capacity=n, tracer=tracer)


def table_state(oram):
    """Full logical contents, via real accesses (perturbs leaves only)."""
    return np.stack([oram.read(block) for block in range(oram.num_blocks)])


@pytest.mark.parametrize("oram_class", SCHEMES)
class TestValueParity:
    """Batched access returns exactly what the sequential loop returns."""

    def test_reads_match_sequential(self, oram_class):
        batch = [3, 17, 3, 0, 31, 17, 5, 3]
        batched = make_oram(oram_class, seed=1)
        sequential = make_oram(oram_class, seed=2)
        got = batched.access_batch(batch)
        want = np.stack([sequential.access(b) for b in batch])
        np.testing.assert_array_equal(got, want)

    def test_updates_and_post_state_match_sequential(self, oram_class):
        batch = [3, 17, 3, 0, 31, 17, 5, 3]
        fns = [lambda row, k=k: row + k for k in range(len(batch))]
        batched = make_oram(oram_class, seed=1)
        sequential = make_oram(oram_class, seed=2)
        got = batched.access_batch(batch, update_fns=fns)
        want = np.stack([sequential.access(b, fns[i])
                         for i, b in enumerate(batch)])
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(table_state(batched),
                                      table_state(sequential))

    def test_empty_batch(self, oram_class):
        oram = make_oram(oram_class)
        assert oram.access_batch([]).shape == (0, WIDTH)

    def test_out_of_range_rejected(self, oram_class):
        oram = make_oram(oram_class)
        with pytest.raises(IndexError):
            oram.access_batch([0, N])

    def test_fn_count_mismatch_rejected(self, oram_class):
        oram = make_oram(oram_class)
        with pytest.raises(ValueError, match="update fns"):
            oram.access_batch([0, 1], update_fns=[None])


@pytest.mark.parametrize("oram_class", SCHEMES)
class TestDuplicateSemantics:
    """Pinned: arrival-order chaining over one shared fetch."""

    def test_read_read_sees_same_value(self, oram_class):
        oram = make_oram(oram_class)
        out = oram.access_batch([7, 7])
        np.testing.assert_array_equal(out[0], out[1])
        np.testing.assert_array_equal(out[0], make_payloads()[7])

    def test_read_write_order(self, oram_class):
        # Slot 0 reads the original; slot 1's write lands afterwards.
        oram = make_oram(oram_class)
        out = oram.access_batch(
            [7, 7], update_fns=[None, lambda row: row * 0 + 5.0])
        np.testing.assert_array_equal(out[0], make_payloads()[7])
        np.testing.assert_array_equal(out[1], make_payloads()[7])
        np.testing.assert_array_equal(oram.read(7), np.full(WIDTH, 5.0))

    def test_write_read_chains(self, oram_class):
        # Slot 1 observes slot 0's update, like the sequential loop.
        oram = make_oram(oram_class)
        out = oram.access_batch(
            [7, 7], update_fns=[lambda row: row + 100.0, None])
        np.testing.assert_array_equal(out[0], make_payloads()[7])
        np.testing.assert_array_equal(out[1], make_payloads()[7] + 100.0)

    def test_write_write_composes(self, oram_class):
        oram = make_oram(oram_class)
        oram.access_batch([7, 7], update_fns=[lambda row: row + 1.0,
                                              lambda row: row * 2.0])
        np.testing.assert_array_equal(oram.read(7),
                                      (make_payloads()[7] + 1.0) * 2.0)

    def test_duplicates_share_one_fetch(self, oram_class):
        oram = make_oram(oram_class)
        plan = plan_batch(oram, [7, 7, 7, 9])
        assert plan.unique_ids == [7, 9]
        assert plan.slot_to_unique == [0, 0, 0, 1]
        assert plan.is_first == [True, False, False, True]
        # One fresh leaf per unique id, drawn at the first occurrence.
        assert len(plan.new_leaves) == 2


class TestFetchSchedule:
    """The level-padded union fetch is secret-size-independent."""

    def test_level_counts_are_public(self):
        oram = make_oram(PathORAM)
        for batch in ([0] * 8, list(range(8)), [5, 5, 9, 9, 13, 13, 2, 2]):
            plan = plan_batch(oram, batch)
            plan.old_leaves = list(oram.position_map.lookup_and_update_batch(
                plan.unique_ids, plan.new_leaves, pad_to=len(batch)))
            build_fetch_schedule(oram, plan)
            for level, buckets in enumerate(plan.schedule):
                assert len(buckets) == min(1 << level, 8)
                assert len(set(buckets)) == len(buckets)

    def test_hammered_batch_fetches_as_much_as_distinct(self):
        hammer = make_oram(PathORAM, seed=3)
        distinct = make_oram(PathORAM, seed=3)
        hammer.access_batch([0] * 16)
        distinct.access_batch(list(range(16)))
        assert hammer.stats.bucket_reads == distinct.stats.bucket_reads
        assert hammer.stats.bucket_writes == distinct.stats.bucket_writes

    def test_decision_trace_identical_across_secrets(self):
        digests = []
        for batch in ([0] * 16, [N - 1] * 16, list(range(16))):
            tracer = MemoryTracer()
            oram = make_oram(PathORAM, seed=5)
            oram.access_batch(batch, plan_tracer=tracer)
            assert all(event.region == LOOKAHEAD_REGION
                       for event in tracer.snapshot())
            digests.append(tracer.digest())
        assert len(set(digests)) == 1


@pytest.mark.parametrize("oram_class", SCHEMES)
class TestAmortization:
    def test_posmap_ops_drop_at_batch_16(self, oram_class):
        batched = make_oram(oram_class, seed=1)
        sequential = make_oram(oram_class, seed=1)
        batch = list(range(16))
        batched.access_batch(batch)
        for block in batch:
            sequential.access(block)
        assert sequential.position_map_ops() >= (
            1.5 * batched.position_map_ops())

    def test_bucket_io_drops_at_batch_16(self, oram_class):
        batched = make_oram(oram_class, seed=1)
        sequential = make_oram(oram_class, seed=1)
        batch = list(range(16))
        batched.access_batch(batch)
        for block in batch:
            sequential.access(block)
        io = lambda oram: oram.stats.bucket_reads + oram.stats.bucket_writes
        assert io(batched) < io(sequential)


class TestBatchedPositionMap:
    def test_flat_batch_matches_sequential(self):
        leaves = np.arange(10, dtype=np.int64) % 4
        batched = FlatPositionMap(leaves.copy())
        sequential = FlatPositionMap(leaves.copy())
        ids = [3, 0, 7]
        new = [9, 9, 9]
        got = batched.lookup_and_update_batch(ids, new, pad_to=8)
        want = [sequential.lookup_and_update(i, 9) for i in ids]
        assert list(got) == want
        np.testing.assert_array_equal(batched.leaves, sequential.leaves)

    def test_flat_batch_is_one_pass(self):
        pm = FlatPositionMap(np.zeros(10, dtype=np.int64))
        before = pm.work_ops()
        pm.lookup_and_update_batch([1, 2, 3, 4], [5, 5, 5, 5], pad_to=16)
        # One oblivious pass: 2N entry touches however large the batch.
        assert pm.work_ops() - before == 2 * 10

    def test_duplicate_ids_rejected(self):
        pm = FlatPositionMap(np.zeros(10, dtype=np.int64))
        with pytest.raises(ValueError, match="unique"):
            pm.lookup_and_update_batch([1, 1], [2, 3])

    def test_recursive_fallback_pads_to_batch(self):
        child_leaves = np.arange(64, dtype=np.int64) % 8

        from repro.oram.path_oram import PathORAM as Cls

        def factory(num_chunks, width, payloads):
            return Cls(num_chunks, width, initial_payloads=payloads, rng=0)

        pm = OramPositionMap(child_leaves, factory)
        accesses_before = pm._child.stats.accesses
        got = pm.lookup_and_update_batch([3, 5], [1, 2], pad_to=6)
        # Two real lookups + four dummy refreshes = the public batch size.
        assert pm._child.stats.accesses - accesses_before >= 6
        assert len(got) == 2


class TestStashDisciplines:
    def test_take_matching_is_one_scan_and_bounded(self):
        tracer = MemoryTracer()
        stash = Stash(8, 2, tracer=tracer)
        for block in range(5):
            stash.add(block, leaf=1, payload=np.zeros(2))
        tracer.clear()
        taken = stash.take_matching(lambda leaf: leaf == 1, limit=3)
        assert len(taken) == 3
        assert len(tracer.snapshot()) == stash.capacity  # exactly one scan
        assert stash.occupancy == 2

    def test_grow_extends_and_preserves(self):
        stash = Stash(2, 2)
        stash.add(5, leaf=3, payload=np.ones(2))
        stash.grow(6)
        assert stash.capacity == 6
        leaf, payload = stash.peek(5)
        assert leaf == 3
        np.testing.assert_array_equal(payload, np.ones(2))
        stash.grow(4)  # never shrinks
        assert stash.capacity == 6


class TestRingFallback:
    def test_ring_access_batch_matches_sequential(self):
        batch = [3, 8, 3, 0]
        batched = make_oram(RingORAM, seed=1)
        sequential = make_oram(RingORAM, seed=2)
        assert not batched.SUPPORTS_LOOKAHEAD
        got = batched.access_batch(batch)
        want = np.stack([sequential.access(b) for b in batch])
        np.testing.assert_array_equal(got, want)


class TestSqrtFallback:
    """SUPPORTS_LOOKAHEAD dispatch on the square-root scheme: the batched
    entry point must take the sequential fallback, value-parity like Ring."""

    def test_sqrt_access_batch_matches_sequential(self):
        batch = [3, 8, 3, 0]
        batched = make_oram(SqrtORAM, seed=1)
        sequential = make_oram(SqrtORAM, seed=2)
        assert not batched.SUPPORTS_LOOKAHEAD
        got = batched.access_batch(batch)
        want = np.stack([sequential.access(b) for b in batch])
        np.testing.assert_array_equal(got, want)

    def test_fallback_records_the_ordinal_decision_trace(self):
        # The sequential fallback still narrates the standing lookahead
        # decision trace: one ordinal fetch record per slot.
        oram = make_oram(SqrtORAM, seed=0)
        plan = MemoryTracer()
        oram.access_batch([5, 1, 5], plan_tracer=plan)
        fetch = [event for event in plan.events
                 if event.region == LOOKAHEAD_REGION]
        assert [event.address for event in fetch] == [
            ADDR_FETCH, ADDR_FETCH + 1, ADDR_FETCH + 2]

    def test_empty_batch_is_a_noop(self):
        oram = make_oram(SqrtORAM, seed=0)
        out = oram.access_batch([])
        assert out.shape == (0, WIDTH)
        assert oram.stats.accesses == 0


class TestLeakageAudit:
    @pytest.fixture(scope="class")
    def audit_report(self):
        return LeakageAuditor().run(lookahead_subjects())

    @pytest.mark.parametrize("name", [
        "path-lookahead-plan", "circuit-lookahead-plan"])
    def test_decision_traces_exact(self, audit_report, name):
        finding = audit_report.finding(name)
        assert finding.passed and not finding.leak_detected

    @pytest.mark.parametrize("name", [
        "path-lookahead-memory", "circuit-lookahead-memory"])
    def test_memory_traces_structural(self, audit_report, name):
        finding = audit_report.finding(name)
        assert finding.passed and not finding.leak_detected

    def test_sequential_leaking_batcher_is_caught(self, audit_report):
        finding = audit_report.finding("sequential-leaking-batcher")
        assert finding.passed  # expected to leak, and it does
        assert finding.leak_detected

    def test_leaky_batcher_is_still_value_correct(self):
        batch = [3, 17, 3, 0, 17]
        fns = [lambda row, k=k: row + k for k in range(len(batch))]
        leaky = make_oram(PathORAM, seed=1)
        honest = make_oram(PathORAM, seed=2)
        got = SequentialLeakingBatcher().access_batch(leaky, batch,
                                                      update_fns=fns)
        want = honest.access_batch(batch, update_fns=fns)
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(table_state(leaky),
                                      table_state(honest))

    def test_contrasting_batches_cover_multiplicity(self):
        secrets = contrasting_batches(N, batch_size=8, num_batches=2)
        assert len(secrets) == 3
        assert all(len(secret) == 2 for secret in secrets)
        assert secrets[0][0] == [0] * 8
        assert secrets[1][0] == [N - 1] * 8
        assert len(set(secrets[2][0])) == 8


class WritebackStalledPathORAM(PathORAM):
    """Path ORAM whose fused batched write-back can stall (fault model).

    The healthy fused write-back structurally drains the whole fetched
    union back into the tree, so batched Path access never strands blocks
    on its own at test sizes; the pressure model is a *stalled* write-back
    — fetches keep depositing into the stash while nothing flows back.
    """

    stalled = False

    def _lookahead_writeback(self, plan):
        if self.stalled:
            return plan.num_fetched_buckets
        return super()._lookahead_writeback(plan)


class EvictionStalledCircuitORAM(CircuitORAM):
    """Circuit ORAM whose batched eviction budget can stall (starvation)."""

    stalled = False

    def _deterministic_evict_pass(self):
        if not self.stalled:
            super()._deterministic_evict_pass()


def build_pressured_batched(oram_class, seed=0):
    cls = (WritebackStalledPathORAM if oram_class is PathORAM
           else EvictionStalledCircuitORAM)
    oram = cls(N, WIDTH, initial_payloads=make_payloads(), rng=seed,
               stash_capacity=N)
    oram.stalled = True
    oram.persistent_stash_capacity = 0

    def relieve():
        oram.stalled = False
        oram.persistent_stash_capacity = N

    return oram, relieve


@pytest.mark.parametrize("oram_class", SCHEMES)
class TestStashPressure:
    """Satellite: batched-mode stash telemetry + overflow recovery."""

    def test_high_water_gauge_tracks_batched_peak(self, oram_class):
        from repro.telemetry.runtime import use_registry

        with use_registry() as registry:
            oram = make_oram(oram_class, seed=1)
            oram.access_batch(list(range(16)))
        snapshot = registry.snapshot()
        gauge = snapshot["gauges"]["oram.lookahead.stash_high_water"]
        assert gauge == oram.stash.peak_occupancy
        assert gauge > 0

    def test_healthy_batched_access_respects_tight_bound(self, oram_class):
        # The fused write-back drains the whole fetched union: repeated
        # batched accesses never trip even a zero persistent bound.
        oram = make_oram(oram_class, seed=1)
        oram.persistent_stash_capacity = 0
        for start in range(0, N, 16):
            oram.access_batch(list(range(start, start + 16)))
        assert oram.stats.stash_overflows == 0

    def test_batched_overflow_fires_the_signal(self, oram_class):
        from repro.oram import StashOverflowError

        oram, _ = build_pressured_batched(oram_class)
        with pytest.raises(StashOverflowError):
            oram.access_batch(list(range(16)))
        assert oram.stats.stash_overflows == 1
        assert oram.stash.occupancy > 0

    def test_background_evict_recovers_then_batched_retry_works(
            self, oram_class):
        from repro.oram import StashOverflowError

        oram, relieve = build_pressured_batched(oram_class)
        with pytest.raises(StashOverflowError):
            oram.access_batch(list(range(16)))
        stranded = oram.stash.occupancy
        relieve()
        oram.background_evict(passes=2 * oram.levels + 4)
        assert oram.stash.occupancy < stranded
        # The batched path works again and no block was lost.
        oram.access_batch(list(range(16)))
        np.testing.assert_array_equal(
            np.stack([oram.read(b) for b in range(N)]), make_payloads())
