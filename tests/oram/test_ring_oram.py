"""Ring ORAM tests: correctness, protocol invariants, bandwidth advantage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oram import PathORAM, RingORAM
from repro.oram.tree import DUMMY


class TestBasicAccess:
    def test_initial_payloads_readable(self, rng):
        data = rng.normal(size=(32, 4))
        oram = RingORAM(32, 4, initial_payloads=data.copy(), rng=1)
        for block in range(32):
            np.testing.assert_allclose(oram.read(block), data[block])

    def test_write_then_read(self, rng):
        oram = RingORAM(16, 4, rng=1)
        value = rng.normal(size=4)
        oram.write(5, value)
        np.testing.assert_allclose(oram.read(5), value)

    def test_repeated_access_same_block(self, rng):
        data = rng.normal(size=(16, 4))
        oram = RingORAM(16, 4, initial_payloads=data.copy(), rng=2)
        for _ in range(60):
            np.testing.assert_allclose(oram.read(7), data[7])

    def test_block_conservation(self, rng):
        oram = RingORAM(24, 2, rng=3)
        for _ in range(120):
            oram.read(int(rng.integers(0, 24)))
            assert oram.total_resident_blocks() == 24

    def test_bad_update_shape_rejected(self):
        oram = RingORAM(8, 2, rng=0)
        with pytest.raises(ValueError):
            oram.access(0, lambda payload: np.zeros(5))

    def test_single_block(self):
        oram = RingORAM(1, 2, initial_payloads=np.array([[1.0, 2.0]]), rng=0)
        np.testing.assert_allclose(oram.read(0), [1.0, 2.0])


class TestProtocolInvariants:
    def test_dummy_budget_respected(self, rng):
        """No bucket is ever touched more than S times between writes."""
        oram = RingORAM(32, 2, bucket_dummies=3, rng=4)
        for _ in range(200):
            oram.read(int(rng.integers(0, 32)))
            assert (oram._touches <= oram.bucket_dummies).all()

    def test_eviction_every_a_accesses(self, rng):
        oram = RingORAM(32, 2, evict_rate=4, rng=5)
        for _ in range(40):
            oram.read(int(rng.integers(0, 32)))
        assert oram.stats.eviction_passes == 10

    def test_consumed_slots_not_resurrected(self, rng):
        """A block read out of a bucket must not reappear from the stale
        (invalidated) tree copy after the fresh copy is updated."""
        data = rng.normal(size=(16, 2))
        oram = RingORAM(16, 2, initial_payloads=data.copy(), rng=6)
        oram.write(3, np.array([9.0, 9.0]))
        for _ in range(30):
            np.testing.assert_allclose(oram.read(3), [9.0, 9.0])

    def test_real_capacity_is_z(self, rng):
        """Bucket writes never install more than Z real blocks."""
        oram = RingORAM(64, 2, bucket_reals=4, bucket_dummies=4, rng=7)
        for _ in range(150):
            oram.read(int(rng.integers(0, 64)))
        reals_per_bucket = (oram.tree.ids[:, :] != DUMMY).sum(axis=1)
        assert (reals_per_bucket <= oram.bucket_reals).all()


class TestBandwidthAdvantage:
    def test_fewer_payload_touches_than_path(self, rng):
        """Ring's single-slot reads beat Path's full-bucket fetches."""
        counts = {}
        for name, cls in (("ring", RingORAM), ("path", PathORAM)):
            oram = cls(64, 4, rng=8)
            for _ in range(100):
                oram.read(int(rng.integers(0, 64)))
            counts[name] = (oram.stats.bucket_reads
                            + oram.stats.bucket_writes) / 100
        assert counts["ring"] < counts["path"]


class TestStatistical:
    def test_revealed_leaves_spread(self, rng):
        oram = RingORAM(64, 2, rng=9)
        oram.stats.reset()
        for _ in range(300):
            oram.read(5)
        assert len(set(oram.stats.revealed_leaves)) > 15


@given(seed=st.integers(0, 2**16))
@settings(max_examples=8, deadline=None)
def test_ring_oram_is_a_kv_store(seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(24, 2))
    oram = RingORAM(24, 2, initial_payloads=data.copy(), rng=seed)
    mirror = data.copy()
    for _ in range(60):
        block = int(rng.integers(0, 24))
        if rng.random() < 0.5:
            np.testing.assert_allclose(oram.read(block), mirror[block])
        else:
            value = rng.normal(size=2)
            oram.write(block, value)
            mirror[block] = value
