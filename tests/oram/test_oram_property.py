"""Model-based property tests: ORAM behaves as a key-value store."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oram.circuit_oram import CircuitORAM
from repro.oram.path_oram import PathORAM

NUM_BLOCKS = 24
WIDTH = 2

operations = st.lists(
    st.tuples(st.sampled_from(["read", "write"]),
              st.integers(0, NUM_BLOCKS - 1),
              st.floats(-100, 100, allow_nan=False)),
    min_size=1, max_size=60,
)


def run_model_check(oram_class, ops, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(NUM_BLOCKS, WIDTH))
    oram = oram_class(NUM_BLOCKS, WIDTH, initial_payloads=data.copy(),
                      rng=seed)
    mirror = data.copy()
    for op, block, value in ops:
        if op == "read":
            got = oram.read(block)
            np.testing.assert_allclose(got, mirror[block], atol=1e-12)
        else:
            payload = np.full(WIDTH, value)
            oram.write(block, payload)
            mirror[block] = payload
    # Every block still intact at the end.
    for block in range(NUM_BLOCKS):
        np.testing.assert_allclose(oram.read(block), mirror[block],
                                   atol=1e-12)


@given(ops=operations, seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_path_oram_is_a_kv_store(ops, seed):
    run_model_check(PathORAM, ops, seed)


@given(ops=operations, seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_circuit_oram_is_a_kv_store(ops, seed):
    run_model_check(CircuitORAM, ops, seed)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=5, deadline=None)
def test_recursive_circuit_oram_is_a_kv_store(seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(100, WIDTH))
    oram = CircuitORAM(100, WIDTH, initial_payloads=data.copy(),
                       recursion_cutoff=16, rng=seed)
    mirror = data.copy()
    for _ in range(60):
        block = int(rng.integers(0, 100))
        if rng.random() < 0.5:
            np.testing.assert_allclose(oram.read(block), mirror[block])
        else:
            value = rng.normal(size=WIDTH)
            oram.write(block, value)
            mirror[block] = value
