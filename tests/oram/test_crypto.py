"""Re-encryption layer tests: round-trips, freshness, key/nonce sensitivity."""

import numpy as np
import pytest

from repro.oram.crypto import EncryptedBucketTree, KeystreamCipher
from repro.oram.tree import DUMMY, BucketTree

KEY = b"0123456789abcdef0123456789abcdef"


class TestKeystreamCipher:
    def test_roundtrip(self):
        cipher = KeystreamCipher(KEY)
        message = b"embedding row bytes" * 7
        assert cipher.decrypt(cipher.encrypt(message, nonce=5), nonce=5) \
            == message

    def test_nonce_changes_ciphertext(self):
        cipher = KeystreamCipher(KEY)
        message = b"x" * 64
        assert cipher.encrypt(message, 1) != cipher.encrypt(message, 2)

    def test_key_changes_ciphertext(self):
        message = b"x" * 64
        a = KeystreamCipher(KEY).encrypt(message, 1)
        b = KeystreamCipher(b"f" * 32).encrypt(message, 1)
        assert a != b

    def test_deterministic(self):
        cipher = KeystreamCipher(KEY)
        assert cipher.encrypt(b"abc", 9) == cipher.encrypt(b"abc", 9)

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            KeystreamCipher(b"short")

    def test_keystream_length(self):
        assert len(KeystreamCipher(KEY).keystream(0, 100)) == 100


class TestEncryptedBucketTree:
    @pytest.fixture
    def sealed(self, rng):
        tree = BucketTree(8, 4, bucket_size=2)
        tree.ids[3, 0] = 7
        tree.payloads[3, 0] = rng.normal(size=4)
        return EncryptedBucketTree(tree, KEY), tree

    def test_at_rest_payloads_are_ciphertext(self, sealed, rng):
        enc, tree = sealed
        plain = np.zeros(4)
        enc.write_bucket(0, np.array([1, DUMMY]), np.zeros(2, dtype=int),
                         np.stack([plain, plain]))
        assert not np.allclose(enc.ciphertext_of(0)[0], plain)

    def test_read_roundtrips(self, sealed, rng):
        enc, _ = sealed
        payloads = rng.normal(size=(2, 4))
        ids = np.array([5, 6])
        enc.write_bucket(2, ids, np.zeros(2, dtype=int), payloads)
        got_ids, _, got_payloads = enc.read_bucket(2)
        np.testing.assert_array_equal(got_ids, ids)
        np.testing.assert_allclose(got_payloads, payloads)

    def test_rewrite_same_content_fresh_ciphertext(self, sealed, rng):
        """The replay-resistance property: identical plaintext rewrites
        look different in memory (fresh nonce per write)."""
        enc, _ = sealed
        payloads = rng.normal(size=(2, 4))
        ids = np.array([5, 6])
        enc.write_bucket(4, ids, np.zeros(2, dtype=int), payloads)
        first = enc.ciphertext_of(4)
        enc.write_bucket(4, ids, np.zeros(2, dtype=int), payloads)
        second = enc.ciphertext_of(4)
        assert not np.allclose(first, second)
        _, _, opened = enc.read_bucket(4)
        np.testing.assert_allclose(opened, payloads)

    def test_initial_state_encrypted_and_recoverable(self, sealed):
        enc, tree = sealed
        _, _, payloads = enc.read_bucket(3)
        assert np.isfinite(payloads).all()

    def test_geometry_passthrough(self, sealed):
        enc, tree = sealed
        assert enc.num_buckets == tree.num_buckets
        assert enc.path_indices(0) == tree.path_indices(0)


class TestEncryptedOramIntegration:
    def test_path_oram_over_encrypted_tree(self, rng):
        """A full ORAM running on sealed memory stays correct."""
        from repro.oram import PathORAM

        data = rng.normal(size=(32, 4))
        oram = PathORAM(32, 4, initial_payloads=data.copy(), rng=1)
        oram.tree = EncryptedBucketTree(oram.tree, KEY)
        mirror = data.copy()
        for _ in range(150):
            block = int(rng.integers(0, 32))
            if rng.random() < 0.5:
                np.testing.assert_allclose(oram.read(block), mirror[block])
            else:
                value = rng.normal(size=4)
                oram.write(block, value)
                mirror[block] = value
