"""Functional tests for Path ORAM and Circuit ORAM controllers."""

import numpy as np
import pytest

from repro.oram.circuit_oram import CircuitORAM, bit_reverse
from repro.oram.path_oram import PathORAM

ORAM_CLASSES = [PathORAM, CircuitORAM]


@pytest.fixture(params=ORAM_CLASSES, ids=["path", "circuit"])
def oram_class(request):
    return request.param


class TestBasicAccess:
    def test_initial_payloads_readable(self, oram_class, rng):
        data = rng.normal(size=(32, 4))
        oram = oram_class(32, 4, initial_payloads=data.copy(), rng=1)
        for block in range(32):
            np.testing.assert_allclose(oram.read(block), data[block])

    def test_write_then_read(self, oram_class, rng):
        oram = oram_class(16, 4, rng=1)
        value = rng.normal(size=4)
        oram.write(5, value)
        np.testing.assert_allclose(oram.read(5), value)

    def test_repeated_reads_stable(self, oram_class, rng):
        data = rng.normal(size=(16, 4))
        oram = oram_class(16, 4, initial_payloads=data.copy(), rng=2)
        for _ in range(10):
            np.testing.assert_allclose(oram.read(7), data[7])

    def test_access_update_fn_returns_old(self, oram_class):
        oram = oram_class(8, 2, rng=0)
        oram.write(3, np.array([1.0, 2.0]))
        old = oram.access(3, lambda p: p * 10)
        np.testing.assert_allclose(old, [1.0, 2.0])
        np.testing.assert_allclose(oram.read(3), [10.0, 20.0])

    def test_out_of_range(self, oram_class):
        oram = oram_class(8, 2, rng=0)
        with pytest.raises(IndexError):
            oram.read(8)

    def test_bad_payload_shape(self, oram_class):
        oram = oram_class(8, 2, rng=0)
        with pytest.raises(ValueError):
            oram.write(0, np.zeros(3))

    def test_single_block_oram(self, oram_class):
        oram = oram_class(1, 2, initial_payloads=np.array([[5.0, 6.0]]),
                          rng=0)
        np.testing.assert_allclose(oram.read(0), [5.0, 6.0])
        oram.write(0, np.array([1.0, 1.0]))
        np.testing.assert_allclose(oram.read(0), [1.0, 1.0])

    def test_block_conservation(self, oram_class, rng):
        oram = oram_class(24, 2, rng=3)
        for _ in range(100):
            oram.read(int(rng.integers(0, 24)))
            assert oram.total_resident_blocks() == 24

    def test_stats_counted(self, oram_class):
        oram = oram_class(16, 2, rng=0)
        oram.read(0)
        oram.read(1)
        assert oram.stats.accesses == 2
        assert oram.stats.bucket_reads > 0
        assert oram.stats.bucket_writes > 0
        assert len(oram.stats.revealed_leaves) == 2

    def test_load_blocks_refreshes(self, oram_class, rng):
        oram = oram_class(8, 2, rng=0)
        fresh = rng.normal(size=(8, 2))
        oram.load_blocks(fresh)
        for block in range(8):
            np.testing.assert_allclose(oram.read(block), fresh[block])

    def test_load_blocks_bad_shape(self, oram_class):
        oram = oram_class(8, 2, rng=0)
        with pytest.raises(ValueError):
            oram.load_blocks(np.zeros((7, 2)))


class TestRecursion:
    def test_recursive_posmap_correctness(self, oram_class, rng):
        data = rng.normal(size=(200, 2))
        oram = oram_class(200, 2, initial_payloads=data.copy(),
                          recursion_cutoff=16, rng=4)
        mirror = data.copy()
        for _ in range(200):
            block = int(rng.integers(0, 200))
            if rng.random() < 0.5:
                np.testing.assert_allclose(oram.read(block), mirror[block])
            else:
                value = rng.normal(size=2)
                oram.write(block, value)
                mirror[block] = value

    def test_memory_blocks_includes_recursion(self, oram_class):
        flat = oram_class(100, 2, recursion_cutoff=1000, rng=0)
        recursive = oram_class(100, 2, recursion_cutoff=16, rng=0)
        assert recursive.memory_blocks() > flat.memory_blocks()


class TestCircuitSpecifics:
    def test_bit_reverse(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011
        assert bit_reverse(5, 0) == 0

    def test_eviction_counter_advances(self):
        oram = CircuitORAM(16, 2, rng=0)
        oram.read(0)
        assert oram._eviction_counter == 2
        oram.read(0)
        assert oram._eviction_counter == 4

    def test_small_stash_does_not_overflow_under_load(self, rng):
        oram = CircuitORAM(128, 2, rng=5)  # default stash: 10
        for _ in range(500):
            oram.read(int(rng.integers(0, 128)))
        assert oram.stash.peak_occupancy <= 10


class TestPathSpecifics:
    def test_default_stash_matches_paper(self):
        assert PathORAM.DEFAULT_STASH == 150
        assert CircuitORAM.DEFAULT_STASH == 10

    def test_default_recursion_cutoffs_match_paper(self):
        assert PathORAM.DEFAULT_RECURSION_CUTOFF == 1 << 16
        assert CircuitORAM.DEFAULT_RECURSION_CUTOFF == 1 << 12

    def test_bucket_size_is_z4(self):
        assert PathORAM(8, 2, rng=0).bucket_size == 4
