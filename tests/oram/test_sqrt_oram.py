"""Square-root ORAM: correctness, shuffle schedule, trace obliviousness."""

import numpy as np
import pytest

from repro.oblivious.trace import MemoryTracer
from repro.oram import SqrtORAM
from repro.oram.position_map import FlatPositionMap
from repro.oram.stash import StashOverflowError
from repro.telemetry.audit import (
    MODE_EXACT,
    MODE_STRUCTURAL,
    AuditSubject,
    LeakageAuditor,
)

N, WIDTH = 16, 4


def make_payloads(n=N, width=WIDTH):
    return np.arange(n * width, dtype=np.float64).reshape(n, width)


def make_oram(seed=0, tracer=None, n=N, width=WIDTH, **kwargs):
    return SqrtORAM(n, width, initial_payloads=make_payloads(n, width),
                    rng=seed, tracer=tracer, **kwargs)


class TestValueSemantics:
    def test_reads_return_initial_payloads(self):
        oram = make_oram()
        payloads = make_payloads()
        for block in range(N):
            np.testing.assert_array_equal(oram.read(block), payloads[block])

    def test_repeated_hot_block_reads_survive_sheltering(self):
        oram = make_oram()
        for _ in range(3 * oram.period):
            np.testing.assert_array_equal(oram.read(5), make_payloads()[5])

    def test_read_your_writes_across_reshuffles(self):
        oram = make_oram()
        oram.write(7, np.full(WIDTH, 42.0))
        for _ in range(2 * oram.period + 1):  # force shuffles in between
            oram.read(0)
        np.testing.assert_array_equal(oram.read(7), np.full(WIDTH, 42.0))

    def test_access_returns_pre_update_payload(self):
        oram = make_oram()
        before = oram.access(3, lambda old: old + 1.0)
        np.testing.assert_array_equal(before, make_payloads()[3])
        np.testing.assert_array_equal(oram.read(3), make_payloads()[3] + 1.0)

    def test_update_fn_bad_shape_rejected(self):
        oram = make_oram()
        with pytest.raises(ValueError, match="shape"):
            oram.access(0, lambda old: np.zeros(WIDTH + 1))

    def test_out_of_range_block_rejected(self):
        oram = make_oram()
        with pytest.raises(IndexError):
            oram.access(N)


class TestShuffleSchedule:
    def test_period_is_ceil_sqrt_n(self):
        assert make_oram().period == 4
        assert SqrtORAM(10, 2, rng=0).period == 4  # ceil(sqrt(10))

    def test_reshuffle_fires_every_period_accesses(self):
        oram = make_oram()
        for access in range(1, 3 * oram.period + 1):
            oram.read(access % N)
            assert oram.stats.eviction_passes == access // oram.period

    def test_shelter_empties_at_the_shuffle(self):
        oram = make_oram()
        for block in range(oram.period - 1):
            oram.read(block)
        assert oram.stash.occupancy == oram.period - 1
        oram.read(oram.period - 1)  # period-th access -> shuffle
        assert oram.stash.occupancy == 0

    def test_revealed_slots_distinct_within_a_period(self):
        oram = make_oram()
        for _ in range(oram.period):
            oram.read(2)  # hammer one block: hits burn distinct dummies
        revealed = oram.stats.revealed_leaves
        assert len(set(revealed)) == len(revealed) == oram.period

    def test_background_evict_is_an_early_reshuffle(self):
        oram = make_oram()
        oram.read(1)
        assert oram.stash.occupancy == 1
        occupancy = oram.background_evict()
        assert occupancy == 0
        assert oram.stats.eviction_passes == 1
        # Post-shuffle reads still return the right values.
        np.testing.assert_array_equal(oram.read(1), make_payloads()[1])

    def test_stash_bound_enforced(self):
        # A shelter bound below the period trips mid-period, fires the
        # overflow callback, and counts the overflow.
        oram = SqrtORAM(N, WIDTH, rng=0)
        oram.persistent_stash_capacity = 1
        seen = []
        oram.overflow_callback = seen.append
        oram.read(0)
        with pytest.raises(StashOverflowError):
            oram.read(1)
        assert seen and oram.stats.stash_overflows == 1


class TestAccounting:
    def test_store_read_counters(self):
        oram = make_oram()
        oram.read(0)
        assert oram.stats.bucket_reads == 1  # exactly one store read
        total = N + oram.num_dummies
        for _ in range(oram.period - 1):
            oram.read(0)
        # period accesses + one full reshuffle sweep
        assert oram.stats.bucket_reads == oram.period + total
        assert oram.stats.bucket_writes == total

    def test_memory_blocks_counts_store_and_shelter(self):
        oram = make_oram()
        assert oram.memory_blocks() == (N + oram.num_dummies
                                        + oram.stash.capacity)

    def test_no_tree_introspection(self):
        oram = make_oram()
        assert oram.levels == 0
        assert oram.total_resident_blocks() == N


class TestFlatMapExtensions:
    def test_lookup_preserves_values_and_traces_like_an_update(self):
        tracer_lookup = MemoryTracer()
        tracer_update = MemoryTracer()
        a = FlatPositionMap(np.arange(8), tracer=tracer_lookup, region="pm")
        b = FlatPositionMap(np.arange(8), tracer=tracer_update, region="pm")
        assert a.lookup(5) == 5
        b.lookup_and_update(5, 99)
        assert [e.op for e in tracer_lookup.events] == [
            e.op for e in tracer_update.events]
        assert [e.address for e in tracer_lookup.events] == [
            e.address for e in tracer_update.events]
        np.testing.assert_array_equal(a.leaves, np.arange(8))

    def test_rewrite_installs_everything(self):
        pm = FlatPositionMap(np.arange(8))
        pm.rewrite(np.arange(8)[::-1])
        assert pm.lookup(0) == 7
        with pytest.raises(ValueError):
            pm.rewrite(np.arange(3))


class TestObliviousness:
    """The standing audit conventions: memory structural, per access."""

    @staticmethod
    def runner(tracer, secret):
        oram = make_oram(seed=0, tracer=tracer)
        tracer.clear()  # drop initialisation traffic
        for block in secret:
            oram.read(int(block))

    SECRETS = [[0] * 8, [N - 1] * 8, [i % N for i in range(8)]]

    def test_memory_trace_structural(self):
        finding = LeakageAuditor().audit(AuditSubject(
            "sqrt-memory", self.runner, self.SECRETS,
            mode=MODE_STRUCTURAL))
        assert finding.passed and not finding.leak_detected

    def test_memory_trace_not_exact(self):
        # The revealed store slot is the one secret-dependent address, so
        # exact equivalence must fail — that is why the scheme registers
        # structurally, like the tree ORAMs.
        finding = LeakageAuditor().audit(AuditSubject(
            "sqrt-exact", self.runner, self.SECRETS,
            mode=MODE_EXACT, expect_oblivious=False))
        assert finding.passed and finding.leak_detected
