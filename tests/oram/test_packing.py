"""Tree-packing (ZeroTrace sizing) tests: correctness under pressure."""

import numpy as np
import pytest

from repro.oram import CircuitORAM, PathORAM


class TestPackedTrees:
    @pytest.mark.parametrize("oram_class,stash", [(PathORAM, 150),
                                                  (CircuitORAM, 40)],
                             ids=["path", "circuit"])
    def test_packed_kv_semantics(self, oram_class, stash, rng):
        data = rng.normal(size=(128, 4))
        oram = oram_class(128, 4, initial_payloads=data.copy(),
                          pack_factor=4, stash_capacity=stash, rng=1)
        mirror = data.copy()
        for _ in range(300):
            block = int(rng.integers(0, 128))
            if rng.random() < 0.5:
                np.testing.assert_allclose(oram.read(block), mirror[block])
            else:
                value = rng.normal(size=4)
                oram.write(block, value)
                mirror[block] = value

    def test_packing_shrinks_tree(self):
        loose = CircuitORAM(128, 4, rng=0)
        packed = CircuitORAM(128, 4, pack_factor=4, stash_capacity=40, rng=0)
        assert packed.tree.num_buckets < loose.tree.num_buckets / 2

    def test_packing_increases_stash_pressure(self, rng):
        loose = PathORAM(256, 4, rng=1)
        packed = PathORAM(256, 4, pack_factor=4, rng=1)
        for _ in range(400):
            block = int(rng.integers(0, 256))
            loose.read(block)
            packed.read(block)
        assert packed.stash.peak_occupancy >= loose.stash.peak_occupancy

    def test_pack_factor_bounded_by_bucket_size(self):
        with pytest.raises(ValueError):
            CircuitORAM(64, 4, pack_factor=8)

    def test_invalid_pack_factor(self):
        with pytest.raises(ValueError):
            CircuitORAM(64, 4, pack_factor=0)

    def test_block_conservation_packed(self, rng):
        oram = CircuitORAM(200, 2, pack_factor=4, stash_capacity=40, rng=2)
        for _ in range(150):
            oram.read(int(rng.integers(0, 200)))
        assert oram.total_resident_blocks() == 200
