"""ORAM security properties.

ORAM security is distributional (the revealed leaf sequence is uniform and
independent of the logical access sequence), so these tests check:

1. the *structure* of the trace (ops/regions sequence and event count) is
   identical for any two access sequences of the same length;
2. the revealed path leaves are statistically uniform whichever block is
   (repeatedly) requested;
3. repeated access to the same block does not reveal repeated leaves
   (remapping works).
"""

import numpy as np
import pytest
from scipy import stats

from repro.oblivious.trace import MemoryTracer
from repro.oram.circuit_oram import CircuitORAM
from repro.oram.path_oram import PathORAM

ORAM_CLASSES = [PathORAM, CircuitORAM]


def trace_structure(events):
    """The op/region sequence with addresses erased."""
    return [(e.op, e.region) for e in events]


@pytest.fixture(params=ORAM_CLASSES, ids=["path", "circuit"])
def oram_class(request):
    return request.param


class TestTraceStructureConstant:
    def test_structure_independent_of_access_sequence(self, oram_class):
        structures = []
        for sequence in ([0] * 20, [15] * 20,
                         list(range(16)) + [3, 7, 3, 7]):
            tracer = MemoryTracer()
            oram = oram_class(16, 4, rng=42, tracer=tracer)
            tracer.clear()  # discard initialization traffic
            for block in sequence:
                oram.read(block)
            structures.append(trace_structure(tracer.events))
        assert structures[0] == structures[1] == structures[2]

    def test_reads_and_writes_same_structure(self, oram_class):
        structures = []
        for do_write in (False, True):
            tracer = MemoryTracer()
            oram = oram_class(16, 4, rng=7, tracer=tracer)
            tracer.clear()
            for block in range(8):
                if do_write:
                    oram.write(block, np.zeros(4))
                else:
                    oram.read(block)
            structures.append(trace_structure(tracer.events))
        assert structures[0] == structures[1]


class TestLeafDistribution:
    def test_revealed_leaves_uniform_chi_square(self, oram_class):
        """Whatever block is hammered, observed leaves look uniform."""
        num_blocks = 32
        trials = 1500
        for target_block in (0, 31):
            oram = oram_class(num_blocks, 2, rng=123)
            oram.stats.reset()
            for _ in range(trials):
                oram.read(target_block)
            leaves = np.asarray(oram.stats.revealed_leaves)
            counts = np.bincount(leaves, minlength=oram.tree.num_leaves)
            _, p_value = stats.chisquare(counts)
            assert p_value > 0.001, (
                f"leaf distribution for block {target_block} is non-uniform "
                f"(p={p_value:.2e})")

    def test_two_blocks_indistinguishable_by_leaf_mean(self, oram_class):
        oram = oram_class(32, 2, rng=9)
        observations = {}
        for block in (3, 28):
            oram.stats.reset()
            for _ in range(800):
                oram.read(block)
            observations[block] = np.asarray(oram.stats.revealed_leaves)
        _, p_value = stats.ks_2samp(observations[3], observations[28])
        assert p_value > 0.001


class TestRemapping:
    def test_same_block_reveals_fresh_leaves(self, oram_class):
        oram = oram_class(64, 2, rng=11)
        oram.stats.reset()
        for _ in range(50):
            oram.read(5)
        leaves = oram.stats.revealed_leaves
        # With 64 leaves and remapping, 50 accesses should span many leaves.
        assert len(set(leaves)) > 10

    def test_nonsecure_lookup_contrast(self):
        """The vulnerable table touches ONE address per lookup — the
        separation the Fig 3 attack exploits."""
        from repro.embedding.table import TableEmbedding

        table = TableEmbedding(64, 2, rng=0)
        tracer = MemoryTracer()
        for _ in range(50):
            table.generate_traced(np.array([5]), tracer)
        assert set(tracer.addresses()) == {5}
