"""Stash tests: capacity, oblivious full-scan traffic, eviction."""

import numpy as np
import pytest

from repro.oblivious.trace import MemoryTracer
from repro.oram.stash import Stash, StashOverflowError


class TestStashBasics:
    def test_add_remove_roundtrip(self, rng):
        stash = Stash(4, 3)
        payload = rng.normal(size=3)
        stash.add(7, leaf=2, payload=payload)
        assert stash.occupancy == 1
        leaf, got = stash.remove(7)
        assert leaf == 2
        np.testing.assert_allclose(got, payload)
        assert stash.occupancy == 0

    def test_remove_absent_returns_none(self):
        stash = Stash(4, 3)
        assert stash.remove(99) is None

    def test_peek_does_not_remove(self, rng):
        stash = Stash(4, 3)
        stash.add(1, 0, rng.normal(size=3))
        assert stash.peek(1) is not None
        assert stash.occupancy == 1

    def test_update(self, rng):
        stash = Stash(4, 3)
        stash.add(1, 0, np.zeros(3))
        assert stash.update(1, leaf=5, payload=np.ones(3))
        leaf, payload = stash.peek(1)
        assert leaf == 5
        np.testing.assert_allclose(payload, np.ones(3))

    def test_update_absent_false(self):
        assert not Stash(4, 3).update(9, leaf=1)

    def test_overflow_raises(self):
        stash = Stash(2, 3)
        stash.add(0, 0, np.zeros(3))
        stash.add(1, 0, np.zeros(3))
        with pytest.raises(StashOverflowError):
            stash.add(2, 0, np.zeros(3))

    def test_peak_occupancy_tracked(self):
        stash = Stash(4, 3)
        stash.add(0, 0, np.zeros(3))
        stash.add(1, 0, np.zeros(3))
        stash.remove(0)
        assert stash.peak_occupancy == 2


class TestStashObliviousTraffic:
    def test_every_operation_scans_full_capacity(self):
        tracer = MemoryTracer()
        stash = Stash(8, 3, tracer=tracer, region="s")
        stash.add(1, 0, np.zeros(3))
        assert len(tracer.addresses("s")) == 8
        tracer.clear()
        stash.remove(99)  # absent: still a full scan
        assert len(tracer.addresses("s")) == 8
        tracer.clear()
        stash.resident_blocks()
        assert len(tracer.addresses("s")) == 8


class TestEvictMatching:
    def test_removes_only_matching(self, rng):
        stash = Stash(6, 2)
        stash.add(0, leaf=1, payload=np.zeros(2))
        stash.add(1, leaf=2, payload=np.ones(2))
        stash.add(2, leaf=1, payload=2 * np.ones(2))
        taken = stash.evict_matching(lambda leaf: leaf == 1)
        assert sorted(block_id for block_id, _, _ in taken) == [0, 2]
        assert stash.occupancy == 1
        assert stash.peek(1) is not None
