"""Failure injection: corrupted state must be detected, not silently served."""

import numpy as np
import pytest

from repro.oram import (
    DUMMY,
    CircuitORAM,
    PathORAM,
    StashOverflowError,
)


class TestCorruptionDetected:
    @pytest.mark.parametrize("oram_class", [PathORAM, CircuitORAM],
                             ids=["path", "circuit"])
    def test_deleted_block_raises(self, oram_class):
        """Erasing a block everywhere breaks the ORAM invariant; the next
        access must fail loudly rather than return garbage."""
        oram = oram_class(16, 2, rng=0)
        oram.tree.ids[oram.tree.ids == 5] = DUMMY
        oram.stash.ids[oram.stash.ids == 5] = DUMMY
        with pytest.raises(KeyError, match="invariant"):
            oram.read(5)

    def test_other_blocks_unaffected_by_one_corruption(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(16, 2))
        oram = CircuitORAM(16, 2, initial_payloads=data.copy(), rng=1)
        oram.tree.ids[oram.tree.ids == 5] = DUMMY
        oram.stash.ids[oram.stash.ids == 5] = DUMMY
        for block in (0, 3, 15):
            np.testing.assert_allclose(oram.read(block), data[block])


class TestStashExhaustion:
    def test_tiny_stash_overflows_loudly(self):
        """A deliberately undersized Path ORAM stash must raise
        StashOverflowError instead of dropping blocks. Z=1 buckets make
        stash pressure certain (the classic Path ORAM failure mode)."""
        rng = np.random.default_rng(2)
        with pytest.raises(StashOverflowError):
            oram = PathORAM(64, 2, bucket_size=1, stash_capacity=1, rng=3)
            for _ in range(500):
                oram.read(int(rng.integers(0, 64)))

    def test_blocks_never_silently_lost_before_overflow(self):
        """Up to the moment of overflow, conservation holds."""
        rng = np.random.default_rng(4)
        oram = PathORAM(128, 2, pack_factor=4, stash_capacity=3, rng=5)
        try:
            for _ in range(500):
                oram.read(int(rng.integers(0, 128)))
                assert oram.total_resident_blocks() == 128
        except StashOverflowError:
            pass  # acceptable terminal state for this configuration


class TestPayloadValidation:
    def test_update_fn_result_shape_enforced(self):
        oram = CircuitORAM(8, 3, rng=0)
        with pytest.raises(ValueError):
            oram.access(0, lambda payload: np.zeros(5))
