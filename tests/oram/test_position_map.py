"""Position map tests: flat scan pattern and recursive consistency."""

import numpy as np
import pytest

from repro.oblivious.trace import MemoryTracer
from repro.oram.circuit_oram import CircuitORAM
from repro.oram.position_map import FlatPositionMap, OramPositionMap


class TestFlatPositionMap:
    def test_lookup_returns_old_installs_new(self):
        posmap = FlatPositionMap(np.array([3, 1, 4]))
        old = posmap.lookup_and_update(1, new_leaf=9)
        assert old == 1
        assert posmap.lookup_and_update(1, new_leaf=0) == 9

    def test_scan_touches_all_entries(self):
        tracer = MemoryTracer()
        posmap = FlatPositionMap(np.arange(5), tracer=tracer, region="pm")
        posmap.lookup_and_update(3, 0)
        reads = [e for e in tracer if e.op == "R"]
        writes = [e for e in tracer if e.op == "W"]
        assert [e.address for e in reads] == list(range(5))
        assert [e.address for e in writes] == list(range(5))

    def test_trace_independent_of_block(self):
        digests = set()
        for block in (0, 2, 4):
            tracer = MemoryTracer()
            posmap = FlatPositionMap(np.arange(5), tracer=tracer)
            posmap.lookup_and_update(block, 1)
            digests.add(tracer.digest())
        assert len(digests) == 1

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            FlatPositionMap(np.arange(3)).lookup_and_update(3, 0)


class TestOramPositionMap:
    def _factory(self, num_blocks, width, payloads):
        return CircuitORAM(num_blocks, width, initial_payloads=payloads,
                           rng=0, recursion_cutoff=1 << 20)

    def test_round_trip_many_blocks(self):
        rng = np.random.default_rng(1)
        initial = rng.integers(0, 16, size=40)
        posmap = OramPositionMap(initial, self._factory)
        mirror = initial.copy()
        for step in range(120):
            block = int(rng.integers(0, 40))
            new_leaf = int(rng.integers(0, 16))
            old = posmap.lookup_and_update(block, new_leaf)
            assert old == mirror[block], f"step {step}"
            mirror[block] = new_leaf

    def test_partial_last_chunk(self):
        initial = np.arange(18)  # not a multiple of 16
        posmap = OramPositionMap(initial, self._factory)
        assert posmap.lookup_and_update(17, 99) == 17
        assert posmap.lookup_and_update(17, 0) == 99

    def test_out_of_range(self):
        posmap = OramPositionMap(np.arange(18), self._factory)
        with pytest.raises(IndexError):
            posmap.lookup_and_update(18, 0)
