"""BucketTree structure and addressing tests."""

import numpy as np
import pytest

from repro.oblivious.trace import MemoryTracer
from repro.oram.tree import DUMMY, BucketTree, tree_levels_for


class TestTreeLevels:
    @pytest.mark.parametrize("blocks,levels", [
        (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (64, 6), (65, 7),
        (10**6, 20),
    ])
    def test_levels(self, blocks, levels):
        assert tree_levels_for(blocks) == levels

    def test_invalid(self):
        with pytest.raises(ValueError):
            tree_levels_for(0)


class TestPathIndices:
    def test_root_only(self):
        tree = BucketTree(1, 2)
        assert tree.path_indices(0) == [0]

    def test_left_and_right_leaves(self):
        tree = BucketTree(4, 2)  # 2 levels, 4 leaves, 7 buckets
        assert tree.path_indices(0) == [0, 1, 3]
        assert tree.path_indices(3) == [0, 2, 6]

    def test_path_ends_at_distinct_leaf_buckets(self):
        tree = BucketTree(8, 2)
        leaf_buckets = {tree.path_indices(leaf)[-1]
                        for leaf in range(tree.num_leaves)}
        assert len(leaf_buckets) == tree.num_leaves

    def test_out_of_range_leaf(self):
        tree = BucketTree(4, 2)
        with pytest.raises(IndexError):
            tree.path_indices(4)

    def test_paths_share_prefix_by_common_depth(self):
        tree = BucketTree(16, 2)
        for a in range(tree.num_leaves):
            for b in range(tree.num_leaves):
                depth = tree.common_depth(a, b)
                pa, pb = tree.path_indices(a), tree.path_indices(b)
                shared = sum(1 for x, y in zip(pa, pb) if x == y)
                assert shared == depth + 1  # root always shared


class TestCommonDepth:
    def test_same_leaf_full_depth(self):
        tree = BucketTree(8, 2)
        assert tree.common_depth(5, 5) == tree.levels

    def test_opposite_halves_zero(self):
        tree = BucketTree(8, 2)
        assert tree.common_depth(0, tree.num_leaves - 1) == 0


class TestBucketAccess:
    def test_read_write_roundtrip(self, rng):
        tree = BucketTree(8, 3, bucket_size=2)
        ids = np.array([5, DUMMY])
        leaves = np.array([3, 0])
        payloads = rng.normal(size=(2, 3))
        tree.write_bucket(4, ids, leaves, payloads)
        got_ids, got_leaves, got_payloads = tree.read_bucket(4)
        np.testing.assert_array_equal(got_ids, ids)
        np.testing.assert_allclose(got_payloads, payloads)

    def test_traced(self):
        tracer = MemoryTracer()
        tree = BucketTree(8, 3, tracer=tracer, region="tr")
        tree.read_bucket(0)
        tree.read_bucket_metadata(1)
        assert tracer.addresses("tr") == [0, 1]

    def test_occupancy_and_find_slot(self):
        tree = BucketTree(4, 2, bucket_size=2)
        assert tree.occupancy() == 0
        assert tree.find_slot(0) == 0
        tree.ids[0, 0] = 7
        assert tree.occupancy() == 1
        assert tree.find_slot(0) == 1
        tree.ids[0, 1] = 8
        assert tree.find_slot(0) is None


class TestPlaceInitial:
    def test_places_deepest_first(self):
        tree = BucketTree(4, 2, bucket_size=1)
        assert tree.place_initial(0, leaf=2, payload=np.zeros(2))
        leaf_bucket = tree.path_indices(2)[-1]
        assert tree.ids[leaf_bucket, 0] == 0

    def test_walks_up_when_full(self):
        tree = BucketTree(4, 2, bucket_size=1)
        path = tree.path_indices(1)
        for block in range(len(path)):
            assert tree.place_initial(block, 1, np.zeros(2))
        # Path now full root-to-leaf; next placement on same path fails.
        assert not tree.place_initial(99, 1, np.zeros(2))
