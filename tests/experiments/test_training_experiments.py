"""Reduced-size runs of the training-based experiments (Table V, Fig 14).

The full-size defaults run in the benchmark harness; here tiny parameter
choices verify the mechanisms end-to-end in a few seconds.
"""

import pytest

from repro.experiments import fig14_llm_finetune, table05_accuracy


class TestTable5Small:
    @pytest.fixture(scope="class")
    def result(self):
        return table05_accuracy.run(max_rows=200, steps=120, batch_size=64,
                                    eval_samples=2048, k=32, fc_sizes=(32,))

    def test_all_variants_beat_chance(self, result):
        for accuracy in result.column("accuracy"):
            assert accuracy > 0.65

    def test_parity_between_representations(self, result):
        aucs = result.column("auc")
        assert max(aucs) - min(aucs) < 0.06

    def test_three_rows(self, result):
        assert result.column("representation") == \
            ["Table", "DHE Uniform", "DHE Varied"]


class TestFig14Small:
    def test_dhe_converges_toward_table(self):
        result = fig14_llm_finetune.run(vocab_size=48, embed_dim=16,
                                        num_layers=1, pretrain_steps=60,
                                        finetune_steps=150, eval_every=50,
                                        seq_len=16, batch_size=8)
        table_curve = result.column("table_ppl")
        dhe_curve = result.column("dhe_ppl")
        # DHE improves over finetuning and ends within 40% of the table.
        assert dhe_curve[-1] < dhe_curve[0]
        assert dhe_curve[-1] < 1.4 * table_curve[-1]
