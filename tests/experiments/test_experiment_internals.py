"""Unit tests for experiment-module internals and the CLI."""

import pytest

from repro.experiments.fig05_llm_latency import GPT2_VOCAB, llm_dhe_shape
from repro.experiments.fig11_threshold_sweep import (
    MLP_OVERHEAD_SECONDS,
    embedding_latency_for_split,
)
from repro.experiments.table06_footprint import dataset_report
from repro.experiments.table07_e2e_latency import dataset_latencies
from repro.data import KAGGLE_SPEC


class TestLlmDheShape:
    def test_paper_sizing_rule(self):
        """§VI-A3: k and internal FCs are 2x the embedding dimension."""
        shape = llm_dhe_shape(1024)
        assert shape.k == 2048
        assert shape.fc_sizes == (2048, 2048, 2048)
        assert shape.out_dim == 1024

    def test_gpt2_vocab_constant(self):
        assert GPT2_VOCAB == 50257


class TestSplitLatency:
    def test_zero_scan_is_all_dhe(self):
        from repro.costmodel import DLRM_DHE_UNIFORM_16, dhe_latency, \
            dhe_varied_shape

        sizes = sorted(KAGGLE_SPEC.table_sizes)
        total = embedding_latency_for_split(sizes, 0, DLRM_DHE_UNIFORM_16,
                                            batch=32, threads=1)
        expected = sum(dhe_latency(dhe_varied_shape(s, DLRM_DHE_UNIFORM_16),
                                   32, 1) for s in sizes)
        assert total == pytest.approx(expected)

    def test_full_scan_is_all_scan(self):
        from repro.costmodel import DLRM_DHE_UNIFORM_16, linear_scan_latency

        sizes = sorted(KAGGLE_SPEC.table_sizes)
        total = embedding_latency_for_split(sizes, len(sizes),
                                            DLRM_DHE_UNIFORM_16, 32, 1)
        expected = sum(linear_scan_latency(s, 16, 32, 1) for s in sizes)
        assert total == pytest.approx(expected)


class TestDatasetHelpers:
    def test_table7_latency_keys(self):
        latencies = dataset_latencies(KAGGLE_SPEC)
        assert set(latencies) == {
            "index_lookup", "linear_scan", "path_oram", "circuit_oram",
            "dhe_uniform", "dhe_varied", "hybrid_uniform", "hybrid_varied"}
        assert all(value > MLP_OVERHEAD_SECONDS * 0.99
                   for value in latencies.values())

    def test_table6_report_consistent(self):
        report = dataset_report(KAGGLE_SPEC)
        assert report.hybrid_varied <= report.dhe_uniform
        assert report.tree_oram > report.table


class TestRegistryCli:
    def test_main_prints_tables(self, capsys):
        from repro.experiments.registry import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "linear scan" in out

    def test_main_unknown_id_raises(self):
        from repro.experiments.registry import main

        with pytest.raises(KeyError):
            main(["fig99"])


class TestDramRowBufferChannel:
    """§III-A2 also cites the DRAM row-buffer channel: identical mechanics
    at 8 KiB granularity. The page-fault observer generalises directly."""

    def test_row_buffer_granularity(self):
        from repro.sidechannel.pagefault import (
            ControlledChannelAttacker,
            PageChannelVictim,
            PageFaultObserver,
        )

        observer = PageFaultObserver(page_size=8192)  # one DRAM row
        victim = PageChannelVictim(observer, num_rows=4096, embedding_dim=64)
        attacker = ControlledChannelAttacker(victim)
        low, high = attacker.observe_lookup(1234)
        assert low <= 1234 < high
        # 8 KiB / 256 B rows = 32 candidates per DRAM row (+ straddle).
        assert high - low <= 2 * 8192 // 256 + 1

    def test_coarser_channel_leaves_more_candidates(self):
        from repro.sidechannel.pagefault import (
            ControlledChannelAttacker,
            PageChannelVictim,
            PageFaultObserver,
        )

        fine = ControlledChannelAttacker(PageChannelVictim(
            PageFaultObserver(page_size=4096), 4096, 64))
        coarse = ControlledChannelAttacker(PageChannelVictim(
            PageFaultObserver(page_size=65536), 4096, 64))
        assert coarse.candidates_after_lookup(1000) > \
            fine.candidates_after_lookup(1000)
