"""ExperimentResult container and rendering tests."""

import pytest

from repro.experiments.reporting import (
    ExperimentResult,
    format_mb,
    format_ms,
)


@pytest.fixture
def result():
    r = ExperimentResult("figX", "demo", headers=("a", "b"))
    r.add_row(1, 2.5)
    r.add_row(10, 0.000123)
    return r


class TestExperimentResult:
    def test_add_row_validates_width(self, result):
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column(self, result):
        assert result.column("a") == [1, 10]

    def test_unknown_column(self, result):
        with pytest.raises(KeyError):
            result.column("z")

    def test_render_contains_everything(self, result):
        result.notes = "hello"
        text = result.render()
        assert "figX" in text and "demo" in text
        assert "2.5" in text
        assert "note: hello" in text

    def test_render_aligns_columns(self, result):
        lines = result.render().splitlines()
        header, _, row1, row2 = lines[1:5]
        assert len(row1) == len(row2) == len(header)


class TestFormatters:
    def test_format_ms(self):
        assert format_ms(0.0123) == 12.3

    def test_format_mb(self):
        assert format_mb(1024 * 1024) == 1.0
