"""Registry wiring + fast paper-shape assertions for cheap experiments.

The slow experiments (real training, full grids) are exercised by the
benchmark harness; here each cheap experiment runs once with reduced
parameters and its core paper claim is asserted.
"""

import numpy as np
import pytest

from repro.experiments.registry import (
    EXPERIMENTS,
    list_experiments,
    main,
    run_experiment,
)

ALL_IDS = {"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
           "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table1",
           "table2", "table5", "table6", "table7", "table8",
           "llm-footprint", "autoscale", "cache", "chaos", "cluster",
           "migrate", "lazy", "train", "llm"}


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        assert set(EXPERIMENTS) == ALL_IDS

    def test_list_sorted(self):
        assert list_experiments() == sorted(ALL_IDS)

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_runs_tagged_in_telemetry(self):
        from repro.telemetry.runtime import use_registry

        with use_registry() as registry:
            run_experiment("fig2")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["experiments.runs_total"] == 1.0
        assert snapshot["counters"]["experiments.fig2.runs_total"] == 1.0
        assert "span.experiment.run.seconds" in snapshot["histograms"]


class TestCli:
    def test_json_dump_bundles_results_and_telemetry(self, tmp_path,
                                                     capsys):
        import json

        path = tmp_path / "run.json"
        assert main(["fig2", "--json", str(path)]) == 0
        assert "fig2" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        (result,) = payload["results"]
        assert result["experiment_id"] == "fig2"
        assert result["headers"] and result["rows"]
        assert payload["counters"]["experiments.fig2.runs_total"] == 1.0
        assert payload["spans"]["recorded"] >= 1

    def test_cli_does_not_clobber_global_registry(self, tmp_path, capsys):
        from repro.telemetry.runtime import get_registry

        before = get_registry()
        main(["fig2", "--json", str(tmp_path / "run.json")])
        capsys.readouterr()
        assert get_registry() is before


class TestFig2:
    def test_taxonomy_trade_off(self):
        result = run_experiment("fig2")
        rows = {row[0]: dict(zip(result.headers, row)) for row in result.rows}
        assert rows["DHE"]["normalized_latency"] > 1.0
        assert rows["DHE"]["memory_mb"] < 0.05 * rows["table lookup"]["memory_mb"]
        assert rows["DHE"]["secure"] == "yes"
        assert rows["table lookup"]["secure"] == "no"


class TestTable2:
    def test_security_matrix_verdicts(self):
        result = run_experiment("table2")
        verdicts = dict(zip(result.column("technique"),
                            result.column("secret_dependent_data_access")))
        assert "NOT protected" in verdicts["Table: non-secure"]
        for technique in ("Table: ORAM", "Table: Linear Scan", "DHE (hash)"):
            assert "protected" in verdicts[technique]
            assert "NOT" not in verdicts[technique]


class TestFig3:
    def test_attack_succeeds_and_defence_flattens(self):
        result = run_experiment("fig3", repeats=3)
        assert "SUCCESS" in result.notes
        vulnerable = result.column("latency_vulnerable_cycles")
        assert max(vulnerable) > 2 * sorted(vulnerable)[-2]


class TestFig4:
    def test_paper_shape(self):
        result = run_experiment("fig4", dims=(64,),
                                sizes=(100, 10_000, 10_000_000))
        scan = result.column("linear_scan_ms")
        dhe = result.column("dhe_uniform_ms")
        circuit = result.column("circuit_oram_ms")
        # Small table: scan wins; large: scan loses to everything.
        assert scan[0] < dhe[0] and scan[0] < circuit[0]
        assert scan[-1] > dhe[-1] and scan[-1] > circuit[-1]
        # DHE Uniform flat across sizes.
        assert dhe[0] == dhe[-1]


class TestFig5:
    def test_dhe_wins_large_batches(self):
        result = run_experiment("fig5", dims=(1024,), batches=(1, 256))
        rows = {(r[0], r[1]): r for r in result.rows}
        headers = list(result.headers)
        circuit = headers.index("circuit_oram_ms")
        dhe = headers.index("dhe_ms")
        large = rows[(1024, 256)]
        assert large[dhe] < large[circuit]


class TestFig6:
    def test_threshold_trends(self):
        result = run_experiment("fig6", batches=(1, 128),
                                threads_list=(1, 16))
        values = {(b, t): v for b, t, v in result.rows}
        assert values[(128, 1)] < values[(1, 1)]
        assert values[(1, 16)] > values[(1, 1)]


class TestFig10:
    def test_optimizations_reduce_latency(self):
        result = run_experiment("fig10", sizes=(1_000_000,))
        for row in result.rows:
            original, gramine, opt = row[2:]
            assert original > gramine > opt


class TestFig11:
    def test_profiled_split_near_optimal(self):
        result = run_experiment("fig11")
        latencies = result.column("latency_ms")
        flags = result.column("is_profiled_split")
        best = int(np.argmin(latencies))
        profiled = flags.index("<-- profiled")
        assert abs(best - profiled) <= 1  # paper: within +-1 table


class TestFig12:
    def test_hybrid_advantage_grows_with_batch(self):
        result = run_experiment("fig12", batches=(8, 128))
        speedups = result.column("hybrid_speedup_vs_circuit")
        # per dataset: later batch's speed-up exceeds earlier
        assert speedups[1] > speedups[0]
        assert speedups[3] > speedups[2]


class TestTable7:
    def test_paper_ordering(self):
        result = run_experiment("table7")
        latencies = dict(zip(result.column("technique"),
                             result.column("terabyte_ms")))
        assert latencies["index_lookup"] < latencies["hybrid_varied"]
        assert latencies["hybrid_varied"] < latencies["circuit_oram"]
        assert latencies["circuit_oram"] < latencies["path_oram"]
        assert latencies["path_oram"] < latencies["linear_scan"]

    def test_hybrid_speedup_in_paper_range(self):
        result = run_experiment("table7")
        speedups = dict(zip(result.column("technique"),
                            result.column("terabyte_vs_circuit")))
        assert 1.5 < speedups["hybrid_varied"] < 4.5  # paper: 2.28x


class TestTable6:
    def test_footprint_story(self):
        result = run_experiment("table6")
        pct = dict(zip(result.column("representation"),
                       result.column("terabyte_pct")))
        assert pct["tree_oram"] > 250  # paper: 336.9%
        assert pct["dhe_varied"] < 5
        assert pct["hybrid_varied"] <= pct["dhe_uniform"]


class TestTable8:
    def test_meta_scale_story(self):
        result = run_experiment("table8")
        memory = dict(zip(result.column("technique"),
                          result.column("memory_mb")))
        speedup = dict(zip(result.column("technique"),
                           result.column("vs_circuit")))
        # paper: hybrid varied 2.4x faster, >2500x smaller than tables
        assert speedup["hybrid_varied"] > 1.5
        assert memory["index_lookup"] / memory["hybrid_varied"] > 250


class TestFig15:
    def test_llm_story(self):
        result = run_experiment("fig15", batches=(1, 12))
        rows = {(r[0], r[1]): dict(zip(result.headers, r))
                for r in result.rows}
        # DHE beats circuit on prefill at every batch size.
        assert rows[(1, "prefill")]["dhe_vs_circuit"] > 1.0
        assert rows[(12, "prefill")]["dhe_vs_circuit"] > 1.0
        # Batched decode favours DHE; batch-1 decode is a near-tie.
        assert rows[(12, "decode")]["dhe_vs_circuit"] > 1.0
        assert abs(rows[(1, "decode")]["dhe_vs_circuit"] - 1.0) < 0.1


class TestLlmFootprint:
    def test_paper_numbers(self):
        result = run_experiment("llm-footprint")
        parts = dict(zip(result.column("scheme"),
                         result.column("embedding_part_mb")))
        assert parts["table"] == pytest.approx(196.3, rel=0.03)
        assert parts["oram (circuit)"] == pytest.approx(513.6, rel=0.1)
        assert parts["dhe (+tied head table)"] == pytest.approx(56.0,
                                                                rel=0.1)


class TestCluster:
    def test_scaling_story_and_gates(self):
        result = run_experiment("cluster", num_requests=96)
        capacities = [float(c) for c in result.column("capacity_rps")]
        nodes = [int(n) for n in result.column("nodes")]
        # capacity grows with node count; every gate reported PASS
        assert capacities[nodes.index(4)] > 3 * capacities[nodes.index(1)]
        assert "FAIL" not in result.notes
        assert "failover" in result.notes


class TestMigrate:
    def test_migration_story_and_gates(self):
        result = run_experiment("migrate", num_requests=96)
        moved = [int(m) for m in result.column("moved")]
        bounds = [int(b) for b in result.column("bound")]
        shed = [int(s) for s in result.column("shed")]
        assert all(m <= b for m, b in zip(moved, bounds))
        assert all(s == 0 for s in shed)
        assert "FAIL" not in result.notes
        assert "hot-first anti-pattern is caught" in result.notes


class TestTable1:
    def test_complexity_exponents(self):
        result = run_experiment("table1")
        exponents = dict(zip(result.column("technique"),
                             result.column("fitted_exponent")))
        assert exponents["linear scan"] == pytest.approx(1.0, abs=0.25)
        assert exponents["DHE"] == pytest.approx(2.0, abs=0.25)
        assert 0.3 < exponents["tree ORAM"] < 1.3


class TestLlm:
    def test_pipeline_story_and_gates(self):
        result = run_experiment("llm")
        tok = [int(n) for n in result.column("tok")]
        dec = [int(n) for n in result.column("dec")]
        # tokenize starts overprovisioned and sheds a node in the warm-up;
        # decode grows through the ramp; every gate reported PASS
        assert min(tok) < tok[0]
        assert dec[-1] > dec[0]
        assert "FAIL" not in result.notes
        assert "hot-load-chasing controller" in result.notes

    def test_json_includes_per_stage_telemetry(self, tmp_path, capsys):
        import json

        path = tmp_path / "llm.json"
        assert main(["llm", "--json", str(path)]) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        (result,) = payload["results"]
        assert result["experiment_id"] == "llm"
        assert result["headers"] == ["tick", "rate", "tok", "pre", "dec",
                                     "decode_p99_ms", "decisions"]
        counters = payload["counters"]
        # the per-stage telemetry snapshot rides along in the dump
        for stage in ("tokenize", "prefill", "decode"):
            assert counters[f"llm.stage.{stage}.requests_total"] > 0
            assert counters[f"llm.stage.{stage}.batches_total"] > 0
        assert counters["llm.pool.tokenize.scale_down_events_total"] >= 1
        assert counters["llm.pool.decode.scale_up_events_total"] >= 1
        assert counters["experiments.llm.runs_total"] == 1.0
        assert payload["gauges"]["llm.pool.decode.nodes"] >= 2.0
