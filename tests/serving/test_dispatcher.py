"""Dispatcher: fleet evaluation, replica selection, skewed offered load."""

import numpy as np
import pytest

from repro.costmodel.colocation import (
    TenantDemand,
    dhe_demand,
    replicated_latencies,
    scan_demand,
)
from repro.costmodel.latency import DheShape
from repro.serving.dispatcher import Dispatcher
from repro.telemetry.runtime import use_registry

BATCH = 32


@pytest.fixture
def dhe_dispatcher():
    shape = DheShape(k=1024, fc_sizes=(1024, 1024), out_dim=64)
    return Dispatcher(dhe_demand(shape, BATCH), batch_size=BATCH)


@pytest.fixture
def scan_dispatcher():
    return Dispatcher(scan_demand(2_000_000, 64, BATCH), batch_size=BATCH)


class TestFleetEvaluation:
    def test_latencies_match_cost_model(self, dhe_dispatcher):
        assert dhe_dispatcher.replica_latencies(3) == \
            replicated_latencies(dhe_dispatcher.demand, 3)

    def test_batch_latency_is_worst_replica(self, dhe_dispatcher):
        assert dhe_dispatcher.batch_latency(4) == \
            max(dhe_dispatcher.replica_latencies(4))

    def test_throughput_sums_replicas(self, dhe_dispatcher):
        latencies = dhe_dispatcher.replica_latencies(4)
        assert dhe_dispatcher.throughput(4) == pytest.approx(
            sum(BATCH / lat for lat in latencies))

    def test_sweep_shape_and_telemetry(self, dhe_dispatcher):
        with use_registry() as registry:
            sweep = dhe_dispatcher.sweep(5)
        assert [copies for copies, _, _ in sweep] == [1, 2, 3, 4, 5]
        snapshot = registry.snapshot()
        assert snapshot["counters"]["dispatcher.evaluations_total"] == 5.0
        hist = snapshot["histograms"]["dispatcher.replica_latency_seconds"]
        assert hist["count"] == 5
        assert snapshot["spans"]["recorded"] == 1

    def test_batch_size_validated(self, dhe_dispatcher):
        with pytest.raises(ValueError):
            Dispatcher(dhe_dispatcher.demand, batch_size=0)


class TestMinReplicas:
    def test_smallest_feasible_fleet(self, dhe_dispatcher):
        # Feasible by construction: ask for just under what two copies give
        # within a latency bound three copies still meet.
        sweep = dhe_dispatcher.sweep(8)
        _, latency_two, throughput_two = sweep[1]
        chosen = dhe_dispatcher.min_replicas(
            rate_rps=0.99 * throughput_two,
            sla_seconds=2.0 * latency_two, max_replicas=8)
        assert chosen == 2

    def test_single_copy_suffices_for_tiny_rate(self, dhe_dispatcher):
        _, latency_one, throughput_one = dhe_dispatcher.sweep(1)[0]
        assert dhe_dispatcher.min_replicas(
            rate_rps=0.5 * throughput_one,
            sla_seconds=2.0 * latency_one, max_replicas=4) == 1

    def test_infeasible_returns_none(self, dhe_dispatcher):
        assert dhe_dispatcher.min_replicas(
            rate_rps=1e12, sla_seconds=1e-9, max_replicas=4) is None

    def test_selection_recorded_as_gauge(self, dhe_dispatcher):
        _, latency_one, throughput_one = dhe_dispatcher.sweep(1)[0]
        with use_registry() as registry:
            chosen = dhe_dispatcher.min_replicas(
                rate_rps=0.5 * throughput_one,
                sla_seconds=2.0 * latency_one, max_replicas=4)
        assert registry.snapshot()["gauges"][
            "dispatcher.selected_replicas"] == float(chosen)

    def test_inputs_validated(self, dhe_dispatcher):
        with pytest.raises(ValueError):
            dhe_dispatcher.min_replicas(0.0, 1.0, 4)
        with pytest.raises(ValueError):
            dhe_dispatcher.min_replicas(1.0, 0.0, 4)


class TestSkewedArrivals:
    """Replica selection driven by arrival traces rather than flat rates.

    The offered rate a fleet must absorb is the *peak windowed* rate of the
    trace, not its long-run mean; a skewed trace with the same request
    count forces a larger fleet.
    """

    @staticmethod
    def peak_rate(arrivals: np.ndarray, window: float) -> float:
        counts = [np.count_nonzero((arrivals >= start)
                                   & (arrivals < start + window))
                  for start in np.arange(0.0, arrivals.max() + window,
                                         window)]
        return max(counts) / window

    def test_bursty_trace_needs_more_replicas(self, dhe_dispatcher):
        horizon, n = 10.0, 400
        uniform = np.linspace(0.0, horizon, n, endpoint=False)
        rng = np.random.default_rng(7)
        # same request count, 90% of it squeezed into the first second
        bursty = np.sort(np.concatenate([
            rng.uniform(0.0, 1.0, int(0.9 * n)),
            rng.uniform(1.0, horizon, n - int(0.9 * n))]))

        window = 1.0
        uniform_rate = self.peak_rate(uniform, window)
        bursty_rate = self.peak_rate(bursty, window)
        assert bursty_rate > 5 * uniform_rate

        # Scale both rates into the dispatcher's feasible band so the
        # comparison is about fleet sizing, not raw units.
        _, latency_one, throughput_one = dhe_dispatcher.sweep(1)[0]
        scale = 0.8 * throughput_one / uniform_rate
        sla = 4.0 * latency_one
        for_uniform = dhe_dispatcher.min_replicas(
            scale * uniform_rate, sla, max_replicas=16)
        for_bursty = dhe_dispatcher.min_replicas(
            scale * bursty_rate, sla, max_replicas=16)
        assert for_uniform == 1
        assert for_bursty is not None and for_bursty > for_uniform

    def test_scan_fleet_saturates_under_skew(self, scan_dispatcher):
        # Bandwidth-bound scans stop scaling: past some fleet size the
        # worst-replica latency blows through any reasonable SLA, so a
        # skewed burst can be infeasible at every fleet size.
        _, latency_one, throughput_one = scan_dispatcher.sweep(1)[0]
        assert scan_dispatcher.min_replicas(
            rate_rps=100.0 * throughput_one,
            sla_seconds=2.0 * latency_one, max_replicas=12) is None


class TestTenantDemandPlumbing:
    def test_custom_demand_round_trips(self):
        demand = TenantDemand("dhe", 0.001, 1e6, 1e6)
        dispatcher = Dispatcher(demand, batch_size=8)
        (only,) = dispatcher.replica_latencies(1)
        assert only == pytest.approx(0.001)


class TestMinReplicasValidation:
    def test_floor_raises_result(self, dhe_dispatcher):
        unfloored = dhe_dispatcher.min_replicas(1.0, 1.0, max_replicas=8)
        floored = dhe_dispatcher.min_replicas(1.0, 1.0, max_replicas=8,
                                              min_replicas=3)
        assert unfloored == 1
        assert floored == 3

    def test_min_above_max_raises(self, dhe_dispatcher):
        with pytest.raises(ValueError, match="min_replicas 9 exceeds"):
            dhe_dispatcher.min_replicas(1.0, 1.0, max_replicas=8,
                                        min_replicas=9)

    @pytest.mark.parametrize("rate,sla", [
        (float("nan"), 1.0), (float("inf"), 1.0), (0.0, 1.0), (-5.0, 1.0),
        (1.0, float("nan")), (1.0, float("inf")), (1.0, 0.0), (1.0, -0.02),
    ])
    def test_non_positive_or_non_finite_inputs_raise(self, dhe_dispatcher,
                                                     rate, sla):
        with pytest.raises(ValueError):
            dhe_dispatcher.min_replicas(rate, sla, max_replicas=8)

    def test_sla_bounded_throughput_validates_sla(self, dhe_dispatcher):
        with pytest.raises(ValueError):
            dhe_dispatcher.sla_bounded_throughput(float("nan"), 4)
        with pytest.raises(ValueError):
            dhe_dispatcher.sla_bounded_throughput(0.0, 4)


class TestServingConfigValidation:
    @pytest.mark.parametrize("sla", [0.0, -0.020, float("nan"),
                                     float("inf")])
    def test_zero_negative_or_non_finite_sla_rejected(self, sla):
        from repro.serving import ServingConfig

        with pytest.raises(ValueError, match="sla_seconds"):
            ServingConfig(batch_size=32, sla_seconds=sla)
