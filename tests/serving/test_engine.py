"""ExecutionEngine: seed-parity regression, open-system queueing, search."""

import numpy as np
import pytest

from repro.costmodel.latency import (
    DLRM_DHE_UNIFORM_64,
    MLP_OVERHEAD_SECONDS,
    dhe_latency,
    dhe_varied_shape,
    linear_scan_latency,
)
from repro.data import TERABYTE_SPEC
from repro.hybrid import (
    OfflineProfiler,
    allocate_by_threshold,
    build_threshold_database,
    colocation_sweep,
    dlrm_tenant,
)
from repro.serving import (
    BatchingPolicy,
    ExecutionEngine,
    SecureDlrmServer,
    ServingConfig,
)

BATCHES = (1, 32, 128)
THREADS = (1, 8)
DIM = 64


@pytest.fixture(scope="module")
def thresholds():
    profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
    profile = profiler.profile(techniques=("scan", "dhe-varied"),
                               dims=(DIM,), batches=BATCHES,
                               threads_list=THREADS)
    return build_threshold_database(profile, dhe_technique="dhe-varied",
                                    dims=(DIM,), batches=BATCHES,
                                    threads_list=THREADS)


@pytest.fixture(scope="module")
def engine(thresholds):
    return ExecutionEngine(TERABYTE_SPEC.table_sizes, DIM,
                           DLRM_DHE_UNIFORM_64, thresholds, varied=True)


def seed_serve_expectation(thresholds, config, num_requests):
    """The retired simulator's serve() numbers, recomputed its way:
    a hand-rolled per-table loop seeded with the MLP overhead, then
    ``latencies = np.full(n, per_batch)`` and ``batches * per_batch``."""
    threshold = thresholds.threshold(DIM, config.batch_size, config.threads)
    total = MLP_OVERHEAD_SECONDS
    for size in TERABYTE_SPEC.table_sizes:
        if size <= threshold:
            total += linear_scan_latency(size, DIM, config.batch_size,
                                         config.threads)
        else:
            total += dhe_latency(dhe_varied_shape(size, DLRM_DHE_UNIFORM_64),
                                 config.batch_size, config.threads)
    batches = (num_requests + config.batch_size - 1) // config.batch_size
    return np.full(num_requests, total), batches, batches * total


class TestSeedParity:
    """serve_closed must reproduce the seed serve() output bit-for-bit."""

    @pytest.mark.parametrize("batch,threads,num_requests",
                             [(1, 1, 10), (32, 1, 100), (32, 8, 257),
                              (128, 1, 1024)])
    def test_bit_for_bit(self, engine, thresholds, batch, threads,
                         num_requests):
        config = ServingConfig(batch_size=batch, threads=threads)
        report = engine.serve_closed(num_requests, config)
        latencies, batches, busy = seed_serve_expectation(
            thresholds, config, num_requests)
        assert np.array_equal(report.latencies, latencies)  # exact floats
        assert report.num_batches == batches
        assert report.batch_time_total == busy
        assert report.throughput() == num_requests / busy

    def test_queue_delays_identically_zero(self, engine):
        report = engine.serve_closed(100, ServingConfig(batch_size=32))
        assert np.all(report.queue_delays == 0.0)

    def test_telemetry_on_or_off_never_perturbs_output(self, engine):
        from repro.telemetry.runtime import NULL_REGISTRY, use_registry

        config = ServingConfig(batch_size=32, threads=1)
        with use_registry(NULL_REGISTRY):
            disabled = engine.serve_closed(100, config)
        with use_registry() as registry:
            enabled = engine.serve_closed(100, config)
        assert np.array_equal(disabled.latencies, enabled.latencies)
        assert disabled.throughput() == enabled.throughput()
        assert registry.counter("serving.requests_total").value == 100.0

    def test_facade_matches_engine(self, engine, thresholds):
        server = SecureDlrmServer(TERABYTE_SPEC.table_sizes, DIM,
                                  DLRM_DHE_UNIFORM_64, thresholds)
        config = ServingConfig(batch_size=32, threads=1)
        via_server = server.serve(100, config)
        via_engine = engine.serve_closed(100, config)
        assert np.array_equal(via_server.latencies, via_engine.latencies)
        assert via_server.throughput() == via_engine.throughput()

    @pytest.mark.parametrize("batch,threads,num_requests",
                             [(1, 1, 10), (32, 1, 100), (128, 1, 1024)])
    def test_resilience_wrapped_path_is_bit_for_bit(self, engine,
                                                    thresholds, batch,
                                                    threads, num_requests):
        """With faults disabled, the resilient executor must not perturb a
        single bit of the plain engine's per-request arrays."""
        from repro.resilience import FaultInjector, ResiliencePolicy

        wrapped = ExecutionEngine(
            TERABYTE_SPEC.table_sizes, DIM, DLRM_DHE_UNIFORM_64, thresholds,
            varied=True,
            resilience=ResiliencePolicy(injector=FaultInjector(seed=0)))
        config = ServingConfig(batch_size=batch, threads=threads)
        plain = engine.serve_closed(num_requests, config)
        resilient = wrapped.serve_closed(num_requests, config)
        assert np.array_equal(plain.queue_delays, resilient.queue_delays)
        assert np.array_equal(plain.service_latencies,
                              resilient.service_latencies)
        assert np.array_equal(plain.latencies, resilient.latencies)
        assert plain.batch_time_total == resilient.batch_time_total
        assert resilient.shed_requests == 0
        assert resilient.retries_total == 0

    def test_resilience_wrapped_poisson_is_bit_for_bit(self, engine,
                                                       thresholds):
        from repro.resilience import FaultInjector, ResiliencePolicy

        wrapped = ExecutionEngine(
            TERABYTE_SPEC.table_sizes, DIM, DLRM_DHE_UNIFORM_64, thresholds,
            varied=True,
            resilience=ResiliencePolicy(injector=FaultInjector(seed=0)))
        config = ServingConfig(batch_size=32, threads=1)
        policy = BatchingPolicy(max_batch_size=32, max_wait_seconds=0.002)
        plain = engine.serve_poisson(512, 2000.0, config, policy=policy,
                                     rng=5)
        resilient = wrapped.serve_poisson(512, 2000.0, config,
                                          policy=policy, rng=5)
        assert np.array_equal(plain.queue_delays, resilient.queue_delays)
        assert np.array_equal(plain.service_latencies,
                              resilient.service_latencies)


class TestOpenSystem:
    def test_poisson_with_timeout_spreads_percentiles(self, engine):
        config = ServingConfig(batch_size=32, threads=1)
        service = engine.batch_latency(config)
        # Offer ~80% of the replica's saturation rate so queues form and
        # drain; the wait timeout admits partial batches.
        rate = 0.8 * config.batch_size / service
        report = engine.serve_poisson(
            512, rate, config,
            policy=BatchingPolicy(config.batch_size,
                                  max_wait_seconds=service / 2),
            rng=0)
        assert report.p95 > report.p50
        assert report.mean_queue_delay > 0.0
        assert report.num_batches >= 512 // config.batch_size

    def test_overload_builds_queue(self, engine):
        config = ServingConfig(batch_size=32, threads=1)
        service = engine.batch_latency(config)
        # 4x saturation: later requests should wait much longer.
        report = engine.serve_poisson(256, 4 * 32 / service, config, rng=1)
        delays = report.queue_delays
        assert delays[-32:].mean() > delays[:32].mean()


class TestBestConfiguration:
    def test_highest_throughput_wins(self, engine):
        candidates = [ServingConfig(batch_size=b, threads=1,
                                    sla_seconds=0.250)
                      for b in BATCHES]
        config, report = engine.best_configuration(candidates,
                                                   num_requests=64)
        throughputs = {c.batch_size:
                       engine.serve_closed(64, c).throughput()
                       for c in candidates}
        assert throughputs[config.batch_size] == max(throughputs.values())

    def test_equal_throughput_keeps_first(self, engine):
        first = ServingConfig(batch_size=32, threads=1, sla_seconds=0.250)
        duplicate = ServingConfig(batch_size=32, threads=1,
                                  sla_seconds=0.250)
        config, _ = engine.best_configuration([first, duplicate],
                                              num_requests=64)
        assert config is first

    def test_raises_when_no_sla_met(self, engine):
        with pytest.raises(RuntimeError, match="meets its SLA"):
            engine.best_configuration(
                [ServingConfig(batch_size=128, sla_seconds=1e-6)],
                num_requests=64)

    def test_empty_candidates(self, engine):
        with pytest.raises(ValueError):
            engine.best_configuration([])


class TestDispatcherIntegration:
    def test_sweep_matches_colocation_planner(self, engine, thresholds):
        config = ServingConfig(batch_size=32, threads=1)
        allocations = engine.allocations(config)
        dispatcher = engine.dispatcher(config)
        tenant = dlrm_tenant(TERABYTE_SPEC.table_sizes, DIM, allocations,
                             DLRM_DHE_UNIFORM_64, config.batch_size,
                             varied=True)
        assert dispatcher.sweep(6) == colocation_sweep(tenant, 6,
                                                       config.batch_size)

    def test_explicit_allocation_override(self, engine):
        config = ServingConfig(batch_size=32, threads=1)
        all_dhe = allocate_by_threshold(TERABYTE_SPEC.table_sizes, 0.0)
        baseline = engine.dispatcher(config)
        override = engine.dispatcher(config, all_dhe)
        assert override.demand.solo_latency != baseline.demand.solo_latency

    def test_dispatcher_needs_uniform_shape(self, thresholds):
        engine = ExecutionEngine(TERABYTE_SPEC.table_sizes, DIM, None,
                                 thresholds, varied=False)
        with pytest.raises(ValueError, match="uniform shape"):
            engine.dispatcher(ServingConfig(batch_size=32))


class TestEngineConstruction:
    def test_needs_features(self, thresholds):
        with pytest.raises(ValueError, match="sparse feature"):
            ExecutionEngine((), DIM, DLRM_DHE_UNIFORM_64, thresholds)

    def test_allocation_counts_cover_features(self, engine):
        scans, dhes = engine.allocation_counts(ServingConfig(batch_size=32))
        assert scans + dhes == len(TERABYTE_SPEC.table_sizes)
        assert scans > 0 and dhes > 0
