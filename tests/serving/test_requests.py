"""Arrival processes and the request queue."""

import numpy as np
import pytest

from repro.serving.requests import (
    Request,
    RequestQueue,
    batch_boundary_arrivals,
    deterministic_arrivals,
    poisson_arrivals,
)


class TestDeterministicArrivals:
    def test_fixed_spacing(self):
        arrivals = deterministic_arrivals(4, 0.5, start_seconds=1.0)
        np.testing.assert_allclose(arrivals, [1.0, 1.5, 2.0, 2.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            deterministic_arrivals(0, 0.5)
        with pytest.raises(ValueError):
            deterministic_arrivals(4, -1.0)


class TestPoissonArrivals:
    def test_sorted_and_positive(self):
        arrivals = poisson_arrivals(200, rate_rps=1000.0, rng=0)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals.min() > 0

    def test_seed_reproducible(self):
        np.testing.assert_array_equal(poisson_arrivals(50, 100.0, rng=7),
                                      poisson_arrivals(50, 100.0, rng=7))

    def test_mean_rate_approximates_target(self):
        arrivals = poisson_arrivals(5000, rate_rps=200.0, rng=3)
        empirical = len(arrivals) / arrivals[-1]
        assert empirical == pytest.approx(200.0, rel=0.1)


class TestBatchBoundaryArrivals:
    def test_batches_share_one_timestamp(self):
        arrivals = batch_boundary_arrivals(7, batch_size=3,
                                           batch_latency_seconds=0.25)
        np.testing.assert_array_equal(
            arrivals, [0.0, 0.0, 0.0, 0.25, 0.25, 0.25, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_boundary_arrivals(0, 4, 0.1)
        with pytest.raises(ValueError):
            batch_boundary_arrivals(8, 4, 0.0)


class TestRequestQueue:
    def test_len_and_iter(self):
        queue = RequestQueue([0.0, 0.1, 0.2])
        assert len(queue) == 3
        requests = list(queue)
        assert requests[1] == Request(index=1, arrival_seconds=0.1)

    def test_unsorted_input_is_sorted(self):
        queue = RequestQueue([0.2, 0.0, 0.1])
        np.testing.assert_allclose(queue.arrivals, [0.0, 0.1, 0.2])

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestQueue([])
        with pytest.raises(ValueError):
            RequestQueue([[0.0, 0.1]])
        with pytest.raises(ValueError):
            RequestQueue([-0.1, 0.2])

    def test_offered_load(self):
        queue = RequestQueue.deterministic(11, interval_seconds=0.1)
        assert queue.offered_load_rps() == pytest.approx(10.0)
        assert RequestQueue([0.5, 0.5]).offered_load_rps() is None

    def test_classmethods(self):
        assert len(RequestQueue.poisson(10, 100.0, rng=0)) == 10
        assert len(RequestQueue.batch_boundary(10, 4, 0.1)) == 10


class TestNonFiniteArrivals:
    def test_nan_arrival_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            RequestQueue([0.0, float("nan"), 0.2])

    def test_inf_arrival_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            RequestQueue([0.0, float("inf")])

    def test_negative_inf_arrival_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            RequestQueue([float("-inf"), 0.0])
