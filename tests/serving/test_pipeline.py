"""Pipeline composition: serve() parity pin + queue-delay-once accounting.

The acceptance pin for the multi-stage refactor: routing
``ExecutionEngine.serve()`` through a one-stage :class:`PipelineEngine`
must be bit-for-bit what the pre-pipeline engine produced, and composing
multi-stage reports must count every inter-stage wait exactly once (as
the downstream stage's queueing delay).
"""

import json

import numpy as np
import pytest

from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC
from repro.hybrid import OfflineProfiler, build_threshold_database
from repro.resilience.report import ResilientServingReport
from repro.serving import (
    BatchingPolicy,
    EngineStage,
    ExecutionEngine,
    PipelineEngine,
    PipelineStage,
    PricedStage,
    ServingConfig,
    ServingReport,
    StageResult,
    compose_stage_reports,
)
from repro.serving.requests import RequestQueue

BATCHES = (1, 32)
THREADS = (1,)
DIM = 64


@pytest.fixture(scope="module")
def engine():
    profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
    profile = profiler.profile(techniques=("scan", "dhe-varied"),
                               dims=(DIM,), batches=BATCHES,
                               threads_list=THREADS)
    thresholds = build_threshold_database(profile,
                                          dhe_technique="dhe-varied",
                                          dims=(DIM,), batches=BATCHES,
                                          threads_list=THREADS)
    return ExecutionEngine(TERABYTE_SPEC.table_sizes, DIM,
                           DLRM_DHE_UNIFORM_64, thresholds, varied=True)


def constant(seconds):
    return lambda batch_size: seconds


def component_report(queue, service, **overrides):
    defaults = dict(num_batches=1, scan_features=0, dhe_features=0,
                    batch_time_total=float(np.sum(service)))
    defaults.update(overrides)
    return ServingReport.from_components(
        queue_delays=np.asarray(queue, dtype=np.float64),
        service_latencies=np.asarray(service, dtype=np.float64),
        **defaults)


class _CannedStage(PipelineStage):
    """A stage that replays a pre-built report (for identity pins)."""

    def __init__(self, name, report):
        self.name = name
        self.report = report

    def serve(self, queue):
        return StageResult(name=self.name, report=self.report,
                           departures=self.departures_from(queue,
                                                           self.report))


class TestServeParityPin:
    """``serve()`` through the one-stage pipeline == the pre-pipeline body."""

    def assert_bit_identical(self, via_pipeline, direct):
        assert type(via_pipeline) is type(direct)
        np.testing.assert_array_equal(via_pipeline.latencies,
                                      direct.latencies)
        np.testing.assert_array_equal(via_pipeline.queue_delays,
                                      direct.queue_delays)
        np.testing.assert_array_equal(via_pipeline.service_latencies,
                                      direct.service_latencies)
        assert via_pipeline.num_requests == direct.num_requests
        assert via_pipeline.num_batches == direct.num_batches
        assert via_pipeline.scan_features == direct.scan_features
        assert via_pipeline.dhe_features == direct.dhe_features
        assert via_pipeline.batch_time_total == direct.batch_time_total

    def test_poisson_trace_with_explicit_policy(self, engine):
        config = ServingConfig(batch_size=32, threads=1)
        policy = BatchingPolicy(max_batch_size=32, max_wait_seconds=0.001)
        queue = RequestQueue.poisson(96, 3000.0, rng=11)
        via_pipeline = engine.serve(config, queue, policy)
        direct = engine._serve_queue(config, RequestQueue(queue.arrivals),
                                     policy)
        self.assert_bit_identical(via_pipeline, direct)

    def test_default_policy_resolution_unchanged(self, engine):
        config = ServingConfig(batch_size=32, threads=1)
        queue = RequestQueue.poisson(64, 2000.0, rng=5)
        via_pipeline = engine.serve(config, queue)
        direct = engine._serve_queue(config, RequestQueue(queue.arrivals),
                                     None)
        self.assert_bit_identical(via_pipeline, direct)

    def test_one_stage_report_is_the_stage_report_verbatim(self, engine):
        config = ServingConfig(batch_size=32, threads=1)
        queue = RequestQueue.poisson(48, 2000.0, rng=3)
        pipeline = PipelineEngine([EngineStage(engine, config)])
        report = pipeline.serve(queue)
        assert report.end_to_end is report.stages[0].report

    def test_one_stage_preserves_report_subclasses(self):
        # A resilient stage's report must come back as the same object —
        # no recomposition that would flatten it to a plain ServingReport.
        lifted = ResilientServingReport.from_serving_report(
            component_report([0.0, 0.1], [1.0, 1.0]),
            attempts_total=5, retries_total=2)
        report = PipelineEngine([_CannedStage("resilient",
                                              lifted)]).serve([0.0, 0.5])
        assert report.end_to_end is lifted
        assert report.end_to_end.attempts_total == 5


class TestComposition:
    """Multi-stage accounting: waits counted once, bottleneck busy time."""

    arrivals = np.arange(12) * 0.003

    def make_pipeline(self):
        return PipelineEngine([
            PricedStage("tokenize",
                        BatchingPolicy(max_batch_size=4,
                                       max_wait_seconds=0.0),
                        constant(0.010)),
            PricedStage("prefill",
                        BatchingPolicy(max_batch_size=8,
                                       max_wait_seconds=0.002),
                        constant(0.040)),
            PricedStage("decode",
                        BatchingPolicy(max_batch_size=2,
                                       max_wait_seconds=0.0),
                        constant(0.005)),
        ])

    def test_latencies_are_final_departure_minus_arrival(self):
        report = self.make_pipeline().serve(self.arrivals)
        np.testing.assert_allclose(report.end_to_end.latencies,
                                   report.departures - self.arrivals)

    def test_inter_stage_waits_counted_exactly_once(self):
        # Summing per-stage queue delays reproduces the end-to-end queue
        # delay, and queue + service tiles the whole latency — an idle
        # interval between stages appears only as the downstream stage's
        # queueing delay, never twice.
        report = self.make_pipeline().serve(self.arrivals)
        queue_sum = np.sum([r.report.queue_delays for r in report.stages],
                           axis=0)
        service_sum = np.sum([r.report.service_latencies
                              for r in report.stages], axis=0)
        np.testing.assert_allclose(report.end_to_end.queue_delays,
                                   queue_sum)
        np.testing.assert_allclose(report.end_to_end.service_latencies,
                                   service_sum)
        np.testing.assert_allclose(queue_sum + service_sum,
                                   report.end_to_end.latencies)

    def test_busy_time_is_bottleneck_and_batches_sum(self):
        report = self.make_pipeline().serve(self.arrivals)
        assert report.end_to_end.batch_time_total == pytest.approx(
            max(r.report.batch_time_total for r in report.stages))
        assert report.end_to_end.num_batches == sum(
            r.report.num_batches for r in report.stages)

    def test_departures_are_monotone_per_stage(self):
        # Non-decreasing up to float jitter: departures are rebuilt as
        # arrival + ((start − arrival) + service), so the cancellation
        # leaves O(1e-18) rounding between same-batch neighbours.
        report = self.make_pipeline().serve(self.arrivals)
        for result in report.stages:
            assert np.all(np.diff(result.departures) >= -1e-12)

    def test_stage_lookup_by_name(self):
        report = self.make_pipeline().serve(self.arrivals)
        assert report.stage("prefill").name == "prefill"
        with pytest.raises(KeyError, match="embed"):
            report.stage("embed")

    def test_to_dict_is_json_stable(self):
        report = self.make_pipeline().serve(self.arrivals)
        digest = report.to_dict()
        assert set(digest["stages"]) == {"tokenize", "prefill", "decode"}
        assert digest["end_to_end"]["num_requests"] == self.arrivals.size
        assert digest["end_to_end"]["throughput_rps"] > 0.0
        json.dumps(digest, allow_nan=False)


class TestPricedStage:
    def test_on_batch_sees_every_scheduled_batch(self):
        sizes = []
        stage = PricedStage("t",
                            BatchingPolicy(max_batch_size=4,
                                           max_wait_seconds=0.0),
                            constant(0.01),
                            on_batch=lambda batch: sizes.append(batch.size))
        result = stage.serve(RequestQueue(np.zeros(10)))
        assert sum(sizes) == 10
        assert len(sizes) == result.report.num_batches

    def test_size_dependent_pricing_reaches_the_report(self):
        # 10 simultaneous arrivals at cap 4 form batches of 4, 4, 2; a
        # per-item price must show up per-window in the decomposition.
        stage = PricedStage("t",
                            BatchingPolicy(max_batch_size=4,
                                           max_wait_seconds=0.0),
                            lambda size: 0.001 * size)
        result = stage.serve(RequestQueue(np.zeros(10)))
        np.testing.assert_allclose(
            result.report.service_latencies,
            [0.004] * 4 + [0.004] * 4 + [0.002] * 2)

    def test_departures_equal_arrival_plus_latency(self):
        stage = PricedStage("t",
                            BatchingPolicy(max_batch_size=3,
                                           max_wait_seconds=0.0),
                            constant(0.02))
        queue = RequestQueue.poisson(20, 500.0, rng=1)
        result = stage.serve(queue)
        np.testing.assert_allclose(result.departures,
                                   queue.arrivals + result.report.latencies)


class TestComposeGuards:
    def test_pipeline_needs_stages(self):
        with pytest.raises(ValueError, match="at least one stage"):
            PipelineEngine([])

    def test_duplicate_stage_names_rejected(self):
        stage = PricedStage("t", BatchingPolicy(max_batch_size=1,
                                                max_wait_seconds=0.0),
                            constant(0.01))
        with pytest.raises(ValueError, match="unique"):
            PipelineEngine([stage, stage])

    def test_compose_requires_results(self):
        with pytest.raises(ValueError, match="at least one stage"):
            compose_stage_reports([])

    def test_population_mismatch_rejected(self):
        two = StageResult("a", component_report([0.0, 0.0], [1.0, 1.0]),
                          departures=np.array([1.0, 1.0]))
        one = StageResult("b", component_report([0.0], [1.0]),
                          departures=np.array([1.0]))
        with pytest.raises(ValueError, match="request population"):
            compose_stage_reports([two, one])

    def test_stage_result_departure_count_checked(self):
        with pytest.raises(ValueError, match="2 departures"):
            StageResult("a", component_report([0.0], [1.0]),
                        departures=np.array([1.0, 2.0]))

    def test_stage_result_departures_must_be_1d(self):
        with pytest.raises(ValueError, match="1-D"):
            StageResult("a", component_report([0.0], [1.0]),
                        departures=np.zeros((1, 1)))

    def test_cache_counters_sum_across_stages(self):
        cached = StageResult("a",
                             component_report([0.0], [1.0], cache_hits=3,
                                              cache_misses=1,
                                              cache_bytes_resident=256),
                             departures=np.array([1.0]))
        plain = StageResult("b", component_report([0.0], [1.0]),
                            departures=np.array([1.0]))
        composed = compose_stage_reports([cached, plain])
        assert composed.cache_hits == 3
        assert composed.cache_misses == 1
        assert composed.cache_bytes_resident == 256
