"""Dynamic batching: size-triggered and timeout-triggered launches."""

import numpy as np
import pytest

from repro.serving.batcher import BatchingPolicy, DynamicBatcher


class TestBatchingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch_size=4, max_wait_seconds=-1.0)


class TestDynamicBatcher:
    def test_greedy_zero_wait_batches_whatever_arrived(self):
        # Everything arrives at t=0; service 1s; max batch 4.
        batcher = DynamicBatcher(BatchingPolicy(4, 0.0))
        batches = batcher.schedule(np.zeros(10), lambda n: 1.0)
        assert [b.size for b in batches] == [4, 4, 2]
        # Back-to-back execution: each batch starts when the replica frees.
        assert [b.start_seconds for b in batches] == [0.0, 1.0, 2.0]

    def test_full_batch_launches_before_timeout(self):
        # Four requests in quick succession fill the batch long before the
        # 10s deadline; launch happens at the last admission, not at timeout.
        batcher = DynamicBatcher(BatchingPolicy(4, 10.0))
        batches = batcher.schedule([0.0, 0.1, 0.2, 0.3], lambda n: 1.0)
        assert len(batches) == 1
        assert batches[0].start_seconds == pytest.approx(0.3)

    def test_timeout_fires_partial_batch(self):
        # Second request arrives after the first's wait deadline: two
        # singleton batches, the first launching exactly at its deadline.
        batcher = DynamicBatcher(BatchingPolicy(4, 0.5))
        batches = batcher.schedule([0.0, 2.0], lambda n: 0.1)
        assert [b.size for b in batches] == [1, 1]
        assert batches[0].start_seconds == pytest.approx(0.5)
        assert batches[1].start_seconds == pytest.approx(2.5)

    def test_wait_window_accumulates_stragglers(self):
        # Requests trickling in within the window ride the first batch.
        batcher = DynamicBatcher(BatchingPolicy(8, 1.0))
        batches = batcher.schedule([0.0, 0.4, 0.9, 5.0], lambda n: 0.1)
        assert [b.size for b in batches] == [3, 1]

    def test_finish_seconds(self):
        batcher = DynamicBatcher(BatchingPolicy(2, 0.0))
        (batch,) = batcher.schedule([0.0, 0.0], lambda n: 0.25)
        assert batch.finish_seconds == pytest.approx(0.25)

    def test_unsorted_arrivals_raise(self):
        with pytest.raises(ValueError, match="sorted"):
            DynamicBatcher(BatchingPolicy(4)).schedule([0.2, 0.1],
                                                       lambda n: 1.0)

    def test_empty_arrivals_schedule_nothing(self):
        # An idle window is a no-op, not an error (a pipeline stage may
        # legitimately see zero arrivals).
        assert DynamicBatcher(BatchingPolicy(4)).schedule([],
                                                          lambda n: 1.0) == []

    def test_two_dimensional_arrivals_raise(self):
        with pytest.raises(ValueError, match="1-D"):
            DynamicBatcher(BatchingPolicy(4)).schedule(
                np.zeros((2, 2)), lambda n: 1.0)

    def test_non_positive_service_raises(self):
        with pytest.raises(ValueError, match="service_time"):
            DynamicBatcher(BatchingPolicy(4)).schedule([0.0], lambda n: 0.0)


class TestMaxWaitTimeoutPath:
    """The deadline-triggered launch path, edge by edge."""

    def test_arrival_exactly_at_deadline_is_admitted(self):
        # close_time = 0.0 + 1.0; an arrival at exactly 1.0 rides along.
        batcher = DynamicBatcher(BatchingPolicy(4, 1.0))
        batches = batcher.schedule([0.0, 1.0], lambda n: 0.1)
        assert [b.size for b in batches] == [2]
        assert batches[0].start_seconds == pytest.approx(1.0)

    def test_arrival_just_past_deadline_is_not(self):
        batcher = DynamicBatcher(BatchingPolicy(4, 1.0))
        batches = batcher.schedule([0.0, 1.0 + 1e-9], lambda n: 0.1)
        assert [b.size for b in batches] == [1, 1]

    def test_trace_runs_dry_inside_window(self):
        # The whole trace fits in the first window without filling the
        # batch: one partial batch launching at the deadline.
        batcher = DynamicBatcher(BatchingPolicy(8, 2.0))
        batches = batcher.schedule([0.0, 0.5, 1.0], lambda n: 0.1)
        assert [b.size for b in batches] == [3]
        assert batches[0].start_seconds == pytest.approx(2.0)

    def test_busy_replica_extends_the_window(self):
        # First batch launches at its t=0.1 deadline and holds the replica
        # until t=5.1; the second request's t=1.1 deadline has long passed
        # when the replica frees, so its batch opens at free_at and admits
        # everything waiting by then.
        batcher = DynamicBatcher(BatchingPolicy(4, 0.1))
        batches = batcher.schedule([0.0, 1.0, 4.0], lambda n: 5.0)
        assert [b.size for b in batches] == [1, 2]
        assert batches[1].start_seconds == pytest.approx(5.1)

    def test_launch_counters_split_full_vs_timeout(self):
        from repro.telemetry.runtime import use_registry

        batcher = DynamicBatcher(BatchingPolicy(2, 0.5))
        # [0, 0] fills (full launch); [10] times out as a singleton.
        with use_registry() as registry:
            batcher.schedule([0.0, 0.0, 10.0], lambda n: 0.1)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["batcher.batches_total"] == 2.0
        assert snapshot["counters"]["batcher.full_launches_total"] == 1.0
        assert snapshot["counters"]["batcher.timeout_launches_total"] == 1.0
        assert snapshot["histograms"]["batcher.batch_size"]["count"] == 2

    def test_zero_wait_never_reports_full_when_trace_dry(self):
        from repro.telemetry.runtime import use_registry

        batcher = DynamicBatcher(BatchingPolicy(8, 0.0))
        with use_registry() as registry:
            batches = batcher.schedule([0.0, 0.0, 0.0], lambda n: 0.1)
        assert [b.size for b in batches] == [3]
        snapshot = registry.snapshot()
        assert snapshot["counters"]["batcher.full_launches_total"] == 0.0
        assert snapshot["counters"]["batcher.timeout_launches_total"] == 1.0


class TestLookaheadHook:
    """The batched-ORAM planning seam: formed batches exposed pre-dispatch."""

    def test_hook_receives_each_formed_batchs_ids(self):
        seen = []
        batcher = DynamicBatcher(BatchingPolicy(4, 0.0),
                                 lookahead=lambda b, ids: seen.append(
                                     (b.first, b.last, ids.copy())))
        block_ids = np.arange(20).reshape(10, 2)
        batches = batcher.schedule(np.zeros(10), lambda n: 1.0,
                                   block_ids=block_ids)
        assert len(seen) == len(batches)
        for (first, last, ids), batch in zip(seen, batches):
            assert (first, last) == (batch.first, batch.last)
            np.testing.assert_array_equal(ids,
                                          block_ids[batch.first:batch.last])

    def test_hook_fires_before_any_later_batch_forms(self):
        order = []
        batcher = DynamicBatcher(
            BatchingPolicy(4, 0.0),
            lookahead=lambda b, ids: order.append(("hook", b.first)))
        batcher.schedule(np.zeros(10), lambda n: 1.0,
                         block_ids=np.zeros((10, 1)))
        assert order == [("hook", 0), ("hook", 4), ("hook", 8)]

    def test_no_consumer_schedule_is_byte_identical(self):
        arrivals = [0.0, 0.1, 0.2, 0.9, 2.0]
        plain = DynamicBatcher(BatchingPolicy(3, 0.5)).schedule(
            arrivals, lambda n: 0.2)
        with_ids = DynamicBatcher(BatchingPolicy(3, 0.5)).schedule(
            arrivals, lambda n: 0.2, block_ids=np.zeros((5, 2)))
        assert plain == with_ids

    def test_consumer_without_block_ids_raises(self):
        batcher = DynamicBatcher(BatchingPolicy(4, 0.0),
                                 lookahead=lambda b, ids: None)
        with pytest.raises(ValueError, match="block_ids"):
            batcher.schedule(np.zeros(4), lambda n: 1.0)

    def test_row_count_mismatch_raises(self):
        batcher = DynamicBatcher(BatchingPolicy(4, 0.0),
                                 lookahead=lambda b, ids: None)
        with pytest.raises(ValueError, match="rows"):
            batcher.schedule(np.zeros(4), lambda n: 1.0,
                             block_ids=np.zeros((3, 2)))

    def test_empty_trace_never_calls_the_consumer(self):
        # Announce-with-zero-ids is a no-op: nothing is ever announced.
        calls = []
        batcher = DynamicBatcher(BatchingPolicy(4, 0.0),
                                 lookahead=lambda b, ids: calls.append(ids))
        assert batcher.schedule([], lambda n: 1.0,
                                block_ids=np.zeros((0, 2))) == []
        assert calls == []

    def test_single_request_forms_a_singleton_batch_through_the_hook(self):
        seen = []
        batcher = DynamicBatcher(BatchingPolicy(4, 0.0),
                                 lookahead=lambda b, ids: seen.append(
                                     ids.copy()))
        (batch,) = batcher.schedule([0.5], lambda n: 0.1,
                                    block_ids=np.array([[7, 9]]))
        assert (batch.first, batch.last) == (0, 1)
        assert len(seen) == 1
        np.testing.assert_array_equal(seen[0], [[7, 9]])

    def test_announce_with_zero_ids_is_a_noop_on_the_table(self):
        # The consumer end of the contract: an empty announcement must not
        # register an expectation that rejects the next real batch.
        from repro.training.embedding import OnlineOramEmbedding

        table = OnlineOramEmbedding(8, 4, rng=0)
        table.announce(np.zeros((0,), dtype=np.int64))
        out = table.forward(np.array([1, 3]))  # must not raise
        assert out.data.shape == (2, 4)


class TestNonFiniteArrivals:
    def test_nan_arrival_rejected(self):
        batcher = DynamicBatcher(BatchingPolicy(4, 0.1))
        with pytest.raises(ValueError, match="finite"):
            batcher.schedule([0.0, float("nan")], lambda n: 0.1)

    def test_inf_arrival_rejected(self):
        batcher = DynamicBatcher(BatchingPolicy(4, 0.1))
        with pytest.raises(ValueError, match="finite"):
            batcher.schedule([0.0, float("inf")], lambda n: 0.1)
