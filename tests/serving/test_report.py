"""ServingReport: constructor contract and queueing-aware statistics."""

import numpy as np
import pytest

from repro.serving.report import ServingReport


def make_report(**overrides):
    defaults = dict(num_requests=4, num_batches=2,
                    latencies=np.array([0.01, 0.01, 0.02, 0.02]),
                    scan_features=3, dhe_features=5, batch_time_total=0.04)
    defaults.update(overrides)
    return ServingReport(**defaults)


class TestConstructor:
    def test_batch_time_total_is_required(self):
        # The seed mutated a pseudo-private field after construction; the
        # busy time is now part of the constructor contract.
        with pytest.raises(TypeError):
            ServingReport(num_requests=4, num_batches=2,
                          latencies=np.zeros(4), scan_features=3,
                          dhe_features=5)

    def test_hand_built_report_has_throughput(self):
        assert make_report().throughput() == pytest.approx(4 / 0.04)

    def test_zero_busy_time_guard(self):
        assert make_report(batch_time_total=0.0).throughput() == 0.0


class TestFromComponents:
    def test_latencies_are_queue_plus_service(self):
        report = ServingReport.from_components(
            queue_delays=np.array([0.0, 0.5]),
            service_latencies=np.array([1.0, 1.0]),
            num_batches=2, scan_features=1, dhe_features=1,
            batch_time_total=2.0)
        np.testing.assert_allclose(report.latencies, [1.0, 1.5])
        assert report.num_requests == 2
        assert report.mean_queue_delay == pytest.approx(0.25)
        assert report.p95_queue_delay == pytest.approx(0.475)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes differ"):
            ServingReport.from_components(
                queue_delays=np.zeros(3), service_latencies=np.zeros(2),
                num_batches=1, scan_features=0, dhe_features=0,
                batch_time_total=1.0)


class TestStatistics:
    def test_percentiles_and_sla(self):
        report = make_report()
        assert report.p50 == pytest.approx(0.015)
        assert report.p95 >= report.p50
        assert report.sla_attainment(0.015) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            report.sla_attainment(0.0)

    def test_queue_stats_default_to_zero(self):
        report = make_report()
        assert report.mean_queue_delay == 0.0
        assert report.p95_queue_delay == 0.0
