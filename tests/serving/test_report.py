"""ServingReport: constructor contract and queueing-aware statistics."""

import numpy as np
import pytest

from repro.serving.report import ServingReport


def make_report(**overrides):
    defaults = dict(num_requests=4, num_batches=2,
                    latencies=np.array([0.01, 0.01, 0.02, 0.02]),
                    scan_features=3, dhe_features=5, batch_time_total=0.04)
    defaults.update(overrides)
    return ServingReport(**defaults)


class TestConstructor:
    def test_batch_time_total_is_required(self):
        # The seed mutated a pseudo-private field after construction; the
        # busy time is now part of the constructor contract.
        with pytest.raises(TypeError):
            ServingReport(num_requests=4, num_batches=2,
                          latencies=np.zeros(4), scan_features=3,
                          dhe_features=5)

    def test_hand_built_report_has_throughput(self):
        assert make_report().throughput() == pytest.approx(4 / 0.04)

    def test_zero_busy_time_guard(self):
        assert make_report(batch_time_total=0.0).throughput() == 0.0


class TestFromComponents:
    def test_latencies_are_queue_plus_service(self):
        report = ServingReport.from_components(
            queue_delays=np.array([0.0, 0.5]),
            service_latencies=np.array([1.0, 1.0]),
            num_batches=2, scan_features=1, dhe_features=1,
            batch_time_total=2.0)
        np.testing.assert_allclose(report.latencies, [1.0, 1.5])
        assert report.num_requests == 2
        assert report.mean_queue_delay == pytest.approx(0.25)
        assert report.p95_queue_delay == pytest.approx(0.475)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes differ"):
            ServingReport.from_components(
                queue_delays=np.zeros(3), service_latencies=np.zeros(2),
                num_batches=1, scan_features=0, dhe_features=0,
                batch_time_total=1.0)


class TestMerge:
    def make_component_report(self, queue, service, **overrides):
        defaults = dict(num_batches=1, scan_features=2, dhe_features=3,
                        batch_time_total=0.5)
        defaults.update(overrides)
        return ServingReport.from_components(
            queue_delays=np.asarray(queue, dtype=np.float64),
            service_latencies=np.asarray(service, dtype=np.float64),
            **defaults)

    def test_counters_sum(self):
        merged = ServingReport.merge([
            self.make_component_report([0.0, 0.1], [1.0, 1.0],
                                       num_batches=2, scan_features=1,
                                       dhe_features=4, batch_time_total=0.25),
            self.make_component_report([0.2], [2.0], num_batches=3,
                                       scan_features=5, dhe_features=6,
                                       batch_time_total=0.75),
        ])
        assert merged.num_requests == 3
        assert merged.num_batches == 5
        assert merged.scan_features == 6
        assert merged.dhe_features == 10
        assert merged.batch_time_total == pytest.approx(1.0)
        assert merged.throughput() == pytest.approx(3.0)

    def test_no_double_counted_queue_waits(self):
        # Each constituent latency already contains its queue wait; the
        # merged latencies must be the concatenation, never queue + latency.
        a = self.make_component_report([0.5, 0.5], [1.0, 1.0])
        b = self.make_component_report([0.25], [2.0])
        merged = ServingReport.merge([a, b])
        np.testing.assert_array_equal(merged.latencies,
                                      [1.5, 1.5, 2.25])
        np.testing.assert_array_equal(merged.queue_delays, [0.5, 0.5, 0.25])
        np.testing.assert_array_equal(merged.service_latencies,
                                      [1.0, 1.0, 2.0])
        assert merged.mean_queue_delay == pytest.approx((0.5 + 0.5 + 0.25) / 3)

    def test_missing_decomposition_drops_queue_stats(self):
        # A constituent without queue/service arrays must not contribute
        # silent zeros: the merged report drops the decomposition entirely.
        merged = ServingReport.merge([
            self.make_component_report([0.5], [1.0]),
            make_report(),
        ])
        assert merged.queue_delays is None
        assert merged.service_latencies is None
        assert merged.num_requests == 5
        assert merged.mean_queue_delay == 0.0

    def test_merge_is_associative_on_statistics(self):
        a = self.make_component_report([0.0, 0.1], [1.0, 1.0])
        b = self.make_component_report([0.2], [2.0])
        c = self.make_component_report([0.3, 0.0], [0.5, 0.5])
        left = ServingReport.merge([ServingReport.merge([a, b]), c])
        flat = ServingReport.merge([a, b, c])
        np.testing.assert_array_equal(left.latencies, flat.latencies)
        assert left.num_requests == flat.num_requests
        assert left.num_batches == flat.num_batches
        assert left.batch_time_total == pytest.approx(flat.batch_time_total)

    def test_single_report_round_trips(self):
        a = self.make_component_report([0.0, 0.1], [1.0, 2.0])
        merged = ServingReport.merge([a])
        np.testing.assert_array_equal(merged.latencies, a.latencies)
        assert merged.p99 == a.p99

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="at least one report"):
            ServingReport.merge([])


class TestMergeCacheFields:
    def make_cached_report(self, hits, misses, resident=1024):
        return ServingReport.from_components(
            queue_delays=np.array([0.0]), service_latencies=np.array([1.0]),
            num_batches=1, scan_features=1, dhe_features=1,
            batch_time_total=1.0, cache_hits=hits, cache_misses=misses,
            cache_bytes_resident=resident)

    def make_uncached_report(self):
        return ServingReport.from_components(
            queue_delays=np.array([0.0]), service_latencies=np.array([1.0]),
            num_batches=1, scan_features=1, dhe_features=1,
            batch_time_total=1.0)

    def test_counters_sum_and_hit_rate_is_recomputed(self):
        # 90% and 10% hit rates over equal lookup counts: the recomputed
        # rate is 50%, which an average-of-averages would also give — so
        # use unequal counts where averaging (0.5) and recomputing (0.75)
        # disagree.
        merged = ServingReport.merge([
            self.make_cached_report(hits=90, misses=0, resident=100),
            self.make_cached_report(hits=0, misses=30, resident=200),
        ])
        assert merged.cache_hits == 90
        assert merged.cache_misses == 30
        assert merged.cache_bytes_resident == 300
        assert merged.cache_hit_rate == pytest.approx(0.75)
        assert merged.tracks_cache

    def test_mixed_cached_and_uncached_merge_cleanly(self):
        merged = ServingReport.merge([
            self.make_uncached_report(),
            self.make_cached_report(hits=4, misses=2),
        ])
        assert merged.cache_hits == 4
        assert merged.cache_misses == 2
        assert merged.tracks_cache

    def test_all_uncached_stays_untracked(self):
        merged = ServingReport.merge([self.make_uncached_report(),
                                      self.make_uncached_report()])
        assert merged.cache_hits is None
        assert merged.cache_misses is None
        assert merged.cache_bytes_resident is None
        assert not merged.tracks_cache
        assert merged.cache_hit_rate == 0.0

    def test_zero_lookup_hit_rate_is_zero(self):
        report = self.make_cached_report(hits=0, misses=0)
        assert report.tracks_cache
        assert report.cache_hit_rate == 0.0


class TestStatistics:
    def test_percentiles_and_sla(self):
        report = make_report()
        assert report.p50 == pytest.approx(0.015)
        assert report.p95 >= report.p50
        assert report.sla_attainment(0.015) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            report.sla_attainment(0.0)

    def test_queue_stats_default_to_zero(self):
        report = make_report()
        assert report.mean_queue_delay == 0.0
        assert report.p95_queue_delay == 0.0


class TestEmptyReportGuards:
    def test_empty_arrays_answer_zero_not_nan(self):
        report = ServingReport.from_components(
            queue_delays=np.empty(0), service_latencies=np.empty(0),
            num_batches=0, scan_features=0, dhe_features=0,
            batch_time_total=0.0)
        assert report.num_requests == 0
        assert report.p50 == 0.0
        assert report.p95 == 0.0
        assert report.p99 == 0.0
        assert report.mean_queue_delay == 0.0
        assert report.p95_queue_delay == 0.0
        assert report.sla_attainment(0.020) == 0.0
        assert report.throughput() == 0.0


class TestMergeHeterogeneousStages:
    """ISSUE 10 satellite: resilient constituents lift the merge, not zero.

    A pipeline fleet view mixes plain stages (tokenize/prefill/decode
    priced stages) with resilient engine stages; merging them must
    produce a ResilientServingReport with the fault counters summed and
    degradation events concatenated, never a plain report that silently
    drops attempts/retries/sheds.
    """

    def make_plain(self, queue, service):
        return ServingReport.from_components(
            queue_delays=np.asarray(queue, dtype=np.float64),
            service_latencies=np.asarray(service, dtype=np.float64),
            num_batches=1, scan_features=0, dhe_features=0,
            batch_time_total=float(np.sum(service)))

    def make_resilient(self, **extras):
        from repro.resilience.report import ResilientServingReport

        return ResilientServingReport.from_serving_report(
            self.make_plain([0.1, 0.2], [1.0, 1.0]), **extras)

    def test_mixed_merge_lifts_and_sums_fault_counters(self):
        from repro.resilience.degradation import DegradationEvent
        from repro.resilience.report import ResilientServingReport

        event = DegradationEvent(from_technique="dhe-varied",
                                 to_technique="scan", cause="audit",
                                 batch_index=3, audit_passed=False,
                                 audit_divergence=0.5)
        plain = self.make_plain([0.0], [2.0])
        resilient = self.make_resilient(attempts_total=7, retries_total=2,
                                        hedges_total=1, shed_requests=1,
                                        crash_events=1,
                                        degradation_events=[event])
        merged = ServingReport.merge([plain, resilient])
        assert isinstance(merged, ResilientServingReport)
        assert merged.attempts_total == 7
        assert merged.retries_total == 2
        assert merged.hedges_total == 1
        assert merged.shed_requests == 1
        assert merged.crash_events == 1
        assert merged.degradation_events == [event]
        assert merged.num_requests == 3
        np.testing.assert_array_equal(merged.latencies, [2.0, 1.1, 1.2])

    def test_two_resilient_constituents_sum(self):
        merged = ServingReport.merge([
            self.make_resilient(attempts_total=4, shed_requests=1),
            self.make_resilient(attempts_total=3, retries_total=5),
        ])
        assert merged.attempts_total == 7
        assert merged.retries_total == 5
        assert merged.shed_requests == 1

    def test_all_plain_stays_plain(self):
        merged = ServingReport.merge([self.make_plain([0.0], [1.0]),
                                      self.make_plain([0.1], [1.0])])
        assert type(merged) is ServingReport

    def test_per_replica_fleet_snapshots_do_not_aggregate(self):
        lifted = self.make_resilient(attempts_total=1,
                                     fleet_snapshot={"nodes": 2})
        merged = ServingReport.merge([lifted, self.make_plain([0.0], [1.0])])
        assert merged.fleet_snapshot is None
