"""Execution backends: modelled/measured resolution through the one seam."""

import pytest

from repro.costmodel.latency import (
    DLRM_DHE_UNIFORM_16,
    dhe_latency,
    dhe_varied_shape,
    linear_scan_latency,
    lookup_latency,
    oram_latency,
)
from repro.serving.backends import (
    BACKEND_TECHNIQUES,
    MeasuredBackend,
    ModelledBackend,
    resolve_backend,
)


class TestModelledBackend:
    def test_matches_cost_model_directly(self):
        backend = ModelledBackend(DLRM_DHE_UNIFORM_16)
        size, dim, batch, threads = 5000, 16, 32, 2
        assert backend.technique_latency("lookup", size, dim, batch, threads) \
            == lookup_latency(size, dim, batch, threads)
        assert backend.technique_latency("scan", size, dim, batch, threads) \
            == linear_scan_latency(size, dim, batch, threads)
        assert backend.technique_latency("dhe-uniform", size, dim, batch,
                                         threads) \
            == dhe_latency(DLRM_DHE_UNIFORM_16, batch, threads)
        assert backend.technique_latency("dhe-varied", size, dim, batch,
                                         threads) \
            == dhe_latency(dhe_varied_shape(size, DLRM_DHE_UNIFORM_16),
                           batch, threads)
        assert backend.technique_latency("path-oram", size, dim, batch,
                                         threads) \
            == oram_latency("path", size, dim, batch, threads)
        assert backend.technique_latency("circuit-oram", size, dim, batch,
                                         threads) \
            == oram_latency("circuit", size, dim, batch, threads)

    def test_all_declared_techniques_resolve(self):
        backend = ModelledBackend(DLRM_DHE_UNIFORM_16)
        for technique in BACKEND_TECHNIQUES:
            assert backend.technique_latency(technique, 1000, 16, 32) > 0

    def test_unknown_technique(self):
        with pytest.raises(ValueError, match="unknown technique"):
            ModelledBackend(DLRM_DHE_UNIFORM_16).technique_latency(
                "quantum", 1000, 16, 32)

    def test_dhe_needs_uniform_shape(self):
        backend = ModelledBackend()  # no shape
        assert backend.technique_latency("scan", 1000, 16, 32) > 0
        with pytest.raises(ValueError, match="uniform shape"):
            backend.technique_latency("dhe-uniform", 1000, 16, 32)


class TestMeasuredBackend:
    def test_times_real_generators(self):
        backend = MeasuredBackend(DLRM_DHE_UNIFORM_16, repeats=1)
        for technique in ("lookup", "scan"):
            assert backend.technique_latency(technique, 64, 8, 4) > 0

    def test_generator_cache_reuses_objects(self):
        backend = MeasuredBackend(DLRM_DHE_UNIFORM_16, repeats=1)
        backend.technique_latency("scan", 64, 8, 4)
        first = backend._generators[("scan", 64, 8)]
        backend.technique_latency("scan", 64, 8, 8)
        assert backend._generators[("scan", 64, 8)] is first

    def test_unknown_technique(self):
        with pytest.raises(ValueError, match="unknown technique"):
            MeasuredBackend(DLRM_DHE_UNIFORM_16).technique_latency(
                "quantum", 64, 8, 4)


class TestResolveBackend:
    def test_names(self):
        assert isinstance(resolve_backend("modelled"), ModelledBackend)
        assert isinstance(resolve_backend("measured"), MeasuredBackend)

    def test_instance_passthrough(self):
        backend = ModelledBackend(DLRM_DHE_UNIFORM_16)
        assert resolve_backend(backend) is backend

    def test_duck_typed_passthrough(self):
        class Fake:
            def technique_latency(self, *args):
                return 1.0

            def generator_latency(self, *args):
                return 1.0

        fake = Fake()
        assert resolve_backend(fake) is fake

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("guess")

    def test_unknown_name_lists_every_valid_backend(self):
        from repro.serving.backends import BACKEND_NAMES

        with pytest.raises(ValueError) as excinfo:
            resolve_backend("measured-lzay")
        message = str(excinfo.value)
        assert "'measured-lzay'" in message
        for name in BACKEND_NAMES:
            assert repr(name) in message

    def test_registry_names_all_resolve(self):
        from repro.serving.backends import BACKEND_NAMES

        for name in BACKEND_NAMES:
            assert resolve_backend(name).name == name

    def test_not_a_backend(self):
        with pytest.raises(TypeError):
            resolve_backend(42)
