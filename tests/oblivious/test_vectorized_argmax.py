"""Vectorized tournament argmax tests + the §V-C overhead claim."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oblivious.primitives import (
    oblivious_argmax,
    oblivious_argmax_vectorized,
)


class TestTournamentArgmax:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100,
                    unique=True))
    @settings(max_examples=60)
    def test_matches_numpy_for_unique_values(self, values):
        data = np.asarray(values)
        assert oblivious_argmax_vectorized(data) == int(np.argmax(data))

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=60))
    @settings(max_examples=40)
    def test_returns_a_maximal_element_under_ties(self, values):
        data = np.asarray(values)
        index = oblivious_argmax_vectorized(data)
        assert data[index] == data.max()

    def test_odd_lengths(self):
        for length in (1, 3, 5, 7, 31):
            data = np.arange(length, dtype=float)
            assert oblivious_argmax_vectorized(data) == length - 1

    def test_negative_values_with_padding(self):
        """The -inf padding must never win, even when all data is very
        negative."""
        data = np.array([-1e308, -1e308, -1e307])
        assert oblivious_argmax_vectorized(data) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            oblivious_argmax_vectorized([])

    def test_agrees_with_scalar_scan(self, rng):
        for _ in range(20):
            data = rng.normal(size=rng.integers(1, 50))
            assert oblivious_argmax_vectorized(data) == \
                oblivious_argmax(data)

    def test_much_faster_than_scalar_at_vocab_scale(self):
        from repro.utils.timing import time_callable

        logits = np.random.default_rng(0).normal(size=50_257)
        fast = time_callable(lambda: oblivious_argmax_vectorized(logits),
                             repeats=3)
        slow = time_callable(lambda: oblivious_argmax(logits[:5000]),
                             repeats=1, warmup=0)
        # The scalar scan on a tenth of the vocabulary is already slower.
        assert fast < slow


class TestArgmaxOverheadClaim:
    def test_secure_argmax_below_half_percent_of_decode(self):
        """§V-C: securing argmax costs <0.4% of generation latency. In the
        cost model, one oblivious vocab-wide scan (50257 floats) is a tiny
        fraction of one decode step."""
        from repro.costmodel.llm import GPT2_MEDIUM, decode_step_latency
        from repro.costmodel.platform import DEFAULT_PLATFORM

        argmax_bytes = GPT2_MEDIUM.vocab_size * 8
        argmax_seconds = argmax_bytes / DEFAULT_PLATFORM.scan_llc_bw
        decode = decode_step_latency(GPT2_MEDIUM, 1, 256)
        assert argmax_seconds / decode < 0.004
