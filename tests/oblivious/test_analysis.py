"""Trace-equivalence verifier tests."""

import numpy as np
import pytest

from repro.oblivious.analysis import assert_trace_oblivious, compare_traces
from repro.oblivious.trace import TracedArray


def oblivious_fn(tracer, secret):
    arr = TracedArray(np.zeros((5, 1)), "t", tracer)
    arr.read_all()


def leaky_fn(tracer, secret):
    arr = TracedArray(np.zeros((5, 1)), "t", tracer)
    arr.read(secret)


class TestCompareTraces:
    def test_oblivious_function_passes(self):
        result = compare_traces(oblivious_fn, [0, 2, 4])
        assert result.oblivious
        assert result.trace_length == 5
        assert "oblivious over 3 secrets" in str(result)

    def test_leaky_function_caught(self):
        result = compare_traces(leaky_fn, [1, 3])
        assert not result.oblivious
        secret, position, ref, got = result.first_divergence
        assert secret == 1
        assert position == 0
        assert ref == "R t[1]"
        assert got == "R t[3]"
        assert "NOT oblivious" in str(result)

    def test_length_divergence_caught(self):
        def fn(tracer, secret):
            arr = TracedArray(np.zeros((5, 1)), "t", tracer)
            for i in range(secret):
                arr.read(0)
        result = compare_traces(fn, [2, 3])
        assert not result.oblivious
        assert result.first_divergence[3] == "<end>" or \
            result.first_divergence[2] == "<end>"

    def test_needs_two_secrets(self):
        with pytest.raises(ValueError):
            compare_traces(oblivious_fn, [1])


class TestAssertTraceOblivious:
    def test_passes_silently(self):
        assert_trace_oblivious(oblivious_fn, [0, 1])

    def test_raises_on_leak(self):
        with pytest.raises(AssertionError, match="NOT oblivious"):
            assert_trace_oblivious(leaky_fn, [0, 1])
