"""MemoryTracer / TracedArray behaviour."""

import numpy as np
import pytest

from repro.oblivious.trace import (
    READ,
    WRITE,
    AccessEvent,
    MemoryTracer,
    TracedArray,
    traces_equal,
)


class TestMemoryTracer:
    def test_records_in_order(self):
        tracer = MemoryTracer()
        tracer.record(READ, "t", 3)
        tracer.record(WRITE, "t", 5)
        assert [str(e) for e in tracer] == ["R t[3]", "W t[5]"]

    def test_disabled_records_nothing(self):
        tracer = MemoryTracer(enabled=False)
        tracer.record(READ, "t", 1)
        assert len(tracer) == 0

    def test_digest_distinguishes_traces(self):
        a, b = MemoryTracer(), MemoryTracer()
        a.record(READ, "t", 1)
        b.record(READ, "t", 2)
        assert a.digest() != b.digest()

    def test_digest_stable(self):
        a, b = MemoryTracer(), MemoryTracer()
        for t in (a, b):
            t.record(READ, "t", 1)
            t.record(WRITE, "u", 2)
        assert a.digest() == b.digest()

    def test_addresses_filter_by_region(self):
        tracer = MemoryTracer()
        tracer.record(READ, "a", 1)
        tracer.record(READ, "b", 2)
        assert tracer.addresses("a") == [1]
        assert tracer.addresses() == [1, 2]

    def test_clear(self):
        tracer = MemoryTracer()
        tracer.record(READ, "t", 1)
        tracer.clear()
        assert len(tracer) == 0


class TestTracedArray:
    def test_read_reports_and_copies(self, rng):
        tracer = MemoryTracer()
        data = rng.normal(size=(4, 3))
        arr = TracedArray(data, "t", tracer)
        row = arr.read(2)
        np.testing.assert_allclose(row, data[2])
        row[0] = 999.0
        assert data[2, 0] != 999.0
        assert tracer.events == [AccessEvent(READ, "t", 2)]

    def test_write_reports(self, rng):
        tracer = MemoryTracer()
        arr = TracedArray(np.zeros((4, 3)), "t", tracer)
        arr.write(1, np.ones(3))
        np.testing.assert_allclose(arr.data[1], np.ones(3))
        assert tracer.events == [AccessEvent(WRITE, "t", 1)]

    def test_read_all_sequential(self):
        tracer = MemoryTracer()
        arr = TracedArray(np.zeros((3, 2)), "t", tracer)
        arr.read_all()
        assert tracer.addresses("t") == [0, 1, 2]

    def test_1d_promoted_to_column(self):
        arr = TracedArray(np.arange(5.0), "t")
        assert arr.shape == (5, 1)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            TracedArray(np.zeros((2, 2, 2)), "t")

    def test_bounds_checked(self):
        arr = TracedArray(np.zeros((3, 2)), "t")
        with pytest.raises(IndexError):
            arr.read(3)
        with pytest.raises(IndexError):
            arr.write(-1, np.zeros(2))

    def test_none_tracer_ok(self):
        arr = TracedArray(np.zeros((3, 2)), "t", tracer=None)
        arr.read(0)
        arr.write(0, np.ones(2))


class TestTracesEqual:
    def test_equal(self):
        a = [AccessEvent(READ, "t", 1)]
        b = [AccessEvent(READ, "t", 1)]
        assert traces_equal(a, b)

    def test_length_mismatch(self):
        assert not traces_equal([AccessEvent(READ, "t", 1)], [])

    def test_content_mismatch(self):
        assert not traces_equal([AccessEvent(READ, "t", 1)],
                                [AccessEvent(WRITE, "t", 1)])
