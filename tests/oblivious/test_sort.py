"""Bitonic sort / oblivious shuffle tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oblivious.sort import (
    bitonic_network,
    oblivious_shuffle,
    oblivious_sort,
)


class TestBitonicNetwork:
    def test_schedule_depends_only_on_length(self):
        assert bitonic_network(8) == bitonic_network(8)

    def test_comparator_count(self):
        # Bitonic network: n/2 * log2(n) * (log2(n)+1) / 2 comparators.
        for n in (2, 4, 8, 16, 32):
            import math
            log = int(math.log2(n))
            assert len(bitonic_network(n)) == n * log * (log + 1) // 4

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bitonic_network(6)


class TestObliviousSort:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_matches_numpy_sort(self, values):
        keys = np.asarray(values)
        sorted_keys, _ = oblivious_sort(keys)
        np.testing.assert_allclose(sorted_keys, np.sort(keys))

    def test_payload_follows_keys(self, rng):
        keys = rng.normal(size=10)
        payload = np.arange(10, dtype=float).reshape(10, 1)
        sorted_keys, sorted_payload = oblivious_sort(keys, payload)
        order = np.argsort(keys, kind="stable")
        np.testing.assert_allclose(sorted_payload.reshape(-1)[
            np.argsort(sorted_keys, kind="stable")].sum(), payload.sum())
        # each payload row still paired with its key
        np.testing.assert_allclose(sorted_keys, keys[order])
        np.testing.assert_allclose(sorted_payload.reshape(-1),
                                   np.arange(10)[order])

    def test_non_power_of_two_lengths(self):
        for n in (1, 3, 5, 7, 13):
            keys = np.arange(n, dtype=float)[::-1].copy()
            sorted_keys, _ = oblivious_sort(keys)
            np.testing.assert_allclose(sorted_keys, np.arange(n))

    def test_payload_row_count_validated(self, rng):
        with pytest.raises(ValueError):
            oblivious_sort(rng.normal(size=4), rng.normal(size=(3, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            oblivious_sort(np.array([]))


class TestObliviousShuffle:
    def test_is_a_permutation(self, rng):
        rows = rng.normal(size=(20, 3))
        shuffled = oblivious_shuffle(rows, rng=0)
        assert shuffled.shape == rows.shape
        # multiset equality row-wise
        original = sorted(map(tuple, rows.round(12)))
        permuted = sorted(map(tuple, shuffled.round(12)))
        assert original == permuted

    def test_actually_shuffles(self, rng):
        rows = np.arange(32, dtype=float).reshape(32, 1)
        shuffled = oblivious_shuffle(rows, rng=1)
        assert not np.allclose(shuffled, rows)

    def test_uniformity_of_first_position(self):
        """Over many seeds, each element reaches position 0 roughly
        equally often."""
        rows = np.arange(8, dtype=float).reshape(8, 1)
        counts = np.zeros(8)
        for seed in range(800):
            counts[int(oblivious_shuffle(rows, rng=seed)[0, 0])] += 1
        assert counts.min() > 0.5 * counts.mean()
        assert counts.max() < 1.5 * counts.mean()

    def test_1d_input_promoted(self, rng):
        out = oblivious_shuffle(np.arange(5, dtype=float), rng=0)
        assert out.shape == (5, 1)
