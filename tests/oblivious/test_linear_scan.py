"""Linear-scan lookup: correctness + the full-sweep access pattern."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oblivious.linear_scan import (
    linear_scan_batch,
    linear_scan_batch_vectorized,
    linear_scan_lookup,
)
from repro.oblivious.trace import MemoryTracer, TracedArray


@pytest.fixture
def table(rng):
    return rng.normal(size=(20, 6))


class TestLinearScanLookup:
    def test_retrieves_correct_row(self, table):
        traced = TracedArray(table, "t")
        for index in (0, 7, 19):
            np.testing.assert_allclose(linear_scan_lookup(traced, index),
                                       table[index])

    def test_touches_every_row_in_order(self, table):
        tracer = MemoryTracer()
        traced = TracedArray(table, "t", tracer)
        linear_scan_lookup(traced, 13)
        assert tracer.addresses("t") == list(range(20))

    def test_trace_independent_of_index(self, table):
        digests = set()
        for index in (0, 5, 19):
            tracer = MemoryTracer()
            linear_scan_lookup(TracedArray(table, "t", tracer), index)
            digests.add(tracer.digest())
        assert len(digests) == 1

    def test_out_of_range(self, table):
        with pytest.raises(IndexError):
            linear_scan_lookup(TracedArray(table, "t"), 20)


class TestLinearScanBatch:
    def test_matches_gather(self, table):
        indices = np.array([3, 3, 0, 19, 7])
        out = linear_scan_batch(TracedArray(table, "t"), indices)
        np.testing.assert_allclose(out, table[indices])

    def test_one_sweep_per_query(self, table):
        tracer = MemoryTracer()
        linear_scan_batch(TracedArray(table, "t", tracer), [1, 2, 3])
        assert len(tracer.addresses("t")) == 3 * 20


class TestBatchVectorisationParity:
    """The matmul-vectorised batch must be indistinguishable — output bytes
    and trace events — from the scalar per-row blend chain it replaced."""

    def test_bitwise_seed_parity_with_scalar_reference(self):
        rng = np.random.default_rng(20250805)
        table = rng.normal(size=(64, 16))
        indices = rng.integers(0, 64, size=40)
        batch = linear_scan_batch(TracedArray(table, "t"), indices)
        reference_table = TracedArray(table, "t")
        reference = np.stack([linear_scan_lookup(reference_table, int(index))
                              for index in indices])
        assert batch.dtype == reference.dtype
        assert batch.tobytes() == reference.tobytes()  # bitwise, no atol

    def test_trace_identical_to_scalar_sweeps(self):
        rng = np.random.default_rng(20250805)
        table = rng.normal(size=(32, 4))
        indices = [5, 0, 31, 5]
        batch_tracer = MemoryTracer()
        linear_scan_batch(TracedArray(table, "t", batch_tracer), indices)
        scalar_tracer = MemoryTracer()
        scalar_table = TracedArray(table, "t", scalar_tracer)
        for index in indices:
            linear_scan_lookup(scalar_table, index)
        assert batch_tracer.snapshot() == scalar_tracer.snapshot()

    def test_out_of_range_raises_before_any_sweep(self, table):
        tracer = MemoryTracer()
        with pytest.raises(IndexError):
            linear_scan_batch(TracedArray(table, "t", tracer), [1, 20])
        assert len(tracer) == 0

    def test_empty_batch(self, table):
        out = linear_scan_batch(TracedArray(table, "t"), [])
        assert out.shape == (0, 6)
        assert out.dtype == table.dtype


class TestVectorizedScan:
    @given(st.lists(st.integers(0, 19), min_size=1, max_size=10))
    @settings(max_examples=25)
    def test_matches_scalar_scan(self, indices):
        rng = np.random.default_rng(0)
        table = rng.normal(size=(20, 6))
        scalar = linear_scan_batch(TracedArray(table, "t"), indices)
        vector = linear_scan_batch_vectorized(table, indices)
        np.testing.assert_allclose(scalar, vector, atol=1e-12)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            linear_scan_batch_vectorized(np.zeros((4, 2)), [4])
