"""Constant-trace primitive tests + hypothesis equivalence properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oblivious.primitives import (
    branchless_relu,
    ct_eq,
    ct_lt,
    ct_select,
    oblivious_argmax,
    oblivious_copy_row,
    oblivious_max,
    oblivious_swap,
)


class TestCtEq:
    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_matches_python_eq(self, a, b):
        assert ct_eq(a, b) == int(a == b)

    def test_vectorised(self):
        out = ct_eq(np.array([1, 2, 3]), np.array([1, 0, 3]))
        np.testing.assert_array_equal(out, [1, 0, 1])

    def test_float_inputs(self):
        assert ct_eq(1.5, 1.5) == 1
        assert ct_eq(1.5, 1.6) == 0


class TestCtLt:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_matches_python_lt(self, a, b):
        assert ct_lt(a, b) == int(a < b)


class TestCtSelect:
    @given(st.booleans(), st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_matches_ternary(self, cond, a, b):
        expected = a if cond else b
        assert ct_select(int(cond), a, b) == pytest.approx(expected)

    def test_int_preserving(self):
        assert ct_select(1, 5, 9) == 5
        assert isinstance(ct_select(1, 5, 9), int)

    def test_vectorised_mask(self):
        cond = np.array([1, 0, 1])
        out = ct_select(cond, np.array([1.0, 2, 3]), np.array([9.0, 9, 9]))
        np.testing.assert_allclose(out, [1.0, 9.0, 3.0])


class TestObliviousCopyRow:
    def test_flag_one_copies(self, rng):
        src = rng.normal(size=8)
        dst = rng.normal(size=8)
        oblivious_copy_row(1, src, dst)
        np.testing.assert_allclose(dst, src)

    def test_flag_zero_preserves(self, rng):
        src = rng.normal(size=8)
        dst = rng.normal(size=8)
        before = dst.copy()
        oblivious_copy_row(0, src, dst)
        np.testing.assert_allclose(dst, before)


class TestObliviousSwap:
    def test_swap_and_noswap(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=4)
        a0, b0 = a.copy(), b.copy()
        oblivious_swap(0, a, b)
        np.testing.assert_allclose(a, a0)
        oblivious_swap(1, a, b)
        np.testing.assert_allclose(a, b0)
        np.testing.assert_allclose(b, a0)


class TestBranchlessRelu:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_matches_max_zero(self, values):
        x = np.asarray(values)
        np.testing.assert_allclose(branchless_relu(x), np.maximum(x, 0.0),
                                   atol=1e-9)


class TestObliviousArgmax:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_matches_numpy_argmax(self, values):
        x = np.asarray(values)
        assert oblivious_argmax(x) == int(np.argmax(x))

    def test_first_of_ties(self):
        assert oblivious_argmax([3.0, 3.0, 1.0]) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            oblivious_argmax([])


class TestObliviousMax:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_matches_numpy_max(self, values):
        x = np.asarray(values)
        assert oblivious_max(x) == pytest.approx(float(np.max(x)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            oblivious_max([])
