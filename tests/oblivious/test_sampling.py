"""Oblivious top-k and stochastic-sampling tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oblivious.primitives import oblivious_topk
from repro.oblivious.sampling import (
    oblivious_sample_batch,
    oblivious_sample_top_k,
)


class TestObliviousTopk:
    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=30,
                    unique=True),
           st.data())
    @settings(max_examples=40)
    def test_matches_numpy_topk(self, values, data):
        k = data.draw(st.integers(1, len(values)))
        array = np.asarray(values)
        indices, top = oblivious_topk(array, k)
        expected = np.sort(array)[::-1][:k]
        np.testing.assert_allclose(np.asarray(top), expected)
        np.testing.assert_allclose(array[indices], top)

    def test_indices_distinct(self):
        indices, _ = oblivious_topk([5.0, 5.0, 5.0, 1.0], 3)
        assert len(set(indices.tolist())) == 3

    def test_k_validation(self):
        with pytest.raises(ValueError):
            oblivious_topk([1.0, 2.0], 3)
        with pytest.raises(ValueError):
            oblivious_topk([1.0], 0)
        with pytest.raises(ValueError):
            oblivious_topk([], 1)


class TestObliviousSampleTopK:
    def test_only_topk_tokens_sampled(self, rng):
        logits = np.array([10.0, 9.0, 8.0, -50.0, -50.0])
        draws = {oblivious_sample_top_k(logits, 3, rng=int(seed))
                 for seed in rng.integers(0, 10**6, size=40)}
        assert draws <= {0, 1, 2}
        assert len(draws) >= 2  # actually stochastic

    def test_low_temperature_approaches_greedy(self):
        logits = np.array([1.0, 1.2, 0.9])
        draws = [oblivious_sample_top_k(logits, 3, temperature=0.01,
                                        rng=seed)
                 for seed in range(20)]
        assert all(token == 1 for token in draws)

    def test_distribution_tracks_softmax(self):
        logits = np.log(np.array([0.7, 0.2, 0.1]))
        counts = np.zeros(3)
        for seed in range(3000):
            counts[oblivious_sample_top_k(logits, 3, rng=seed)] += 1
        freqs = counts / counts.sum()
        np.testing.assert_allclose(freqs, [0.7, 0.2, 0.1], atol=0.05)

    def test_deterministic_under_seed(self):
        logits = np.random.default_rng(0).normal(size=20)
        a = oblivious_sample_top_k(logits, 5, rng=42)
        b = oblivious_sample_top_k(logits, 5, rng=42)
        assert a == b

    def test_temperature_validated(self):
        with pytest.raises(ValueError):
            oblivious_sample_top_k(np.zeros(4), 2, temperature=0.0)


class TestBatchSampling:
    def test_shape(self, rng):
        logits = rng.normal(size=(5, 16))
        out = oblivious_sample_batch(logits, 4, rng=0)
        assert out.shape == (5,)
        assert (out >= 0).all() and (out < 16).all()

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            oblivious_sample_batch(np.zeros(4), 2)


class TestGptSamplingIntegration:
    def test_top_k_generation(self, rng):
        from repro.models.gpt import GPT, tiny_config

        model = GPT(tiny_config(vocab_size=32, embed_dim=16, num_layers=1,
                                num_heads=2), rng=0)
        prompt = rng.integers(0, 32, size=(2, 4))
        out = model.generate(prompt, max_new_tokens=5, top_k=4,
                             temperature=0.8, rng=1)
        assert out.shape == (2, 9)
        # Stochastic: a different seed usually gives a different sequence.
        other = model.generate(prompt, max_new_tokens=5, top_k=4,
                               temperature=0.8, rng=2)
        assert out.shape == other.shape

    def test_oblivious_and_plain_topk_same_support(self, rng):
        """Both samplers draw from the same top-k support set."""
        from repro.models.gpt import GPT, tiny_config

        model = GPT(tiny_config(vocab_size=32, embed_dim=16, num_layers=1,
                                num_heads=2), rng=0)
        prompt = rng.integers(0, 32, size=(1, 4))
        caches = model.new_caches()
        logits = model.prefill(prompt, caches).data[0]
        top = set(np.argsort(logits)[::-1][:4].tolist())
        for seed in range(10):
            token = oblivious_sample_top_k(logits, 4, rng=seed)
            assert token in top
