"""CircuitBreaker state machine on the simulated clock."""

import pytest

from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_VALUES,
    BreakerConfig,
    CircuitBreaker,
)

CONFIG = BreakerConfig(failure_threshold=3, cooldown_seconds=0.050,
                       probe_successes=2)


def tripped(at=0.0):
    breaker = CircuitBreaker(CONFIG)
    for _ in range(CONFIG.failure_threshold):
        breaker.record_failure(at)
    return breaker


class TestTripping:
    def test_starts_closed(self):
        breaker = CircuitBreaker(CONFIG)
        assert breaker.state(0.0) == CLOSED
        assert breaker.allows(0.0)

    def test_consecutive_failures_trip_open(self):
        breaker = CircuitBreaker(CONFIG)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == CLOSED
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == OPEN
        assert not breaker.allows(0.0)
        assert breaker.trips == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(CONFIG)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == CLOSED


class TestCooldownAndProbes:
    def test_cooldown_admits_half_open_probe(self):
        breaker = tripped(at=1.0)
        assert breaker.state(1.0) == OPEN
        assert breaker.state(1.0 + 0.049) == OPEN
        assert breaker.state(1.0 + 0.050) == HALF_OPEN
        assert breaker.allows(1.0 + 0.050)
        assert breaker.retry_at() == pytest.approx(1.050)

    def test_probe_successes_reclose(self):
        breaker = tripped(at=0.0)
        t = 0.060
        breaker.record_success(t)
        assert breaker.state(t) == HALF_OPEN  # still probing
        breaker.record_success(t + 0.001)
        assert breaker.state(t + 0.001) == CLOSED
        assert breaker.readmissions == 1

    def test_probe_failure_reopens_fresh_window(self):
        breaker = tripped(at=0.0)
        t = 0.060
        breaker.record_failure(t)
        assert breaker.state(t) == OPEN
        assert breaker.state(t + 0.049) == OPEN
        assert breaker.state(t + 0.050) == HALF_OPEN
        assert breaker.trips == 2


class TestGaugeEncoding:
    def test_state_values(self):
        assert STATE_VALUES[CLOSED] == 0.0
        assert STATE_VALUES[HALF_OPEN] == 1.0
        assert STATE_VALUES[OPEN] == 2.0

    def test_state_value_tracks_state(self):
        breaker = tripped(at=0.0)
        assert breaker.state_value(0.0) == 2.0
        assert breaker.state_value(0.050) == 1.0


class TestConfigValidation:
    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_seconds=float("nan"))
        with pytest.raises(ValueError):
            BreakerConfig(probe_successes=0)
