"""ResilientDispatcher: health tracking, eviction/readmission, hedging."""

import math

import pytest

from repro.resilience import (
    CLOSED,
    OPEN,
    BreakerConfig,
    ResilientDispatcher,
)
from repro.telemetry.runtime import use_registry

CONFIG = BreakerConfig(failure_threshold=2, cooldown_seconds=0.050,
                       probe_successes=1)


class TestConstruction:
    def test_min_replicas_cannot_exceed_fleet(self):
        with pytest.raises(ValueError, match="min_replicas 4 exceeds"):
            ResilientDispatcher(num_replicas=3, min_replicas=4)

    def test_rejects_bad_hedge_factor(self):
        with pytest.raises(ValueError, match="hedge_after_factor"):
            ResilientDispatcher(num_replicas=2, hedge_after_factor=0.5)


class TestSelection:
    def test_round_robin_over_healthy_fleet(self):
        dispatcher = ResilientDispatcher(num_replicas=3)
        picks = [dispatcher.select(0.0) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_evicted_replicas(self):
        dispatcher = ResilientDispatcher(num_replicas=3,
                                         breaker_config=CONFIG)
        dispatcher.record_failure(1, 0.0)
        dispatcher.record_failure(1, 0.0)  # trips replica 1 OPEN
        assert dispatcher.admitted(0.0) == [0, 2]
        assert dispatcher.evicted(0.0) == [1]
        picks = [dispatcher.select(0.0) for _ in range(4)]
        assert 1 not in picks

    def test_all_evicted_returns_none(self):
        dispatcher = ResilientDispatcher(num_replicas=2,
                                         breaker_config=CONFIG)
        for replica in range(2):
            dispatcher.record_failure(replica, 0.0)
            dispatcher.record_failure(replica, 0.0)
        assert dispatcher.select(0.0) is None
        assert dispatcher.below_min(0.0)

    def test_crash_downtime_evicts_until_deadline(self):
        dispatcher = ResilientDispatcher(num_replicas=2)
        dispatcher.mark_down(0, until_seconds=0.040, now_seconds=0.0)
        assert 0 not in dispatcher.admitted(0.020)
        assert 0 in dispatcher.admitted(0.040)


class TestReadmission:
    def test_cooldown_then_probe_readmits(self):
        dispatcher = ResilientDispatcher(num_replicas=2,
                                         breaker_config=CONFIG)
        dispatcher.record_failure(0, 0.0)
        dispatcher.record_failure(0, 0.0)
        assert dispatcher.replicas[0].breaker.state(0.0) == OPEN
        rejoin = dispatcher.next_admission_at(0.0)
        assert rejoin == pytest.approx(0.050)
        # Half-open probe succeeds -> re-closed.
        dispatcher.record_success(0, rejoin)
        assert dispatcher.replicas[0].breaker.state(rejoin) == CLOSED
        assert dispatcher.replicas[0].breaker.readmissions == 1

    def test_no_pending_admissions_is_inf(self):
        dispatcher = ResilientDispatcher(num_replicas=2)
        assert math.isinf(dispatcher.next_admission_at(0.0))


class TestHedging:
    def test_fast_attempt_is_not_hedged(self):
        dispatcher = ResilientDispatcher(num_replicas=2,
                                         hedge_after_factor=3.0)
        latency = dispatcher.hedged_latency(0, primary_latency=0.010,
                                            service_seconds=0.010,
                                            now_seconds=0.0)
        assert latency == 0.010
        assert sum(r.hedges for r in dispatcher.replicas) == 0

    def test_straggler_is_cut_by_the_hedge(self):
        dispatcher = ResilientDispatcher(num_replicas=2,
                                         hedge_after_factor=3.0)
        with use_registry() as registry:
            latency = dispatcher.hedged_latency(0, primary_latency=0.100,
                                                service_seconds=0.010,
                                                now_seconds=0.0)
        # hedge fires at 0.030, finishes at 0.040 < 0.100
        assert latency == pytest.approx(0.040)
        assert sum(r.hedges for r in dispatcher.replicas) == 1
        assert registry.counter("resilience.hedges_total").value == 1.0

    def test_no_spare_replica_no_hedge(self):
        dispatcher = ResilientDispatcher(num_replicas=1)
        latency = dispatcher.hedged_latency(0, primary_latency=0.100,
                                            service_seconds=0.010,
                                            now_seconds=0.0)
        assert latency == 0.100


class TestTelemetryAndSnapshot:
    def test_breaker_state_gauge_tracks_worst(self):
        with use_registry() as registry:
            dispatcher = ResilientDispatcher(num_replicas=2,
                                             breaker_config=CONFIG)
            dispatcher.record_failure(0, 0.0)
            dispatcher.record_failure(0, 0.0)
        assert registry.gauge("breaker.state").value == 2.0
        assert registry.gauge("resilience.healthy_replicas").value == 1.0

    def test_snapshot_is_json_ready(self):
        dispatcher = ResilientDispatcher(num_replicas=2,
                                         breaker_config=CONFIG)
        dispatcher.record_failure(1, 0.0)
        snap = dispatcher.snapshot(0.0)
        assert snap["admitted"] == [0, 1]
        assert snap["failures"] == [0, 1]
        assert snap["states"] == [CLOSED, CLOSED]


class TestFleetResizing:
    def test_growth_preserves_breaker_state(self):
        dispatcher = ResilientDispatcher(num_replicas=3,
                                         breaker_config=CONFIG)
        dispatcher.record_failure(1, 0.0)
        dispatcher.record_failure(1, 0.0)  # replica 1 OPEN
        dispatcher.ensure_replicas(5)
        assert dispatcher.num_replicas == 5
        # the sick replica stays evicted; the new ones join healthy
        assert dispatcher.admitted(0.0) == [0, 2, 3, 4]

    def test_growth_preserves_crash_windows(self):
        dispatcher = ResilientDispatcher(num_replicas=2)
        dispatcher.mark_down(0, until_seconds=1.0, now_seconds=0.0)
        dispatcher.ensure_replicas(3)
        assert 0 not in dispatcher.admitted(0.5)
        assert 0 in dispatcher.admitted(1.0)

    def test_shrink_is_a_no_op(self):
        dispatcher = ResilientDispatcher(num_replicas=4)
        dispatcher.ensure_replicas(2)
        assert dispatcher.num_replicas == 4
        assert dispatcher.admitted(0.0) == [0, 1, 2, 3]

    def test_new_replicas_share_breaker_config(self):
        dispatcher = ResilientDispatcher(num_replicas=1,
                                         breaker_config=CONFIG)
        dispatcher.ensure_replicas(2)
        dispatcher.record_failure(1, 0.0)
        dispatcher.record_failure(1, 0.0)  # CONFIG threshold is 2
        assert dispatcher.admitted(0.0) == [0]

    def test_resize_must_be_positive(self):
        dispatcher = ResilientDispatcher(num_replicas=2)
        with pytest.raises(ValueError):
            dispatcher.ensure_replicas(0)


class TestElasticShrink:
    def test_allow_shrink_releases_trailing_slots(self):
        dispatcher = ResilientDispatcher(num_replicas=5, min_replicas=2)
        dispatcher.ensure_replicas(3, allow_shrink=True)
        assert dispatcher.num_replicas == 3
        assert dispatcher.admitted(0.0) == [0, 1, 2]

    def test_shrink_below_min_replicas_rejected(self):
        dispatcher = ResilientDispatcher(num_replicas=4, min_replicas=3)
        with pytest.raises(ValueError, match="below"):
            dispatcher.ensure_replicas(2, allow_shrink=True)
        assert dispatcher.num_replicas == 4

    def test_shrink_wraps_the_round_robin_cursor(self):
        dispatcher = ResilientDispatcher(num_replicas=4)
        for _ in range(3):  # cursor now points at replica 3
            dispatcher.select(0.0)
        dispatcher.ensure_replicas(2, allow_shrink=True)
        assert dispatcher.select(0.0) in (0, 1)

    def test_regrowth_after_shrink_joins_fresh(self):
        dispatcher = ResilientDispatcher(num_replicas=4,
                                         breaker_config=CONFIG)
        dispatcher.record_failure(3, 0.0)
        dispatcher.record_failure(3, 0.0)  # replica 3 OPEN
        dispatcher.ensure_replicas(3, allow_shrink=True)
        dispatcher.ensure_replicas(4)
        # the decommissioned machine's breaker history does not come back
        assert dispatcher.admitted(0.0) == [0, 1, 2, 3]


class TestReplaceReplica:
    def test_replacement_joins_healthy_with_fresh_counters(self):
        dispatcher = ResilientDispatcher(num_replicas=3,
                                         breaker_config=CONFIG)
        dispatcher.record_failure(1, 0.0)
        dispatcher.record_failure(1, 0.0)  # OPEN
        dispatcher.mark_down(1, until_seconds=1e9, now_seconds=0.0)
        assert dispatcher.admitted(0.0) == [0, 2]
        dispatcher.replace_replica(1)
        assert dispatcher.admitted(0.0) == [0, 1, 2]
        assert dispatcher.replicas[1].failures == 0
        assert dispatcher.replicas[1].dispatched == 0

    def test_out_of_range_slot_rejected(self):
        dispatcher = ResilientDispatcher(num_replicas=2)
        with pytest.raises(IndexError, match="out of range"):
            dispatcher.replace_replica(2)

    def test_replacement_bumps_counter(self):
        with use_registry() as registry:
            dispatcher = ResilientDispatcher(num_replicas=2)
            dispatcher.replace_replica(0)
        counter = registry.counter("resilience.replacements_total")
        assert counter.value == 1


class TestHealthSummary:
    def test_counts_crashes_and_breaker_states(self):
        dispatcher = ResilientDispatcher(num_replicas=4,
                                         breaker_config=CONFIG)
        dispatcher.mark_down(0, until_seconds=5.0, now_seconds=0.0)
        dispatcher.record_failure(1, 0.0)
        dispatcher.record_failure(1, 0.0)  # OPEN at t=0
        summary = dispatcher.health_summary(0.0)
        assert summary == {"num_replicas": 4, "healthy": 2,
                           "open_breakers": 1, "half_open_breakers": 0,
                           "crashed": 1}

    def test_half_open_counted_after_cooldown(self):
        dispatcher = ResilientDispatcher(num_replicas=2,
                                         breaker_config=CONFIG)
        dispatcher.record_failure(0, 0.0)
        dispatcher.record_failure(0, 0.0)
        summary = dispatcher.health_summary(CONFIG.cooldown_seconds + 0.001)
        assert summary["open_breakers"] == 0
        assert summary["half_open_breakers"] == 1

    def test_all_healthy_fleet_is_clean(self):
        dispatcher = ResilientDispatcher(num_replicas=3)
        assert dispatcher.health_summary(0.0) == {
            "num_replicas": 3, "healthy": 3, "open_breakers": 0,
            "half_open_breakers": 0, "crashed": 0}
