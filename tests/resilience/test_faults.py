"""FaultInjector: determinism, coordinates, the backend decorator."""

import pytest

from repro.oram.path_oram import PathORAM
from repro.oram.stash import StashOverflowError
from repro.resilience import (
    FaultInjectingBackend,
    FaultInjector,
    LatencySpikeFault,
    ReplicaCrashFault,
    StashPressureFault,
    TransientBackendError,
    TransientErrorFault,
)
from repro.serving.backends import ModelledBackend


def storm(seed=0):
    return FaultInjector(
        seed=seed,
        crash=ReplicaCrashFault(probability=0.1),
        spike=LatencySpikeFault(probability=0.2, multiplier=3.0),
        transient=TransientErrorFault(probability=0.2),
        stash=StashPressureFault(probability=0.5))


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        assert (storm(3).schedule(40, 4, attempts=2)
                == storm(3).schedule(40, 4, attempts=2))

    def test_different_seed_different_schedule(self):
        assert (storm(3).schedule(40, 4, attempts=2)
                != storm(4).schedule(40, 4, attempts=2))

    def test_decisions_are_call_order_independent(self):
        injector = storm(9)
        forward = [injector.crashes(r, b, 0)
                   for b in range(20) for r in range(3)]
        backward = [injector.crashes(r, b, 0)
                    for b in reversed(range(20)) for r in reversed(range(3))]
        assert forward == list(reversed(backward))

    def test_schedule_matches_pointwise_decisions(self):
        injector = storm(5)
        schedule = injector.schedule(10, 2, attempts=2)
        for batch, replica, attempt in schedule["crashes"]:
            assert injector.crashes(replica, batch, attempt)
        for batch, replica, attempt in schedule["spikes"]:
            assert injector.spike_multiplier(replica, batch, attempt) > 1.0

    def test_jitter_in_unit_interval(self):
        injector = storm(1)
        draws = [injector.jitter(b, a) for b in range(10) for a in range(3)]
        assert all(0.0 <= u < 1.0 for u in draws)
        assert len(set(draws)) > 1


class TestInertInjector:
    def test_default_is_disabled(self):
        injector = FaultInjector(seed=0)
        assert not injector.enabled
        assert not injector.crashes(0, 0, 0)
        assert injector.spike_multiplier(0, 0, 0) == 1.0
        assert not injector.transient_error(0, 0, 0)
        assert not injector.stash_pressured(0)

    def test_zero_probability_is_disabled(self):
        injector = FaultInjector(seed=0,
                                 crash=ReplicaCrashFault(probability=0.0))
        assert not injector.enabled


class TestFaultModelValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            ReplicaCrashFault(probability=1.5)
        with pytest.raises(ValueError):
            TransientErrorFault(probability=-0.1)
        with pytest.raises(ValueError):
            ReplicaCrashFault(probability=float("nan"))

    def test_spike_multiplier_floor(self):
        with pytest.raises(ValueError, match="multiplier"):
            LatencySpikeFault(probability=0.1, multiplier=0.5)

    def test_capacity_fraction_bounds(self):
        with pytest.raises(ValueError, match="capacity_fraction"):
            StashPressureFault(probability=0.1, capacity_fraction=0.0)


class TestFaultInjectingBackend:
    def test_rejects_non_backend(self):
        with pytest.raises(TypeError, match="not an execution backend"):
            FaultInjectingBackend(object(), FaultInjector())

    def test_inert_injector_passes_latency_through(self):
        inner = ModelledBackend()
        wrapped = FaultInjectingBackend(inner, FaultInjector(seed=0))
        expected = inner.technique_latency("scan", 1000, 64, 32, 1)
        assert wrapped.technique_latency("scan", 1000, 64, 32, 1) == expected

    def test_spikes_and_transients_fire_deterministically(self):
        def collect():
            wrapped = FaultInjectingBackend(
                ModelledBackend(),
                FaultInjector(seed=2,
                              spike=LatencySpikeFault(probability=0.3,
                                                      multiplier=5.0),
                              transient=TransientErrorFault(probability=0.3)))
            outcomes = []
            for _ in range(30):
                try:
                    outcomes.append(
                        wrapped.technique_latency("scan", 1000, 64, 32, 1))
                except TransientBackendError:
                    outcomes.append("error")
            return outcomes

        first, second = collect(), collect()
        assert first == second
        assert "error" in first
        base = ModelledBackend().technique_latency("scan", 1000, 64, 32, 1)
        assert any(isinstance(o, float) and o > base for o in first)


class TestStashPressureHook:
    def test_pressure_window_tightens_and_restores_bound(self):
        oram = PathORAM(64, 4, rng=0, stash_capacity=64)
        original = oram.persistent_stash_capacity
        injector = FaultInjector(
            seed=0, stash=StashPressureFault(probability=1.0,
                                             capacity_fraction=0.01))
        fired = False
        with injector.stash_pressure(oram, event=0) as active:
            fired = active
            assert oram.persistent_stash_capacity == 1
            with pytest.raises(StashOverflowError):
                # Deterministic (rng=0): within a few hundred accesses the
                # between-access occupancy exceeds the tightened bound.
                for step in range(512):
                    oram.read(step % 64)
        assert fired
        assert oram.persistent_stash_capacity == original

    def test_unfired_window_is_a_no_op(self):
        oram = PathORAM(16, 4, rng=0, stash_capacity=16)
        injector = FaultInjector(
            seed=0, stash=StashPressureFault(probability=0.0))
        with injector.stash_pressure(oram, event=0) as active:
            assert not active
