"""DegradationLadder: oblivious-only chains, audited transitions."""

import pytest

from repro.resilience import (
    DEFAULT_CHAIN,
    FORBIDDEN_TECHNIQUE,
    OBLIVIOUS_TECHNIQUES,
    DegradationLadder,
)
from repro.serving.backends import ModelledBackend
from repro.telemetry.runtime import use_registry


class TestChainValidation:
    def test_raw_lookup_is_never_a_legal_rung(self):
        with pytest.raises(ValueError, match="access-pattern channel"):
            DegradationLadder(table_size=1000,
                              chain=("path-oram", FORBIDDEN_TECHNIQUE))

    def test_unknown_technique_rejected(self):
        with pytest.raises(ValueError, match="oblivious set"):
            DegradationLadder(table_size=1000, chain=("path-oram", "btree"))

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            DegradationLadder(table_size=1000, chain=())

    def test_default_chain_is_oblivious(self):
        assert set(DEFAULT_CHAIN) <= OBLIVIOUS_TECHNIQUES
        assert FORBIDDEN_TECHNIQUE not in OBLIVIOUS_TECHNIQUES


class TestStepping:
    def test_walks_the_chain_and_exhausts(self):
        ladder = DegradationLadder(table_size=1000)
        assert ladder.current_technique == "path-oram"
        event = ladder.degrade("stash-overflow", batch_index=4)
        assert (event.from_technique, event.to_technique) == ("path-oram",
                                                              "dhe-varied")
        assert event.batch_index == 4
        event = ladder.degrade("stash-overflow")
        assert event.to_technique == "scan"
        assert ladder.exhausted
        assert ladder.degrade("stash-overflow") is None  # never past scan
        assert ladder.current_technique == "scan"
        assert ladder.degradations == 2

    def test_pressure_streak_trips_after_threshold(self):
        ladder = DegradationLadder(table_size=1000, trigger_after=3)
        assert ladder.record_pressure("stash") is None
        assert ladder.record_pressure("stash") is None
        event = ladder.record_pressure("stash")
        assert event is not None and event.to_technique == "dhe-varied"

    def test_recovery_resets_the_streak(self):
        ladder = DegradationLadder(table_size=1000, trigger_after=2)
        ladder.record_pressure("stash")
        ladder.record_recovery()
        assert ladder.record_pressure("stash") is None

    def test_reset_returns_to_top_rung(self):
        ladder = DegradationLadder(table_size=1000)
        ladder.degrade("stash")
        ladder.reset()
        assert ladder.current_technique == DEFAULT_CHAIN[0]


class TestAuditedTransitions:
    def test_every_transition_is_leakage_audited(self):
        ladder = DegradationLadder(table_size=1000)
        events = [ladder.degrade("stash"), ladder.degrade("stash")]
        for event in events:
            assert event.audit_passed
            assert event.audit_divergence == pytest.approx(0.0)

    def test_transitions_land_in_telemetry(self):
        with use_registry() as registry:
            ladder = DegradationLadder(table_size=1000)
            ladder.degrade("stash")
            ladder.degrade("stash")
        assert registry.counter(
            "resilience.degradations_total").value == 2.0
        assert registry.gauge("resilience.ladder_position").value == 2.0

    def test_event_dict_is_json_ready(self):
        ladder = DegradationLadder(table_size=1000)
        digest = ladder.degrade("stash", batch_index=7).to_dict()
        assert digest["from"] == "path-oram"
        assert digest["to"] == "dhe-varied"
        assert digest["batch_index"] == 7
        assert digest["audit_passed"] is True


class TestPricing:
    def test_current_latency_follows_the_rung(self):
        backend = ModelledBackend()
        ladder = DegradationLadder(table_size=100_000)
        before = ladder.current_latency(backend, dim=64, batch=32)
        ladder.degrade("stash")
        ladder.degrade("stash")
        after = ladder.current_latency(backend, dim=64, batch=32)
        assert before == backend.technique_latency("path-oram", 100_000, 64,
                                                   32, 1)
        assert after == backend.technique_latency("scan", 100_000, 64, 32, 1)
