"""The resilient executor end-to-end + the chaos harness contract."""

import json

import numpy as np
import pytest

from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC
from repro.hybrid import OfflineProfiler, build_threshold_database
from repro.resilience import (
    FaultInjector,
    LatencySpikeFault,
    ReplicaCrashFault,
    ResiliencePolicy,
    ResilientServingReport,
    RetryPolicy,
    StashPressureFault,
    TransientErrorFault,
)
from repro.resilience.chaos import render, run_chaos
from repro.resilience.degradation import DegradationLadder
from repro.serving import BatchingPolicy, ExecutionEngine, ServingConfig

DIM = 64
BATCH = 32


@pytest.fixture(scope="module")
def thresholds():
    profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
    profile = profiler.profile(techniques=("scan", "dhe-varied"),
                               dims=(DIM,), batches=(BATCH,),
                               threads_list=(1,))
    return build_threshold_database(profile, dhe_technique="dhe-varied",
                                    dims=(DIM,), batches=(BATCH,),
                                    threads_list=(1,))


def make_engine(thresholds, resilience):
    return ExecutionEngine(TERABYTE_SPEC.table_sizes, DIM,
                           DLRM_DHE_UNIFORM_64, thresholds, varied=True,
                           resilience=resilience)


def storm_policy(seed=0, ladder=None):
    return ResiliencePolicy(
        injector=FaultInjector(
            seed=seed,
            crash=ReplicaCrashFault(probability=0.05,
                                    downtime_seconds=0.040),
            spike=LatencySpikeFault(probability=0.15, multiplier=4.0),
            transient=TransientErrorFault(probability=0.15),
            stash=(StashPressureFault(probability=0.6)
                   if ladder is not None else None)),
        retry=RetryPolicy(deadline_seconds=0.500),
        num_replicas=3, ladder=ladder)


class TestResilientExecution:
    def test_faulty_run_reports_fault_accounting(self, thresholds):
        engine = make_engine(thresholds, storm_policy(seed=7))
        config = ServingConfig(batch_size=BATCH, threads=1)
        report = engine.serve_poisson(
            512, 2000.0, config,
            policy=BatchingPolicy(BATCH, max_wait_seconds=0.002), rng=7)
        assert isinstance(report, ResilientServingReport)
        assert report.attempts_total >= report.num_batches
        assert (report.retries_total + report.spike_events
                + report.crash_events + report.transient_faults) > 0
        assert 0.0 <= report.availability <= 1.0
        assert report.fleet_snapshot is not None

    def test_same_seed_same_run(self, thresholds):
        config = ServingConfig(batch_size=BATCH, threads=1)
        policy = BatchingPolicy(BATCH, max_wait_seconds=0.002)

        def run():
            engine = make_engine(thresholds, storm_policy(seed=11))
            return engine.serve_poisson(256, 2000.0, config, policy=policy,
                                        rng=11)

        first, second = run(), run()
        assert np.array_equal(first.latencies, second.latencies)
        assert first.retries_total == second.retries_total
        assert first.to_dict(0.020) == second.to_dict(0.020)

    def test_ladder_degrades_under_stash_pressure(self, thresholds):
        ladder = DegradationLadder(table_size=max(TERABYTE_SPEC.table_sizes),
                                   trigger_after=2)
        engine = make_engine(thresholds, storm_policy(seed=7, ladder=ladder))
        config = ServingConfig(batch_size=BATCH, threads=1)
        report = engine.serve_poisson(
            512, 2000.0, config,
            policy=BatchingPolicy(BATCH, max_wait_seconds=0.002), rng=7)
        assert report.degradations > 0
        for event in report.degradation_events:
            assert event.audit_passed
            assert event.to_technique != "lookup"

    def test_min_replicas_validation(self):
        with pytest.raises(ValueError, match="min_replicas"):
            ResiliencePolicy(injector=FaultInjector(), num_replicas=2,
                             min_replicas=3)

    def test_report_dict_has_no_wall_clock(self, thresholds):
        engine = make_engine(thresholds, storm_policy(seed=3))
        config = ServingConfig(batch_size=BATCH, threads=1)
        report = engine.serve_poisson(
            128, 2000.0, config,
            policy=BatchingPolicy(BATCH, max_wait_seconds=0.002), rng=3)
        digest = report.to_dict(sla_seconds=0.020)
        json.dumps(digest)  # fully serialisable
        assert "sla_violations" in digest
        assert digest["availability"] == report.availability


class TestChaosHarness:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos(seed=7, num_requests=256)

    def test_gates_pass_at_the_pinned_seed(self, report):
        assert report["gates"]["availability"]
        assert report["gates"]["degradation_audits"]
        assert report["gates"]["passed"]
        for scenario in report["scenarios"]:
            assert scenario["availability"] >= 0.99

    def test_identical_seed_identical_json(self, report):
        again = run_chaos(seed=7, num_requests=256)
        assert (json.dumps(report, sort_keys=True)
                == json.dumps(again, sort_keys=True))

    def test_degradations_stay_oblivious(self, report):
        stash = next(s for s in report["scenarios"]
                     if s["name"] == "stash-pressure")
        assert stash["degradations"], "stash scenario should degrade"
        for event in stash["degradations"]:
            assert event["to"] != "lookup"
            assert event["audit_passed"]

    def test_fault_schedule_is_embedded_and_seed_keyed(self, report):
        storm = next(s for s in report["scenarios"]
                     if s["name"] == "crash-spike-transient")
        schedule = storm["fault_schedule"]
        assert set(schedule) == {"crashes", "spikes", "transients",
                                 "stash_pressure"}
        other = run_chaos(seed=8, num_requests=256)
        other_storm = next(s for s in other["scenarios"]
                           if s["name"] == "crash-spike-transient")
        assert schedule != other_storm["fault_schedule"]

    def test_render_mentions_every_scenario(self, report):
        text = render(report)
        for scenario in report["scenarios"]:
            assert scenario["name"] in text
