"""RetryPolicy backoff math and deadline budgets."""

import pytest

from repro.resilience import DeadlineBudget, DeadlineExceeded, RetryPolicy
from repro.serving.batcher import BatchingPolicy


class TestBackoff:
    def test_exponential_growth_until_cap(self):
        policy = RetryPolicy(base_backoff_seconds=0.002,
                             backoff_multiplier=2.0,
                             max_backoff_seconds=0.010,
                             jitter_fraction=0.0)
        assert policy.backoff_seconds(0) == 0.002
        assert policy.backoff_seconds(1) == 0.004
        assert policy.backoff_seconds(2) == 0.008
        assert policy.backoff_seconds(3) == 0.010  # capped
        assert policy.backoff_seconds(10) == 0.010

    def test_jitter_scales_symmetrically(self):
        policy = RetryPolicy(base_backoff_seconds=0.010,
                             jitter_fraction=0.5)
        assert policy.backoff_seconds(0, jitter_u=0.0) == pytest.approx(0.005)
        assert policy.backoff_seconds(0, jitter_u=0.5) == pytest.approx(0.010)
        assert policy.backoff_seconds(0, jitter_u=1.0) == pytest.approx(0.015)

    def test_rejects_bad_jitter_variate(self):
        with pytest.raises(ValueError, match="jitter_u"):
            RetryPolicy().backoff_seconds(0, jitter_u=1.5)

    def test_rejects_negative_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(-1)


class TestValidation:
    def test_rejects_nonfinite_deadline(self):
        with pytest.raises(ValueError):
            RetryPolicy(deadline_seconds=float("inf"))

    def test_rejects_sub_unit_multiplier(self):
        with pytest.raises(ValueError, match="backoff_multiplier"):
            RetryPolicy(backoff_multiplier=0.5)

    def test_deadline_must_exceed_batcher_wait(self):
        policy = RetryPolicy(deadline_seconds=0.010)
        batching = BatchingPolicy(max_batch_size=32,
                                  max_wait_seconds=0.020)
        with pytest.raises(ValueError, match="max_wait_seconds"):
            policy.validate_against(batching)
        policy_ok = RetryPolicy(deadline_seconds=0.100)
        policy_ok.validate_against(batching)  # no raise


class TestDeadlineBudget:
    def test_deadline_anchors_at_arrival(self):
        policy = RetryPolicy(deadline_seconds=0.5)
        assert policy.deadline_for(1.25) == 1.75

    def test_budget_expiry(self):
        budget = DeadlineBudget(2.0)
        assert budget.remaining(1.5) == pytest.approx(0.5)
        assert not budget.expired(1.5)
        assert budget.expired(2.0)
        budget.require(1.9)  # no raise
        with pytest.raises(DeadlineExceeded):
            budget.require(2.1)
