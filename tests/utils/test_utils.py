"""Utility tests: RNG plumbing, validation, timing."""

import time

import numpy as np
import pytest

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.timing import Timer, time_callable
from repro.utils.validation import (
    check_in,
    check_non_negative,
    check_positive,
    check_power_of_two,
)


class TestNewRng:
    def test_int_seed_deterministic(self):
        assert new_rng(5).integers(1000) == new_rng(5).integers(1000)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert new_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(10**9) != b.integers(10**9)

    def test_count_validated(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []


class TestRngMixin:
    def test_lazy_and_reseedable(self):
        class Thing(RngMixin):
            pass

        thing = Thing(seed=3)
        first = thing.rng.integers(10**9)
        thing.reseed(3)
        assert thing.rng.integers(10**9) == first


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_in(self):
        check_in("x", "a", ("a", "b"))
        with pytest.raises(ValueError):
            check_in("x", "c", ("a", "b"))

    def test_check_power_of_two(self):
        check_power_of_two("x", 8)
        for bad in (0, -4, 3, 6):
            with pytest.raises(ValueError):
                check_power_of_two("x", bad)


class TestTiming:
    def test_timer_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_time_callable_median(self):
        latency = time_callable(lambda: time.sleep(0.002), repeats=3,
                                warmup=0)
        assert latency >= 0.0015

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestTimingTelemetry:
    def test_named_timer_feeds_histogram(self):
        from repro.telemetry.runtime import use_registry

        with use_registry() as registry:
            with Timer(metric="profiler.section_seconds") as timer:
                pass
        hist = registry.histogram("profiler.section_seconds")
        assert hist.count == 1
        assert hist.total == pytest.approx(timer.elapsed)

    def test_default_timer_records_nothing(self):
        from repro.telemetry.runtime import use_registry

        with use_registry() as registry:
            with Timer():
                pass
        assert registry.metrics() == {}

    def test_time_callable_records_every_repeat(self):
        from repro.telemetry.runtime import use_registry

        with use_registry() as registry:
            time_callable(lambda: None, repeats=5, warmup=2)
        hist = registry.histogram("timing.time_callable_seconds")
        assert hist.count == 5  # warmups excluded

    def test_time_callable_metric_none_skips_recording(self):
        from repro.telemetry.runtime import use_registry

        with use_registry() as registry:
            time_callable(lambda: None, repeats=3, warmup=0, metric=None)
        assert registry.metrics() == {}
