"""Public-API hygiene: every package imports and every __all__ name exists."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.oblivious",
    "repro.oram",
    "repro.sidechannel",
    "repro.costmodel",
    "repro.embedding",
    "repro.models",
    "repro.hybrid",
    "repro.data",
    "repro.metrics",
    "repro.serving",
    "repro.resilience",
    "repro.cluster",
    "repro.cache",
    "repro.training",
    "repro.experiments",
    "repro.experiments.registry",
    "repro.telemetry",
    "repro.utils",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


@pytest.mark.parametrize("package", [p for p in PACKAGES
                                     if p not in ("repro",
                                                  "repro.experiments.registry")])
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


def test_no_duplicate_all_entries():
    for package in PACKAGES:
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", [])
        assert len(exported) == len(set(exported)), package


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_registry_covers_every_experiment_module():
    """Every fig/table module under repro.experiments is registered."""
    import os

    import repro.experiments as experiments_package
    from repro.experiments.registry import EXPERIMENTS

    directory = os.path.dirname(experiments_package.__file__)
    modules = [name for name in os.listdir(directory)
               if name.startswith(("fig", "table", "llm_", "autoscale_",
                                   "chaos_", "cluster_", "migration_",
                                   "lazy_", "cache_", "train_"))
               and name.endswith(".py")]
    assert len(modules) == len(EXPERIMENTS)
