"""Perplexity helpers and whole-model footprint accounting."""

import math

import pytest

from repro.costmodel.latency import (
    DLRM_DHE_UNIFORM_16,
    LLM_DHE_GPT2_MEDIUM,
)
from repro.metrics.footprint import (
    MB,
    dlrm_embedding_footprints,
    gpt2_footprint,
)
from repro.metrics.perplexity import (
    bits_per_token,
    perplexity_from_loss,
    sequence_perplexity,
)


class TestPerplexity:
    def test_uniform_distribution(self):
        # NLL of uniform over V = log V -> perplexity V.
        assert perplexity_from_loss(math.log(50)) == pytest.approx(50)

    def test_zero_loss(self):
        assert perplexity_from_loss(0.0) == 1.0

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            perplexity_from_loss(-0.1)

    def test_sequence_perplexity(self):
        log_probs = [math.log(0.5)] * 10
        assert sequence_perplexity(log_probs) == pytest.approx(2.0)

    def test_sequence_rejects_positive_logprob(self):
        with pytest.raises(ValueError):
            sequence_perplexity([0.1])

    def test_bits_per_token(self):
        assert bits_per_token(math.log(2)) == pytest.approx(1.0)


class TestDlrmFootprints:
    @pytest.fixture
    def report(self):
        sizes = (100, 5000, 10**6)
        return dlrm_embedding_footprints(sizes, 16, DLRM_DHE_UNIFORM_16,
                                         hybrid_threshold=5000)

    def test_ordering(self, report):
        assert report.tree_oram > report.table
        assert report.dhe_uniform < report.table
        assert report.hybrid_varied <= report.dhe_uniform

    def test_hybrid_counts_cheaper_representation(self, report):
        # Features <= threshold ship the raw table; above, the DHE stack.
        raw_small = (100 + 5000) * 16 * 4
        assert report.hybrid_uniform >= raw_small

    def test_relative_to_table(self, report):
        rel = report.relative_to_table()
        assert rel["table"] == 1.0
        assert rel["tree_oram"] > 2.5

    def test_as_mb(self, report):
        assert report.as_mb()["table"] == pytest.approx(report.table / MB)


class TestGpt2Footprint:
    @pytest.fixture
    def footprint(self):
        return gpt2_footprint(50257, 1024, 24, 1024, LLM_DHE_GPT2_MEDIUM)

    def test_paper_table_size(self, footprint):
        """§VI-D3: embedding table 196.3 MB."""
        assert footprint.table / MB == pytest.approx(196.3, rel=0.02)

    def test_paper_oram_size(self, footprint):
        """§VI-D3: ORAM representation 513.6 MB."""
        assert footprint.oram_table / MB == pytest.approx(513.6, rel=0.1)

    def test_paper_dhe_size(self, footprint):
        """§VI-D3: DHE adds 56.0 MB."""
        assert footprint.dhe / MB == pytest.approx(56.0, rel=0.1)

    def test_paper_model_total(self, footprint):
        """§VI-D3: GPT-2 medium = 1353.5 MB with the table."""
        assert footprint.total("table") / MB == pytest.approx(1353.5,
                                                              rel=0.05)

    def test_dhe_keeps_tied_head_table(self, footprint):
        assert footprint.total("dhe") == \
            footprint.base_model + footprint.table + footprint.dhe

    def test_unknown_scheme(self, footprint):
        with pytest.raises(ValueError):
            footprint.total("magic")
