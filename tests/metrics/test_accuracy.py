"""Accuracy/AUC/log-loss metric tests."""

import numpy as np
import pytest

from repro.metrics.accuracy import binary_accuracy, log_loss, roc_auc


class TestBinaryAccuracy:
    def test_perfect(self):
        labels = np.array([0.0, 1.0, 1.0])
        logits = np.array([-5.0, 5.0, 5.0])
        assert binary_accuracy(labels, logits) == 1.0

    def test_all_wrong(self):
        assert binary_accuracy(np.array([1.0, 0.0]),
                               np.array([-5.0, 5.0])) == 0.0

    def test_threshold_in_logit_space(self):
        labels = np.array([1.0])
        assert binary_accuracy(labels, np.array([0.1])) == 1.0
        assert binary_accuracy(labels, np.array([-0.1])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary_accuracy(np.zeros(3), np.zeros(4))

    def test_empty(self):
        with pytest.raises(ValueError):
            binary_accuracy(np.array([]), np.array([]))


class TestRocAuc:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1], dtype=float)
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 1.0

    def test_inverted(self):
        labels = np.array([1, 1, 0, 0], dtype=float)
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 0.0

    def test_random_scores_near_half(self, rng):
        labels = (rng.random(5000) > 0.5).astype(float)
        scores = rng.random(5000)
        assert abs(roc_auc(labels, scores) - 0.5) < 0.05

    def test_ties_averaged(self):
        labels = np.array([0, 1], dtype=float)
        scores = np.array([0.5, 0.5])
        assert roc_auc(labels, scores) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(4), np.random.random(4))

    def test_invariant_to_monotone_transform(self, rng):
        labels = (rng.random(200) > 0.5).astype(float)
        scores = rng.normal(size=200)
        a = roc_auc(labels, scores)
        b = roc_auc(labels, 3 * scores + 7)
        assert a == pytest.approx(b)


class TestLogLoss:
    def test_matches_nn_loss(self, rng):
        from repro.nn.losses import bce_with_logits
        from repro.nn.tensor import Tensor

        labels = (rng.random(50) > 0.5).astype(float)
        logits = rng.normal(size=50)
        assert log_loss(labels, logits) == pytest.approx(
            bce_with_logits(Tensor(logits), labels).item())

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            log_loss(np.zeros(2), np.zeros(3))
