"""Exporters: JSON, Prometheus text exposition, console summary."""

import json

from repro.telemetry.export import (
    sanitize_metric_name,
    summary_table,
    to_json,
    to_prometheus,
    write_json,
)
from repro.telemetry.metrics import MetricsRegistry


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("oram.accesses_total", "ORAM accesses").inc(7)
    registry.gauge("oram.stash_occupancy").set(3)
    hist = registry.histogram("serving.latency_seconds",
                              buckets=[0.001, 0.01, 0.1])
    for value in (0.0005, 0.005, 0.005, 0.5):
        hist.observe(value)
    return registry


class TestSanitize:
    def test_dots_flattened(self):
        assert sanitize_metric_name("oram.accesses_total") == \
            "oram_accesses_total"

    def test_prefix_and_leading_digit(self):
        assert sanitize_metric_name("lat", "repro") == "repro_lat"
        assert sanitize_metric_name("5xx") == "_5xx"


class TestJson:
    def test_round_trip_with_extra(self):
        payload = json.loads(to_json(build_registry(),
                                     extra={"run": "fig13"}))
        assert payload["counters"]["oram.accesses_total"] == 7.0
        assert payload["run"] == "fig13"
        assert payload["histograms"]["serving.latency_seconds"]["count"] == 4

    def test_write_json(self, tmp_path):
        path = tmp_path / "telemetry.json"
        write_json(build_registry(), str(path), include_spans=True)
        payload = json.loads(path.read_text())
        assert payload["gauges"]["oram.stash_occupancy"] == 3.0
        assert payload["spans"]["records"] == []


class TestPrometheus:
    def test_exposition_format(self):
        text = to_prometheus(build_registry())
        lines = text.splitlines()
        assert "# TYPE repro_oram_accesses_total counter" in lines
        assert "repro_oram_accesses_total 7" in lines
        assert "# TYPE repro_oram_stash_occupancy gauge" in lines
        assert "# TYPE repro_serving_latency_seconds histogram" in lines
        assert "# HELP repro_oram_accesses_total ORAM accesses" in lines

    def test_histogram_buckets_cumulative(self):
        text = to_prometheus(build_registry())
        lines = text.splitlines()
        assert 'repro_serving_latency_seconds_bucket{le="0.001"} 1' in lines
        assert 'repro_serving_latency_seconds_bucket{le="0.01"} 3' in lines
        assert 'repro_serving_latency_seconds_bucket{le="0.1"} 3' in lines
        assert 'repro_serving_latency_seconds_bucket{le="+Inf"} 4' in lines
        assert "repro_serving_latency_seconds_count 4" in lines

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestSummaryTable:
    def test_rows_and_span_footer(self):
        registry = build_registry()
        with registry.span("work"):
            pass
        text = summary_table(registry)
        assert "== telemetry summary ==" in text
        assert "oram.accesses_total" in text
        assert "counter" in text and "gauge" in text and "histogram" in text
        assert "spans: 1 recorded, 0 dropped" in text

    def test_empty_histogram_renders_dashes(self):
        registry = MetricsRegistry()
        registry.histogram("empty")
        lines = summary_table(registry).splitlines()
        (row,) = [line for line in lines if line.startswith("empty")]
        assert "histogram" in row and "0" in row
