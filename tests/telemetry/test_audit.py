"""The leakage auditor: the paper's security claim as a runnable gate."""

import json

import pytest

from repro.oblivious.trace import AccessEvent
from repro.telemetry.audit import (
    AuditSubject,
    LeakageAuditor,
    MODE_EXACT,
    MODE_STRUCTURAL,
    histogram_divergence,
    main,
    standard_audit,
    standard_subjects,
    total_variation,
    trace_structure,
)
from repro.telemetry.metrics import MetricsRegistry


def event(op, region, address):
    return AccessEvent(op=op, region=region, address=address)


class TestTraceMath:
    def test_trace_structure_erases_addresses(self):
        trace = [event("read", "table", 3), event("write", "stash", 9)]
        assert trace_structure(trace) == [("read", "table"),
                                          ("write", "stash")]

    def test_total_variation_bounds(self):
        assert total_variation({}, {}) == 0.0
        assert total_variation({1: 4}, {}) == 1.0
        assert total_variation({1: 2}, {1: 7}) == 0.0
        assert total_variation({1: 1}, {2: 1}) == 1.0
        assert total_variation({1: 1, 2: 1}, {1: 1}) == pytest.approx(0.5)

    def test_histogram_divergence_worst_region(self):
        same = [event("read", "a", 0)]
        shifted = [event("read", "a", 1)]
        assert histogram_divergence([same, same]) == 0.0
        assert histogram_divergence([same, shifted]) == 1.0
        assert histogram_divergence([same, same, shifted]) == 1.0

    def test_divergence_sees_missing_region(self):
        with_b = [event("read", "a", 0), event("read", "b", 0)]
        without_b = [event("read", "a", 0)]
        assert histogram_divergence([with_b, without_b]) == 1.0


class TestAuditSubject:
    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            AuditSubject("x", lambda t, s: None, [[0], [1]], mode="fuzzy")

    def test_needs_two_secrets(self):
        with pytest.raises(ValueError, match=">= 2 secrets"):
            AuditSubject("x", lambda t, s: None, [[0]])


class TestLeakageAuditor:
    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            LeakageAuditor(divergence_threshold=1.5)

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            LeakageAuditor(registry=MetricsRegistry()).run([])

    def test_oblivious_subject_passes(self):
        def run(tracer, secret):
            for address in range(4):  # secret-independent sweep
                tracer.record("read", "table", address)

        registry = MetricsRegistry()
        auditor = LeakageAuditor(registry=registry)
        finding = auditor.audit(AuditSubject("sweep", run, [[0], [3]]))
        assert finding.passed and not finding.leak_detected
        assert finding.exact_equivalent and finding.divergence == 0.0
        assert registry.counter("audit.subjects_total").value == 1.0
        assert registry.counter("audit.leaks_detected_total").value == 0.0

    def test_leaky_subject_detected(self):
        def run(tracer, secret):
            for index in secret:  # addresses are the secret
                tracer.record("read", "table", int(index))

        registry = MetricsRegistry()
        auditor = LeakageAuditor(registry=registry)
        subject = AuditSubject("leaky", run, [[0, 0], [3, 3]],
                               expect_oblivious=False)
        finding = auditor.audit(subject)
        assert finding.leak_detected and finding.passed
        assert finding.divergence == pytest.approx(1.0)
        # same subject expected oblivious -> audit failure
        bad = AuditSubject("leaky", run, [[0, 0], [3, 3]])
        assert not auditor.audit(bad).passed
        assert registry.counter("audit.failures_total").value == 1.0

    def test_structural_mode_tolerates_randomised_addresses(self):
        def run(tracer, secret):
            # same (op, region) shape, secret-dependent addresses but
            # heavily overlapping histograms
            for index in secret:
                tracer.record("read", "tree", int(index) % 2)

        subject = AuditSubject("randomised", run,
                               [[0, 1, 0, 1], [1, 0, 1, 0]],
                               mode=MODE_STRUCTURAL)
        finding = LeakageAuditor(registry=MetricsRegistry()).audit(subject)
        assert finding.trace_equivalent and not finding.exact_equivalent
        assert finding.passed


class TestStandardAudit:
    def test_every_expectation_holds(self):
        registry = MetricsRegistry()
        report = standard_audit(registry=registry, sequence_length=8)
        assert report.passed
        names = [f.subject for f in report.findings]
        assert names == ["linear-scan", "path-oram", "circuit-oram",
                         "sqrt-oram", "dhe", "table-lookup"]
        assert registry.gauge("audit.last_run_passed").value == 1.0

    def test_deterministic_defences_exactly_equivalent(self):
        report = standard_audit(registry=MetricsRegistry(),
                                sequence_length=8)
        for name in ("linear-scan", "dhe"):
            finding = report.finding(name)
            assert finding.mode == MODE_EXACT
            assert finding.exact_equivalent
            assert finding.divergence == 0.0

    def test_orams_structural_within_budget(self):
        report = standard_audit(registry=MetricsRegistry(),
                                sequence_length=8)
        for name in ("path-oram", "circuit-oram", "sqrt-oram"):
            finding = report.finding(name)
            assert finding.mode == MODE_STRUCTURAL
            assert finding.trace_equivalent
            assert not finding.exact_equivalent  # randomised paths differ
            assert finding.divergence < 0.5

    def test_table_lookup_flagged(self):
        report = standard_audit(registry=MetricsRegistry(),
                                sequence_length=8)
        finding = report.finding("table-lookup")
        assert finding.leak_detected
        assert finding.divergence == pytest.approx(1.0)
        assert finding.passed  # the leak was expected

    def test_render_and_finding_lookup(self):
        report = standard_audit(registry=MetricsRegistry(),
                                sequence_length=8)
        text = report.render()
        assert "overall: PASS" in text
        assert "LEAK" in text  # the table lookup row
        with pytest.raises(KeyError):
            report.finding("nope")

    def test_subject_kwargs_shrink_workload(self):
        subjects = standard_subjects(num_embeddings=8, sequence_length=4)
        assert all(len(secret) == 4
                   for subject in subjects for secret in subject.secrets)


class TestCli:
    def test_main_passes_and_writes_json(self, tmp_path, capsys):
        path = tmp_path / "audit.json"
        exit_code = main(["--json", str(path), "--length", "6"])
        assert exit_code == 0
        assert "overall: PASS" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["audit"]["passed"] is True
        assert len(payload["audit"]["findings"]) == 6
        assert payload["counters"]["audit.subjects_total"] == 6.0
