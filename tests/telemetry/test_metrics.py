"""Instruments and the registry: counters, gauges, histograms, null twin."""

import math

import numpy as np
import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_latency_buckets,
    power_of_two_buckets,
)


class TestBuckets:
    def test_default_latency_buckets_span_us_to_seconds(self):
        bounds = default_latency_buckets()
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] == pytest.approx(10.0)
        assert list(bounds) == sorted(bounds)

    def test_power_of_two_buckets(self):
        assert power_of_two_buckets(3) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            power_of_two_buckets(-1)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_cannot_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc(1)
        assert gauge.value == pytest.approx(4.0)

    def test_set_max_is_high_water(self):
        gauge = Gauge("g")
        gauge.set_max(3)
        gauge.set_max(1)
        assert gauge.value == pytest.approx(3.0)


class TestHistogramValidation:
    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", buckets=())

    def test_rejects_non_positive_and_non_finite(self):
        for bad in ([0.0, 1.0], [-1.0, 1.0], [1.0, math.inf]):
            with pytest.raises(ValueError, match="positive and finite"):
                Histogram("h", buckets=bad)

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=[1.0, 1.0, 2.0])


class TestHistogram:
    def test_counts_sum_min_max(self):
        hist = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 9.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(14.0)
        assert hist.min == pytest.approx(0.5)
        assert hist.max == pytest.approx(9.0)
        assert hist.mean == pytest.approx(3.5)
        # overflow bucket caught the 9.0
        assert int(hist.bucket_counts[-1]) == 1

    def test_observe_many_matches_observe(self):
        values = np.random.default_rng(0).uniform(1e-5, 5.0, size=500)
        one_by_one = Histogram("a")
        vectorised = Histogram("b")
        for value in values:
            one_by_one.observe(value)
        vectorised.observe_many(values)
        assert one_by_one.count == vectorised.count
        assert one_by_one.total == pytest.approx(vectorised.total)
        assert np.array_equal(one_by_one.bucket_counts,
                              vectorised.bucket_counts)
        assert vectorised.p95 == pytest.approx(one_by_one.p95)

    def test_observe_many_empty_is_noop(self):
        hist = Histogram("h")
        hist.observe_many([])
        assert hist.count == 0

    def test_quantiles_clamped_by_observed_range(self):
        hist = Histogram("h", buckets=[1.0, 10.0, 100.0])
        hist.observe(5.0)
        hist.observe(6.0)
        # both land in the (1, 10] bucket; interpolation must not escape
        # the observed [5, 6] range
        assert 5.0 <= hist.p50 <= 6.0
        assert 5.0 <= hist.p99 <= 6.0

    def test_quantile_of_uniform_samples_is_close(self):
        hist = Histogram("h")
        hist.observe_many(np.linspace(1e-4, 1e-2, 1000))
        assert hist.quantile(0.5) == pytest.approx(5e-3, rel=0.5)

    def test_quantile_validation_and_empty(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.mean)

    def test_to_dict(self):
        hist = Histogram("h", buckets=[1.0, 2.0])
        payload = hist.to_dict()
        assert payload["count"] == 0
        assert payload["p99"] is None
        hist.observe(1.5)
        payload = hist.to_dict()
        assert payload["count"] == 1
        assert payload["buckets"] == {"1": 0, "2": 1}
        assert payload["overflow"] == 0


class TestMetricsRegistry:
    def test_create_or_get_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_observe_convenience(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.5)
        assert registry.histogram("lat").count == 1

    def test_span_duration_feeds_histogram(self):
        registry = MetricsRegistry()
        with registry.span("work"):
            pass
        assert registry.histogram("span.work.seconds").count == 1
        assert len(registry.spans) == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.observe("h", 0.1)
        with registry.span("s"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["counters"] == {"c": 1.0}
        assert snapshot["gauges"] == {"g": 2.0}
        assert set(snapshot["histograms"]) == {"h", "span.s.seconds"}
        assert snapshot["spans"]["recorded"] == 1
        assert "records" not in snapshot["spans"]
        with_spans = registry.snapshot(include_spans=True)
        assert with_spans["spans"]["records"][0]["name"] == "s"

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        with registry.span("s"):
            pass
        registry.reset()
        assert registry.metrics() == {}
        assert len(registry.spans) == 0


class TestNullRegistry:
    def test_disabled_and_inert(self):
        registry = NullRegistry()
        assert registry.enabled is False
        registry.counter("c").inc()
        registry.gauge("g").set(9)
        registry.gauge("g").set_max(9)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe_many([1.0, 2.0])
        registry.observe("h", 1.0)
        with registry.span("s", tag=1) as span:
            span.set_attribute("k", "v")
        snapshot = registry.snapshot()
        assert snapshot == {"enabled": False, "counters": {}, "gauges": {},
                            "histograms": {},
                            "spans": {"recorded": 0, "dropped": 0}}

    def test_shared_instruments(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.histogram("a") is registry.histogram("b")
