"""Span tracing: nesting, attributes, bounding, and the global runtime."""

import threading

import pytest

from repro.telemetry import runtime
from repro.telemetry.metrics import MetricsRegistry, NullRegistry
from repro.telemetry.runtime import (
    NULL_REGISTRY,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)
from repro.telemetry.spans import NULL_SPAN, SpanCollector


class TestSpanNesting:
    def test_parent_child_depth(self):
        collector = SpanCollector()
        with collector.start("outer", {}):
            with collector.start("inner", {}):
                pass
        inner, outer = collector.records  # inner closes first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.parent_id is None
        assert outer.depth == 0
        assert collector.children(outer.span_id) == [inner]

    def test_siblings_share_parent(self):
        collector = SpanCollector()
        with collector.start("outer", {}):
            with collector.start("a", {}):
                pass
            with collector.start("b", {}):
                pass
        a, b = collector.by_name("a")[0], collector.by_name("b")[0]
        assert a.parent_id == b.parent_id
        assert a.depth == b.depth == 1

    def test_attributes_and_set_attribute(self):
        collector = SpanCollector()
        with collector.start("s", {"k": 1}) as span:
            span.set_attribute("extra", "v")
        record = collector.records[0]
        assert record.attributes == {"k": 1, "extra": "v"}

    def test_exception_still_records_and_unwinds(self):
        collector = SpanCollector()
        with pytest.raises(RuntimeError):
            with collector.start("outer", {}):
                with collector.start("inner", {}):
                    raise RuntimeError("boom")
        assert [r.name for r in collector.records] == ["inner", "outer"]
        # the stack fully unwound: a new span is a root again
        with collector.start("fresh", {}):
            pass
        assert collector.by_name("fresh")[0].depth == 0

    def test_durations_ordered(self):
        collector = SpanCollector()
        with collector.start("outer", {}):
            with collector.start("inner", {}):
                pass
        inner, outer = collector.records
        assert outer.duration_seconds >= inner.duration_seconds >= 0.0

    def test_threads_get_independent_stacks(self):
        collector = SpanCollector()
        done = threading.Event()

        def worker():
            with collector.start("worker-root", {}):
                done.wait(timeout=5)

        thread = threading.Thread(target=worker)
        with collector.start("main-root", {}):
            thread.start()
            done.set()
            thread.join()
        worker_root = collector.by_name("worker-root")[0]
        assert worker_root.parent_id is None
        assert worker_root.depth == 0


class TestSpanCollectorBounds:
    def test_max_spans_validated(self):
        with pytest.raises(ValueError):
            SpanCollector(max_spans=0)

    def test_drops_beyond_capacity(self):
        collector = SpanCollector(max_spans=2)
        for _ in range(5):
            with collector.start("s", {}):
                pass
        assert len(collector) == 2
        assert collector.dropped == 3

    def test_clear_resets(self):
        collector = SpanCollector(max_spans=1)
        for _ in range(3):
            with collector.start("s", {}):
                pass
        collector.clear()
        assert len(collector) == 0
        assert collector.dropped == 0

    def test_duration_totals(self):
        collector = SpanCollector()
        for _ in range(3):
            with collector.start("s", {}):
                pass
        count, total = collector.duration_totals()["s"]
        assert count == 3
        assert total >= 0.0

    def test_to_dicts_limit(self):
        collector = SpanCollector()
        for _ in range(4):
            with collector.start("s", {}):
                pass
        assert len(collector.to_dicts(limit=2)) == 2
        assert len(collector.to_dicts()) == 4


class TestNullSpan:
    def test_reusable_noop(self):
        with NULL_SPAN as span:
            assert span.set_attribute("k", 1) is span


class TestRuntime:
    def test_set_registry_swaps_and_restores(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert get_registry() is registry
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_set_registry_type_checked(self):
        with pytest.raises(TypeError):
            set_registry(object())

    def test_enable_disable(self):
        original = get_registry()
        try:
            fresh = enable()
            assert get_registry() is fresh and fresh.enabled
            assert disable() is fresh
            assert get_registry() is NULL_REGISTRY
            assert isinstance(get_registry(), NullRegistry)
        finally:
            set_registry(original)

    def test_use_registry_scopes(self):
        original = get_registry()
        with use_registry() as scoped:
            assert get_registry() is scoped
            assert scoped is not original
        assert get_registry() is original

    def test_module_proxies_hit_active_registry(self):
        with use_registry() as scoped:
            runtime.counter("c").inc()
            runtime.gauge("g").set(1)
            runtime.observe("h", 0.2)
            with runtime.span("s"):
                pass
        snapshot = scoped.snapshot()
        assert snapshot["counters"]["c"] == 1.0
        assert snapshot["gauges"]["g"] == 1.0
        assert "h" in snapshot["histograms"]
        assert snapshot["spans"]["recorded"] == 1
