"""Serving-simulator tests: SLA accounting and configuration choice."""

import pytest

from repro.costmodel.latency import DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC
from repro.hybrid import OfflineProfiler, build_threshold_database
from repro.serving import SecureDlrmServer, ServingConfig

BATCHES = (1, 32, 128)
THREADS = (1, 8)


@pytest.fixture(scope="module")
def server():
    profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
    profile = profiler.profile(techniques=("scan", "dhe-uniform"),
                               dims=(64,), batches=BATCHES,
                               threads_list=THREADS)
    thresholds = build_threshold_database(profile, dims=(64,),
                                          batches=BATCHES,
                                          threads_list=THREADS)
    return SecureDlrmServer(TERABYTE_SPEC.table_sizes, 64,
                            DLRM_DHE_UNIFORM_64, thresholds)


class TestServingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(batch_size=0)
        with pytest.raises(ValueError):
            ServingConfig(sla_seconds=0)


class TestAllocation:
    def test_allocation_covers_all_features(self, server):
        scans, dhes = server.allocation(ServingConfig(batch_size=32,
                                                      threads=1))
        assert scans + dhes == 26
        assert scans > 0 and dhes > 0

    def test_more_threads_more_scans(self, server):
        low, _ = server.allocation(ServingConfig(batch_size=32, threads=1))
        high, _ = server.allocation(ServingConfig(batch_size=32, threads=8))
        assert high >= low


class TestServe:
    def test_report_statistics(self, server):
        report = server.serve(100, ServingConfig(batch_size=32, threads=1))
        assert report.num_batches == 4
        assert report.latencies.shape == (100,)
        assert report.p50 == pytest.approx(report.p95)  # uniform batches
        assert 0 <= report.sla_attainment(0.020) <= 1

    def test_meets_paper_sla_at_batch32(self, server):
        """§VI-B3: the hybrid satisfies typical (20-100 ms) SLA targets."""
        report = server.serve(256, ServingConfig(batch_size=32, threads=1))
        assert report.sla_attainment(0.020) == 1.0

    def test_larger_batches_trade_latency_for_throughput(self, server):
        small = server.serve(512, ServingConfig(batch_size=32, threads=1))
        large = server.serve(512, ServingConfig(batch_size=128, threads=1))
        assert large.p50 > small.p50
        assert large.throughput() > small.throughput()

    def test_invalid_request_count(self, server):
        with pytest.raises(ValueError):
            server.serve(0, ServingConfig())


class TestBestConfiguration:
    def test_prefers_highest_throughput_within_sla(self, server):
        candidates = [ServingConfig(batch_size=b, threads=1,
                                    sla_seconds=0.040)
                      for b in BATCHES]
        config, report = server.best_configuration(candidates)
        assert report.sla_attainment(config.sla_seconds) == 1.0
        # With a generous SLA the biggest batch wins on throughput.
        assert config.batch_size == max(
            c.batch_size for c in candidates
            if server.serve(64, c).sla_attainment(c.sla_seconds) == 1.0)

    def test_raises_when_nothing_fits(self, server):
        impossible = [ServingConfig(batch_size=128, threads=1,
                                    sla_seconds=1e-6)]
        with pytest.raises(RuntimeError):
            server.best_configuration(impossible)

    def test_empty_candidates(self, server):
        with pytest.raises(ValueError):
            server.best_configuration([])
