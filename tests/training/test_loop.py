"""TrainingLoop: determinism, loss decrease, batched/sequential parity."""

import numpy as np
import pytest

from repro.training import TrainingConfig, TrainingLoop, build_training_loop

SMALL = dict(steps=6, batch_size=8, table_sizes=(32, 32), embedding_dim=4,
             bottom_hidden=8, top_hidden=8)


def run_small(seed=0, **overrides):
    loop = build_training_loop(seed=seed, **{**SMALL, **overrides})
    return loop, loop.run()


class TestConfig:
    def test_defaults_validate(self):
        TrainingConfig()

    @pytest.mark.parametrize("bad", [
        dict(steps=0), dict(batch_size=0), dict(scheme="ring"),
        dict(optimizer="rmsprop"), dict(dense_lr=0.0),
        dict(embedding_lr=-1.0), dict(arrival_rate_rps=0.0)])
    def test_invalid_fields_raise(self, bad):
        with pytest.raises(ValueError):
            TrainingConfig(**bad)

    def test_to_dict_round_trips_core_fields(self):
        config = TrainingConfig(scheme="circuit", batched=False)
        payload = config.to_dict()
        assert payload["scheme"] == "circuit"
        assert payload["batched"] is False


class TestRun:
    def test_runs_every_step_and_records_metrics(self):
        _, report = run_small()
        assert [m.step for m in report.steps] == list(range(SMALL["steps"]))
        for metrics in report.steps:
            assert np.isfinite(metrics.loss)
            assert metrics.oram_accesses > 0
            assert metrics.posmap_ops > 0
            assert metrics.bucket_io > 0
            assert metrics.embedding_grad_norm >= 0.0

    def test_each_step_serves_batch_size_rows_per_table(self):
        loop, report = run_small()
        tables = len(loop.embeddings)
        # Forward + gradient write-back: two batched accesses per table.
        expected = 2 * tables * SMALL["batch_size"]
        assert all(m.oram_accesses == expected for m in report.steps)

    def test_loss_decreases(self):
        _, report = run_small(steps=16, batch_size=16)
        first, last = report.loss_window_means()
        assert last < first

    def test_same_seed_is_deterministic(self):
        loop_a, report_a = run_small(seed=3)
        loop_b, report_b = run_small(seed=3)
        assert report_a.losses == report_b.losses
        for weights_a, weights_b in zip(loop_a.table_weights(),
                                        loop_b.table_weights()):
            np.testing.assert_array_equal(weights_a, weights_b)

    def test_different_seeds_differ(self):
        _, report_a = run_small(seed=0)
        _, report_b = run_small(seed=1)
        assert report_a.losses != report_b.losses

    @pytest.mark.parametrize("scheme", ["path", "circuit"])
    def test_batched_matches_sequential_exactly(self, scheme):
        loop_batched, report_batched = run_small(scheme=scheme, batched=True)
        loop_seq, report_seq = run_small(scheme=scheme, batched=False)
        assert report_batched.losses == report_seq.losses
        for weights_a, weights_b in zip(loop_batched.table_weights(),
                                        loop_seq.table_weights()):
            np.testing.assert_array_equal(weights_a, weights_b)

    def test_batched_amortizes_posmap_ops(self):
        _, report_batched = run_small(batched=True)
        _, report_seq = run_small(batched=False)
        ratio = (report_seq.posmap_ops_per_access()
                 / report_batched.posmap_ops_per_access())
        assert ratio >= 1.5

    def test_sgd_optimizer_arm(self):
        _, report = run_small(optimizer="sgd", dense_lr=0.05)
        assert len(report.losses) == SMALL["steps"]

    def test_report_to_dict_is_json_shaped(self):
        import json

        _, report = run_small()
        payload = report.to_dict()
        json.dumps(payload)  # must serialize without casting help
        assert payload["summary"]["total_accesses"] == report.total_accesses()
        assert len(payload["steps"]) == SMALL["steps"]


class TestBatcherWiring:
    def test_lookahead_hook_saw_every_training_batch(self):
        loop, report = run_small()
        assert len(loop._formed) == len(report.steps)
        for batch, ids in loop._formed:
            assert ids.shape == (SMALL["batch_size"],
                                 len(loop.config.table_sizes))
            assert batch.last - batch.first == SMALL["batch_size"]

    def test_announcements_are_all_consumed(self):
        loop, _ = run_small()
        assert all(emb._announced is None for emb in loop.embeddings)
