"""repro.training.bench: gates, determinism, CLI exit codes."""

import json

import pytest

from repro.training import bench


@pytest.fixture(scope="module")
def report():
    return bench.run_bench(seed=0)


class TestGates:
    def test_all_gates_pass(self, report):
        gates = report["gates"]
        assert gates["passed"]
        failing = [name for name, ok in gates.items() if not ok]
        assert failing == []

    def test_both_schemes_reported(self, report):
        assert set(report["schemes"]) == set(bench.SCHEMES)
        for data in report["schemes"].values():
            assert data["value_parity"]
            assert data["posmap_amortization"] >= bench.POSMAP_AMORTIZATION_MIN

    def test_bucket_io_mins_are_per_scheme(self, report):
        for scheme, data in report["schemes"].items():
            assert (data["bucket_io_amortization"]
                    >= bench.BUCKET_IO_AMORTIZATION_MIN[scheme])

    def test_audit_covers_plan_memory_and_leaky_subjects(self, report):
        names = {f["subject"] for f in report["audit"]["findings"]}
        expected = (set(bench._PLAN_SUBJECTS) | set(bench._MEMORY_SUBJECTS)
                    | {bench._LEAKY_SUBJECT})
        assert expected <= names


class TestDeterminism:
    def test_report_serializes_byte_identically(self, report):
        again = bench.run_bench(seed=0)
        dump = lambda r: json.dumps(r, indent=2, sort_keys=True)  # noqa: E731
        assert dump(report) == dump(again)

    def test_render_is_deterministic_and_shows_verdicts(self, report):
        text = bench.render(report)
        assert text == bench.render(report)
        assert "loss_decrease=PASS" in text
        assert "leak_detector_teeth=PASS" in text
        for scheme in bench.SCHEMES:
            assert scheme in text


class TestCli:
    def test_main_exits_zero_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "train.json"
        code = bench.main(["--seed", "0", "--json", str(out), "--no-timing"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "gates:" in captured
        assert "wall-clock" not in captured
        payload = json.loads(out.read_text())
        assert payload["gates"]["passed"]
        assert payload["seed"] == 0
