"""OnlineOramEmbedding: forward, oblivious gradient write-back, announce."""

import numpy as np
import pytest

from repro.nn.losses import bce_with_logits
from repro.nn.tensor import Tensor, no_grad
from repro.oram import CircuitORAM, PathORAM
from repro.training import OnlineOramEmbedding

N, DIM = 32, 4


def make_table(oram_class=PathORAM, seed=0, weight=None, **kwargs):
    return OnlineOramEmbedding(N, DIM, oram_class=oram_class,
                               weight=weight, rng=seed, **kwargs)


def fixed_weight():
    return np.arange(N * DIM, dtype=np.float64).reshape(N, DIM)


class TestForward:
    def test_rows_match_the_table(self):
        table = make_table(weight=fixed_weight())
        out = table(np.array([3, 7, 3]))
        np.testing.assert_array_equal(out.data, fixed_weight()[[3, 7, 3]])

    def test_multidim_indices_keep_shape(self):
        table = make_table(weight=fixed_weight())
        out = table(np.array([[1, 2], [3, 4]]))
        assert out.data.shape == (2, 2, DIM)

    def test_default_weight_is_seeded_normal(self):
        a = make_table(seed=5)
        b = make_table(seed=5)
        np.testing.assert_array_equal(a.dump_weights(), b.dump_weights())

    def test_eval_mode_forward_requires_no_grad(self):
        table = make_table()
        table.eval()
        out = table(np.array([1, 2]))
        assert not out.requires_grad
        assert table._pending is None

    def test_no_grad_forward_requires_no_grad(self):
        table = make_table()
        table.train()
        with no_grad():
            out = table(np.array([1, 2]))
        assert not out.requires_grad


class TestGradientWriteback:
    def test_sgd_step_matches_dense_reference(self):
        lr = 0.1
        indices = np.array([3, 7, 3, 0])   # duplicate on purpose
        table = make_table(weight=fixed_weight())
        table.train()
        out = table(indices)
        grad = np.ones((4, DIM))
        (out * Tensor(grad)).sum().backward()
        table.apply_gradients(lr)

        # Dense reference: scatter-add of the row gradients, one step.
        expected = fixed_weight()
        for row, g in zip(indices, grad):
            expected[row] -= lr * g
        np.testing.assert_allclose(table.dump_weights(), expected)

    def test_duplicate_gradients_accumulate(self):
        lr = 0.5
        table = make_table(weight=fixed_weight())
        table.train()
        out = table(np.array([9, 9, 9]))
        (out.sum()).backward()   # d/drow = 1 per occurrence
        table.apply_gradients(lr)
        np.testing.assert_allclose(table.dump_weights()[9],
                                   fixed_weight()[9] - lr * 3.0)

    def test_write_batch_uses_same_slot_list_as_forward(self):
        table = make_table(weight=fixed_weight())
        table.train()
        indices = np.array([5, 5, 11, 5])
        out = table(indices)
        accesses_after_forward = table.oram.stats.accesses
        out.sum().backward()
        table.apply_gradients(0.1)
        # The gradient write-back is one batch of exactly the forward's
        # size — multiplicity never changes the access count.
        assert (table.oram.stats.accesses
                == accesses_after_forward + len(indices))

    def test_returns_gradient_norm(self):
        table = make_table(weight=fixed_weight())
        table.train()
        out = table(np.array([2, 4]))
        out.sum().backward()
        norm = table.apply_gradients(0.1)
        assert norm == pytest.approx(np.sqrt(2 * DIM))

    def test_without_backward_raises(self):
        table = make_table()
        table.train()
        table(np.array([1]))
        with pytest.raises(RuntimeError, match="backward"):
            table.apply_gradients(0.1)

    def test_without_forward_raises(self):
        table = make_table()
        with pytest.raises(RuntimeError, match="forward"):
            table.apply_gradients(0.1)

    def test_discard_gradients_clears_pending(self):
        table = make_table()
        table.train()
        table(np.array([1]))
        table.discard_gradients()
        with pytest.raises(RuntimeError):
            table.apply_gradients(0.1)

    def test_grads_flow_through_a_real_loss(self):
        before = fixed_weight()
        table = make_table(weight=fixed_weight())
        table.train()
        out = table(np.array([1, 2, 3]))
        loss = bce_with_logits(out.sum(axis=1), np.array([1.0, 0.0, 1.0]))
        loss.backward()
        table.apply_gradients(0.5)
        after = table.dump_weights()
        # Touched rows moved, untouched rows are bit-identical.
        assert not np.array_equal(before[[1, 2, 3]], after[[1, 2, 3]])
        np.testing.assert_array_equal(np.delete(before, [1, 2, 3], axis=0),
                                      np.delete(after, [1, 2, 3], axis=0))


class TestBatchedSequentialParity:
    @pytest.mark.parametrize("oram_class", [PathORAM, CircuitORAM])
    def test_training_step_parity(self, oram_class):
        indices = np.array([3, 7, 3, 0, 31])
        tables = {}
        for batched in (True, False):
            table = make_table(oram_class, weight=fixed_weight(),
                               batched=batched)
            table.train()
            out = table(indices)
            out.sum().backward()
            table.apply_gradients(0.2)
            tables[batched] = table.dump_weights()
        np.testing.assert_array_equal(tables[True], tables[False])


class TestAnnounce:
    def test_matching_announcement_is_consumed(self):
        table = make_table()
        table.announce(np.array([1, 2, 3]))
        table(np.array([1, 2, 3]))
        assert table._announced is None

    def test_mismatched_announcement_raises(self):
        table = make_table()
        table.announce(np.array([1, 2, 3]))
        with pytest.raises(ValueError, match="announced"):
            table(np.array([1, 2, 4]))

    def test_out_of_range_announcement_rejected(self):
        table = make_table()
        with pytest.raises(IndexError):
            table.announce(np.array([N]))


class TestCostModel:
    @pytest.mark.parametrize("oram_class,scheme", [
        (PathORAM, "path"), (CircuitORAM, "circuit")])
    def test_scheme_mapping(self, oram_class, scheme):
        table = make_table(oram_class)
        assert table.scheme == scheme
        assert table.footprint_bytes() > 0
        assert table.modelled_latency(batch=16) > 0
        assert table.is_oblivious
        assert table.technique == "oram-online"
