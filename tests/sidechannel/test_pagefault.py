"""Controlled-channel (page-fault) attack tests."""

import pytest

from repro.sidechannel.pagefault import (
    PAGE_SIZE,
    ControlledChannelAttacker,
    PageChannelVictim,
    PageFaultObserver,
    combined_channel_candidates,
)


@pytest.fixture
def setup():
    observer = PageFaultObserver()
    # dim 64 rows = 256 B => 16 rows per 4 KiB page.
    victim = PageChannelVictim(observer, num_rows=1024, embedding_dim=64)
    return observer, victim, ControlledChannelAttacker(victim)


class TestObserver:
    def test_touch_records_spanning_pages(self):
        observer = PageFaultObserver()
        observer.touch(PAGE_SIZE - 10, 20)  # straddles a page boundary
        assert observer.log.distinct() == {0, 1}

    def test_reset(self):
        observer = PageFaultObserver()
        observer.touch(0, 10)
        observer.reset()
        assert not observer.log.pages


class TestControlledChannel:
    def test_narrows_to_one_page_of_rows(self, setup):
        _, victim, attacker = setup
        for index in (0, 100, 1023):
            low, high = attacker.observe_lookup(index)
            assert low <= index < high
            # 16 rows/page; a row can straddle two pages => <= ~33 candidates
            assert high - low <= 2 * victim.rows_per_page() + 1

    def test_candidate_set_far_smaller_than_table(self, setup):
        _, victim, attacker = setup
        assert attacker.candidates_after_lookup(500) < victim.num_rows / 10

    def test_different_indices_distinguishable(self, setup):
        _, _, attacker = setup
        range_low = attacker.observe_lookup(0)
        range_high = attacker.observe_lookup(1000)
        assert range_low != range_high

    def test_linear_scan_defence(self, setup):
        """Against the scan, the page channel sees the entire table."""
        _, victim, attacker = setup
        assert attacker.observe_scan(3) == victim.num_rows

    def test_out_of_range(self, setup):
        _, victim, _ = setup
        with pytest.raises(IndexError):
            victim.lookup(1024)
        with pytest.raises(IndexError):
            victim.lookup_linear_scan(-1)


class TestCombinedChannels:
    def test_paper_claim_exact_index_for_real_dims(self):
        """§III-A2: rows bigger than a cache line => combining page + cache
        channels pins the exact index."""
        for dim in (16, 32, 64):  # all DLRM dims give rows >= 64 B
            assert combined_channel_candidates(10**6, dim) == 1

    def test_tiny_rows_leave_ambiguity(self):
        # 4-byte rows: 16 rows share a line.
        assert combined_channel_candidates(10**6, 1) == 16
