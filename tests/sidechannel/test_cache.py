"""Set-associative cache model tests."""

import pytest

from repro.sidechannel.cache import CacheConfig, SetAssociativeCache


def make_cache(num_sets=8, ways=2):
    return SetAssociativeCache(CacheConfig(num_sets=num_sets, ways=ways))


class TestCacheConfig:
    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(num_sets=10)

    def test_rejects_hit_slower_than_miss(self):
        with pytest.raises(ValueError):
            CacheConfig(hit_latency=300.0, miss_latency=200.0)


class TestMapping:
    def test_same_line_same_set(self):
        cache = make_cache()
        assert cache.set_index_of(0) == cache.set_index_of(63)

    def test_adjacent_lines_adjacent_sets(self):
        cache = make_cache()
        assert cache.set_index_of(64) == (cache.set_index_of(0) + 1) % 8

    def test_stride_wraps_to_same_set(self):
        cache = make_cache(num_sets=8)
        stride = 8 * 64
        assert cache.set_index_of(100) == cache.set_index_of(100 + stride)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0) == cache.config.miss_latency
        assert cache.access(0) == cache.config.hit_latency

    def test_lru_eviction(self):
        cache = make_cache(num_sets=1, ways=2)
        cache.access(0)       # line A
        cache.access(64)      # line B
        cache.access(128)     # line C evicts A (LRU)
        assert cache.access(64) == cache.config.hit_latency
        assert cache.access(0) == cache.config.miss_latency

    def test_lru_updated_on_hit(self):
        cache = make_cache(num_sets=1, ways=2)
        cache.access(0)
        cache.access(64)
        cache.access(0)       # A becomes MRU
        cache.access(128)     # evicts B
        assert cache.access(0) == cache.config.hit_latency

    def test_miss_counter(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert cache.accesses == 2
        assert cache.misses == 1


class TestAccessRange:
    def test_spans_lines(self):
        cache = make_cache()
        latency = cache.access_range(0, 130)  # 3 lines
        assert latency == 3 * cache.config.miss_latency

    def test_within_one_line(self):
        cache = make_cache()
        assert cache.access_range(10, 20) == cache.config.miss_latency

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_cache().access_range(0, 0)


class TestFlush:
    def test_flush_forgets(self):
        cache = make_cache()
        cache.access(0)
        cache.flush()
        assert cache.access(0) == cache.config.miss_latency
