"""PRIME+PROBE attack tests — the Fig 3 reproduction, as unit tests."""

import pytest

from repro.sidechannel.attacker import PrimeProbeAttacker
from repro.sidechannel.cache import CacheConfig, SetAssociativeCache
from repro.sidechannel.victim import EmbeddingLookupVictim


@pytest.fixture
def setup():
    cache = SetAssociativeCache(CacheConfig(num_sets=1024, ways=12))
    victim = EmbeddingLookupVictim(cache, num_rows=256, embedding_dim=64)
    attacker = PrimeProbeAttacker(cache, victim,
                                  monitored_indices=range(25), rng=0)
    return cache, victim, attacker


class TestVictim:
    def test_row_addresses_disjoint(self, setup):
        _, victim, _ = setup
        assert victim.row_address(1) - victim.row_address(0) == 256

    def test_out_of_range(self, setup):
        _, victim, _ = setup
        with pytest.raises(IndexError):
            victim.lookup(256)
        with pytest.raises(IndexError):
            victim.lookup_linear_scan(-1)


class TestEvictionSets:
    def test_eviction_set_congruent_with_target(self, setup):
        cache, victim, attacker = setup
        for index in (0, 7, 24):
            target_set = cache.set_index_of(victim.row_address(index))
            for address in attacker._eviction_sets[index]:
                assert cache.set_index_of(address) == target_set

    def test_eviction_set_fills_ways(self, setup):
        cache, _, attacker = setup
        assert len(attacker._eviction_sets[0]) == cache.config.ways

    def test_attacker_addresses_disjoint_from_victim(self, setup):
        _, victim, attacker = setup
        table_end = victim.base_address + victim.num_rows * victim.row_bytes
        for addresses in attacker._eviction_sets.values():
            assert all(a >= table_end for a in addresses)


class TestAttack:
    @pytest.mark.parametrize("victim_index", [0, 2, 13, 24])
    def test_recovers_index(self, setup, victim_index):
        _, _, attacker = setup
        result = attacker.run_trials(victim_index, repeats=5)
        assert result.recovered_index == victim_index
        assert result.trial_success_rate == 1.0

    def test_signal_is_miss_vs_hit(self, setup):
        cache, _, attacker = setup
        result = attacker.run_trials(2, repeats=10)
        assert result.mean_latencies[2] == pytest.approx(
            cache.config.miss_latency, rel=0.05)
        others = [v for k, v in result.mean_latencies.items() if k != 2]
        assert max(others) == pytest.approx(cache.config.hit_latency,
                                            rel=0.05)

    def test_robust_to_noise(self, setup):
        cache, victim, _ = setup
        noisy = PrimeProbeAttacker(cache, victim,
                                   monitored_indices=range(25),
                                   noise_cycles=10.0, rng=1)
        result = noisy.run_trials(5, repeats=10)
        assert result.recovered_index == 5

    def test_linear_scan_defence_flattens_signal(self, setup):
        _, victim, attacker = setup
        result = attacker.run_trials(2, repeats=10,
                                     victim_op=victim.lookup_linear_scan)
        values = list(result.mean_latencies.values())
        spread = max(values) - min(values)
        miss_hit_gap = 160.0
        assert spread < 0.05 * miss_hit_gap

    def test_linear_scan_defeats_recovery_statistically(self, setup):
        """Under the defence the recovered index is unrelated to the secret:
        over several secrets the attacker should not do better than chance
        would suggest for correlated recoveries."""
        _, victim, attacker = setup
        hits = 0
        for secret in range(10):
            result = attacker.run_trials(secret, repeats=3,
                                         victim_op=victim.lookup_linear_scan)
            hits += int(result.recovered_index == secret)
        assert hits <= 2

    def test_requires_monitored_indices(self, setup):
        cache, victim, _ = setup
        with pytest.raises(ValueError):
            PrimeProbeAttacker(cache, victim, monitored_indices=[])

    def test_repeats_validated(self, setup):
        _, _, attacker = setup
        with pytest.raises(ValueError):
            attacker.run_trials(0, repeats=0)


class TestNoiseRobustness:
    """Attack accuracy degrades gracefully with measurement noise, and
    averaging more trials restores it — the standard side-channel
    signal-vs-noise story."""

    def _success_rate(self, noise, repeats, trials=10):
        cache = SetAssociativeCache(CacheConfig(num_sets=1024, ways=12))
        victim = EmbeddingLookupVictim(cache, num_rows=256, embedding_dim=64)
        attacker = PrimeProbeAttacker(cache, victim,
                                      monitored_indices=range(25),
                                      noise_cycles=noise, rng=99)
        hits = 0
        for secret in range(trials):
            result = attacker.run_trials(secret, repeats=repeats)
            hits += int(result.success)
        return hits / trials

    def test_clean_channel_perfect(self):
        assert self._success_rate(noise=0.0, repeats=1) == 1.0

    def test_moderate_noise_still_recoverable(self):
        # SNR: signal gap is 160 cycles; sigma 40 is easily averaged out.
        assert self._success_rate(noise=40.0, repeats=10) >= 0.8

    def test_extreme_noise_defeats_single_shot(self):
        single = self._success_rate(noise=500.0, repeats=1)
        averaged = self._success_rate(noise=500.0, repeats=60)
        assert averaged >= single
