"""Edge-case coverage for ``repro.nn.functional`` and pooled lookups:
empty batches, length-1 softmax axes, and all-masked pooled rows."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import MLP, LayerNorm, Linear
from repro.nn.tensor import Tensor


class TestEmptyBatch:
    def test_linear_empty_batch(self):
        layer = Linear(5, 3, rng=0)
        out = layer(Tensor(np.empty((0, 5))))
        assert out.shape == (0, 3)

    def test_mlp_empty_batch_forward_and_backward(self):
        mlp = MLP((5, 8, 2), rng=0)
        out = mlp(Tensor(np.empty((0, 5))))
        assert out.shape == (0, 2)
        out.sum().backward()  # zero-row gradients, but the graph must run
        for param in mlp.parameters():
            assert param.grad is not None
            assert np.all(param.grad == 0.0)

    def test_softmax_empty_batch(self):
        out = F.softmax(Tensor(np.empty((0, 4))))
        assert out.shape == (0, 4)

    def test_layer_norm_empty_batch(self):
        layer = LayerNorm(4)
        assert layer(Tensor(np.empty((0, 4)))).shape == (0, 4)

    def test_relu_gelu_empty(self):
        empty = Tensor(np.empty((0, 3)))
        assert F.relu(empty).shape == (0, 3)
        assert F.gelu(empty).shape == (0, 3)


class TestLengthOneSoftmaxAxis:
    def test_softmax_over_singleton_axis_is_exactly_one(self):
        x = Tensor(np.array([[-1e30], [0.0], [1e30]]))
        out = F.softmax(x, axis=-1)
        np.testing.assert_array_equal(out.data, np.ones((3, 1)))

    def test_log_softmax_over_singleton_axis_is_exactly_zero(self):
        x = Tensor(np.array([[7.0], [-7.0]]))
        out = F.log_softmax(x, axis=-1)
        np.testing.assert_array_equal(out.data, np.zeros((2, 1)))

    def test_singleton_axis_gradient_is_zero(self):
        # softmax over one element is constant 1 -> zero gradient
        x = Tensor(np.array([[3.0], [5.0]]), requires_grad=True)
        F.softmax(x, axis=-1).sum().backward()
        np.testing.assert_allclose(x.grad, np.zeros((2, 1)), atol=1e-12)


class TestPooledMaskedRows:
    @pytest.fixture
    def table(self):
        from repro.embedding.table import TableEmbedding

        return TableEmbedding(8, 4, rng=0)

    def test_all_masked_row_rejected(self, table):
        indices = np.zeros((2, 3), dtype=np.int64)
        with pytest.raises(ValueError, match=r"lengths must be in \[1"):
            table.forward_pooled(indices, lengths=[0, 2])

    def test_over_length_rejected(self, table):
        indices = np.zeros((2, 3), dtype=np.int64)
        with pytest.raises(ValueError, match=r"lengths must be in \[1"):
            table.forward_pooled(indices, lengths=[2, 4])

    def test_padding_is_masked_but_still_looked_up(self, table):
        # rows reduce over their true lengths; pads don't affect values
        indices = np.array([[1, 2, 3], [4, 5, 6]])
        short = table.generate_pooled(indices, lengths=[1, 3])
        np.testing.assert_allclose(short[0], table.generate([1])[0])
        np.testing.assert_allclose(
            short[1], table.generate([4, 5, 6]).sum(axis=0))

    def test_mean_uses_true_lengths(self, table):
        indices = np.array([[1, 2, 0]])
        pooled = table.generate_pooled(indices, mode="mean", lengths=[2])
        np.testing.assert_allclose(
            pooled[0], table.generate([1, 2]).mean(axis=0))
