"""Satellite regressions for the autograd tensor: scatter_add dtype safety,
``**`` gradients at base 0, the no-grad context, and lazy-payload guards."""

import numpy as np
import pytest

from repro.lazy.graph import LazyBuffer
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad, scatter_add


class TestScatterAddDtypes:
    def test_matching_dtypes_accumulate(self):
        table = np.zeros((3, 2))
        scatter_add(table, np.array([0, 0, 2]), np.ones((3, 2)))
        np.testing.assert_array_equal(table, [[2, 2], [0, 0], [1, 1]])

    def test_safe_upcast_accepted(self):
        table = np.zeros((2, 2), dtype=np.float64)
        scatter_add(table, np.array([1]), np.ones((1, 2), dtype=np.float32))
        np.testing.assert_array_equal(table[1], [1.0, 1.0])

    def test_silent_truncation_rejected(self):
        # float64 gradients into a float32 table used to truncate silently
        table = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(TypeError, match="truncate"):
            scatter_add(table, np.array([0]),
                        np.full((1, 2), 1e-9, dtype=np.float64))
        np.testing.assert_array_equal(table, 0.0)  # untouched on rejection

    def test_float_into_int_rejected(self):
        table = np.zeros(4, dtype=np.int64)
        with pytest.raises(TypeError, match="truncate"):
            scatter_add(table, np.array([1]), np.array([0.5]))

    def test_embedding_backward_still_works(self):
        table = Tensor(np.zeros((4, 3)), requires_grad=True)
        out = table.gather_rows(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_array_equal(table.grad[1], [2.0, 2.0, 2.0])


class TestPowGradientAtZero:
    def test_sqrt_grad_at_zero_is_clamped_not_inf(self):
        x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        (x ** 0.5).sum().backward()
        assert np.all(np.isfinite(x.grad))
        assert x.grad[0] == 0.0          # subgradient convention at the kink
        assert x.grad[1] == pytest.approx(0.25)

    def test_negative_exponent_at_zero_is_clamped(self):
        x = Tensor(np.array([0.0, 2.0]), requires_grad=True)
        (x ** -1.0).sum().backward()
        assert np.all(np.isfinite(x.grad))
        assert x.grad[0] == 0.0
        assert x.grad[1] == pytest.approx(-0.25)

    def test_integer_exponents_unchanged(self):
        x = Tensor(np.array([0.0, 3.0]), requires_grad=True)
        (x ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 6.0])

    def test_nonzero_inputs_keep_exact_formula(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x ** 0.5).sum().backward()
        assert x.grad[0] == 0.5 * 2.0 ** -0.5  # bit-exact, not approximate

    def test_sqrt_helper_trains_through_zero(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        x.sqrt().sum().backward()
        assert np.all(x.grad == 0.0)


class TestNoGradMode:
    def test_ops_inside_no_grad_build_no_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (x * 2.0 + 1.0).sum()
        assert out._parents == () and out._backward is None

    def test_flag_restores_even_on_error(self):
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with no_grad():
                assert not is_grad_enabled()
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_contexts(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestLazyPayloadGuards:
    def test_lazy_tensor_cannot_require_grad(self):
        buf = LazyBuffer.placeholder((2,), np.float64)
        with pytest.raises(TypeError, match="inference-only"):
            Tensor(buf, requires_grad=True)

    def test_backward_through_lazy_raises(self):
        out = Tensor(LazyBuffer.placeholder((2,), np.float64) + 1.0)
        with pytest.raises(RuntimeError, match="inference-only"):
            out.backward()

    def test_is_lazy_flag_and_repr(self):
        t = Tensor(LazyBuffer.placeholder((2, 3), np.float64))
        assert t.is_lazy and t.shape == (2, 3)
        assert "lazy=True" in repr(t)
        assert not Tensor(np.ones(2)).is_lazy

    def test_nn_ops_record_through_tensor(self):
        buf = LazyBuffer.placeholder((4, 3), np.float64)
        with no_grad():
            out = (Tensor(buf) @ np.ones((3, 2)) + 1.0).relu()
        assert out.is_lazy
        assert out.data.op.op == "mul"  # relu records as mask-multiply
