"""State-dict save/load round-trips through npz archives."""

import numpy as np
import pytest

from repro.nn.layers import MLP
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, rng):
        path = str(tmp_path / "model.npz")
        source = MLP([4, 8, 2], rng=0)
        save_state(source, path)

        target = MLP([4, 8, 2], rng=99)
        x = Tensor(rng.normal(size=(3, 4)))
        assert not np.allclose(source(x).data, target(x).data)
        load_state(target, path)
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "nested" / "dir" / "model.npz")
        save_state(MLP([2, 2], rng=0), path)
        load_state(MLP([2, 2], rng=1), path)

    def test_strict_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_state(MLP([4, 8, 2], rng=0), path)
        with pytest.raises((KeyError, ValueError)):
            load_state(MLP([4, 9, 2], rng=0), path)
