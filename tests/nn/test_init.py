"""Initializer tests."""

import numpy as np
import pytest

from repro.nn import init


class TestKaimingUniform:
    def test_bound(self):
        values = init.kaiming_uniform((1000,), fan_in=25, rng=0)
        assert np.abs(values).max() <= 0.2

    def test_deterministic(self):
        a = init.kaiming_uniform((10, 10), fan_in=10, rng=7)
        b = init.kaiming_uniform((10, 10), fan_in=10, rng=7)
        np.testing.assert_allclose(a, b)

    def test_invalid_fan(self):
        with pytest.raises(ValueError):
            init.kaiming_uniform((3,), fan_in=0)


class TestXavierUniform:
    def test_bound(self):
        values = init.xavier_uniform((2000,), fan_in=3, fan_out=3, rng=0)
        assert np.abs(values).max() <= np.sqrt(6 / 6)

    def test_invalid_fans(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((3,), fan_in=-1, fan_out=2)


class TestNormal:
    def test_std(self):
        values = init.normal((100_000,), std=0.02, rng=0)
        assert values.std() == pytest.approx(0.02, rel=0.05)
