"""Attention tests — most importantly: KV-cache decode == full forward."""

import numpy as np
import pytest

from repro.nn.attention import KVCache, MultiHeadSelfAttention, TransformerBlock
from repro.nn.tensor import Tensor


class TestKVCache:
    def test_append_concatenates_time(self, rng):
        cache = KVCache()
        k1 = rng.normal(size=(2, 2, 3, 4))
        v1 = rng.normal(size=(2, 2, 3, 4))
        cache.append(k1, v1)
        assert cache.length == 3
        k2 = rng.normal(size=(2, 2, 1, 4))
        keys, values = cache.append(k2, rng.normal(size=(2, 2, 1, 4)))
        assert keys.shape == (2, 2, 4, 4)
        np.testing.assert_allclose(keys[:, :, :3], k1)


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        out = attn(Tensor(rng.normal(size=(3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_causality(self, rng):
        """Changing a future token must not affect earlier outputs."""
        attn = MultiHeadSelfAttention(8, 2, rng=0)
        x = rng.normal(size=(1, 6, 8))
        base = attn(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 5] += 10.0
        out = attn(Tensor(perturbed)).data
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-10)
        assert not np.allclose(out[0, 5], base[0, 5])

    def test_cached_decode_matches_full_forward(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=0)
        tokens = rng.normal(size=(2, 7, 8))
        full = attn(Tensor(tokens)).data

        cache = KVCache()
        prefill = attn(Tensor(tokens[:, :4]), cache=cache).data
        np.testing.assert_allclose(prefill, full[:, :4], atol=1e-10)
        for t in range(4, 7):
            step = attn(Tensor(tokens[:, t:t + 1]), cache=cache).data
            np.testing.assert_allclose(step[:, 0], full[:, t], atol=1e-10)

    def test_gradients_flow(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=0)
        out = attn(Tensor(rng.normal(size=(1, 4, 8)), requires_grad=True))
        (out ** 2.0).sum().backward()
        assert attn.qkv.weight.grad is not None
        assert attn.proj.weight.grad is not None


class TestTransformerBlock:
    def test_shape_preserved(self, rng):
        block = TransformerBlock(8, 2, rng=0)
        out = block(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_cached_decode_matches_full(self, rng):
        block = TransformerBlock(8, 2, rng=0)
        tokens = rng.normal(size=(1, 6, 8))
        full = block(Tensor(tokens)).data
        cache = KVCache()
        prefill = block(Tensor(tokens[:, :3]), cache=cache).data
        np.testing.assert_allclose(prefill, full[:, :3], atol=1e-10)
        for t in range(3, 6):
            step = block(Tensor(tokens[:, t:t + 1]), cache=cache).data
            np.testing.assert_allclose(step[:, 0], full[:, t], atol=1e-10)

    def test_residual_path(self):
        """With zeroed sublayer outputs the block is the identity."""
        block = TransformerBlock(8, 2, rng=0)
        block.attn.proj.weight.data[...] = 0.0
        block.attn.proj.bias.data[...] = 0.0
        last = block.mlp._ordered[-1]
        last.weight.data[...] = 0.0
        last.bias.data[...] = 0.0
        x = np.random.default_rng(0).normal(size=(1, 4, 8))
        np.testing.assert_allclose(block(Tensor(x)).data, x, atol=1e-12)
