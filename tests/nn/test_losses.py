"""Loss function tests, including numerical stability and gradients."""

import math

import numpy as np
import pytest

from repro.nn.losses import bce_with_logits, cross_entropy, mse
from repro.nn.tensor import Tensor

from tests.conftest import check_gradient


class TestBceWithLogits:
    def test_matches_reference(self, rng):
        logits = rng.normal(size=(20,))
        labels = (rng.random(20) > 0.5).astype(float)
        probs = 1 / (1 + np.exp(-logits))
        expected = -(labels * np.log(probs)
                     + (1 - labels) * np.log(1 - probs)).mean()
        got = bce_with_logits(Tensor(logits), labels).item()
        assert got == pytest.approx(expected, rel=1e-9)

    def test_extreme_logits_finite(self):
        loss = bce_with_logits(Tensor([1000.0, -1000.0]),
                               np.array([1.0, 0.0])).item()
        assert math.isfinite(loss)
        assert loss == pytest.approx(0.0, abs=1e-12)

    def test_wrong_confident_prediction_large_loss(self):
        loss = bce_with_logits(Tensor([100.0]), np.array([0.0])).item()
        assert loss == pytest.approx(100.0, rel=1e-6)

    def test_gradient(self, rng):
        labels = (rng.random(8) > 0.5).astype(float)
        check_gradient(lambda x: bce_with_logits(x, labels),
                       rng.normal(size=(8,)))


class TestCrossEntropy:
    def test_matches_reference(self, rng):
        logits = rng.normal(size=(6, 5))
        targets = rng.integers(0, 5, size=6)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1,
                                                         keepdims=True))
        expected = -log_probs[np.arange(6), targets].mean()
        got = cross_entropy(Tensor(logits), targets).item()
        assert got == pytest.approx(expected, rel=1e-9)

    def test_multi_dim_logits(self, rng):
        logits = rng.normal(size=(2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))
        loss = cross_entropy(Tensor(logits), targets)
        assert math.isfinite(loss.item())

    def test_ignores_negative_targets(self, rng):
        logits = rng.normal(size=(4, 5))
        targets = np.array([1, -1, 2, -1])
        full = cross_entropy(Tensor(logits), targets).item()
        only = cross_entropy(Tensor(logits[[0, 2]]),
                             np.array([1, 2])).item()
        assert full == pytest.approx(only, rel=1e-9)

    def test_all_padding_raises(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(2, 3))),
                          np.array([-1, -1]))

    def test_gradient(self, rng):
        targets = rng.integers(0, 4, size=5)
        check_gradient(lambda x: cross_entropy(x, targets),
                       rng.normal(size=(5, 4)))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2])).item()
        assert loss == pytest.approx(0.0, abs=1e-9)


class TestMse:
    def test_value(self):
        loss = mse(Tensor([1.0, 2.0]), np.array([0.0, 4.0])).item()
        assert loss == pytest.approx((1 + 4) / 2)

    def test_gradient(self, rng):
        target = rng.normal(size=(6,))
        check_gradient(lambda x: mse(x, target), rng.normal(size=(6,)))
