"""Autograd engine tests: forward values and gradients vs finite differences."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, unbroadcast, zeros, ones, randn

from tests.conftest import check_gradient


class TestTensorBasics:
    def test_wraps_array(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_from_list(self):
        t = as_tensor([1, 2, 3])
        assert t.shape == (3,)

    def test_requires_grad_rejects_int_dtype(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        z = y * 3.0
        z.backward(np.array([1.0]))
        assert x.grad is None

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_zeros_ones_randn(self):
        assert zeros((2, 3)).data.sum() == 0
        assert ones((2, 3)).data.sum() == 6
        assert randn((4, 4), rng=np.random.default_rng(0)).shape == (4, 4)

    def test_backward_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            x.backward(np.ones((3,)))


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_sums_leading_dims(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out, 4 * np.ones((2, 3)))

    def test_sums_size_one_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        np.testing.assert_allclose(out, 2 * np.ones((1, 3)))


class TestArithmeticGradients:
    def test_add(self, rng):
        check_gradient(lambda x: (x + 2.0).sum(), rng.normal(size=(3, 4)))

    def test_add_broadcast(self, rng):
        b = rng.normal(size=(4,))
        check_gradient(lambda x: (x + Tensor(b)).sum(), rng.normal(size=(3, 4)))

    def test_mul(self, rng):
        check_gradient(lambda x: (x * x).sum(), rng.normal(size=(3, 4)))

    def test_sub_rsub(self, rng):
        check_gradient(lambda x: (1.0 - x).sum(), rng.normal(size=(5,)))

    def test_div(self, rng):
        x0 = rng.normal(size=(4,)) + 3.0
        check_gradient(lambda x: (x / 2.0).sum(), x0)
        check_gradient(lambda x: (2.0 / x).sum(), x0)

    def test_pow(self, rng):
        check_gradient(lambda x: (x ** 3.0).sum(), rng.normal(size=(4,)))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_neg(self, rng):
        check_gradient(lambda x: (-x).sum(), rng.normal(size=(4,)))

    def test_matmul_2d(self, rng):
        w = rng.normal(size=(4, 5))
        check_gradient(lambda x: (x @ Tensor(w)).sum(), rng.normal(size=(3, 4)))

    def test_matmul_grad_to_rhs(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda w: (Tensor(x) @ w).sum(), rng.normal(size=(4, 5)))

    def test_matmul_batched(self, rng):
        w = rng.normal(size=(2, 4, 5))
        check_gradient(lambda x: (x @ Tensor(w)).sum(),
                       rng.normal(size=(2, 3, 4)))

    def test_matmul_vector_rhs(self, rng):
        v = rng.normal(size=(4,))
        check_gradient(lambda x: (x @ Tensor(v)).sum(), rng.normal(size=(3, 4)))

    def test_grad_accumulates_over_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_graph_when_no_requires_grad(self):
        x = Tensor([1.0])
        y = x * 2.0 + 1.0
        assert y._backward is None and y._parents == ()


class TestUnaryGradients:
    def test_exp(self, rng):
        check_gradient(lambda x: x.exp().sum(), rng.normal(size=(4,)))

    def test_log(self, rng):
        check_gradient(lambda x: x.log().sum(),
                       rng.uniform(0.5, 2.0, size=(4,)))

    def test_tanh(self, rng):
        check_gradient(lambda x: x.tanh().sum(), rng.normal(size=(4,)))

    def test_relu(self, rng):
        # keep values away from the kink
        x0 = rng.normal(size=(6,))
        x0[np.abs(x0) < 0.1] = 0.5
        check_gradient(lambda x: x.relu().sum(), x0)

    def test_sigmoid(self, rng):
        check_gradient(lambda x: x.sigmoid().sum(), rng.normal(size=(4,)))

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor([-1000.0, 1000.0]).sigmoid().data
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_abs(self, rng):
        x0 = rng.normal(size=(5,))
        x0[np.abs(x0) < 0.1] = 1.0
        check_gradient(lambda x: x.abs().sum(), x0)

    def test_sqrt(self):
        check_gradient(lambda x: x.sqrt().sum(),
                       np.array([1.0, 4.0, 9.0]))

    def test_clip(self, rng):
        x0 = np.array([-2.0, -0.5, 0.5, 2.0])
        check_gradient(lambda x: x.clip(-1.0, 1.0).sum(), x0)

    def test_clip_forward(self):
        out = Tensor([-2.0, 0.0, 2.0]).clip(-1.0, 1.0).data
        np.testing.assert_allclose(out, [-1.0, 0.0, 1.0])


class TestReductions:
    def test_sum_all(self, rng):
        check_gradient(lambda x: x.sum(), rng.normal(size=(3, 4)))

    def test_sum_axis_keepdims(self, rng):
        check_gradient(lambda x: (x.sum(axis=1, keepdims=True) ** 2.0).sum(),
                       rng.normal(size=(3, 4)))

    def test_sum_negative_axis(self, rng):
        check_gradient(lambda x: (x.sum(axis=-1) ** 2.0).sum(),
                       rng.normal(size=(3, 4)))

    def test_mean(self, rng):
        x0 = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(x0).mean().data, x0.mean())
        check_gradient(lambda x: x.mean(), x0)

    def test_mean_axis(self, rng):
        x0 = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(x0).mean(axis=0).data,
                                   x0.mean(axis=0))

    def test_var(self, rng):
        x0 = rng.normal(size=(10,))
        np.testing.assert_allclose(Tensor(x0).var().data, x0.var())

    def test_max_forward(self, rng):
        x0 = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(x0).max(axis=1).data, x0.max(axis=1))

    def test_max_gradient(self):
        x = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_gradient_splits_ties(self):
        x = Tensor(np.array([5.0, 5.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])


class TestShapeOps:
    def test_reshape_roundtrip(self, rng):
        check_gradient(lambda x: (x.reshape(4, 3) ** 2.0).sum(),
                       rng.normal(size=(3, 4)))

    def test_transpose(self, rng):
        x0 = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(x0).T.data, x0.T)
        check_gradient(lambda x: (x.transpose() ** 2.0).sum(), x0)

    def test_transpose_axes(self, rng):
        x0 = rng.normal(size=(2, 3, 4))
        np.testing.assert_allclose(Tensor(x0).transpose(1, 0, 2).data,
                                   x0.transpose(1, 0, 2))

    def test_swapaxes(self, rng):
        x0 = rng.normal(size=(2, 3, 4))
        np.testing.assert_allclose(Tensor(x0).swapaxes(1, 2).data,
                                   x0.swapaxes(1, 2))
        check_gradient(lambda x: (x.swapaxes(0, 1) ** 2.0).sum(),
                       rng.normal(size=(3, 4)))

    def test_getitem(self, rng):
        check_gradient(lambda x: (x[1:, :2] ** 2.0).sum(),
                       rng.normal(size=(3, 4)))

    def test_getitem_fancy_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x[np.array([0, 0, 2])]
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])

    def test_concatenate(self, rng):
        a0 = rng.normal(size=(2, 3))
        b = Tensor(rng.normal(size=(2, 2)))
        check_gradient(
            lambda x: (Tensor.concatenate([x, b], axis=1) ** 2.0).sum(), a0)

    def test_concatenate_forward(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        out = Tensor.concatenate([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_allclose(out.data, np.concatenate([a, b], axis=0))

    def test_stack(self, rng):
        a0 = rng.normal(size=(2, 3))
        b = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda x: (Tensor.stack([x, b], axis=1) ** 2.0).sum(),
                       a0)

    def test_gather_rows(self, rng):
        w0 = rng.normal(size=(5, 3))
        idx = np.array([0, 2, 2, 4])
        check_gradient(lambda w: (w.gather_rows(idx) ** 2.0).sum(), w0)

    def test_gather_rows_forward(self, rng):
        w = rng.normal(size=(5, 3))
        idx = np.array([[1, 2], [3, 4]])
        out = Tensor(w).gather_rows(idx)
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.data, w[idx])


class TestComparisons:
    def test_gt(self):
        out = Tensor([1.0, 3.0]) > Tensor([2.0, 2.0])
        np.testing.assert_array_equal(out.data, [False, True])

    def test_le(self):
        out = Tensor([1.0, 3.0]) <= 2.0
        np.testing.assert_array_equal(out.data, [True, False])


class TestDeepGraph:
    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y * 1.0001
        y.backward(np.array([1.0]))
        assert x.grad is not None and np.isfinite(x.grad).all()

    def test_diamond_graph_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        (a * b).backward(np.array([1.0]))
        # d/dx (15 x^2) = 30 x = 60
        np.testing.assert_allclose(x.grad, [60.0])
