"""Optimizer tests: convergence, momentum, Adam bias correction, schedules."""


import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, AdamW, CosineSchedule
from repro.nn.tensor import Tensor


def quadratic_loss(param: Parameter) -> Tensor:
    return ((param - Tensor(np.array([3.0, -2.0]))) ** 2.0).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, -2.0], atol=1e-4)

    def test_momentum_accelerates(self):
        def losses_after(momentum, steps=25):
            p = Parameter(np.zeros(2))
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(steps):
                opt.zero_grad()
                loss = quadratic_loss(p)
                loss.backward()
                opt.step()
            return quadratic_loss(p).item()

        assert losses_after(0.9) < losses_after(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(9.0)

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, -2.0], atol=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction the first Adam step is ~lr regardless of grad
        # magnitude.
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.05)
        p.grad = np.array([1234.0])
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.05, rel=1e-6)

    def test_deduplicates_tied_params(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p, p], lr=0.05)
        assert len(opt.params) == 1
        p.grad = np.array([1.0])
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.05, rel=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))


class TestAdamW:
    def test_decay_is_decoupled(self):
        # Zero gradient: AdamW still shrinks weights, coupled Adam does not.
        p = Parameter(np.array([10.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.1)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(10.0 - 0.1 * 0.1 * 10.0)


class TestClipGradNorm:
    def test_clips_large_norm(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        p.grad = np.full(4, 10.0)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_norm(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        p.grad = np.full(4, 0.1)
        opt.clip_grad_norm(10.0)
        np.testing.assert_allclose(p.grad, np.full(4, 0.1))


class TestCosineSchedule:
    def test_warmup_then_decay(self):
        sched = CosineSchedule(base_lr=1.0, warmup_steps=10, total_steps=110,
                               min_lr=0.1)
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(10) == pytest.approx(1.0)
        assert sched.lr_at(60) < 1.0
        assert sched.lr_at(1000) == pytest.approx(0.1)

    def test_monotone_decay_after_warmup(self):
        sched = CosineSchedule(base_lr=1.0, warmup_steps=5, total_steps=50)
        values = [sched.lr_at(s) for s in range(5, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_apply_sets_optimizer_lr(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineSchedule(base_lr=0.5, warmup_steps=0, total_steps=10)
        sched.apply(opt, 0)
        assert opt.lr == pytest.approx(0.5)

    def test_warmup_exceeding_total_raises(self):
        with pytest.raises(ValueError):
            CosineSchedule(1.0, warmup_steps=20, total_steps=10)
