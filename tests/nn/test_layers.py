"""Layer tests: Linear, activations, LayerNorm, MLP, EmbeddingTable."""

import numpy as np
import pytest

from repro.nn.layers import (
    MLP,
    Dropout,
    EmbeddingTable,
    GELU,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    _make_activation,
)
from repro.nn.tensor import Tensor


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 7, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 7, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, np.zeros((2, 7)))

    def test_init_scale_kaiming(self):
        layer = Linear(100, 50, rng=0)
        bound = 1.0 / np.sqrt(100)
        assert np.abs(layer.weight.data).max() <= bound

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 5)
        with pytest.raises(ValueError):
            Linear(5, -1)

    def test_deterministic_under_seed(self):
        a, b = Linear(4, 4, rng=42), Linear(4, 4, rng=42)
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_repr(self):
        assert "Linear(4, 7" in repr(Linear(4, 7, rng=0))


class TestActivations:
    @pytest.mark.parametrize("module,reference", [
        (ReLU(), lambda x: np.maximum(x, 0)),
        (Tanh(), np.tanh),
    ])
    def test_matches_numpy(self, module, reference, rng):
        x = rng.normal(size=(10,))
        np.testing.assert_allclose(module(Tensor(x)).data, reference(x),
                                   atol=1e-12)

    def test_sigmoid_range(self, rng):
        out = Sigmoid()(Tensor(rng.normal(0, 10, size=(50,)))).data
        assert (out >= 0).all() and (out <= 1).all()

    def test_gelu_between_zero_and_identity(self, rng):
        x = rng.uniform(0.1, 3.0, size=(20,))
        out = GELU()(Tensor(x)).data
        assert (out <= x).all() and (out >= 0).all()

    def test_make_activation_unknown(self):
        with pytest.raises(ValueError):
            _make_activation("swish")


class TestLayerNorm:
    def test_learnable_affine(self, rng):
        layer = LayerNorm(6)
        layer.weight.data[...] = 2.0
        layer.bias.data[...] = 1.0
        out = layer(Tensor(rng.normal(size=(4, 6)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(4), atol=1e-9)

    def test_gradients_flow_to_affine(self, rng):
        layer = LayerNorm(6)
        out = layer(Tensor(rng.normal(size=(4, 6))))
        (out ** 2.0).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestDropoutLayer:
    def test_respects_training_flag(self, rng):
        layer = Dropout(0.9, rng=0)
        layer.eval()
        x = Tensor(np.ones(100))
        np.testing.assert_allclose(layer(x).data, np.ones(100))
        layer.train()
        assert (layer(x).data == 0).any()


class TestSequential:
    def test_order(self, rng):
        seq = Sequential(Linear(3, 5, rng=0), ReLU(), Linear(5, 2, rng=1))
        assert len(seq) == 3
        out = seq(Tensor(rng.normal(size=(4, 3))))
        assert out.shape == (4, 2)


class TestMLP:
    def test_paper_notation_sizes(self, rng):
        # The Kaggle bottom MLP: 13-512-256-64-16 (Table IV).
        mlp = MLP([13, 512, 256, 64, 16], rng=rng)
        out = mlp(Tensor(rng.normal(size=(2, 13))))
        assert out.shape == (2, 16)

    def test_final_activation_optional(self, rng):
        plain = MLP([4, 8, 3], rng=0)
        x = Tensor(rng.normal(size=(5, 4)))
        assert (plain(x).data < 0).any()  # linear output layer
        relu_out = MLP([4, 8, 3], final_activation="relu", rng=0)(x)
        assert (relu_out.data >= 0).all()

    def test_too_few_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_trains_to_fit_xor(self):
        from repro.nn.losses import mse
        from repro.nn.optim import Adam

        x = np.array([[0.0, 0], [0, 1], [1, 0], [1, 1]])
        y = np.array([0.0, 1, 1, 0])
        mlp = MLP([2, 16, 1], activation="tanh", rng=3)
        opt = Adam(mlp.parameters(), lr=0.02)
        for _ in range(400):
            opt.zero_grad()
            loss = mse(mlp(Tensor(x)).reshape(-1), y)
            loss.backward()
            opt.step()
        assert loss.item() < 0.01


class TestEmbeddingTable:
    def test_lookup_matches_rows(self, rng):
        table = EmbeddingTable(10, 4, rng=rng)
        idx = np.array([1, 3, 3])
        out = table(idx)
        np.testing.assert_allclose(out.data, table.weight.data[idx])

    def test_out_of_range_raises(self):
        table = EmbeddingTable(10, 4, rng=0)
        with pytest.raises(IndexError):
            table(np.array([10]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_gradient_accumulates_for_repeats(self):
        table = EmbeddingTable(5, 3, rng=0)
        out = table(np.array([2, 2]))
        out.sum().backward()
        np.testing.assert_allclose(table.weight.grad[2], 2 * np.ones(3))
        np.testing.assert_allclose(table.weight.grad[0], np.zeros(3))

    def test_multi_dim_indices(self, rng):
        table = EmbeddingTable(10, 4, rng=rng)
        out = table(np.zeros((2, 5), dtype=np.int64))
        assert out.shape == (2, 5, 4)
