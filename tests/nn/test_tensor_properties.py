"""Property-based autograd tests: random shapes, broadcasting, gradients."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor

from tests.conftest import numerical_gradient

small_dims = st.integers(1, 4)


@st.composite
def broadcastable_shapes(draw):
    """Two shapes that numpy can broadcast together."""
    ndim = draw(st.integers(1, 3))
    full = [draw(small_dims) for _ in range(ndim)]
    a = [draw(st.sampled_from([dim, 1])) for dim in full]
    b = [draw(st.sampled_from([dim, 1])) for dim in full]
    # Ensure the full shape is actually realised by at least one operand.
    for axis in range(ndim):
        if a[axis] == 1 and b[axis] == 1:
            full[axis] = 1
    return tuple(a), tuple(b)


def check_binary_gradients(op, shape_a, shape_b, seed):
    rng = np.random.default_rng(seed)
    a_value = rng.normal(size=shape_a) + 2.0  # keep away from 0 for div
    b_value = rng.normal(size=shape_b) + 2.0

    a = Tensor(a_value.copy(), requires_grad=True)
    b = Tensor(b_value.copy(), requires_grad=True)
    op(a, b).sum().backward()

    for tensor, value, other, first in ((a, a_value, b_value, True),
                                        (b, b_value, a_value, False)):
        def scalar(x):
            left, right = (x, other) if first else (other, x)
            return float(op(Tensor(left), Tensor(right)).sum().data)

        numeric = numerical_gradient(scalar, value.copy())
        np.testing.assert_allclose(tensor.grad, numeric, atol=1e-5,
                                   rtol=1e-4)


class TestBroadcastGradients:
    @given(shapes=broadcastable_shapes(), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_add(self, shapes, seed):
        check_binary_gradients(lambda x, y: x + y, *shapes, seed)

    @given(shapes=broadcastable_shapes(), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_mul(self, shapes, seed):
        check_binary_gradients(lambda x, y: x * y, *shapes, seed)

    @given(shapes=broadcastable_shapes(), seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_div(self, shapes, seed):
        check_binary_gradients(lambda x, y: x / y, *shapes, seed)


class TestMatmulShapes:
    @given(batch=small_dims, rows=small_dims, inner=small_dims,
           cols=small_dims, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_batched_matmul_forward_and_grad_shape(self, batch, rows, inner,
                                                   cols, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(batch, rows, inner)), requires_grad=True)
        b = Tensor(rng.normal(size=(batch, inner, cols)), requires_grad=True)
        out = a @ b
        assert out.shape == (batch, rows, cols)
        np.testing.assert_allclose(out.data, a.data @ b.data)
        out.sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape


class TestForwardInvariants:
    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=20),
           st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_softmax_is_distribution(self, values, seed):
        from repro.nn.functional import softmax

        x = Tensor(np.asarray(values).reshape(1, -1))
        out = softmax(x).data
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(), 1.0, atol=1e-9)

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_layer_norm_standardises(self, values):
        from repro.nn.functional import layer_norm

        data = np.asarray(values).reshape(1, -1)
        if np.ptp(data) < 1e-6:
            return  # degenerate constant row
        dim = data.shape[-1]
        out = layer_norm(Tensor(data), Tensor(np.ones(dim)),
                         Tensor(np.zeros(dim))).data
        np.testing.assert_allclose(out.mean(), 0.0, atol=1e-8)

    @given(st.lists(st.floats(0.01, 10), min_size=1, max_size=10),
           st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_exp_log_roundtrip_gradient_consistency(self, values, seed):
        x = Tensor(np.asarray(values), requires_grad=True)
        y = x.exp().log()  # identity, so gradient should be ones
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(x.data), atol=1e-9)
