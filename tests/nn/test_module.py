"""Module system tests: parameter discovery, train/eval, state dicts."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Branching(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(3, 4, rng=0)
        self.fc2 = Linear(4, 2, rng=1)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestParameterDiscovery:
    def test_named_parameters_includes_nested(self):
        names = dict(Branching().named_parameters())
        assert "fc1.weight" in names
        assert "fc2.bias" in names
        assert "scale" in names

    def test_parameters_count(self):
        model = Branching()
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_tied_parameters_counted_once(self):
        model = Branching()
        model.tied = model.scale
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_zero_grad_clears(self):
        model = Branching()
        out = model(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestTrainEval:
    def test_mode_propagates(self):
        model = Sequential(Linear(2, 2, rng=0), ReLU())
        model.eval()
        assert not model.training
        assert all(not m.training for m in model)
        model.train()
        assert model.training


class TestStateDict:
    def test_roundtrip(self):
        a, b = Branching(), Branching()
        b.fc1.weight.data += 1.0
        assert not np.allclose(a.fc1.weight.data, b.fc1.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.fc1.weight.data, b.fc1.weight.data)

    def test_state_dict_is_copy(self):
        model = Branching()
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.scale.data[0] == 1.0

    def test_strict_missing_raises(self):
        model = Branching()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_non_strict_partial_load(self):
        model = Branching()
        model.load_state_dict({"scale": np.array([5.0])}, strict=False)
        assert model.scale.data[0] == 5.0

    def test_shape_mismatch_raises(self):
        model = Branching()
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
