"""Tests for functional ops: softmax, gelu, layer_norm, dropout, masks."""


import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.conftest import check_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(5, 7)))).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5))

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_large_values_stable(self):
        out = F.softmax(Tensor([[1000.0, 0.0]])).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [[1.0, 0.0]], atol=1e-12)

    def test_gradient(self, rng):
        check_gradient(lambda x: (F.softmax(x) ** 2.0).sum(),
                       rng.normal(size=(2, 5)))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), atol=1e-10)


class TestGelu:
    def test_known_values(self):
        # GELU(0) = 0; GELU(large) ~ identity; GELU(-large) ~ 0
        out = F.gelu(Tensor([0.0, 10.0, -10.0])).data
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(10.0, rel=1e-3)
        assert out[2] == pytest.approx(0.0, abs=1e-3)

    def test_gradient(self, rng):
        check_gradient(lambda x: F.gelu(x).sum(), rng.normal(size=(6,)))


class TestLayerNorm:
    def test_normalises_last_dim(self, rng):
        x = Tensor(rng.normal(2.0, 5.0, size=(4, 8)))
        weight, bias = Tensor(np.ones(8)), Tensor(np.zeros(8))
        out = F.layer_norm(x, weight, bias).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_gradient_through_input(self, rng):
        weight = Tensor(rng.normal(size=(6,)))
        bias = Tensor(rng.normal(size=(6,)))
        check_gradient(
            lambda x: (F.layer_norm(x, weight, bias) ** 2.0).sum(),
            rng.normal(size=(3, 6)))


class TestLinear:
    def test_matches_manual(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(5, 4))
        b = rng.normal(size=(5,))
        out = F.linear(Tensor(x), Tensor(w), Tensor(b)).data
        np.testing.assert_allclose(out, x @ w.T + b)

    def test_no_bias(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(5, 4))
        out = F.linear(Tensor(x), Tensor(w)).data
        np.testing.assert_allclose(out, x @ w.T)


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_p_zero_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        out = F.dropout(x, 0.0, rng, training=True)
        np.testing.assert_allclose(out.data, x.data)

    def test_scales_survivors(self, rng):
        x = Tensor(np.ones(10_000))
        out = F.dropout(x, 0.5, rng, training=True).data
        survivors = out[out != 0]
        np.testing.assert_allclose(survivors, 2.0 * np.ones_like(survivors))
        assert 0.4 < (out != 0).mean() < 0.6

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, rng)


class TestCausalMask:
    def test_structure(self):
        mask = F.causal_mask(4)
        assert mask.shape == (4, 4)
        assert (mask[np.tril_indices(4)] == 0).all()
        assert np.isneginf(mask[np.triu_indices(4, k=1)]).all()
