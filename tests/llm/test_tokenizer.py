"""Oblivious tokenizer: value parity, standing audits, detector teeth."""

import numpy as np
import pytest

from repro.llm.tokenizer import (
    TOKENIZE_REGION,
    BoundaryLeakingTokenizer,
    ObliviousTokenizer,
    contrasting_prompts,
    tokenizer_subjects,
)
from repro.oblivious.trace import MemoryTracer
from repro.telemetry.audit import LeakageAuditor

VOCAB = 64
DIM = 8


class TestValues:
    def test_embeddings_match_the_vocabulary_rows(self):
        tokenizer = ObliviousTokenizer(VOCAB, DIM, rng=0)
        prompt = "the quick onyx goblin"
        out = tokenizer.tokenize(prompt)
        expected = tokenizer.vocabulary[tokenizer.token_ids(prompt)]
        np.testing.assert_allclose(out, expected)
        assert out.shape == (len(prompt), DIM)

    def test_token_ids_stay_in_vocab(self):
        tokenizer = ObliviousTokenizer(VOCAB, DIM, rng=0)
        ids = tokenizer.token_ids("Hello, world! éè")
        assert all(0 <= token_id < VOCAB for token_id in ids)

    def test_vocab_size_validated(self):
        with pytest.raises(ValueError):
            ObliviousTokenizer(0, DIM)


class TestDecisionTrace:
    def test_same_length_prompts_trace_identically(self):
        traces = []
        for prompt in contrasting_prompts(16):
            tracer = MemoryTracer()
            ObliviousTokenizer(VOCAB, DIM, rng=0,
                               tracer=tracer).tokenize(prompt)
            traces.append(tracer.snapshot())
        assert traces[0] == traces[1] == traces[2]

    def test_contrasting_prompts_are_same_length(self):
        prompts = contrasting_prompts(24)
        assert len(prompts) == 3
        assert len({len(prompt) for prompt in prompts}) == 1
        # different boundary structure is the whole point
        assert len({len(prompt.split()) for prompt in prompts}) > 1

    def test_boundary_leak_traces_follow_word_structure(self):
        traces = []
        for prompt in contrasting_prompts(16):
            tracer = MemoryTracer()
            BoundaryLeakingTokenizer(VOCAB, DIM, rng=0,
                                     tracer=tracer).tokenize(prompt)
            traces.append(tracer.snapshot())
        assert traces[0] != traces[1]  # one word vs many words


class TestStandingAudits:
    @pytest.fixture(scope="class")
    def findings(self):
        auditor = LeakageAuditor()
        return {subject.name: auditor.audit(subject)
                for subject in tokenizer_subjects(VOCAB, DIM,
                                                  prompt_length=16)}

    def test_decision_plane_is_exactly_oblivious(self, findings):
        finding = findings["llm-tokenize"]
        assert finding.mode == "exact"
        assert finding.passed and finding.observed_oblivious

    def test_memory_plane_is_structurally_oblivious(self, findings):
        finding = findings["llm-tokenize-memory"]
        assert finding.mode == "structural"
        assert finding.passed and finding.observed_oblivious

    def test_negative_control_is_caught(self, findings):
        finding = findings["llm-tokenize-boundary-leak"]
        assert finding.leak_detected
        assert not finding.expect_oblivious
        assert finding.passed  # reality matched the expectation

    def test_region_name_is_stable(self):
        assert TOKENIZE_REGION == "llm.tokenize"
