"""StagePool: per-pool scaling over the shared audited cluster machinery."""

import json

import pytest

from repro.cluster.autoscale.controller import default_scaling_workloads
from repro.data import KAGGLE_SPEC
from repro.llm.bench import build_pools
from repro.llm.stages import LlmServingSpec


@pytest.fixture(scope="module")
def spec():
    return LlmServingSpec()


@pytest.fixture()
def pools(spec):
    return build_pools(spec)


def drive(pool, offered_rps, ticks, start_tick=0):
    for tick in range(ticks):
        pool.tick(offered_rps=offered_rps, queue_delay_seconds=0.001,
                  now_seconds=(start_tick + tick) * 0.25)


class TestScaling:
    def test_low_utilisation_sheds_a_node(self, pools):
        pool = pools["tokenize"]  # starts at 2, min 1: overprovisioned
        assert pool.nodes == 2
        drive(pool, offered_rps=600.0, ticks=4)
        assert pool.events["scale_down_events"] >= 1
        assert pool.nodes == 1
        assert pool.control.current.epoch >= 1

    def test_high_utilisation_adds_a_node(self, pools):
        pool = pools["decode"]  # starts at 1, max 4
        capacity = pool.per_node_capacity_rps
        drive(pool, offered_rps=2.0 * capacity, ticks=4)
        assert pool.events["scale_up_events"] >= 1
        assert pool.nodes >= 2

    def test_floor_is_respected(self, pools):
        pool = pools["prefill"]  # starts at its floor of 1
        drive(pool, offered_rps=1.0, ticks=6)
        assert pool.nodes == 1
        assert pool.events["scale_down_events"] == 0


class TestAuditPath:
    def test_every_reshape_rides_the_migration_audit(self, pools):
        pool = pools["tokenize"]
        drive(pool, offered_rps=600.0, ticks=4)
        total_events = sum(pool.events.values())
        assert total_events >= 1
        assert len(pool.migration_audits) == total_events
        assert pool.migration_ok
        assert all(audit["audit_passed"]
                   for audit in pool.migration_audits)

    def test_plans_are_memoised_and_placement_audited(self, pools):
        pool = pools["decode"]
        first = pool.plan_for(3)
        audits_after_first = len(pool.plan_audits)
        assert pool.plan_for(3) is first
        assert len(pool.plan_audits) == audits_after_first
        assert pool.placement_ok

    def test_decision_timeline_replays_skew_invariantly(self, pools):
        pool = pools["decode"]
        capacity = pool.per_node_capacity_rps
        drive(pool, offered_rps=2.0 * capacity, ticks=4)
        finding = pool.scaling_audit(
            default_scaling_workloads(len(KAGGLE_SPEC.table_sizes)))
        assert finding.passed

    def test_to_dict_is_json_stable(self, pools):
        pool = pools["prefill"]
        drive(pool, offered_rps=100.0, ticks=2)
        json.dumps(pool.to_dict(), allow_nan=False)


class TestIndependence:
    def test_pools_scale_on_their_own_signals(self, pools):
        # Starve tokenize while saturating decode: each pool must move
        # only on its own plane.
        drive(pools["tokenize"], offered_rps=600.0, ticks=4)
        decode_capacity = pools["decode"].per_node_capacity_rps
        drive(pools["decode"], offered_rps=2.0 * decode_capacity, ticks=4)
        assert pools["tokenize"].events["scale_down_events"] >= 1
        assert pools["decode"].events["scale_up_events"] >= 1
        assert pools["prefill"].events == {"scale_up_events": 0,
                                           "scale_down_events": 0}
