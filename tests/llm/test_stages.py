"""LLM stages: cost-model pricing, fleet scaling, decision-trace audits."""

import numpy as np
import pytest

from repro.costmodel.llm import LlmShape
from repro.llm.stages import (
    LlmServingSpec,
    build_llm_pipeline,
    per_node_capacity_rps,
    stage_subjects,
)
from repro.telemetry.audit import LeakageAuditor
from repro.telemetry.runtime import use_registry

SMALL = LlmServingSpec(
    shape=LlmShape(vocab_size=64, embed_dim=8, num_layers=2,
                   context_length=32),
    prompt_tokens=8, new_tokens=4,
    tokenize_batch=8, prefill_batch=4, decode_batch=2)


def burst(count=12, spacing=0.0005):
    return np.arange(count) * spacing


class TestPricing:
    def test_every_stage_has_positive_capacity(self):
        for stage in ("tokenize", "prefill", "decode"):
            assert per_node_capacity_rps(SMALL, stage) > 0.0

    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError):
            per_node_capacity_rps(SMALL, "embed")

    def test_pipeline_has_the_three_stages_in_order(self):
        pipeline = build_llm_pipeline(SMALL)
        assert [stage.name for stage in pipeline.stages] == [
            "tokenize", "prefill", "decode"]


class TestFleetScaling:
    def test_unknown_node_count_key_rejected(self):
        with pytest.raises(ValueError, match="unknown stage names"):
            build_llm_pipeline(SMALL, node_counts={"embed": 2})

    def test_nonpositive_node_count_rejected(self):
        with pytest.raises(ValueError):
            build_llm_pipeline(SMALL, node_counts={"decode": 0})

    def test_doubling_a_pool_halves_its_service_time(self):
        arrivals = burst()
        one = build_llm_pipeline(SMALL).serve(arrivals)
        two = build_llm_pipeline(
            SMALL, node_counts={"decode": 2}).serve(arrivals)
        np.testing.assert_allclose(
            two.stage("decode").report.service_latencies,
            one.stage("decode").report.service_latencies / 2)
        # the other stages are untouched
        np.testing.assert_allclose(
            two.stage("prefill").report.service_latencies,
            one.stage("prefill").report.service_latencies)


class TestTelemetry:
    def test_per_stage_counters_emitted(self):
        with use_registry() as registry:
            build_llm_pipeline(SMALL).serve(burst())
        counters = registry.snapshot()["counters"]
        for stage in ("tokenize", "prefill", "decode"):
            assert counters[f"llm.stage.{stage}.requests_total"] == 12
            assert counters[f"llm.stage.{stage}.batches_total"] >= 1

    def test_decode_batch_seam_fires(self):
        seen = []
        pipeline = build_llm_pipeline(SMALL,
                                      on_decode_batch=seen.append)
        report = pipeline.serve(burst())
        assert sum(batch.size for batch in seen) == 12
        assert len(seen) == report.stage("decode").report.num_batches


class TestStageAudits:
    @pytest.fixture(scope="class")
    def findings(self):
        auditor = LeakageAuditor()
        return {subject.name: auditor.audit(subject)
                for subject in stage_subjects(SMALL, prompt_length=12)}

    def test_all_standing_subjects_pass(self, findings):
        assert set(findings) == {"llm-prefill", "llm-decode",
                                 "llm-decode-memory", "llm-cross-stage"}
        for finding in findings.values():
            assert finding.passed, finding.subject

    def test_decision_planes_are_exact(self, findings):
        assert findings["llm-prefill"].mode == "exact"
        assert findings["llm-decode"].mode == "exact"
        assert findings["llm-cross-stage"].mode == "exact"
        assert findings["llm-decode-memory"].mode == "structural"
