"""DHE tests: hash family, encoding, decoding, training, Varied sizing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.latency import DheShape
from repro.embedding.dhe import DHEEmbedding, UniversalHashEncoder


class TestUniversalHashEncoder:
    def test_hash_values_in_range(self):
        encoder = UniversalHashEncoder(k=16, num_buckets=1000, rng=0)
        hashed = encoder.hash_values(np.arange(50))
        assert hashed.shape == (50, 16)
        assert hashed.min() >= 0
        assert hashed.max() < 1000

    def test_deterministic_per_input(self):
        encoder = UniversalHashEncoder(k=8, rng=0)
        a = encoder.hash_values(np.array([42]))
        b = encoder.hash_values(np.array([42]))
        np.testing.assert_array_equal(a, b)

    def test_different_inputs_differ(self):
        encoder = UniversalHashEncoder(k=32, rng=0)
        a = encoder.hash_values(np.array([1]))
        b = encoder.hash_values(np.array([2]))
        assert (a != b).any()

    def test_encode_range(self):
        encoder = UniversalHashEncoder(k=8, num_buckets=100, rng=0)
        encoded = encoder.encode(np.arange(20))
        assert encoded.min() >= -1.0
        assert encoded.max() <= 1.0

    @given(st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_matches_formula(self, x):
        encoder = UniversalHashEncoder(k=4, num_buckets=1000, rng=7)
        hashed = encoder.hash_values(np.array([x]))[0]
        for j in range(4):
            expected = (int(encoder.a[j]) * x + int(encoder.b[j])) \
                % encoder.prime % 1000
            assert hashed[j] == expected

    def test_collision_rate_near_uniform(self):
        """Universal hashing: collision probability ~ 1/m per pair."""
        m = 10_000
        encoder = UniversalHashEncoder(k=1, num_buckets=m, rng=3)
        values = encoder.hash_values(np.arange(2000))[:, 0]
        _, counts = np.unique(values, return_counts=True)
        collisions = (counts * (counts - 1) // 2).sum()
        pairs = 2000 * 1999 / 2
        assert collisions / pairs < 5.0 / m

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UniversalHashEncoder(k=0)
        with pytest.raises(ValueError):
            UniversalHashEncoder(k=4, num_buckets=1)
        with pytest.raises(ValueError):
            UniversalHashEncoder(k=4, num_buckets=100, prime=50)


class TestDHEEmbedding:
    def test_deterministic_per_index(self):
        dhe = DHEEmbedding(100, 8, k=16, fc_sizes=(16,), rng=0)
        out = dhe.generate(np.array([7, 7, 3]))
        np.testing.assert_allclose(out[0], out[1])
        assert not np.allclose(out[0], out[2])

    def test_shape_out_dim_validated(self):
        with pytest.raises(ValueError):
            DHEEmbedding(10, 8, shape=DheShape(k=16, fc_sizes=(8,),
                                               out_dim=4))

    def test_multi_dim_indices(self):
        dhe = DHEEmbedding(100, 8, k=16, fc_sizes=(16,), rng=0)
        assert dhe.generate(np.zeros((3, 4), dtype=int)).shape == (3, 4, 8)

    def test_trainable_to_match_target_table(self, rng):
        """DHE can be fit to reproduce a small table — the mechanism behind
        the paper's accuracy-parity results."""
        from repro.nn.losses import mse
        from repro.nn.optim import Adam

        target = rng.normal(size=(20, 4))
        dhe = DHEEmbedding(20, 4, k=32, fc_sizes=(64,), rng=1)
        opt = Adam(dhe.parameters(), lr=0.01)
        indices = np.arange(20)
        for _ in range(300):
            opt.zero_grad()
            loss = mse(dhe(indices), target)
            loss.backward()
            opt.step()
        assert loss.item() < 0.01

    def test_materialize_table_matches_forward(self):
        dhe = DHEEmbedding(30, 4, k=8, fc_sizes=(8,), rng=0)
        table = dhe.materialize_table(batch_size=7)
        np.testing.assert_allclose(table, dhe.generate(np.arange(30)),
                                   atol=1e-12)

    def test_varied_constructor_scales_k(self):
        uniform = DheShape(k=1024, fc_sizes=(512, 256), out_dim=16)
        small = DHEEmbedding.varied(1000, 16, uniform, rng=0)
        big = DHEEmbedding.varied(10**7, 16, uniform, rng=0)
        assert small.shape.k < big.shape.k
        assert big.shape.k == 1024

    def test_footprint_matches_parameter_count(self):
        dhe = DHEEmbedding(100, 8, k=16, fc_sizes=(16,), rng=0)
        assert dhe.footprint_bytes() >= dhe.shape.parameter_count() * 4

    def test_hash_encoding_is_batch_uniform(self):
        """Encoding cost/shape depends only on batch size, never on values —
        the structural property behind DHE's obliviousness."""
        dhe = DHEEmbedding(1000, 8, k=16, fc_sizes=(16,), rng=0)
        a = dhe.encoder.encode(np.array([0, 1, 2]))
        b = dhe.encoder.encode(np.array([999, 500, 123]))
        assert a.shape == b.shape
