"""Multi-hot pooled lookups across every generator."""

import numpy as np
import pytest

from repro.embedding import (
    CircuitOramEmbedding,
    DHEEmbedding,
    LinearScanEmbedding,
    TableEmbedding,
)
from repro.oblivious import MemoryTracer, assert_trace_oblivious

N, D = 30, 6


@pytest.fixture
def weights(rng):
    return rng.normal(size=(N, D))


class TestPooledSemantics:
    def test_sum_pooling_matches_manual(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        bags = np.array([[1, 2, 3], [4, 4, 5]])
        pooled = scan.generate_pooled(bags)
        expected = weights[bags].sum(axis=1)
        np.testing.assert_allclose(pooled, expected, atol=1e-12)

    def test_mean_pooling(self, weights):
        table = TableEmbedding(N, D, rng=0)
        table.weight.data[...] = weights
        bags = np.array([[0, 1], [2, 3]])
        pooled = table.generate_pooled(bags, mode="mean")
        np.testing.assert_allclose(pooled, weights[bags].mean(axis=1),
                                   atol=1e-12)

    def test_oram_pooled(self, weights):
        oram = CircuitOramEmbedding(N, D, weight=weights, rng=1)
        bags = np.array([[7, 8, 9]])
        np.testing.assert_allclose(oram.generate_pooled(bags),
                                   weights[[7, 8, 9]].sum(axis=0,
                                                          keepdims=True),
                                   atol=1e-12)

    def test_dhe_pooled_deterministic(self):
        dhe = DHEEmbedding(N, D, k=8, fc_sizes=(8,), rng=0)
        bags = np.array([[1, 2], [1, 2]])
        pooled = dhe.generate_pooled(bags)
        np.testing.assert_allclose(pooled[0], pooled[1])

    def test_pooled_gradients_accumulate(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        pooled = scan.forward_pooled(np.array([[3, 3]]))
        pooled.sum().backward()
        np.testing.assert_allclose(scan.weight.grad[3], 2 * np.ones(D))

    def test_shape_validation(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        with pytest.raises(ValueError):
            scan.forward_pooled(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            scan.forward_pooled(np.array([[1, 2]]), mode="max")


class TestPooledObliviousness:
    def test_scan_pooled_trace_independent_of_bag_content(self, weights):
        def fn(tracer: MemoryTracer, secret_bag):
            scan = LinearScanEmbedding(N, D, weight=weights)
            # traced path: one scan per bag element, content-independent
            scan.generate_traced(np.asarray(secret_bag).reshape(-1), tracer)

        assert_trace_oblivious(fn, [[0, 1, 2], [29, 15, 7], [3, 3, 3]])
