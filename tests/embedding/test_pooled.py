"""Multi-hot pooled lookups across every generator."""

import numpy as np
import pytest

from repro.embedding import (
    CircuitOramEmbedding,
    DHEEmbedding,
    LinearScanEmbedding,
    TableEmbedding,
)
from repro.oblivious import MemoryTracer, assert_trace_oblivious

N, D = 30, 6


@pytest.fixture
def weights(rng):
    return rng.normal(size=(N, D))


class TestPooledSemantics:
    def test_sum_pooling_matches_manual(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        bags = np.array([[1, 2, 3], [4, 4, 5]])
        pooled = scan.generate_pooled(bags)
        expected = weights[bags].sum(axis=1)
        np.testing.assert_allclose(pooled, expected, atol=1e-12)

    def test_mean_pooling(self, weights):
        table = TableEmbedding(N, D, rng=0)
        table.weight.data[...] = weights
        bags = np.array([[0, 1], [2, 3]])
        pooled = table.generate_pooled(bags, mode="mean")
        np.testing.assert_allclose(pooled, weights[bags].mean(axis=1),
                                   atol=1e-12)

    def test_oram_pooled(self, weights):
        oram = CircuitOramEmbedding(N, D, weight=weights, rng=1)
        bags = np.array([[7, 8, 9]])
        np.testing.assert_allclose(oram.generate_pooled(bags),
                                   weights[[7, 8, 9]].sum(axis=0,
                                                          keepdims=True),
                                   atol=1e-12)

    def test_dhe_pooled_deterministic(self):
        dhe = DHEEmbedding(N, D, k=8, fc_sizes=(8,), rng=0)
        bags = np.array([[1, 2], [1, 2]])
        pooled = dhe.generate_pooled(bags)
        np.testing.assert_allclose(pooled[0], pooled[1])

    def test_pooled_gradients_accumulate(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        pooled = scan.forward_pooled(np.array([[3, 3]]))
        pooled.sum().backward()
        np.testing.assert_allclose(scan.weight.grad[3], 2 * np.ones(D))

    def test_shape_validation(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        with pytest.raises(ValueError):
            scan.forward_pooled(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            scan.forward_pooled(np.array([[1, 2]]), mode="max")


class TestPooledLengths:
    def test_masked_sum_ignores_padding(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        bags = np.array([[1, 2, 0], [4, 5, 6]])
        lengths = np.array([2, 3])
        pooled = scan.generate_pooled(bags, lengths=lengths)
        np.testing.assert_allclose(pooled[0], weights[[1, 2]].sum(axis=0),
                                   atol=1e-12)
        np.testing.assert_allclose(pooled[1], weights[[4, 5, 6]].sum(axis=0),
                                   atol=1e-12)

    def test_mean_divides_by_true_length(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        bags = np.array([[7, 8, 0, 0]])  # two real ids, two pads
        pooled = scan.generate_pooled(bags, mode="mean",
                                      lengths=np.array([2]))
        np.testing.assert_allclose(pooled[0], weights[[7, 8]].mean(axis=0),
                                   atol=1e-12)

    def test_full_lengths_match_unmasked(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        bags = np.array([[1, 2], [3, 4]])
        full = scan.generate_pooled(bags, mode="mean",
                                    lengths=np.array([2, 2]))
        np.testing.assert_allclose(full,
                                   scan.generate_pooled(bags, mode="mean"),
                                   atol=1e-12)

    def test_masked_gradients_skip_padding(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        pooled = scan.forward_pooled(np.array([[3, 9]]),
                                     lengths=np.array([1]))
        pooled.sum().backward()
        np.testing.assert_allclose(scan.weight.grad[3], np.ones(D))
        np.testing.assert_allclose(scan.weight.grad[9], np.zeros(D))

    def test_length_validation(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        bags = np.array([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            scan.forward_pooled(bags, lengths=np.array([1]))  # wrong shape
        with pytest.raises(ValueError):
            scan.forward_pooled(bags, lengths=np.array([0, 2]))  # < 1
        with pytest.raises(ValueError):
            scan.forward_pooled(bags, lengths=np.array([2, 3]))  # > bag


class TestBatchedForward:
    def test_chunked_matches_single_shot(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        indices = np.arange(10)
        np.testing.assert_allclose(scan.batched_forward(indices, batch_size=3),
                                   scan.batched_forward(indices),
                                   atol=1e-12)

    def test_invalid_batch_size(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        with pytest.raises(ValueError):
            scan.batched_forward(np.arange(4), batch_size=0)


class TestIndexErrorMessages:
    def test_reports_value_and_position(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        with pytest.raises(IndexError, match=rf"index {N} at position "
                                             rf"\(1, 2\) is out of range "
                                             rf"for table of {N} rows"):
            scan.forward(np.array([[0, 1, 2], [3, 4, N]]))

    def test_reports_negative_index(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        with pytest.raises(IndexError, match=r"index -1 at position \(0,\)"):
            scan.forward(np.array([-1, 3]))


class TestPooledObliviousness:
    def test_scan_pooled_trace_independent_of_bag_content(self, weights):
        def fn(tracer: MemoryTracer, secret_bag):
            scan = LinearScanEmbedding(N, D, weight=weights)
            # traced path: one scan per bag element, content-independent
            scan.generate_traced(np.asarray(secret_bag).reshape(-1), tracer)

        assert_trace_oblivious(fn, [[0, 1, 2], [29, 15, 7], [3, 3, 3]])
