"""Tensor-Train embedding tests: factorisation, training, insecurity."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.tensor_train import (
    TTEmbedding,
    balanced_factors,
    exact_factors,
)
from repro.oblivious.analysis import compare_traces


class TestFactorisation:
    @given(st.integers(1, 10**7))
    @settings(max_examples=50)
    def test_balanced_covers_value(self, value):
        factors = balanced_factors(value)
        assert math.prod(factors) >= value
        assert max(factors) <= 2 * min(factors) + 2

    @given(st.integers(1, 4096))
    @settings(max_examples=50)
    def test_exact_product(self, value):
        factors = exact_factors(value)
        assert math.prod(factors) == value

    def test_exact_balanced_for_powers(self):
        assert sorted(exact_factors(64)) == [4, 4, 4]

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_factors(0)


class TestTTEmbedding:
    @pytest.fixture
    def tt(self):
        return TTEmbedding(1000, 16, rank=4, rng=0)

    def test_output_shape(self, tt):
        out = tt.generate(np.array([[0, 1], [998, 999]]))
        assert out.shape == (2, 2, 16)

    def test_deterministic_per_index(self, tt):
        out = tt.generate(np.array([5, 5, 6]))
        np.testing.assert_allclose(out[0], out[1])
        assert not np.allclose(out[0], out[2])

    def test_split_index_bijective_over_table(self, tt):
        indices = np.arange(1000)
        triples = set(zip(*map(lambda a: a.tolist(),
                               tt.split_index(indices))))
        assert len(triples) == 1000

    def test_compression(self, tt):
        assert tt.footprint_bytes() < 0.2 * (1000 * 16 * 4)

    def test_out_of_range(self, tt):
        with pytest.raises(IndexError):
            tt.generate(np.array([1000]))

    def test_trainable_to_fit_targets(self, rng):
        from repro.nn.losses import mse
        from repro.nn.optim import Adam

        tt = TTEmbedding(27, 8, rank=6, rng=1)
        target = rng.normal(size=(27, 8))
        opt = Adam(tt.parameters(), lr=0.02)
        indices = np.arange(27)
        for _ in range(400):
            opt.zero_grad()
            loss = mse(tt(indices), target)
            loss.backward()
            opt.step()
        assert loss.item() < 0.05

    def test_not_oblivious_by_trace(self, tt):
        result = compare_traces(
            lambda tracer, secret: tt.generate_traced(np.array([secret]),
                                                      tracer),
            [0, 500, 999])
        assert not result.oblivious

    def test_flagged_insecure(self, tt):
        assert not tt.is_oblivious

    def test_latency_and_footprint_models(self, tt):
        assert tt.modelled_latency(32) > 0
        assert tt.footprint_bytes() == tt.parameter_count() * 4
