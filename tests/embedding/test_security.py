"""Trace-obliviousness of every secure generator; leakiness of the table.

These are the paper's Table II claims, checked at trace granularity.
"""

import numpy as np
import pytest

from repro.embedding.scan import LinearScanEmbedding
from repro.embedding.table import TableEmbedding
from repro.oblivious.analysis import assert_trace_oblivious, compare_traces
from repro.oblivious.trace import MemoryTracer
from repro.oram.circuit_oram import CircuitORAM
from repro.oram.path_oram import PathORAM

N, D = 30, 4
SECRETS = [0, 7, 15, 29]


class TestLinearScanOblivious:
    def test_single_lookup(self, rng):
        weights = rng.normal(size=(N, D))

        def fn(tracer, secret):
            scan = LinearScanEmbedding(N, D, weight=weights)
            scan.generate_traced(np.array([secret]), tracer)

        assert_trace_oblivious(fn, SECRETS)

    def test_batch_lookup(self, rng):
        weights = rng.normal(size=(N, D))

        def fn(tracer, secret_batch):
            scan = LinearScanEmbedding(N, D, weight=weights)
            scan.generate_traced(np.array(secret_batch), tracer)

        assert_trace_oblivious(fn, [[0, 1, 2], [29, 29, 29], [5, 20, 11]])


class TestTableLeaks:
    def test_lookup_trace_reveals_index(self):
        result = compare_traces(
            lambda tracer, secret: TableEmbedding(N, D, rng=0)
            .generate_traced(np.array([secret]), tracer),
            SECRETS)
        assert not result.oblivious


class TestDheOblivious:
    def test_hash_encoding_identical_operations(self):
        """DHE's encode is one vectorised expression over a batch-shaped
        array: the operation sequence (and all shapes) are independent of
        the values. We check output-shape equality and that the decoder
        receives identically-shaped dense input for any secret."""
        from repro.embedding.dhe import DHEEmbedding

        dhe = DHEEmbedding(N, D, k=8, fc_sizes=(8,), rng=0)
        shapes = {dhe.encoder.encode(np.array([s])).shape for s in SECRETS}
        assert len(shapes) == 1

    def test_no_index_dependent_gather_in_forward(self):
        """DHE never touches a table: its module holds no (N x D) state."""
        from repro.embedding.dhe import DHEEmbedding

        dhe = DHEEmbedding(N, D, k=8, fc_sizes=(8,), rng=0)
        for name, param in dhe.named_parameters():
            assert param.shape[0] != N or param.shape == (N,), name


class TestOramDistributional:
    @pytest.mark.parametrize("oram_class", [PathORAM, CircuitORAM],
                             ids=["path", "circuit"])
    def test_trace_structure_constant_across_secrets(self, oram_class):
        structures = []
        for secret in SECRETS:
            tracer = MemoryTracer()
            oram = oram_class(N, D, rng=99, tracer=tracer)
            tracer.clear()
            oram.read(secret)
            structures.append([(e.op, e.region) for e in tracer])
        assert all(s == structures[0] for s in structures)

    @pytest.mark.parametrize("oram_class", [PathORAM, CircuitORAM],
                             ids=["path", "circuit"])
    def test_event_count_constant_across_secrets(self, oram_class):
        counts = set()
        for secret in SECRETS:
            tracer = MemoryTracer()
            oram = oram_class(N, D, rng=99, tracer=tracer)
            tracer.clear()
            oram.read(secret)
            counts.add(len(tracer))
        assert len(counts) == 1
