"""Hybrid dual-representation tests (Algorithm 2's offline conversion)."""

import numpy as np
import pytest

from repro.embedding.dhe import DHEEmbedding
from repro.embedding.hybrid import TECHNIQUE_DHE, TECHNIQUE_SCAN, HybridEmbedding


@pytest.fixture
def hybrid():
    return HybridEmbedding(DHEEmbedding(30, 4, k=8, fc_sizes=(8,), rng=0))


class TestSelection:
    def test_default_is_dhe(self, hybrid):
        assert hybrid.active == TECHNIQUE_DHE
        assert hybrid.technique == "hybrid/dhe"

    def test_select_scan_materialises(self, hybrid):
        hybrid.select(TECHNIQUE_SCAN)
        assert hybrid.active == TECHNIQUE_SCAN
        assert hybrid._scan is not None

    def test_invalid_technique(self, hybrid):
        with pytest.raises(ValueError):
            hybrid.select("oram")

    def test_select_returns_self(self, hybrid):
        assert hybrid.select(TECHNIQUE_SCAN) is hybrid


class TestRepresentationEquivalence:
    def test_both_representations_same_outputs(self, hybrid):
        indices = np.array([0, 13, 29, 13])
        dhe_out = hybrid.generate(indices)
        hybrid.select(TECHNIQUE_SCAN)
        scan_out = hybrid.generate(indices)
        np.testing.assert_allclose(dhe_out, scan_out, atol=1e-12)

    def test_refresh_after_retraining(self, hybrid):
        hybrid.select(TECHNIQUE_SCAN)
        stale = hybrid.generate(np.array([5]))
        # "Retrain" the DHE: perturb its decoder.
        for param in hybrid.dhe.parameters():
            param.data += 0.1
        hybrid.refresh_table()
        refreshed = hybrid.generate(np.array([5]))
        assert not np.allclose(stale, refreshed)
        hybrid.select(TECHNIQUE_DHE)
        np.testing.assert_allclose(hybrid.generate(np.array([5])),
                                   refreshed, atol=1e-12)


class TestActiveAccounting:
    def test_latency_follows_active(self, hybrid):
        dhe_latency = hybrid.modelled_latency(batch=32)
        hybrid.select(TECHNIQUE_SCAN)
        scan_latency = hybrid.modelled_latency(batch=32)
        assert dhe_latency != scan_latency

    def test_footprint_follows_active(self, hybrid):
        dhe_bytes = hybrid.footprint_bytes()
        hybrid.select(TECHNIQUE_SCAN)
        assert hybrid.footprint_bytes() != dhe_bytes

    def test_is_oblivious(self, hybrid):
        assert hybrid.is_oblivious
