"""Hybrid dual-representation tests (Algorithm 2's offline conversion)."""

import numpy as np
import pytest

from repro.embedding.dhe import DHEEmbedding
from repro.embedding.hybrid import TECHNIQUE_DHE, TECHNIQUE_SCAN, HybridEmbedding


@pytest.fixture
def hybrid():
    return HybridEmbedding(DHEEmbedding(30, 4, k=8, fc_sizes=(8,), rng=0))


class TestSelection:
    def test_default_is_dhe(self, hybrid):
        assert hybrid.active == TECHNIQUE_DHE
        assert hybrid.technique == "hybrid/dhe"

    def test_select_scan_materialises(self, hybrid):
        hybrid.select(TECHNIQUE_SCAN)
        assert hybrid.active == TECHNIQUE_SCAN
        assert hybrid._scan is not None

    def test_invalid_technique(self, hybrid):
        with pytest.raises(ValueError):
            hybrid.select("oram")

    def test_select_returns_self(self, hybrid):
        assert hybrid.select(TECHNIQUE_SCAN) is hybrid


class TestRepresentationEquivalence:
    def test_both_representations_same_outputs(self, hybrid):
        indices = np.array([0, 13, 29, 13])
        dhe_out = hybrid.generate(indices)
        hybrid.select(TECHNIQUE_SCAN)
        scan_out = hybrid.generate(indices)
        np.testing.assert_allclose(dhe_out, scan_out, atol=1e-12)

    def test_refresh_after_retraining(self, hybrid):
        hybrid.select(TECHNIQUE_SCAN)
        stale = hybrid.generate(np.array([5]))
        # "Retrain" the DHE: perturb its decoder.
        for param in hybrid.dhe.parameters():
            param.data += 0.1
        hybrid.refresh_table()
        refreshed = hybrid.generate(np.array([5]))
        assert not np.allclose(stale, refreshed)
        hybrid.select(TECHNIQUE_DHE)
        np.testing.assert_allclose(hybrid.generate(np.array([5])),
                                   refreshed, atol=1e-12)


class TestThresholdBoundaries:
    """Cost-model crossover boundaries applied to live hybrids: a table
    exactly at the scan/DHE threshold, one row past it, and the degenerate
    single-row table."""

    def make_hybrid(self, size):
        return HybridEmbedding(DHEEmbedding(size, 4, k=8, fc_sizes=(8,),
                                            rng=0))

    def test_table_exactly_at_threshold_scans(self):
        # The allocation rule is inclusive (size <= threshold -> scan):
        # when the cost model says the representations tie, the cheaper-to-
        # refresh table wins.
        from repro.hybrid.allocator import (
            allocate_by_threshold,
            apply_allocations,
        )

        hybrid = self.make_hybrid(64)
        apply_allocations([hybrid], allocate_by_threshold((64,),
                                                          threshold=64))
        assert hybrid.active == TECHNIQUE_SCAN

    def test_one_row_past_threshold_stays_dhe(self):
        from repro.hybrid.allocator import (
            allocate_by_threshold,
            apply_allocations,
        )

        hybrid = self.make_hybrid(65)
        apply_allocations([hybrid], allocate_by_threshold((65,),
                                                          threshold=64))
        assert hybrid.active == TECHNIQUE_DHE

    def test_boundary_selection_preserves_outputs(self):
        # Flipping representation exactly at the crossover must not change
        # the embeddings the table serves.
        hybrid = self.make_hybrid(64)
        indices = np.array([0, 31, 63])
        dhe_out = hybrid.generate(indices)
        hybrid.select(TECHNIQUE_SCAN)
        np.testing.assert_allclose(hybrid.generate(indices), dhe_out,
                                   atol=1e-12)

    def test_single_row_table_both_representations(self):
        hybrid = self.make_hybrid(1)
        indices = np.array([0, 0])
        dhe_out = hybrid.generate(indices)
        hybrid.select(TECHNIQUE_SCAN)
        scan_out = hybrid.generate(indices)
        np.testing.assert_allclose(scan_out, dhe_out, atol=1e-12)
        np.testing.assert_allclose(scan_out[0], scan_out[1], atol=0)
        assert hybrid.footprint_bytes() > 0
        assert hybrid.modelled_latency(batch=1) > 0.0


class TestActiveAccounting:
    def test_latency_follows_active(self, hybrid):
        dhe_latency = hybrid.modelled_latency(batch=32)
        hybrid.select(TECHNIQUE_SCAN)
        scan_latency = hybrid.modelled_latency(batch=32)
        assert dhe_latency != scan_latency

    def test_footprint_follows_active(self, hybrid):
        dhe_bytes = hybrid.footprint_bytes()
        hybrid.select(TECHNIQUE_SCAN)
        assert hybrid.footprint_bytes() != dhe_bytes

    def test_is_oblivious(self, hybrid):
        assert hybrid.is_oblivious
