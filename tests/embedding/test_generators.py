"""Shared behaviour of all embedding generators + per-class specifics."""

import numpy as np
import pytest

from repro.embedding import (
    CircuitOramEmbedding,
    LinearScanEmbedding,
    PathOramEmbedding,
    RingOramEmbedding,
    TableEmbedding,
)

N, D = 40, 6


@pytest.fixture
def weights(rng):
    return rng.normal(size=(N, D))


def storage_generators(weights):
    return [
        TableEmbedding(N, D, rng=0),
        LinearScanEmbedding(N, D, weight=weights),
        PathOramEmbedding(N, D, weight=weights, rng=1),
        CircuitOramEmbedding(N, D, weight=weights, rng=2),
        RingOramEmbedding(N, D, weight=weights, rng=3),
    ]


class TestStorageGeneratorsAgree:
    def test_scan_and_orams_return_table_rows(self, weights):
        indices = np.array([0, 5, 5, 39])
        for generator in storage_generators(weights)[1:]:
            out = generator.generate(indices)
            np.testing.assert_allclose(out, weights[indices], atol=1e-12)

    def test_index_shape_preserved(self, weights):
        indices = np.array([[1, 2, 3], [4, 5, 6]])
        for generator in storage_generators(weights)[1:]:
            assert generator.generate(indices).shape == (2, 3, D)

    def test_out_of_range_rejected(self, weights):
        for generator in storage_generators(weights):
            with pytest.raises(IndexError):
                generator.generate(np.array([N]))

    def test_obliviousness_flags(self, weights):
        flags = {g.technique: g.is_oblivious
                 for g in storage_generators(weights)}
        assert flags == {"lookup": False, "scan": True, "path-oram": True,
                         "circuit-oram": True, "ring-oram": True}

    def test_footprints_ordered(self, weights):
        scan = LinearScanEmbedding(N, D, weight=weights)
        path = PathOramEmbedding(N, D, weight=weights, rng=0)
        assert path.footprint_bytes() > scan.footprint_bytes()

    def test_modelled_latency_positive(self, weights):
        for generator in storage_generators(weights):
            assert generator.modelled_latency(batch=32) > 0


class TestLinearScanEmbedding:
    def test_trainable(self, weights):

        scan = LinearScanEmbedding(N, D, weight=weights)
        out = scan(np.array([3]))
        (out ** 2.0).sum().backward()
        assert scan.weight.grad is not None
        assert np.abs(scan.weight.grad[3]).sum() > 0
        assert np.abs(scan.weight.grad[np.arange(N) != 3]).sum() == 0

    def test_weight_shape_validated(self):
        with pytest.raises(ValueError):
            LinearScanEmbedding(N, D, weight=np.zeros((N, D + 1)))


class TestOramEmbedding:
    def test_load_weights_refreshes(self, rng):
        generator = CircuitOramEmbedding(16, 4, rng=0)
        fresh = rng.normal(size=(16, 4))
        generator.load_weights(fresh)
        np.testing.assert_allclose(generator.generate(np.arange(16)), fresh)

    def test_empty_batch(self, weights):
        generator = CircuitOramEmbedding(N, D, weight=weights, rng=0)
        out = generator.generate(np.array([], dtype=np.int64))
        assert out.shape == (0, D)

    def test_weight_shape_validated(self):
        with pytest.raises(ValueError):
            PathOramEmbedding(N, D, weight=np.zeros((N, D + 1)))


class TestConstructorValidation:
    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            TableEmbedding(0, 4)
        with pytest.raises(ValueError):
            TableEmbedding(4, 0)
