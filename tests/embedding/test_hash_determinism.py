"""``UniversalHashEncoder.encode`` must be deterministic *across processes*.

The encoder is seeded Carter-Wegman arithmetic — nothing may depend on
Python's per-process ``hash()`` randomisation (``PYTHONHASHSEED``), object
ids, or dict ordering. A regression here silently breaks every cross-node
guarantee the cluster layer makes (replicas answering for the same table
must produce identical embeddings) and the byte-identical artifact gates.
"""

import hashlib
import os
import pathlib
import subprocess
import sys

import numpy as np

import repro
from repro.embedding.dhe import UniversalHashEncoder

_SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parent.parent)

_SNIPPET = """
import hashlib
import numpy as np
from repro.embedding.dhe import UniversalHashEncoder

encoder = UniversalHashEncoder(k=32, num_buckets=4096, rng={seed})
indices = np.arange(0, 5000, 7, dtype=np.uint64)
print(hashlib.sha256(encoder.encode(indices).tobytes()).hexdigest())
print(hashlib.sha256(encoder.hash_values(indices).tobytes()).hexdigest())
"""


def _digests_in_subprocess(seed: int, hash_seed: str) -> list:
    env = dict(os.environ,
               PYTHONPATH=_SRC_DIR, PYTHONHASHSEED=hash_seed)
    result = subprocess.run(
        [sys.executable, "-c", _SNIPPET.format(seed=seed)],
        capture_output=True, text=True, check=True, env=env)
    return result.stdout.split()


def _digests_in_process(seed: int) -> list:
    encoder = UniversalHashEncoder(k=32, num_buckets=4096, rng=seed)
    indices = np.arange(0, 5000, 7, dtype=np.uint64)
    return [hashlib.sha256(encoder.encode(indices).tobytes()).hexdigest(),
            hashlib.sha256(encoder.hash_values(indices).tobytes()).hexdigest()]


class TestCrossProcessDeterminism:
    def test_same_seed_same_digest_across_hash_randomization(self):
        # two subprocesses with *different* PYTHONHASHSEED values: if any
        # step leaned on hash(), these digests would diverge
        first = _digests_in_subprocess(seed=123, hash_seed="1")
        second = _digests_in_subprocess(seed=123, hash_seed="2718281828")
        assert first == second

    def test_subprocess_matches_this_process(self):
        assert _digests_in_subprocess(seed=123, hash_seed="0") == \
            _digests_in_process(seed=123)

    def test_different_seeds_differ(self):
        assert _digests_in_process(seed=1) != _digests_in_process(seed=2)


class TestEncoderProperties:
    def test_encode_range_and_shape(self):
        encoder = UniversalHashEncoder(k=8, num_buckets=64, rng=0)
        encoded = encoder.encode(np.arange(100))
        assert encoded.shape == (100, 8)
        assert encoded.min() >= -1.0 and encoded.max() <= 1.0

    def test_hash_values_stable_under_repeat_calls(self):
        encoder = UniversalHashEncoder(k=8, num_buckets=64, rng=0)
        indices = np.arange(50)
        np.testing.assert_array_equal(encoder.hash_values(indices),
                                      encoder.hash_values(indices))
