"""The serving seam: ``measured-lazy`` as just another ExecutionBackend."""

import pytest

from repro.lazy import NumpyRuntime
from repro.serving.backends import (
    LazyMeasuredBackend,
    MeasuredBackend,
    resolve_backend,
)
from repro.costmodel.latency import DheShape

SHAPE = DheShape(k=16, fc_sizes=(16,), out_dim=4)


class TestResolution:
    def test_resolve_by_name(self):
        backend = resolve_backend("measured-lazy", uniform_shape=SHAPE)
        assert isinstance(backend, LazyMeasuredBackend)
        assert backend.name == "measured-lazy"
        assert isinstance(backend, MeasuredBackend)  # drop-in for callers

    def test_unknown_name_lists_lazy_option(self):
        with pytest.raises(ValueError, match="measured-lazy"):
            resolve_backend("warp-speed")

    def test_instance_passthrough(self):
        backend = LazyMeasuredBackend(SHAPE)
        assert resolve_backend(backend) is backend


class TestLatencies:
    def test_technique_latency_positive_and_cached(self):
        backend = LazyMeasuredBackend(SHAPE, repeats=1)
        first = backend.technique_latency("dhe-uniform", 64, 4, batch=8)
        assert first > 0.0
        # the runtime cached the capture; the generator cache holds one entry
        assert backend.runtime.cache_size() >= 1
        cached = backend.runtime.cache_size()
        backend.technique_latency("dhe-uniform", 64, 4, batch=8)
        assert backend.runtime.cache_size() == cached  # replay, no re-capture

    def test_scan_latency_positive(self):
        backend = LazyMeasuredBackend(SHAPE, repeats=1)
        assert backend.technique_latency("scan", 64, 4, batch=8) > 0.0

    def test_generator_left_in_original_mode(self):
        backend = LazyMeasuredBackend(SHAPE, repeats=1)
        backend.technique_latency("dhe-uniform", 64, 4, batch=4)
        generator = backend._generator("dhe-uniform", 64, 4)
        assert generator.training  # restored to the default training mode

    def test_external_runtime_is_used(self):
        runtime = NumpyRuntime()
        backend = LazyMeasuredBackend(SHAPE, repeats=1, runtime=runtime)
        backend.technique_latency("dhe-uniform", 64, 4, batch=4)
        assert runtime.cache_size() >= 1
