"""Graph-recording tests: shapes, dtypes, movement, hashing — no execution."""

import numpy as np
import pytest

from repro.lazy.graph import LazyBuffer, count_dispatch_ops


class TestRecording:
    def test_arithmetic_records_instead_of_computing(self):
        a = LazyBuffer.placeholder((3, 4), np.float64, name="a")
        out = (a + 1.0) * 2.0
        assert out.op.op == "mul"
        assert out.op.srcs[0].op.op == "add"
        assert out.shape == (3, 4)
        assert count_dispatch_ops(out) == 2

    def test_source_wraps_without_copy(self):
        array = np.ones((2, 2))
        buf = LazyBuffer.from_data(array)
        assert buf.data is array
        assert buf.is_source and not buf.is_placeholder

    def test_placeholder_flags(self):
        buf = LazyBuffer.placeholder((2,), np.float64)
        assert buf.is_source and buf.is_placeholder

    def test_dtype_promotion_matches_numpy(self):
        a = LazyBuffer.placeholder((2,), np.float32)
        b = LazyBuffer.placeholder((2,), np.int64)
        assert (a + b).dtype == (np.zeros(2, np.float32)
                                 + np.zeros(2, np.int64)).dtype
        assert (a > b).dtype == np.dtype(bool)

    def test_broadcast_shape_inference(self):
        a = LazyBuffer.placeholder((4, 1), np.float64)
        b = LazyBuffer.placeholder((3,), np.float64)
        assert (a * b).shape == (4, 3)

    def test_matmul_shapes(self):
        a = LazyBuffer.placeholder((5, 8), np.float64)
        b = LazyBuffer.placeholder((8, 3), np.float64)
        assert (a @ b).shape == (5, 3)
        with pytest.raises(ValueError):
            _ = b @ a

    def test_reduce_shapes(self):
        a = LazyBuffer.placeholder((2, 5), np.float64)
        assert a.sum().shape == ()
        assert a.sum(axis=1).shape == (2,)
        assert a.max(axis=0, keepdims=True).shape == (1, 5)

    def test_zero_size_max_raises_like_numpy(self):
        a = LazyBuffer.placeholder((0, 4), np.float64)
        with pytest.raises(ValueError):
            a.max()

    def test_pow_requires_scalar(self):
        a = LazyBuffer.placeholder((2,), np.float64)
        with pytest.raises(TypeError):
            a ** np.ones(2)


class TestMovement:
    def test_reshape_records_view_op(self):
        a = LazyBuffer.placeholder((2, 6), np.float64)
        out = a.reshape(3, 4)
        assert out.op.op == "reshape" and out.shape == (3, 4)

    def test_reshape_infers_minus_one(self):
        a = LazyBuffer.placeholder((2, 6), np.float64)
        assert a.reshape(-1).shape == (12,)
        with pytest.raises(ValueError):
            a.reshape(5, -1)

    def test_transpose_default_reverses(self):
        a = LazyBuffer.placeholder((2, 3, 4), np.float64)
        assert a.T.shape == (4, 3, 2)
        assert a.transpose(0, 2, 1).shape == (2, 4, 3)
        with pytest.raises(ValueError):
            a.transpose(0, 0, 1)

    def test_broadcast_to(self):
        a = LazyBuffer.placeholder((1, 4), np.float64)
        assert a.broadcast_to((3, 4)).shape == (3, 4)
        with pytest.raises(ValueError):
            a.broadcast_to((3, 5))


class TestUfuncDispatch:
    def test_numpy_ufunc_on_lazy_records(self):
        a = LazyBuffer.placeholder((3,), np.float64)
        assert np.exp(a).op.op == "exp"
        assert np.tanh(a).op.op == "tanh"

    def test_ndarray_op_lazy_records(self):
        a = LazyBuffer.placeholder((3,), np.float64)
        out = np.ones(3) + a
        assert isinstance(out, LazyBuffer) and out.op.op == "add"
        out = np.ones((2, 3)) @ LazyBuffer.placeholder((3,), np.float64)
        assert isinstance(out, LazyBuffer) and out.op.op == "matmul"

    def test_unknown_ufunc_rejected(self):
        a = LazyBuffer.placeholder((3,), np.float64)
        with pytest.raises(TypeError):
            np.arctan2(a, a)


class TestGraphUtilities:
    def test_toposort_parents_first(self):
        a = LazyBuffer.placeholder((2,), np.float64)
        out = (a + 1.0) * (a + 1.0).exp()
        order = out.toposort()
        position = {id(node): i for i, node in enumerate(order)}
        for node in order:
            if node.op is not None:
                assert all(position[id(src)] < position[id(node)]
                           for src in node.op.srcs)

    def test_signature_structure_invariant_across_builds(self):
        def build():
            x = LazyBuffer.placeholder((4, 4), np.float64, name="x")
            return ((x @ np.eye(4)) + 1.0).sum(axis=1)

        sig_a = build().signature(include_source_identity=False)
        sig_b = build().signature(include_source_identity=False)
        assert sig_a == sig_b

    def test_signature_distinguishes_source_arrays(self):
        x = LazyBuffer.placeholder((4,), np.float64, name="x")
        table_a, table_b = np.eye(4), np.eye(4)
        sig_a = (x @ table_a).signature()
        sig_b = (x @ table_b).signature()
        assert sig_a != sig_b

    def test_signature_distinguishes_structure(self):
        x = LazyBuffer.placeholder((4,), np.float64, name="x")
        assert ((x + 1.0).signature(include_source_identity=False)
                != (x * 1.0).signature(include_source_identity=False))

    def test_realize_without_placeholders(self):
        buf = LazyBuffer.from_data(np.arange(6.0).reshape(2, 3))
        out = (buf * 2.0).sum(axis=0).realize()
        np.testing.assert_array_equal(out, np.arange(6.0).reshape(2, 3)
                                      .sum(axis=0) * 2.0)
