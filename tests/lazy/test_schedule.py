"""Scheduler tests: fusion decisions, kernel ordering, trace plans."""

import numpy as np
import pytest

from repro.lazy.graph import LazyBuffer
from repro.lazy.schedule import IndexLeakingScheduler, Scheduler
from repro.oblivious.trace import READ


def _placeholder(shape=(4, 4), name="x"):
    return LazyBuffer.placeholder(shape, np.float64, name=name)


class TestFusion:
    def test_elementwise_chain_fuses_to_one_kernel(self):
        x = _placeholder()
        out = ((x + 1.0) * 2.0 - 3.0).exp()
        schedule = Scheduler().compile(out, [x])
        assert schedule.num_ops == 4
        assert schedule.num_kernels == 1
        assert schedule.kernels[0].kind == "fused-elementwise"
        assert schedule.dispatch_ratio == 4.0

    def test_matmul_anchors_its_own_kernel(self):
        x = _placeholder()
        out = (x @ np.eye(4)) + 1.0
        schedule = Scheduler().compile(out, [x])
        kinds = [kernel.kind for kernel in schedule.kernels]
        assert kinds == ["matmul", "fused-elementwise"]

    def test_relu_epilogue_fuses_despite_two_consumers(self):
        # relu is recorded as mask = pre > 0; out = pre * mask — the
        # pre-activation feeds two elementwise consumers and the whole
        # epilogue must still collapse into the linear layer's add group.
        x = _placeholder()
        pre = (x @ np.eye(4)) + 1.0
        out = pre * (pre > 0.0)
        schedule = Scheduler().compile(out, [x])
        kinds = [kernel.kind for kernel in schedule.kernels]
        assert kinds == ["matmul", "fused-elementwise"]
        assert schedule.kernels[1].fused_ops == 3  # add, greater, mul

    def test_movement_ops_are_free(self):
        x = _placeholder((2, 8))
        out = (x.reshape(4, 4).transpose() + 1.0).reshape(-1)
        schedule = Scheduler().compile(out, [x])
        assert schedule.num_kernels == 1
        assert schedule.num_ops == 4  # reshape, transpose, add, reshape

    def test_reduce_anchors_kernel(self):
        x = _placeholder()
        out = (x + 1.0).sum(axis=1)
        schedule = Scheduler().compile(out, [x])
        kinds = [kernel.kind for kernel in schedule.kernels]
        assert kinds == ["fused-elementwise", "reduce"]

    def test_kernel_order_respects_dependencies(self):
        # diamond with a matmul on one arm: the join op must not merge
        # into a group that would run before the matmul's kernel.
        x = _placeholder()
        left = x + 1.0
        right = left @ np.eye(4)
        out = left * right  # depends on kernel(left) AND kernel(right)
        schedule = Scheduler().compile(out, [x])
        computed_in = {}
        for kernel in schedule.kernels:
            for node in kernel.nodes:
                computed_in[id(node)] = kernel.index
        for kernel in schedule.kernels:
            for node in kernel.nodes:
                for src in node.op.srcs:
                    if id(src) in computed_in:
                        assert computed_in[id(src)] <= kernel.index

    def test_inputs_must_be_placeholders_and_reachable(self):
        x = _placeholder()
        out = x + 1.0
        with pytest.raises(ValueError):
            Scheduler().compile(out, [LazyBuffer.from_data(np.ones(2))])
        with pytest.raises(ValueError):
            Scheduler().compile(out, [_placeholder(name="unused")])


class TestTracePlan:
    def test_static_plan_one_read_per_kernel(self):
        x = _placeholder()
        out = ((x @ np.eye(4)) + 1.0).sum()
        schedule = Scheduler().compile(out, [x], name="plan")
        assert len(schedule.trace_events) == schedule.num_kernels
        for index, event in enumerate(schedule.trace_events):
            assert event.op == READ
            assert event.region == "lazy.plan"
            assert event.address == index
        assert schedule.dynamic_trace is None

    def test_leaking_scheduler_sets_dynamic_trace(self):
        x = _placeholder()
        schedule = IndexLeakingScheduler().compile(x + 1.0, [x])
        assert schedule.dynamic_trace is not None
        addr_a = schedule.dynamic_trace(schedule.kernels[0], [np.ones(4)])
        addr_b = schedule.dynamic_trace(schedule.kernels[0], [np.zeros(4)])
        assert addr_a != addr_b  # content-dependent: that is the leak
