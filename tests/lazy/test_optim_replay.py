"""Optimizer steps flow into captured-graph replays without re-capture.

The lazy runtime reads parameters through views of the live ``.data``
buffers, so an in-place optimizer update (``param.data -= ...``) must be
visible on the very next replay. These tests pin that contract for the
real ``repro.nn.optim`` optimizers — the secure-online-training loop
depends on it: the dense DLRM weights are stepped between serving batches
while the captured inference graphs keep replaying fresh values.
"""

import numpy as np
import pytest

from repro.lazy import capture
from repro.nn.layers import MLP
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


@pytest.fixture
def mlp():
    return MLP((6, 12, 3), rng=0)


def train_steps(model, optimizer, x, steps):
    model.train()
    for _ in range(steps):
        optimizer.zero_grad()
        out = model(Tensor(x))
        (out * out).sum().backward()
        optimizer.step()
    model.eval()


@pytest.mark.parametrize("make_optimizer", [
    lambda params: SGD(params, lr=0.05, momentum=0.9),
    lambda params: Adam(params, lr=0.01),
], ids=["sgd-momentum", "adam"])
def test_optimizer_steps_flow_into_replay(mlp, rng, make_optimizer):
    x = rng.normal(size=(4, 6))
    mlp.eval()
    graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
    before = graph(x)

    # Two real steps so stateful buffers (momentum / Adam moments) engage.
    train_steps(mlp, make_optimizer(mlp.parameters()), x, steps=2)

    after = graph(x)
    assert not np.array_equal(before, after)
    # The same capture replays the post-step weights exactly.
    assert after.tobytes() == mlp(Tensor(x)).data.tobytes()


def test_interleaved_steps_and_replays_track_every_update(mlp, rng):
    x = rng.normal(size=(4, 6))
    mlp.eval()
    graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
    optimizer = Adam(mlp.parameters(), lr=0.01)
    for _ in range(3):
        train_steps(mlp, optimizer, x, steps=1)
        assert graph(x).tobytes() == mlp(Tensor(x)).data.tobytes()
