"""Bench determinism + gate wiring (the CI lazy-smoke job in miniature)."""

import json

import pytest

from repro.lazy import bench


@pytest.fixture(scope="module")
def report():
    return bench.run_bench(seed=3)


class TestBenchReport:
    def test_all_gates_pass(self, report):
        assert report["gates"]["passed"], report["gates"]

    def test_sweep_covers_every_path_and_batch(self, report):
        cells = {(cell["path"], cell["batch"]) for cell in report["cells"]}
        assert cells == {(path, batch)
                         for path in ("dhe-decode", "scan", "dlrm-mlp")
                         for batch in bench.BATCHES}

    def test_multi_op_paths_fuse(self, report):
        for cell in report["cells"]:
            if cell["eager_ops"] > 1:
                assert cell["kernels"] < cell["eager_ops"], cell
            assert cell["parity"], cell

    def test_report_is_deterministic_and_json_stable(self, report):
        again = bench.run_bench(seed=3)
        assert (json.dumps(report, sort_keys=True)
                == json.dumps(again, sort_keys=True))

    def test_different_seed_changes_structural_content_only(self, report):
        other = bench.run_bench(seed=4)
        assert other["gates"]["passed"]
        # counted quantities are seed-independent (structure is fixed)
        assert ([c["kernels"] for c in other["cells"]]
                == [c["kernels"] for c in report["cells"]])

    def test_negative_control_is_flagged_in_audit(self, report):
        findings = {f["subject"]: f for f in report["audit"]["findings"]}
        assert findings["index-leaking-scheduler"]["leak_detected"]
        assert findings["index-leaking-scheduler"]["passed"]
        assert findings["lazy-dhe-decode"]["leak_detected"] is False

    def test_render_mentions_gates(self, report):
        text = bench.render(report)
        assert "gates:" in text and "PASS" in text

    def test_cli_exit_zero_and_json_round_trip(self, tmp_path):
        path = tmp_path / "lazy.json"
        assert bench.main(["--seed", "3", "--json", str(path),
                           "--no-timing"]) == 0
        loaded = json.loads(path.read_text())
        assert loaded["gates"]["passed"]
