"""Regression gates: captured-graph replay is byte- and trace-identical to
eager for the rewired hot paths (DHE forward, masked-onehot scan, DLRM
MLPs), and the leakage audit keeps its teeth against the in-tree
input-shape-leaking scheduler."""

import numpy as np
import pytest

from repro.costmodel.latency import DheShape
from repro.embedding.dhe import DHEEmbedding
from repro.embedding.scan import LinearScanEmbedding
from repro.lazy import IndexLeakingScheduler, NumpyRuntime, use_runtime
from repro.oblivious.linear_scan import linear_scan_batch_vectorized
from repro.oblivious.trace import MemoryTracer
from repro.telemetry.audit import MODE_EXACT, AuditSubject, LeakageAuditor

ROWS, DIM = 64, 8
SHAPE = DheShape(k=32, fc_sizes=(16,), out_dim=DIM)


@pytest.fixture
def dhe():
    model = DHEEmbedding(ROWS, DIM, shape=SHAPE, num_buckets=4096, rng=11)
    model.eval()
    return model


class TestDheParity:
    def test_forward_byte_identical_under_runtime(self, dhe, rng):
        indices = rng.integers(0, ROWS, size=(3, 5))
        eager = dhe.forward(indices).data
        with use_runtime(NumpyRuntime()):
            warm = dhe.forward(indices).data
            replay = dhe.forward(indices).data
        assert eager.shape == (3, 5, DIM)
        assert eager.tobytes() == warm.tobytes() == replay.tobytes()

    def test_generate_traced_trace_and_bytes_identical(self, dhe, rng):
        indices = rng.integers(0, ROWS, size=12)
        eager_tracer = MemoryTracer()
        eager = dhe.generate_traced(indices, eager_tracer)
        lazy_tracer = MemoryTracer()
        with use_runtime(NumpyRuntime(tracer=lazy_tracer)):
            lazy = dhe.generate_traced(indices, lazy_tracer)
        assert eager.tobytes() == lazy.tobytes()
        # the weight-sweep portion of the trace is identical; the lazy run
        # additionally reports its (static) kernel launches
        weight_events = [e for e in lazy_tracer.snapshot()
                         if e.region.startswith("dhe.")]
        assert tuple(weight_events) == tuple(eager_tracer.snapshot())
        kernel_events = [e for e in lazy_tracer.snapshot()
                         if e.region.startswith("lazy.")]
        assert kernel_events  # launches were traced at all

    def test_training_mode_stays_eager_and_differentiable(self, dhe, rng):
        dhe.train()
        indices = rng.integers(0, ROWS, size=4)
        with use_runtime(NumpyRuntime()):
            out = dhe.forward(indices)
        assert not out.is_lazy
        out.sum().backward()  # autograd graph must exist
        assert any(param.grad is not None for param in dhe.parameters())

    def test_cache_keyed_per_batch_shape(self, dhe, rng):
        runtime = NumpyRuntime()
        with use_runtime(runtime):
            dhe.forward(rng.integers(0, ROWS, size=4))
            dhe.forward(rng.integers(0, ROWS, size=4))
            assert runtime.cache_size() == 1
            dhe.forward(rng.integers(0, ROWS, size=9))
            assert runtime.cache_size() == 2


class TestScanParity:
    def test_vectorized_scan_byte_identical(self, rng):
        table = rng.normal(size=(ROWS, DIM))
        indices = rng.integers(0, ROWS, size=17)
        eager = linear_scan_batch_vectorized(table, indices)
        with use_runtime(NumpyRuntime()):
            warm = linear_scan_batch_vectorized(table, indices)
            replay = linear_scan_batch_vectorized(table, indices)
        assert eager.tobytes() == warm.tobytes() == replay.tobytes()

    def test_empty_batch_short_circuits(self, rng):
        table = rng.normal(size=(ROWS, DIM))
        runtime = NumpyRuntime()
        with use_runtime(runtime):
            out = linear_scan_batch_vectorized(table, np.array([], np.int64))
        assert out.shape == (0, DIM)
        assert runtime.cache_size() == 0  # nothing captured

    def test_out_of_range_still_raises_under_runtime(self, rng):
        table = rng.normal(size=(ROWS, DIM))
        with use_runtime(NumpyRuntime()):
            with pytest.raises(IndexError):
                linear_scan_batch_vectorized(table, [ROWS])

    def test_scan_embedding_module_byte_identical(self, rng):
        module = LinearScanEmbedding(ROWS, DIM, rng=5)
        module.eval()
        indices = rng.integers(0, ROWS, size=(2, 6))
        eager = module.forward(indices).data
        with use_runtime(NumpyRuntime()):
            lazy = module.forward(indices).data
        assert eager.tobytes() == lazy.tobytes()


class TestMlpParity:
    @pytest.mark.parametrize("layer_sizes", [(13, 512, 256, 64, 16),
                                             (13, 512, 256, 64)])
    def test_dlrm_bottom_mlps_byte_identical(self, layer_sizes, rng):
        from repro.lazy import capture
        from repro.nn.layers import MLP
        from repro.nn.tensor import Tensor

        mlp = MLP(layer_sizes, rng=3)
        mlp.eval()
        x = rng.normal(size=(8, layer_sizes[0]))
        eager = mlp(Tensor(x)).data
        graph = capture(lambda b: mlp(Tensor(b)), [x], name="dlrm")
        assert graph(x).tobytes() == eager.tobytes()
        assert graph(x).tobytes() == eager.tobytes()


class TestLeakageGate:
    SECRETS = ([0] * 8, [ROWS - 1] * 8, list(range(8)))

    def test_honest_runtime_traces_are_secret_independent(self, dhe):
        def run(tracer, secret):
            with use_runtime(NumpyRuntime(tracer=tracer)):
                dhe.generate_traced(np.asarray(secret), tracer)

        finding = LeakageAuditor().audit(AuditSubject(
            "lazy-dhe", run, self.SECRETS, mode=MODE_EXACT))
        assert finding.passed and finding.observed_oblivious
        assert finding.divergence == 0.0

    def test_leaking_scheduler_is_caught(self, rng):
        table = rng.normal(size=(ROWS, DIM))

        def run(tracer, secret):
            runtime = NumpyRuntime(scheduler=IndexLeakingScheduler(),
                                   tracer=tracer)
            with use_runtime(runtime):
                linear_scan_batch_vectorized(table, secret)

        finding = LeakageAuditor().audit(AuditSubject(
            "leaky", run, self.SECRETS, mode=MODE_EXACT,
            expect_oblivious=False))
        assert finding.leak_detected
        assert finding.passed  # expectation: leaky, observed: leaky
