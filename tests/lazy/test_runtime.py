"""Runtime/capture tests: parity, buffer reuse, cache, ambient installs."""

import numpy as np
import pytest

from repro.lazy import (
    NumpyRuntime,
    capture,
    get_active_runtime,
    set_active_runtime,
    use_runtime,
)
from repro.nn.layers import MLP
from repro.nn.tensor import Tensor
from repro.oblivious.trace import MemoryTracer


@pytest.fixture
def mlp():
    model = MLP((6, 12, 3), rng=0)
    model.eval()
    return model


class TestCaptureParity:
    def test_replay_is_byte_identical_to_eager(self, mlp, rng):
        x = rng.normal(size=(4, 6))
        eager = mlp(Tensor(x)).data
        graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
        assert graph(x).tobytes() == eager.tobytes()
        assert graph(x).tobytes() == eager.tobytes()  # and on replay

    def test_new_inputs_compute_fresh_results(self, mlp, rng):
        x = rng.normal(size=(4, 6))
        graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
        graph(x)
        y = rng.normal(size=(4, 6))
        assert graph(y).tobytes() == mlp(Tensor(y)).data.tobytes()

    def test_result_is_owned_not_a_view_of_the_pool(self, mlp, rng):
        x = rng.normal(size=(4, 6))
        graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
        first = graph(x)
        snapshot = first.copy()
        graph(rng.normal(size=(4, 6)))  # replay overwrites pool buffers
        np.testing.assert_array_equal(first, snapshot)

    def test_weight_updates_flow_without_recapture(self, mlp, rng):
        x = rng.normal(size=(4, 6))
        graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
        before = graph(x)
        for param in mlp.parameters():
            param.data -= 0.25  # in-place, optimizer-style
        after = graph(x)
        assert not np.array_equal(before, after)
        assert after.tobytes() == mlp(Tensor(x)).data.tobytes()

    def test_eager_escape_is_rejected(self):
        with pytest.raises(TypeError, match="did not stay lazy"):
            capture(lambda b: np.zeros(3), [np.zeros(3)], name="escape")

    def test_item_during_capture_raises(self):
        with pytest.raises(TypeError, match="eager escape"):
            capture(lambda b: Tensor(b) * Tensor(b).item(),
                    [np.ones(3)], name="escape")


class TestInputValidation:
    def test_wrong_shape_points_at_per_shape_caching(self, mlp, rng):
        x = rng.normal(size=(4, 6))
        graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
        with pytest.raises(ValueError, match="per-shape"):
            graph(rng.normal(size=(5, 6)))

    def test_wrong_dtype_rejected(self, mlp, rng):
        x = rng.normal(size=(4, 6))
        graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
        with pytest.raises(TypeError):
            graph(x.astype(np.float32))

    def test_wrong_arity_rejected(self, mlp, rng):
        x = rng.normal(size=(4, 6))
        graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
        with pytest.raises(ValueError):
            graph(x, x)


class TestBufferReuse:
    def test_pool_allocates_once_and_stays_flat(self, mlp, rng):
        x = rng.normal(size=(4, 6))
        graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
        assert graph.buffer_bytes() == 0  # nothing until warm-up
        graph(x)
        warm = graph.buffer_bytes()
        assert warm > 0
        ids = {key: id(buf) for key, buf in graph._buffers.items()}
        graph(x)
        graph(x)
        assert graph.buffer_bytes() == warm
        assert {key: id(buf) for key, buf in graph._buffers.items()} == ids

    def test_reset_buffers(self, mlp, rng):
        x = rng.normal(size=(4, 6))
        graph = capture(lambda b: mlp(Tensor(b)), [x], name="mlp")
        graph(x)
        graph.reset_buffers()
        assert graph.buffer_bytes() == 0
        assert graph(x).tobytes() == mlp(Tensor(x)).data.tobytes()


class TestGraphCache:
    def test_captured_builds_once_per_key(self, mlp, rng):
        runtime = NumpyRuntime()
        x = rng.normal(size=(4, 6))
        builds = []

        def builder():
            builds.append(1)
            return capture(lambda b: mlp(Tensor(b)), [x], runtime=runtime)

        first = runtime.captured(("mlp", x.shape), builder)
        second = runtime.captured(("mlp", x.shape), builder)
        assert first is second
        assert len(builds) == 1
        assert runtime.cache_size() == 1

    def test_clear_cache(self, mlp, rng):
        runtime = NumpyRuntime()
        runtime.captured("key", lambda: object())
        runtime.clear_cache()
        assert runtime.cache_size() == 0


class TestAmbientRuntime:
    def test_default_is_none(self):
        assert get_active_runtime() is None

    def test_use_runtime_scopes_and_restores(self):
        runtime = NumpyRuntime()
        with use_runtime(runtime) as active:
            assert active is runtime
            assert get_active_runtime() is runtime
        assert get_active_runtime() is None

    def test_use_runtime_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_runtime(NumpyRuntime()):
                raise RuntimeError("boom")
        assert get_active_runtime() is None

    def test_set_active_runtime_returns_previous(self):
        runtime = NumpyRuntime()
        assert set_active_runtime(runtime) is None
        assert set_active_runtime(None) is runtime


class TestTracedExecution:
    def test_tracer_sees_static_kernel_launches(self, mlp, rng):
        x = rng.normal(size=(4, 6))
        tracer = MemoryTracer()
        runtime = NumpyRuntime(tracer=tracer)
        graph = capture(lambda b: mlp(Tensor(b)), [x], runtime=runtime,
                        name="mlp")
        graph(x)
        events = tracer.snapshot()
        assert len(events) == graph.num_kernels
        assert all(event.region == "lazy.mlp" for event in events)
        tracer.clear()
        graph(rng.normal(size=(4, 6)))  # different values, same launches
        assert tracer.snapshot() == events
