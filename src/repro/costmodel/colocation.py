"""Co-location interference model (Figs 8, 9, 13; §IV-C2).

Each co-located model runs on its own core; compute throughput is therefore
unaffected until the core count is exceeded, but the shared resources —
memory bandwidth for scan/ORAM traffic and LLC capacity for table reuse —
are divided among tenants. This reproduces the paper's observations:

* linear scan of large tables degrades quickly under co-location (bandwidth
  saturation),
* DHE degrades mildly (compute-bound; only its modest activation/weight
  traffic contends),
* the scan/DHE switching threshold under co-location stays close to the
  single-model threshold (Fig 9's 4500 vs 3300).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.costmodel.latency import (
    DheShape,
    dhe_latency,
    linear_scan_latency,
    oram_latency,
)
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TenantDemand:
    """One co-located model's resource demand for its embedding work."""

    technique: str          # "scan" | "dhe" | "path" | "circuit"
    solo_latency: float     # seconds per batch when running alone
    bandwidth_bytes: float  # bytes streamed from DRAM per batch
    llc_bytes: float        # working set it would like resident in LLC


def scan_demand(num_rows: int, dim: int, batch: int,
                platform: PlatformModel = DEFAULT_PLATFORM) -> TenantDemand:
    table = num_rows * dim * platform.element_bytes
    solo = linear_scan_latency(num_rows, dim, batch, threads=1, platform=platform)
    if table > platform.llc_bytes:
        # Streams from DRAM already; no cache residency at stake.
        return TenantDemand("scan", solo, batch * table, 0.0)
    # LLC-resident: modest fill traffic, but residency is what co-located
    # copies fight over.
    return TenantDemand("scan", solo, 0.25 * batch * table, table)


def dhe_demand(shape: DheShape, batch: int,
               platform: PlatformModel = DEFAULT_PLATFORM) -> TenantDemand:
    solo = dhe_latency(shape, batch, threads=1, platform=platform)
    weights = shape.parameter_bytes(platform.element_bytes)
    return TenantDemand("dhe", solo, 0.1 * weights * batch / max(batch, 8),
                        min(weights, platform.llc_bytes // 4))


def oram_demand(scheme: str, num_rows: int, dim: int, batch: int,
                platform: PlatformModel = DEFAULT_PLATFORM) -> TenantDemand:
    from repro.costmodel.latency import oram_access_bytes
    solo = oram_latency(scheme, num_rows, dim, batch, platform=platform)
    per_batch = batch * oram_access_bytes(scheme, num_rows, dim, platform)
    return TenantDemand(scheme, solo, per_batch,
                        min(num_rows * dim * platform.element_bytes,
                            platform.llc_bytes))


def colocated_latencies(tenants: Sequence[TenantDemand],
                        platform: PlatformModel = DEFAULT_PLATFORM
                        ) -> List[float]:
    """Per-tenant batch latency when all tenants run concurrently.

    Bandwidth: demands are summed and, past the DRAM ceiling, every tenant's
    memory time dilates by the over-subscription ratio. LLC: when combined
    working sets exceed capacity, scan tenants lose cache residency and
    their effective rate drops toward the DRAM rate.
    """
    if not tenants:
        return []
    if len(tenants) > platform.cores:
        core_dilation = len(tenants) / platform.cores
    else:
        core_dilation = 1.0

    total_bw = sum(t.bandwidth_bytes / max(t.solo_latency, 1e-12) for t in tenants)
    bw_dilation = max(1.0, total_bw / platform.dram_total_bw)

    total_llc = sum(t.llc_bytes for t in tenants)
    llc_pressure = max(1.0, total_llc / platform.llc_bytes)

    latencies = []
    for tenant in tenants:
        dilation = core_dilation
        if tenant.technique == "scan":
            # Losing LLC residency pushes the scan toward DRAM bandwidth.
            cache_penalty = min(llc_pressure,
                                platform.scan_llc_bw / platform.scan_dram_bw)
            dilation *= max(bw_dilation, cache_penalty if llc_pressure > 1 else 1.0)
        elif tenant.technique in ("path", "circuit"):
            dilation *= bw_dilation
        else:  # dhe — compute bound, small bandwidth share
            dilation *= 1.0 + 0.25 * (bw_dilation - 1.0) + 0.02 * (llc_pressure - 1.0)
        latencies.append(tenant.solo_latency * dilation)
    return latencies


def replicated_latencies(demand: TenantDemand, copies: int,
                         platform: PlatformModel = DEFAULT_PLATFORM
                         ) -> List[float]:
    """Per-copy latency of ``copies`` identical tenants sharing the host.

    The homogeneous-fleet special case used by the co-location sweeps and
    the serving dispatcher (Fig 13).
    """
    check_positive("copies", copies)
    return colocated_latencies([demand] * copies, platform)


def throughput_inferences_per_second(tenants: Sequence[TenantDemand],
                                     batch: int,
                                     platform: PlatformModel = DEFAULT_PLATFORM
                                     ) -> float:
    """System throughput = sum over tenants of batch/latency."""
    check_positive("batch", batch)
    latencies = colocated_latencies(tenants, platform)
    return sum(batch / lat for lat in latencies if lat > 0)
