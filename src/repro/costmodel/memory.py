"""Memory-footprint models for every embedding representation (Table VI/VIII).

The tree-ORAM accounting follows ZeroTrace's sizing (leaves ~ n/Z), which is
what makes the paper's Tree-ORAM footprint land at ~330% of the raw table:
the tree allocates 2..4 block slots per real block (dummies included), plus
per-slot metadata and the recursive position-map trees.
"""

from __future__ import annotations

import math

from repro.costmodel.latency import (
    CIRCUIT_RECURSION_CUTOFF,
    PATH_RECURSION_CUTOFF,
    POSMAP_COMPRESSION,
    RING_DUMMIES,
    RING_RECURSION_CUTOFF,
    RING_STASH,
    BUCKET_SIZE,
    CIRCUIT_STASH,
    PATH_STASH,
    DheShape,
)
from repro.utils.validation import check_in, check_positive

BLOCK_METADATA_BYTES = 16  # block id + assigned leaf per slot
POSMAP_LABEL_BYTES = 4


def table_bytes(num_rows: int, dim: int, element_bytes: int = 4) -> int:
    """Raw embedding-table footprint (also the linear-scan footprint)."""
    check_positive("num_rows", num_rows)
    check_positive("dim", dim)
    return num_rows * dim * element_bytes


def _tree_slots(num_blocks: int, bucket_size: int = BUCKET_SIZE) -> int:
    """Block slots in a ZeroTrace-sized tree (leaves = 2^ceil(log2(n/Z)))."""
    leaves_needed = max(1, math.ceil(num_blocks / bucket_size))
    leaves = 1 << max(0, (leaves_needed - 1).bit_length())
    buckets = 2 * leaves - 1
    return buckets * bucket_size


def tree_oram_bytes(num_rows: int, dim: int, scheme: str = "circuit",
                    element_bytes: int = 4) -> int:
    """Footprint of a table stored in a tree ORAM, recursion included."""
    check_in("scheme", scheme, ("path", "circuit", "ring"))
    cutoff = {"path": PATH_RECURSION_CUTOFF,
              "circuit": CIRCUIT_RECURSION_CUTOFF,
              "ring": RING_RECURSION_CUTOFF}[scheme]
    stash = {"path": PATH_STASH, "circuit": CIRCUIT_STASH,
             "ring": RING_STASH}[scheme]
    # Ring buckets carry S dummy slots on top of the Z real ones.
    slot_factor = (BUCKET_SIZE + RING_DUMMIES) / BUCKET_SIZE \
        if scheme == "ring" else 1.0
    total = 0
    blocks = num_rows
    width_bytes = dim * element_bytes
    while True:
        slots = int(_tree_slots(blocks) * slot_factor) + stash
        total += slots * (width_bytes + BLOCK_METADATA_BYTES)
        if blocks <= cutoff:
            total += blocks * POSMAP_LABEL_BYTES  # flat position map
            break
        blocks = (blocks + POSMAP_COMPRESSION - 1) // POSMAP_COMPRESSION
        width_bytes = POSMAP_COMPRESSION * POSMAP_LABEL_BYTES
    return total


def dhe_bytes(shape: DheShape, element_bytes: int = 4) -> int:
    """Footprint of one DHE stack (hash constants are negligible)."""
    return shape.parameter_bytes(element_bytes) + shape.k * 4 * 4  # a,b,p,m per hash


def mlp_bytes(layer_sizes, element_bytes: int = 4) -> int:
    """Footprint of a dense MLP given its width chain."""
    sizes = list(layer_sizes)
    params = sum(a * b + b for a, b in zip(sizes[:-1], sizes[1:]))
    return params * element_bytes
