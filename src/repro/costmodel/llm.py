"""LLM inference latency model (Fig 15, §VI-D2).

Prefill is compute-bound (dense matmuls over the whole prompt); decode is
dominated by streaming the weights once per step plus per-batch-element KV
cache traffic. Calibrated against the paper's non-secure GPT-2 medium
numbers (TTFT 183.7 ms at batch 1 / 256 tokens; TBT 37.2 ms at batch 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.latency import (
    DheShape,
    dhe_latency,
    linear_scan_latency,
    oram_latency,
    sqrt_oram_latency,
)
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.utils.validation import check_in, check_positive

#: Effective weight-streaming bandwidth during decode (B/s): back-solved
#: from TBT = 37.2 ms for ~1.21 GB of fp32 weights.
DECODE_STREAM_BW = 35e9


@dataclass(frozen=True)
class LlmShape:
    """Sizes that drive inference cost for a decoder-only transformer."""

    vocab_size: int
    embed_dim: int
    num_layers: int
    context_length: int = 1024

    @property
    def non_embedding_params(self) -> int:
        d = self.embed_dim
        per_block = (d * 3 * d + 3 * d) + (d * d + d) \
            + (d * 4 * d + 4 * d) + (4 * d * d + d) + 4 * d
        return self.num_layers * per_block + self.context_length * d + 2 * d

    def kv_bytes_per_token(self, element_bytes: int = 4) -> int:
        return 2 * self.num_layers * self.embed_dim * element_bytes

    def dhe_shape(self) -> DheShape:
        width = 2 * self.embed_dim
        return DheShape(k=width, fc_sizes=(width, width, width),
                        out_dim=self.embed_dim)


GPT2_MEDIUM = LlmShape(vocab_size=50257, embed_dim=1024, num_layers=24)


def prefill_latency(shape: LlmShape, batch: int, prompt_tokens: int,
                    threads: int = 16,
                    platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """Transformer-only time to first token (no embedding generation)."""
    check_positive("batch", batch)
    check_positive("prompt_tokens", prompt_tokens)
    total_tokens = batch * prompt_tokens
    flops = 2 * shape.non_embedding_params * total_tokens
    # Attention score/value matmuls: 2 x (T^2 * d) MACs per layer.
    flops += batch * 4 * prompt_tokens ** 2 * shape.embed_dim * shape.num_layers
    return flops / platform.flop_rate(min(total_tokens, 4096), threads)


def decode_step_latency(shape: LlmShape, batch: int, context_tokens: int,
                        threads: int = 16,
                        platform: PlatformModel = DEFAULT_PLATFORM,
                        element_bytes: int = 4) -> float:
    """Transformer-only time between tokens at a given live context length."""
    check_positive("batch", batch)
    check_positive("context_tokens", context_tokens)
    weight_bytes = shape.non_embedding_params * element_bytes
    kv_bytes = batch * context_tokens * shape.kv_bytes_per_token(element_bytes)
    stream = (weight_bytes + kv_bytes) / DECODE_STREAM_BW
    flops = 2 * shape.non_embedding_params * batch
    compute = flops / platform.flop_rate(batch, threads)
    return stream + compute


def embedding_stage_latency(technique: str, shape: LlmShape,
                            embedding_batch: int, threads: int = 16,
                            platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """Embedding-generation time for one stage invocation.

    ``embedding_batch`` is batch x prompt length for prefill, batch for one
    decode step (§II-A's batch-size distinction between the stages).
    """
    check_in("technique", technique,
             ("lookup", "scan", "path", "circuit", "sqrt", "dhe"))
    if technique == "lookup":
        from repro.costmodel.latency import lookup_latency
        return lookup_latency(shape.vocab_size, shape.embed_dim,
                              embedding_batch, threads, platform)
    if technique == "scan":
        return linear_scan_latency(shape.vocab_size, shape.embed_dim,
                                   embedding_batch, threads, platform)
    if technique in ("path", "circuit"):
        return oram_latency(technique, shape.vocab_size, shape.embed_dim,
                            embedding_batch, threads, platform)
    if technique == "sqrt":
        return sqrt_oram_latency(shape.vocab_size, shape.embed_dim,
                                 embedding_batch, threads, platform)
    return dhe_latency(shape.dhe_shape(), embedding_batch, threads, platform)


def stage_latency(technique: str, stage: str, shape: LlmShape, batch: int,
                  prompt_tokens: int = 256, threads: int = 16,
                  platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """Total latency of one prefill (TTFT) or one decode step (TBT)."""
    check_in("stage", stage, ("prefill", "decode"))
    if stage == "prefill":
        transformer = prefill_latency(shape, batch, prompt_tokens, threads,
                                      platform)
        embedding = embedding_stage_latency(technique, shape,
                                            batch * prompt_tokens, threads,
                                            platform)
    else:
        transformer = decode_step_latency(shape, batch, prompt_tokens,
                                          threads, platform)
        embedding = embedding_stage_latency(technique, shape, batch, threads,
                                            platform)
    return transformer + embedding


def decode_latency(technique: str, shape: LlmShape, batch: int,
                   prompt_tokens: int = 256, new_tokens: int = 128,
                   threads: int = 16,
                   platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """Decode-only latency: ``new_tokens`` steps with a growing context.

    This is what the latency-bound decode *pool* prices per batch — the
    per-token loop without the prefill term (prefill lives in its own
    pool with its own batcher).
    """
    check_positive("new_tokens", new_tokens)
    total = 0.0
    for step in range(new_tokens):
        context = prompt_tokens + step
        transformer = decode_step_latency(shape, batch, context, threads,
                                          platform)
        embedding = embedding_stage_latency(technique, shape, batch, threads,
                                            platform)
        total += transformer + embedding
    return total


def generation_latency(technique: str, shape: LlmShape, batch: int,
                       prompt_tokens: int = 256, new_tokens: int = 128,
                       threads: int = 16,
                       platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """End-to-end latency: one prefill + ``new_tokens`` decode steps."""
    total = stage_latency(technique, "prefill", shape, batch, prompt_tokens,
                          threads, platform)
    return total + decode_latency(technique, shape, batch, prompt_tokens,
                                  new_tokens, threads, platform)
