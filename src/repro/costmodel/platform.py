"""The modelled platform: the paper's Ice Lake Xeon + Scalable SGX (Table III).

The constants below are calibrated against the paper's *measured* numbers so
the analytic latency/footprint models land in the right ranges:

* ``scan_dram_bw`` ≈ 8.8 GB/s — back-solved from Table VII: the pure linear
  scan of Kaggle (2.16 GB of tables x batch 32) takes 7.97 s, and of
  Terabyte (12.5 GB x 32) takes 45.0 s; both imply ~8.8 GB/s effective
  single-thread streaming bandwidth inside the enclave.
* ``scan_llc_bw`` ≈ 25 GB/s — back-solved from the Fig 6 threshold: at batch
  32 / 1 thread the scan/DHE crossover sits at ~3300 rows (dim 64), i.e. a
  scan of 845 KB costs the same ~1.1 ms as one DHE Uniform batch.
* FLOP rates — back-solved from Table VII: DHE Uniform (k=1024, 3-layer FC)
  costs ~34 us per embedding at batch 32 on one thread, i.e. ~40 GFLOP/s
  effective; small batches are less efficient (weight reload), large batches
  and wide LLM matmuls more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PlatformModel:
    """Analytic model of the evaluation platform."""

    name: str = "Intel Xeon Gold 6348 (Ice Lake, Scalable SGX)"
    cores: int = 28
    smt_threads: int = 56
    llc_bytes: int = 42 * 1024 * 1024
    dram_total_bw: float = 140e9        # aggregate streaming B/s (8ch DDR4-3200)
    epc_bytes: int = 64 * 1024 ** 3     # SGX protected memory
    element_bytes: int = 4              # fp32 model weights

    # Calibrated effective rates (see module docstring).
    scan_llc_bw: float = 25e9           # B/s per thread, LLC-resident table
    scan_dram_bw: float = 8.8e9         # B/s per thread, DRAM-resident table
    flops_small_batch: float = 6e9      # per-thread FLOP/s at batch 1
    flops_large_batch: float = 48e9     # per-thread FLOP/s asymptote
    flops_half_batch: float = 8.0       # batch size at half saturation
    # Scans split the query batch across threads and re-use the cached table,
    # scaling near-linearly; dense FC work contends on ports/frequency and
    # scales sub-linearly — this asymmetry is why the Fig 6 thresholds rise
    # with thread count.
    scan_thread_exponent: float = 1.0
    compute_thread_exponent: float = 0.8
    oram_fixed_overhead: float = 15e-6  # per-access controller overhead, seconds

    def __post_init__(self) -> None:
        check_positive("cores", self.cores)
        check_positive("llc_bytes", self.llc_bytes)

    # ------------------------------------------------------------------
    def thread_factor(self, threads: int, exponent: float) -> float:
        """Sub/linear multi-thread speed-up factor."""
        check_positive("threads", threads)
        return min(threads, self.cores) ** exponent

    def flop_rate(self, batch: int, threads: int = 1) -> float:
        """Effective FLOP/s for dense FC work at a given batch size."""
        check_positive("batch", batch)
        saturation = batch / (batch + self.flops_half_batch)
        per_thread = (self.flops_small_batch +
                      (self.flops_large_batch - self.flops_small_batch) * saturation)
        return per_thread * self.thread_factor(threads,
                                               self.compute_thread_exponent)

    def scan_bandwidth(self, table_bytes: int, threads: int = 1) -> float:
        """Effective scan bandwidth for a table of the given size.

        LLC-resident tables are re-scanned from cache; larger tables stream
        from DRAM and saturate the memory controllers as threads grow.
        """
        check_positive("table_bytes", table_bytes)
        factor = self.thread_factor(threads, self.scan_thread_exponent)
        if table_bytes <= self.llc_bytes:
            return self.scan_llc_bw * factor
        return min(self.scan_dram_bw * factor, self.dram_total_bw)


DEFAULT_PLATFORM = PlatformModel()

#: The obsolete Intel Client SGX edition (§II-B): Merkle-tree protected EPC
#: capped at 256 MB. Models that fit comfortably in Scalable SGX's 64 GB
#: (everything in Tables VI/VIII except the raw/ORAM tables) do not fit
#: here unless DHE/hybrid-compressed — one more argument for DHE.
CLIENT_SGX_PLATFORM = PlatformModel(
    name="Intel Client SGX (obsolete, Merkle-tree EPC)",
    epc_bytes=256 * 1024 ** 2,
)
