"""Analytic per-technique latency models (seconds per embedding batch).

The byte/FLOP counts are derived from the *structure of our executable
implementations* (rows touched per ORAM access, FLOPs per DHE stack); only
the platform rates in :mod:`repro.costmodel.platform` are calibration
constants. This is what lets the benchmarks regenerate the paper's latency
figures (Figs 4, 5, 10, 12; Tables VII, VIII) without SGX hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.oram.tree import tree_levels_for
from repro.utils.validation import check_in, check_positive

#: Table VII: bottom/top MLP + feature interaction per DLRM batch. Shared by
#: the serving engine and the end-to-end experiments (one copy, not three).
MLP_OVERHEAD_SECONDS = 1.5e-3

BUCKET_SIZE = 4
PATH_STASH = 150
CIRCUIT_STASH = 10
RING_STASH = 80
RING_DUMMIES = 4
RING_EVICT_RATE = 4
PATH_RECURSION_CUTOFF = 1 << 16
CIRCUIT_RECURSION_CUTOFF = 1 << 12
RING_RECURSION_CUTOFF = 1 << 16
POSMAP_COMPRESSION = 16
POSMAP_ENTRY_BYTES = 4


# ----------------------------------------------------------------------
# Non-secure lookup
# ----------------------------------------------------------------------
def lookup_latency(num_rows: int, dim: int, batch: int, threads: int = 1,
                   platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """Plain gather: one row fetched per query plus a small dispatch cost."""
    check_positive("num_rows", num_rows)
    row_bytes = dim * platform.element_bytes
    fetch = batch * row_bytes / platform.scan_bandwidth(
        num_rows * row_bytes, threads)
    return fetch + 1e-6  # kernel launch / python dispatch floor


# ----------------------------------------------------------------------
# Linear scan
# ----------------------------------------------------------------------
def linear_scan_latency(num_rows: int, dim: int, batch: int, threads: int = 1,
                        platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """Each query streams the full table through the blend unit."""
    check_positive("num_rows", num_rows)
    check_positive("batch", batch)
    table_bytes = num_rows * dim * platform.element_bytes
    return batch * table_bytes / platform.scan_bandwidth(table_bytes, threads)


# ----------------------------------------------------------------------
# DHE
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DheShape:
    """Architecture of one DHE stack: k hashes + an FC decoder chain."""

    k: int
    fc_sizes: Tuple[int, ...]
    out_dim: int

    def layer_dims(self) -> List[Tuple[int, int]]:
        dims = [self.k, *self.fc_sizes, self.out_dim]
        return list(zip(dims[:-1], dims[1:]))

    def flops_per_embedding(self) -> int:
        """Dense multiply-add FLOPs to decode one embedding."""
        return sum(2 * a * b for a, b in self.layer_dims())

    def hash_ops_per_embedding(self) -> int:
        return 4 * self.k  # multiply, add, two mods per hash function

    def parameter_count(self) -> int:
        return sum(a * b + b for a, b in self.layer_dims())

    def parameter_bytes(self, element_bytes: int = 4) -> int:
        return self.parameter_count() * element_bytes

    def scaled(self, factor: float, min_width: int = 64) -> "DheShape":
        """Shrink every width by ``sqrt(factor)`` (parameters scale by ``factor``)."""
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        width_factor = math.sqrt(factor)

        def shrink(width: int) -> int:
            return max(min_width, int(round(width * width_factor)))

        return DheShape(k=shrink(self.k),
                        fc_sizes=tuple(shrink(w) for w in self.fc_sizes),
                        out_dim=self.out_dim)


#: Paper Table IV: DHE Uniform for the Criteo DLRMs.
DLRM_DHE_UNIFORM_16 = DheShape(k=1024, fc_sizes=(512, 256), out_dim=16)
DLRM_DHE_UNIFORM_64 = DheShape(k=1024, fc_sizes=(512, 256), out_dim=64)

#: Paper §VI-A3: GPT-2 medium DHE — 4 FC layers, widths 2x the embedding dim.
LLM_DHE_GPT2_MEDIUM = DheShape(k=2048, fc_sizes=(2048, 2048, 2048), out_dim=1024)


def varied_scale_factor(table_size: int, base_size: float = 1e7,
                        rate_per_decade: float = 0.125) -> float:
    """DHE Varied sizing rule (Table IV note): the hash count ``k`` shrinks
    by ``rate_per_decade`` (0.125x) per order of magnitude of table size
    below ``base_size``."""
    check_positive("table_size", table_size)
    if not 0 < rate_per_decade <= 1:
        raise ValueError(f"rate_per_decade must be in (0, 1], got {rate_per_decade}")
    if table_size >= base_size:
        return 1.0
    decades = math.log10(base_size / table_size)
    return max(rate_per_decade ** decades, 1e-3)


def dhe_varied_shape(table_size: int, uniform: DheShape,
                     base_size: float = 1e7, min_k: int = 128) -> DheShape:
    """The Varied-DHE stack for a table of ``table_size`` rows.

    Only ``k`` is scaled (0.125x per decade, floored at ``min_k``); the FC
    decoder widths stay as in the Uniform model. This is what matches the
    paper's measured Varied/Uniform ratios — memory 33.4/68.2 MB and
    embedding latency ~0.57x on Kaggle — which an all-width shrink would
    overshoot by an order of magnitude.
    """
    check_positive("min_k", min_k)
    factor = varied_scale_factor(table_size, base_size)
    scaled_k = max(min_k, int(round(uniform.k * factor)))
    return DheShape(k=scaled_k, fc_sizes=uniform.fc_sizes,
                    out_dim=uniform.out_dim)


def dhe_latency(shape: DheShape, batch: int, threads: int = 1,
                platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """Hash + decode latency for one batch of embeddings."""
    check_positive("batch", batch)
    flops = batch * (shape.flops_per_embedding() + shape.hash_ops_per_embedding())
    return flops / platform.flop_rate(batch, threads)


# ----------------------------------------------------------------------
# Tree ORAM
# ----------------------------------------------------------------------
def _flat_posmap_rows(num_blocks: int) -> float:
    """Row-touch equivalent of an oblivious flat position-map lookup."""
    # read + write of every entry; entries are 8 B vs a d*4 B block row, so
    # convert to "row bytes" at the caller via POSMAP_ENTRY_BYTES.
    return 2 * num_blocks


def oram_access_bytes(scheme: str, num_rows: int, dim: int,
                      platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """Bytes moved through the oblivious controller per single access.

    Derived from the structure of :class:`repro.oram.PathORAM` /
    :class:`repro.oram.CircuitORAM`: bucket sweeps plus the cmov stash scans
    that dominate software ORAM cost, plus recursive position-map accesses.
    """
    check_in("scheme", scheme, ("path", "circuit", "ring"))
    check_positive("num_rows", num_rows)
    row_bytes = dim * platform.element_bytes
    total = 0.0
    blocks = num_rows
    width_bytes = row_bytes
    cutoff = {"path": PATH_RECURSION_CUTOFF,
              "circuit": CIRCUIT_RECURSION_CUTOFF,
              "ring": RING_RECURSION_CUTOFF}[scheme]
    while True:
        levels = tree_levels_for(blocks)
        path_len = levels + 1
        if scheme == "path":
            stash_total = PATH_STASH + BUCKET_SIZE * path_len
            rows = (
                2 * BUCKET_SIZE * path_len            # bucket fetch + clear
                + BUCKET_SIZE * path_len * stash_total  # per-slot stash scans
                + (2 + path_len) * stash_total        # remove/add + writeback scans
                + BUCKET_SIZE * path_len              # writeback bucket writes
            )
        elif scheme == "ring":
            slots_per_bucket = BUCKET_SIZE + RING_DUMMIES
            stash_total = RING_STASH + slots_per_bucket * path_len
            # One slot read per bucket, plus the amortised EvictPath
            # (full-path read + write of Z+S slots every A accesses) and
            # stash scans for remove/add + eviction drains.
            rows = (
                path_len                               # single-slot reads
                + (2 * slots_per_bucket * path_len) / RING_EVICT_RATE
                + (2 + (2 * path_len) / RING_EVICT_RATE) * stash_total
            )
        else:
            stash_total = CIRCUIT_STASH + 2
            rows = (
                2 * BUCKET_SIZE * path_len            # read path sweep (r+w)
                + 2 * (BUCKET_SIZE * path_len         # 2 evictions: metadata scan
                       + 2 * BUCKET_SIZE * path_len   #   evict sweep (r+w)
                       + 2 * stash_total)             #   stash scans
                + 3 * stash_total                     # read/remove/add stash scans
            )
        total += rows * width_bytes
        if blocks <= cutoff:
            total += _flat_posmap_rows(blocks) * POSMAP_ENTRY_BYTES
            break
        # Recurse into the position-map ORAM (16 labels per block).
        blocks = (blocks + POSMAP_COMPRESSION - 1) // POSMAP_COMPRESSION
        width_bytes = POSMAP_COMPRESSION * POSMAP_ENTRY_BYTES
    return total


def oram_latency(scheme: str, num_rows: int, dim: int, batch: int,
                 threads: int = 1,
                 platform: PlatformModel = DEFAULT_PLATFORM,
                 variant_factor: float = 1.0) -> float:
    """Batch latency of a tree ORAM (accesses are inherently sequential).

    ``threads`` barely helps (§V-A1: internal structures update sequentially);
    we allow a small pipelining credit only for the memory streaming.
    ``variant_factor`` scales for the ZeroTrace optimization levels (Fig 10).
    """
    check_positive("batch", batch)
    per_access_bytes = oram_access_bytes(scheme, num_rows, dim, platform)
    # The cmov-hardened controller streams at the oblivious single-thread
    # rate regardless of residency (the scans are predication-bound).
    per_access = per_access_bytes / platform.scan_dram_bw + platform.oram_fixed_overhead
    return batch * per_access * variant_factor


def sqrt_oram_access_bytes(num_rows: int, dim: int,
                           platform: PlatformModel = DEFAULT_PLATFORM
                           ) -> float:
    """Bytes moved per square-root ORAM access, reshuffle amortised.

    Mirrors :class:`repro.oram.sqrt_oram.SqrtORAM`: a full position-map
    R+W scan, an oblivious shelter sweep (⌈√n⌉ slots, peek + write), one
    permuted-store row read, and 1/⌈√n⌉-th of the read+write reshuffle
    sweep over the n + ⌈√n⌉ store slots.
    """
    check_positive("num_rows", num_rows)
    row_bytes = dim * platform.element_bytes
    shelter = math.ceil(math.sqrt(num_rows))
    posmap = 2 * num_rows * POSMAP_ENTRY_BYTES
    shelter_sweeps = 2 * shelter * row_bytes
    store_read = row_bytes
    reshuffle = 2 * (num_rows + shelter) * row_bytes / shelter
    return posmap + shelter_sweeps + store_read + reshuffle


def sqrt_oram_latency(num_rows: int, dim: int, batch: int, threads: int = 1,
                      platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """Batch latency of the square-root scheme (accesses sequential).

    Like the tree ORAMs, the cmov-hardened scans are predication-bound:
    the oblivious single-thread streaming rate applies and ``threads``
    buys nothing.
    """
    check_positive("batch", batch)
    del threads  # scans are predication-bound; parallelism buys nothing
    per_access_bytes = sqrt_oram_access_bytes(num_rows, dim, platform)
    per_access = (per_access_bytes / platform.scan_dram_bw
                  + platform.oram_fixed_overhead)
    return batch * per_access


# ----------------------------------------------------------------------
# ZeroTrace optimization levels (Fig 10)
# ----------------------------------------------------------------------
#: Multipliers relative to our optimized build (ZT-Gramine-Opt == 1.0),
#: from §V-A1: enclave-resident trees cut ZT-Original by 20% (Path) / 60%
#: (Circuit); recursion + cmov inlining cuts a further 29% / 54%.
ZEROTRACE_VARIANTS = {
    ("path", "zt-original"): 1.0 / (0.80 * 0.71),
    ("path", "zt-gramine"): 1.0 / 0.71,
    ("path", "zt-gramine-opt"): 1.0,
    ("circuit", "zt-original"): 1.0 / (0.40 * 0.46),
    ("circuit", "zt-gramine"): 1.0 / 0.46,
    ("circuit", "zt-gramine-opt"): 1.0,
}


def zerotrace_variant_factor(scheme: str, variant: str) -> float:
    key = (scheme, variant)
    if key not in ZEROTRACE_VARIANTS:
        raise ValueError(f"unknown ZeroTrace variant {key}")
    return ZEROTRACE_VARIANTS[key]
