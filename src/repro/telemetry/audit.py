"""The leakage auditor: continuous verification of the paper's core claim.

The paper's security argument is access-pattern indistinguishability: the
addresses a protected embedding generator touches must not depend on the
secret indices it serves. The auditor turns that into a runnable gate. It
replays a workload once per candidate secret, captures the event stream
with :class:`~repro.oblivious.trace.MemoryTracer`, and applies two checks:

* **trace equivalence** — for deterministic defences (linear scan, DHE)
  the full (op, region, address) sequence must be identical across
  secrets; for randomised defences (tree ORAMs) the *structure* (op,
  region, with addresses erased) must be identical, mirroring
  ``tests/oram/test_oram_security.py``;
* **address-histogram divergence** — per memory region, the normalised
  address histograms across secrets must stay within a total-variation
  budget. This is what a cache/page attacker aggregates, and it is the
  check that catches the non-secure table lookup (divergence 1.0: disjoint
  address sets per secret).

Findings feed the telemetry registry (``audit.*`` counters, one span per
subject), so CI and long-running serving processes export audit posture
alongside throughput.

Run the standing audit from the command line::

    python -m repro.telemetry.audit --json audit.json

Exit status 0 means every expectation held (secure techniques oblivious,
the known-leaky baseline detected).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.oblivious.trace import AccessEvent, MemoryTracer, traces_equal
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import get_registry

MODE_EXACT = "exact"            # deterministic defences: identical traces
MODE_STRUCTURAL = "structural"  # randomised defences: identical structure

#: Default total-variation budget for structurally-equivalent randomised
#: defences. Deterministic subjects come out at 0.0; the leaky table
#: lookup at 1.0; seeded ORAM replays land well below 0.5 (see tests).
DEFAULT_DIVERGENCE_THRESHOLD = 0.5

Runner = Callable[[MemoryTracer, Sequence[int]], object]


def trace_structure(events: Sequence[AccessEvent]) -> List[Tuple[str, str]]:
    """The (op, region) sequence with addresses erased."""
    return [(event.op, event.region) for event in events]


def address_histograms(events: Sequence[AccessEvent]
                       ) -> Dict[str, Dict[int, int]]:
    """Per-region address -> count map of one trace."""
    histograms: Dict[str, Dict[int, int]] = {}
    for event in events:
        region = histograms.setdefault(event.region, {})
        region[event.address] = region.get(event.address, 0) + 1
    return histograms


def total_variation(a: Dict[int, int], b: Dict[int, int]) -> float:
    """TV distance between two (unnormalised) address histograms."""
    total_a = sum(a.values())
    total_b = sum(b.values())
    if total_a == 0 or total_b == 0:
        return 0.0 if total_a == total_b else 1.0
    distance = 0.0
    for address in set(a) | set(b):
        distance += abs(a.get(address, 0) / total_a
                        - b.get(address, 0) / total_b)
    return 0.5 * distance


def histogram_divergence(traces: Sequence[Sequence[AccessEvent]]
                         ) -> float:
    """Worst per-region TV distance of any trace against the first."""
    reference = address_histograms(traces[0])
    worst = 0.0
    for trace in traces[1:]:
        other = address_histograms(trace)
        for region in set(reference) | set(other):
            worst = max(worst, total_variation(reference.get(region, {}),
                                               other.get(region, {})))
    return worst


@dataclass(frozen=True)
class AuditSubject:
    """One implementation under audit and the secrets to replay."""

    name: str
    run: Runner
    secrets: Sequence[Sequence[int]]
    mode: str = MODE_EXACT
    expect_oblivious: bool = True

    def __post_init__(self) -> None:
        if self.mode not in (MODE_EXACT, MODE_STRUCTURAL):
            raise ValueError(
                f"mode must be {MODE_EXACT!r} or {MODE_STRUCTURAL!r}, "
                f"got {self.mode!r}")
        if len(self.secrets) < 2:
            raise ValueError(
                f"subject {self.name!r} needs >= 2 secrets to compare")


@dataclass(frozen=True)
class AuditFinding:
    """The verdict for one subject."""

    subject: str
    mode: str
    expect_oblivious: bool
    trace_equivalent: bool        # exact or structural, per mode
    exact_equivalent: bool        # full-event equality regardless of mode
    divergence: float             # worst per-region TV distance
    trace_length: int
    num_secrets: int

    @property
    def observed_oblivious(self) -> bool:
        return self.trace_equivalent and self.divergence <= self._threshold

    # the report stamps the threshold in; stored flat for JSON friendliness
    _threshold: float = DEFAULT_DIVERGENCE_THRESHOLD

    @property
    def leak_detected(self) -> bool:
        return not self.observed_oblivious

    @property
    def passed(self) -> bool:
        """Did reality match the expectation for this subject?"""
        return self.observed_oblivious == self.expect_oblivious

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "mode": self.mode,
            "expect_oblivious": self.expect_oblivious,
            "trace_equivalent": self.trace_equivalent,
            "exact_equivalent": self.exact_equivalent,
            "divergence": self.divergence,
            "divergence_threshold": self._threshold,
            "trace_length": self.trace_length,
            "num_secrets": self.num_secrets,
            "leak_detected": self.leak_detected,
            "passed": self.passed,
        }


@dataclass
class AuditReport:
    """All findings of one audit run."""

    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.findings) and all(f.passed for f in self.findings)

    def finding(self, subject: str) -> AuditFinding:
        for candidate in self.findings:
            if candidate.subject == subject:
                return candidate
        raise KeyError(f"no finding for subject {subject!r}")

    def to_dict(self) -> Dict[str, object]:
        return {"passed": self.passed,
                "findings": [f.to_dict() for f in self.findings]}

    def render(self) -> str:
        rows = [("subject", "mode", "expected", "observed", "divergence",
                 "events", "verdict")]
        for f in self.findings:
            rows.append((
                f.subject, f.mode,
                "oblivious" if f.expect_oblivious else "leaky",
                "oblivious" if f.observed_oblivious else "LEAK",
                f"{f.divergence:.3f}", str(f.trace_length),
                "pass" if f.passed else "FAIL"))
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(rows[0]))]
        lines = ["== leakage audit =="]
        for index, row in enumerate(rows):
            line = "  ".join(cell.ljust(width)
                             for cell, width in zip(row, widths))
            lines.append(line.rstrip())
            if index == 0:
                lines.append("-" * len(line))
        lines.append(f"overall: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


class LeakageAuditor:
    """Replays subjects across secrets and issues pass/fail findings."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD
                 ) -> None:
        if not 0.0 <= divergence_threshold <= 1.0:
            raise ValueError("divergence_threshold must be in [0, 1], "
                             f"got {divergence_threshold}")
        self._registry = registry
        self.divergence_threshold = divergence_threshold

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # ------------------------------------------------------------------
    def audit(self, subject: AuditSubject) -> AuditFinding:
        registry = self.registry
        with registry.span("audit.subject", subject=subject.name,
                           mode=subject.mode):
            traces = []
            for secret in subject.secrets:
                tracer = MemoryTracer()
                subject.run(tracer, secret)
                traces.append(tracer.snapshot())
            exact = all(traces_equal(traces[0], trace)
                        for trace in traces[1:])
            reference_structure = trace_structure(traces[0])
            structural = exact or all(
                trace_structure(trace) == reference_structure
                for trace in traces[1:])
            divergence = 0.0 if exact else histogram_divergence(traces)
        finding = AuditFinding(
            subject=subject.name, mode=subject.mode,
            expect_oblivious=subject.expect_oblivious,
            trace_equivalent=exact if subject.mode == MODE_EXACT
            else structural,
            exact_equivalent=exact, divergence=divergence,
            trace_length=len(traces[0]), num_secrets=len(traces),
            _threshold=self.divergence_threshold)
        registry.counter("audit.subjects_total").inc()
        if finding.leak_detected:
            registry.counter("audit.leaks_detected_total").inc()
        if not finding.passed:
            registry.counter("audit.failures_total").inc()
        return finding

    def run(self, subjects: Sequence[AuditSubject]) -> AuditReport:
        if not subjects:
            raise ValueError("audit needs at least one subject")
        report = AuditReport([self.audit(subject) for subject in subjects])
        registry = self.registry
        registry.counter("audit.runs_total").inc()
        registry.gauge("audit.last_run_passed").set(1.0 if report.passed
                                                    else 0.0)
        return report


# ----------------------------------------------------------------------
# The standing audit: every technique in the paper's comparison.
# ----------------------------------------------------------------------
def standard_subjects(num_embeddings: int = 16, embedding_dim: int = 4,
                      sequence_length: int = 12,
                      seed: int = 0) -> List[AuditSubject]:
    """Scan, Path/Circuit/square-root ORAM, DHE — plus the leaky lookup.

    Secrets are three index sequences chosen to maximise contrast: hammer
    the first row, hammer the last row, and a mixed sweep. Randomised
    defences are rebuilt from the same seed per replay so structural
    equivalence is meaningful.
    """
    from repro.embedding.dhe import DHEEmbedding
    from repro.embedding.scan import LinearScanEmbedding
    from repro.embedding.table import TableEmbedding
    from repro.oram.circuit_oram import CircuitORAM
    from repro.oram.path_oram import PathORAM
    from repro.oram.sqrt_oram import SqrtORAM

    secrets: List[Sequence[int]] = [
        [0] * sequence_length,
        [num_embeddings - 1] * sequence_length,
        [index % num_embeddings for index in range(sequence_length)],
    ]

    scan = LinearScanEmbedding(num_embeddings, embedding_dim, rng=seed)
    dhe = DHEEmbedding(num_embeddings, embedding_dim, k=16, fc_sizes=(16,),
                       num_buckets=1024, rng=seed)
    table = TableEmbedding(num_embeddings, embedding_dim, rng=seed)

    def run_scan(tracer: MemoryTracer, secret: Sequence[int]) -> None:
        scan.generate_traced(np.asarray(secret), tracer)

    def run_dhe(tracer: MemoryTracer, secret: Sequence[int]) -> None:
        dhe.generate_traced(np.asarray(secret), tracer)

    def run_table(tracer: MemoryTracer, secret: Sequence[int]) -> None:
        table.generate_traced(np.asarray(secret), tracer)

    def oram_runner(oram_class) -> Runner:
        def run(tracer: MemoryTracer, secret: Sequence[int]) -> None:
            # Rebuild from the same seed per secret so the controller's
            # randomness is replayed, then drop initialisation traffic.
            oram = oram_class(num_embeddings, embedding_dim, rng=seed,
                              stash_capacity=num_embeddings, tracer=tracer)
            tracer.clear()
            for block in secret:
                oram.read(int(block))
        return run

    return [
        AuditSubject("linear-scan", run_scan, secrets, mode=MODE_EXACT),
        AuditSubject("path-oram", oram_runner(PathORAM), secrets,
                     mode=MODE_STRUCTURAL),
        AuditSubject("circuit-oram", oram_runner(CircuitORAM), secrets,
                     mode=MODE_STRUCTURAL),
        AuditSubject("sqrt-oram", oram_runner(SqrtORAM), secrets,
                     mode=MODE_STRUCTURAL),
        AuditSubject("dhe", run_dhe, secrets, mode=MODE_EXACT),
        AuditSubject("table-lookup", run_table, secrets, mode=MODE_EXACT,
                     expect_oblivious=False),
    ]


def standard_audit(registry: Optional[MetricsRegistry] = None,
                   **subject_kwargs) -> AuditReport:
    """Run the standing technique audit; see :func:`standard_subjects`."""
    auditor = LeakageAuditor(registry=registry)
    return auditor.run(standard_subjects(**subject_kwargs))


def main(argv=None) -> int:
    """CLI: run the standing audit, print the report, gate on expectations."""
    parser = argparse.ArgumentParser(
        description="Audit access-pattern leakage of every embedding "
                    "generation technique.")
    parser.add_argument("--json", metavar="PATH",
                        help="write the report + telemetry snapshot as JSON")
    parser.add_argument("--length", type=int, default=12,
                        help="secret index sequence length (default 12)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    report = standard_audit(registry=registry,
                            sequence_length=args.length, seed=args.seed)
    print(report.render())
    if args.json:
        from repro.telemetry.export import write_json

        write_json(registry, args.json, extra={"audit": report.to_dict()})
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
