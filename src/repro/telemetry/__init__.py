"""Telemetry: metrics, tracing spans, and the leakage-audit pipeline.

The observability layer of the serving stack. Three pieces share one
registry:

* **metrics** — counters, gauges, and fixed-bucket histograms
  (:class:`MetricsRegistry`; :class:`NullRegistry` when disabled), cheap
  enough to leave on in the hot paths of the engine, batcher, ORAM
  controllers, and embedding generators;
* **spans** — nested, attributed timing regions
  (``with telemetry.span("oram.access"): ...``) that decompose a request
  into queue-wait -> batch -> per-table generator -> bucket I/O;
* **audit** — :class:`LeakageAuditor` replays workloads across secret
  inputs and checks trace equivalence + address-histogram divergence, the
  executable form of the paper's indistinguishability claim.

Exporters serialise the same registry to JSON, Prometheus text format, and
a console summary table.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_latency_buckets,
    power_of_two_buckets,
)
from repro.telemetry.spans import NullSpan, Span, SpanCollector, SpanRecord
from repro.telemetry.runtime import (
    NULL_REGISTRY,
    counter,
    disable,
    enable,
    gauge,
    get_registry,
    histogram,
    observe,
    set_registry,
    span,
    use_registry,
)
from repro.telemetry.export import (
    sanitize_metric_name,
    summary_table,
    to_json,
    to_prometheus,
    write_json,
)
from repro.telemetry.audit import (
    AuditFinding,
    AuditReport,
    AuditSubject,
    LeakageAuditor,
    address_histograms,
    histogram_divergence,
    standard_audit,
    standard_subjects,
    total_variation,
    trace_structure,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "default_latency_buckets",
    "power_of_two_buckets",
    "NullSpan",
    "Span",
    "SpanCollector",
    "SpanRecord",
    "NULL_REGISTRY",
    "counter",
    "disable",
    "enable",
    "gauge",
    "get_registry",
    "histogram",
    "observe",
    "set_registry",
    "span",
    "use_registry",
    "sanitize_metric_name",
    "summary_table",
    "to_json",
    "to_prometheus",
    "write_json",
    "AuditFinding",
    "AuditReport",
    "AuditSubject",
    "LeakageAuditor",
    "address_histograms",
    "histogram_divergence",
    "standard_audit",
    "standard_subjects",
    "total_variation",
    "trace_structure",
]
