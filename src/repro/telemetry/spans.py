"""Span-based tracing: decompose one request into its pipeline stages.

A span is a named, timed region of execution opened as a context manager
(``with registry.span("oram.access"): ...``). Spans nest: the collector
keeps a per-thread stack so a ``serve`` span naturally contains the
``serve.schedule`` span, which contains the per-batch and per-generator
spans, down to ORAM bucket I/O. Each record carries its parent id, depth,
start offset, duration, and free-form attributes, so an exported trace can
be reassembled into the queue-wait -> batch -> generator -> bucket-I/O tree.

The collector is bounded (``max_spans``): once full, new records are
counted as dropped instead of growing without limit, which is what lets
instrumentation stay on in long-running serving processes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: identity, position in the tree, timing, tags."""

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    start_seconds: float        # offset from the collector's origin
    duration_seconds: float
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_seconds": self.start_seconds,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
        }

    def __str__(self) -> str:
        return (f"{'  ' * self.depth}{self.name} "
                f"[{self.duration_seconds * 1e3:.3f} ms]")


class Span:
    """An open span; use as a context manager (returned by ``span(...)``)."""

    __slots__ = ("_collector", "name", "attributes", "span_id", "parent_id",
                 "depth", "_start", "_on_close")

    def __init__(self, collector: "SpanCollector", name: str,
                 attributes: Dict[str, object],
                 on_close: Optional[Callable[[SpanRecord], None]] = None) -> None:
        self._collector = collector
        self.name = name
        self.attributes = attributes
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0
        self._start = 0.0
        self._on_close = on_close

    def set_attribute(self, key: str, value: object) -> "Span":
        self.attributes[key] = value
        return self

    def __enter__(self) -> "Span":
        collector = self._collector
        stack = collector._stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        self.span_id = collector._next_id()
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter() - self._start
        collector = self._collector
        stack = collector._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:            # defensive: unwind past this span
            del stack[stack.index(self):]
        record = SpanRecord(span_id=self.span_id, parent_id=self.parent_id,
                            name=self.name, depth=self.depth,
                            start_seconds=self._start - collector.origin,
                            duration_seconds=duration,
                            attributes=self.attributes)
        collector._record(record)
        if self._on_close is not None:
            self._on_close(record)


class NullSpan:
    """A reusable do-nothing span for disabled telemetry."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = NullSpan()


class SpanCollector:
    """Bounded store of completed spans with a per-thread open-span stack."""

    def __init__(self, max_spans: int = 100_000) -> None:
        # repro.utils imports telemetry (timing histograms), so the
        # validation helpers are off-limits here — inline the check.
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.max_spans = max_spans
        self.records: List[SpanRecord] = []
        self.dropped = 0
        self.origin = time.perf_counter()
        self._id_lock = threading.Lock()
        self._ids = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._id_lock:
            span_id = self._ids
            self._ids += 1
        return span_id

    def _record(self, record: SpanRecord) -> None:
        if len(self.records) >= self.max_spans:
            self.dropped += 1
            return
        self.records.append(record)

    # ------------------------------------------------------------------
    def start(self, name: str, attributes: Dict[str, object],
              on_close: Optional[Callable[[SpanRecord], None]] = None) -> Span:
        return Span(self, name, attributes, on_close=on_close)

    def by_name(self, name: str) -> List[SpanRecord]:
        return [r for r in self.records if r.name == name]

    def children(self, span_id: int) -> List[SpanRecord]:
        return [r for r in self.records if r.parent_id == span_id]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
        self.origin = time.perf_counter()

    def __len__(self) -> int:
        return len(self.records)

    def to_dicts(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        records = self.records if limit is None else self.records[:limit]
        return [r.to_dict() for r in records]

    def duration_totals(self) -> Dict[str, Tuple[int, float]]:
        """Per span name: (count, summed duration seconds)."""
        totals: Dict[str, Tuple[int, float]] = {}
        for record in self.records:
            count, total = totals.get(record.name, (0, 0.0))
            totals[record.name] = (count + 1,
                                   total + record.duration_seconds)
        return totals
