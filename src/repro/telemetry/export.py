"""Exporters: JSON, Prometheus text exposition, and a console summary.

All three read the same :class:`~repro.telemetry.metrics.MetricsRegistry`
snapshot, so a run can be scraped (Prometheus), archived (JSON artifact in
CI), and eyeballed (summary table) without re-instrumenting anything.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """Map a dotted metric name onto the Prometheus grammar."""
    flat = _INVALID_CHARS.sub("_", name)
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat and flat[0].isdigit():
        flat = f"_{flat}"
    return flat


def to_json(registry: MetricsRegistry, include_spans: bool = False,
            extra: Optional[Dict[str, object]] = None,
            indent: int = 2) -> str:
    """Serialise the registry snapshot (plus optional extra payload)."""
    payload = registry.snapshot(include_spans=include_spans)
    if extra:
        payload = {**payload, **extra}
    return json.dumps(payload, indent=indent, sort_keys=True, default=str)


def write_json(registry: MetricsRegistry, path: str,
               include_spans: bool = False,
               extra: Optional[Dict[str, object]] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(registry, include_spans=include_spans,
                             extra=extra))
        handle.write("\n")


def _prometheus_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render every instrument in the Prometheus text exposition format."""
    lines = []
    for name, metric in sorted(registry.metrics().items()):
        flat = sanitize_metric_name(name, prefix)
        if isinstance(metric, Counter):
            if metric.description:
                lines.append(f"# HELP {flat} {metric.description}")
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {_prometheus_value(metric.value)}")
        elif isinstance(metric, Gauge):
            if metric.description:
                lines.append(f"# HELP {flat} {metric.description}")
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_prometheus_value(metric.value)}")
        elif isinstance(metric, Histogram):
            if metric.description:
                lines.append(f"# HELP {flat} {metric.description}")
            lines.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds,
                                    metric.bucket_counts[:-1]):
                cumulative += int(count)
                lines.append(f'{flat}_bucket{{le="{bound:g}"}} {cumulative}')
            cumulative += int(metric.bucket_counts[-1])
            lines.append(f'{flat}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{flat}_sum {_prometheus_value(metric.total)}")
            lines.append(f"{flat}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def summary_table(registry: MetricsRegistry) -> str:
    """Aligned console summary of every instrument, one row per metric."""
    rows = [("metric", "type", "count", "value/mean", "p50", "p95", "p99")]
    for name, metric in sorted(registry.metrics().items()):
        if isinstance(metric, Counter):
            rows.append((name, "counter", "-",
                         _fmt(metric.value), "-", "-", "-"))
        elif isinstance(metric, Gauge):
            rows.append((name, "gauge", "-",
                         _fmt(metric.value), "-", "-", "-"))
        elif isinstance(metric, Histogram):
            if metric.count == 0:
                rows.append((name, "histogram", "0", "-", "-", "-", "-"))
            else:
                rows.append((name, "histogram", str(metric.count),
                             _fmt(metric.mean), _fmt(metric.p50),
                             _fmt(metric.p95), _fmt(metric.p99)))
    recorded, dropped = len(registry.spans), registry.spans.dropped
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = ["== telemetry summary =="]
    for index, row in enumerate(rows):
        line = "  ".join(cell.ljust(width) if i == 0 else cell.rjust(width)
                         for i, (cell, width) in enumerate(zip(row, widths)))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    lines.append(f"spans: {recorded} recorded, {dropped} dropped")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.001:
        return f"{value:.3g}"
    return f"{value:.4f}".rstrip("0").rstrip(".")
