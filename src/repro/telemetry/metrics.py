"""Counters, gauges, and fixed-bucket histograms behind one registry.

The instruments are deliberately minimal so the hot paths can leave them
enabled: a counter increment is one attribute add, a histogram observation
is one binary search into fixed bucket bounds, and the vectorised
``observe_many`` amortises whole latency arrays into a single
``np.searchsorted``. Percentiles (p50/p95/p99) are interpolated from the
bucket counts, clamped by the observed min/max, so a histogram never stores
raw samples.

:class:`MetricsRegistry` is the create-or-get namespace for instruments and
also owns the :class:`~repro.telemetry.spans.SpanCollector`; every span's
duration is folded into a ``span.<name>.seconds`` histogram automatically.
:class:`NullRegistry` is the disabled twin: every method returns a shared
no-op instrument, so instrumented code pays only a method call when
telemetry is off.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.spans import NULL_SPAN, Span, SpanCollector, SpanRecord


def default_latency_buckets() -> Tuple[float, ...]:
    """Log-spaced seconds buckets from 1 microsecond to 10 seconds."""
    bounds: List[float] = []
    for exponent in range(-6, 1):
        for mantissa in (1.0, 2.5, 5.0):
            bounds.append(mantissa * 10.0 ** exponent)
    bounds.append(10.0)
    return tuple(bounds)


def power_of_two_buckets(max_exponent: int = 12) -> Tuple[float, ...]:
    """Buckets 1, 2, 4, ... 2**max_exponent (for sizes and counts)."""
    if max_exponent < 0:
        raise ValueError(f"max_exponent must be >= 0, got {max_exponent}")
    return tuple(float(1 << e) for e in range(max_exponent + 1))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount


class Gauge:
    """A value that can move both ways (occupancy, depth, fleet size)."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        """High-water-mark update (stash peaks, queue depth peaks)."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles."""

    __slots__ = ("name", "description", "bounds", "_bounds_array",
                 "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None,
                 description: str = "") -> None:
        bounds = tuple(float(b) for b in (buckets if buckets is not None
                                          else default_latency_buckets()))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(b <= 0 or not math.isfinite(b) for b in bounds):
            raise ValueError(
                f"histogram {name} bucket bounds must be positive and finite")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} bucket bounds must be strictly increasing")
        self.name = name
        self.description = description
        self.bounds = bounds
        self._bounds_array = np.asarray(bounds, dtype=np.float64)
        # one overflow bucket past the last bound (+Inf in Prometheus terms)
        self.bucket_counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Vectorised observation of a whole array of samples."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        indices = np.searchsorted(self._bounds_array, values, side="left")
        self.bucket_counts += np.bincount(indices,
                                          minlength=self.bucket_counts.size)
        self.count += int(values.size)
        self.total += float(values.sum())
        low, high = float(values.min()), float(values.max())
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Interpolated quantile from the bucket counts (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                upper = (self.bounds[index] if index < len(self.bounds)
                         else self.max)
                lower = self.bounds[index - 1] if index > 0 else self.min
                lower = min(max(lower, self.min), upper)
                upper = min(upper, self.max) if self.max >= lower else upper
                fraction = (rank - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += int(bucket_count)
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def to_dict(self) -> Dict[str, object]:
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.total,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "mean": None if empty else self.mean,
            "p50": None if empty else self.p50,
            "p95": None if empty else self.p95,
            "p99": None if empty else self.p99,
            "buckets": {f"{bound:g}": int(count) for bound, count in
                        zip(self.bounds, self.bucket_counts[:-1])},
            "overflow": int(self.bucket_counts[-1]),
        }


class MetricsRegistry:
    """Create-or-get namespace for instruments plus the span collector."""

    enabled = True

    def __init__(self, max_spans: int = 100_000) -> None:
        self._metrics: Dict[str, object] = {}
        self.spans = SpanCollector(max_spans)

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(name, Counter,
                                   lambda: Counter(name, description))

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(name, Gauge,
                                   lambda: Gauge(name, description))

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  description: str = "") -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets, description))

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        self.histogram(name, buckets).observe(value)

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes) -> Span:
        """Open a nested, timed span; duration also feeds a histogram."""
        return self.spans.start(name, attributes, on_close=self._close_span)

    def _close_span(self, record: SpanRecord) -> None:
        self.histogram(f"span.{record.name}.seconds").observe(
            record.duration_seconds)

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, object]:
        return dict(self._metrics)

    def snapshot(self, include_spans: bool = False) -> Dict[str, object]:
        """A JSON-ready view of every instrument (and optionally all spans)."""
        counters = {name: metric.value
                    for name, metric in self._metrics.items()
                    if isinstance(metric, Counter)}
        gauges = {name: metric.value
                  for name, metric in self._metrics.items()
                  if isinstance(metric, Gauge)}
        histograms = {name: metric.to_dict()
                      for name, metric in self._metrics.items()
                      if isinstance(metric, Histogram)}
        snapshot: Dict[str, object] = {
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": {"recorded": len(self.spans),
                      "dropped": self.spans.dropped},
        }
        if include_spans:
            snapshot["spans"]["records"] = self.spans.to_dicts()
        return snapshot

    def reset(self) -> None:
        self._metrics.clear()
        self.spans.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set_max(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None

    def observe_many(self, values) -> None:
        return None


class NullRegistry(MetricsRegistry):
    """Telemetry off: every instrument is a shared no-op object."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_spans=1)
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")

    def counter(self, name: str, description: str = "") -> Counter:
        return self._counter

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._gauge

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  description: str = "") -> Histogram:
        return self._histogram

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        return None

    def span(self, name: str, **attributes):
        return NULL_SPAN

    def snapshot(self, include_spans: bool = False) -> Dict[str, object]:
        return {"enabled": False, "counters": {}, "gauges": {},
                "histograms": {}, "spans": {"recorded": 0, "dropped": 0}}
