"""The process-wide telemetry registry and module-level conveniences.

Instrumented code resolves the active registry through :func:`get_registry`
at call time, so flipping telemetry on/off (or swapping in a scoped
registry for one experiment run) takes effect everywhere immediately —
no instrument rebinding. The default is an enabled
:class:`~repro.telemetry.metrics.MetricsRegistry`; call :func:`disable` (or
``set_registry(NullRegistry())``) to reduce every instrument to a no-op.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from repro.telemetry.metrics import MetricsRegistry, NullRegistry

#: The shared disabled registry; ``set_registry(NULL_REGISTRY)`` turns
#: telemetry off with zero allocation.
NULL_REGISTRY = NullRegistry()

_registry: MetricsRegistry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The registry all instrumented code reports to."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous one."""
    global _registry
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(
            f"registry must be a MetricsRegistry, got {type(registry).__name__}")
    previous = _registry
    _registry = registry
    return previous


def enable(max_spans: int = 100_000) -> MetricsRegistry:
    """Install (and return) a fresh enabled registry."""
    registry = MetricsRegistry(max_spans=max_spans)
    set_registry(registry)
    return registry


def disable() -> MetricsRegistry:
    """Turn telemetry off globally; returns the previous registry."""
    return set_registry(NULL_REGISTRY)


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None
                 ) -> Iterator[MetricsRegistry]:
    """Scope a registry to a ``with`` block (tests, single experiment runs)."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# ----------------------------------------------------------------------
# Conveniences that proxy the active registry.
# ----------------------------------------------------------------------
def span(name: str, **attributes):
    return _registry.span(name, **attributes)


def counter(name: str, description: str = ""):
    return _registry.counter(name, description)


def gauge(name: str, description: str = ""):
    return _registry.gauge(name, description)


def histogram(name: str, buckets: Optional[Sequence[float]] = None,
              description: str = ""):
    return _registry.histogram(name, buckets, description)


def observe(name: str, value: float,
            buckets: Optional[Sequence[float]] = None) -> None:
    _registry.observe(name, value, buckets)
