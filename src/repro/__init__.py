"""Reproduction of "Efficient Memory Side-Channel Protection for Embedding
Generation in Machine Learning" (HPCA 2025).

Top-level convenience imports expose the main public API:

* :mod:`repro.embedding` -- the secure embedding generation methods (linear
  scan, Path/Circuit ORAM, DHE, hybrid) behind one interface.
* :mod:`repro.models` -- DLRM and a GPT-2-style LLM built on those methods.
* :mod:`repro.hybrid` -- the profiling/threshold machinery of Algorithms 2-3.
* :mod:`repro.oram`, :mod:`repro.oblivious`, :mod:`repro.sidechannel` -- the
  substrates (ORAM controllers, oblivious primitives, the cache attack).
* :mod:`repro.experiments` -- one runnable experiment per paper table/figure.
"""

__version__ = "1.0.0"
