"""A deterministic serving-loop simulator for secure DLRM deployments.

Connects the paper's deployment story end to end: requests arrive, are
grouped into batches, the hybrid allocation for the live (batch, threads)
configuration is applied (Algorithm 3), and per-request latency is accounted
with the calibrated platform model. This is the machinery behind statements
like "the DHE-based protection still satisfies typical SLA targets"
(§VI-B3) and the latency-bounded throughput of Fig 13 — as a runnable
simulation instead of a closed-form curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.latency import (
    DheShape,
    dhe_latency,
    dhe_varied_shape,
    linear_scan_latency,
)
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.hybrid.thresholds import ThresholdDatabase
from repro.utils.validation import check_non_negative, check_positive

MLP_OVERHEAD_SECONDS = 1.5e-3


@dataclass(frozen=True)
class ServingConfig:
    """Execution configuration of one serving replica."""

    batch_size: int = 32
    threads: int = 1
    sla_seconds: float = 0.020  # the paper's 20 ms target

    def __post_init__(self) -> None:
        check_positive("batch_size", self.batch_size)
        check_positive("threads", self.threads)
        check_positive("sla_seconds", self.sla_seconds)


@dataclass
class ServingReport:
    """Latency statistics of a simulated serving run."""

    num_requests: int
    num_batches: int
    latencies: np.ndarray            # per-request seconds
    scan_features: int
    dhe_features: int

    @property
    def p50(self) -> float:
        return float(np.percentile(self.latencies, 50))

    @property
    def p95(self) -> float:
        return float(np.percentile(self.latencies, 95))

    def sla_attainment(self, sla_seconds: float) -> float:
        check_positive("sla_seconds", sla_seconds)
        return float((self.latencies <= sla_seconds).mean())

    def throughput(self) -> float:
        """Requests/second at full utilisation (sequential batches)."""
        if self._batch_time_total <= 0:
            return 0.0
        return self.num_requests / self._batch_time_total

    _batch_time_total: float = 0.0


class SecureDlrmServer:
    """Simulated single-replica server for a hybrid-protected DLRM."""

    def __init__(self, table_sizes: Sequence[int], embedding_dim: int,
                 uniform_shape: DheShape,
                 thresholds: ThresholdDatabase,
                 varied: bool = True,
                 platform: PlatformModel = DEFAULT_PLATFORM) -> None:
        if not table_sizes:
            raise ValueError("server needs at least one sparse feature")
        self.table_sizes = tuple(table_sizes)
        self.embedding_dim = embedding_dim
        self.uniform_shape = uniform_shape
        self.thresholds = thresholds
        self.varied = varied
        self.platform = platform

    # ------------------------------------------------------------------
    def allocation(self, config: ServingConfig) -> Tuple[int, int]:
        """(scan features, DHE features) for a configuration."""
        threshold = self.thresholds.threshold(self.embedding_dim,
                                              config.batch_size,
                                              config.threads)
        scans = sum(1 for size in self.table_sizes if size <= threshold)
        return scans, len(self.table_sizes) - scans

    def batch_latency(self, config: ServingConfig) -> float:
        """Modelled end-to-end latency of one full batch."""
        threshold = self.thresholds.threshold(self.embedding_dim,
                                              config.batch_size,
                                              config.threads)
        total = MLP_OVERHEAD_SECONDS
        for size in self.table_sizes:
            if size <= threshold:
                total += linear_scan_latency(size, self.embedding_dim,
                                             config.batch_size,
                                             config.threads, self.platform)
            else:
                shape = (dhe_varied_shape(size, self.uniform_shape)
                         if self.varied else self.uniform_shape)
                total += dhe_latency(shape, config.batch_size,
                                     config.threads, self.platform)
        return total

    # ------------------------------------------------------------------
    def serve(self, num_requests: int, config: ServingConfig) -> ServingReport:
        """Simulate serving ``num_requests`` in back-to-back full batches.

        Per-request latency = completion time of its batch (queueing within
        the batch window is not modelled — requests are assumed to arrive
        exactly at batch boundaries, the paper's throughput setting).
        """
        check_positive("num_requests", num_requests)
        per_batch = self.batch_latency(config)
        batches = (num_requests + config.batch_size - 1) // config.batch_size
        latencies = np.full(num_requests, per_batch)
        scans, dhes = self.allocation(config)
        report = ServingReport(num_requests=num_requests,
                               num_batches=batches, latencies=latencies,
                               scan_features=scans, dhe_features=dhes)
        report._batch_time_total = batches * per_batch
        return report

    def best_configuration(self, configs: Sequence[ServingConfig],
                           num_requests: int = 1024) -> Tuple[ServingConfig,
                                                              ServingReport]:
        """Highest-throughput configuration that meets its own SLA."""
        if not configs:
            raise ValueError("need at least one candidate configuration")
        best: Optional[Tuple[ServingConfig, ServingReport]] = None
        for config in configs:
            report = self.serve(num_requests, config)
            if report.sla_attainment(config.sla_seconds) < 1.0:
                continue
            if best is None or report.throughput() > best[1].throughput():
                best = (config, report)
        if best is None:
            raise RuntimeError("no candidate configuration meets its SLA")
        return best
