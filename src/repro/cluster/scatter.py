"""Cross-shard scatter-gather: one request, every shard, one answer.

A DLRM inference needs *every* sparse feature, so a sharded deployment
fans each batch out to all shards holding routed tables, waits for the
slowest shard, and gathers the pooled embeddings into the dense stack.
:class:`ScatterGatherEngine` models exactly that: each live node runs the
arrival trace through its own per-shard
:class:`~repro.serving.engine.ExecutionEngine` (embedding work only — the
dense MLP and the gather fan-in are priced once at the front end), and the
per-request end-to-end latency is the elementwise max over shards plus the
front-end overhead. The per-request deadline budget composes from
:class:`~repro.resilience.retry.RetryPolicy` the same way the resilient
executor's does: requests whose gathered latency exceeds the budget are
shed with their latency censored at the deadline.

Obliviousness is inherited, not re-argued: every shard serves padded,
data-independent batches (the shard's table set is fixed by the
frequency-blind plan, the batch shape by the config), so the scatter fan
and the gather barrier reveal only public quantities — batch counts and
table-to-shard topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.router import ShardRouter
from repro.costmodel.latency import MLP_OVERHEAD_SECONDS, DheShape
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.hybrid.thresholds import ThresholdDatabase
from repro.resilience.dispatch import ResilientDispatcher
from repro.resilience.retry import RetryPolicy
from repro.serving.backends import BackendLike, resolve_backend
from repro.serving.batcher import BatchingPolicy
from repro.serving.engine import ArrivalsLike, ExecutionEngine, ServingConfig
from repro.serving.report import ServingReport
from repro.serving.requests import RequestQueue
from repro.telemetry.runtime import get_registry
from repro.utils.rng import SeedLike
from repro.utils.validation import check_non_negative

if TYPE_CHECKING:  # runtime import deferred (repro.cache imports serving)
    from repro.cache.policy import CachePolicy


def _gathered_cache_fields(shard_reports) -> Dict[str, Optional[int]]:
    """Summed cache counters for the gathered front-end report.

    Mirrors :meth:`ServingReport.merge`: counters sum across shards, and
    the gathered report stays uncached (all ``None``) only when no shard
    tracked a cache.
    """
    reports = list(shard_reports.values())
    if not any(r.tracks_cache for r in reports):
        return {"cache_hits": None, "cache_misses": None,
                "cache_bytes_resident": None}
    return {
        "cache_hits": sum(r.cache_hits or 0 for r in reports),
        "cache_misses": sum(r.cache_misses or 0 for r in reports),
        "cache_bytes_resident": sum(r.cache_bytes_resident or 0
                                    for r in reports),
    }


class ClusterUnavailableError(RuntimeError):
    """No live shard can serve any table (the whole fleet is out)."""


@dataclass
class ClusterServingReport:
    """The gathered view of one scatter-gather run.

    ``report`` carries per-request end-to-end numbers (queue wait of the
    binding shard + slowest shard service + front-end overhead, censored at
    the deadline for shed requests); ``fleet`` is the
    :meth:`~repro.serving.report.ServingReport.merge` of the per-shard
    reports (aggregate busy time and batch counts); ``shard_reports`` keeps
    every constituent for drill-down.
    """

    report: ServingReport
    fleet: ServingReport
    shard_reports: Dict[int, ServingReport]
    assignment: Dict[int, Tuple[int, ...]]       # node -> routed table ids
    unroutable_tables: Tuple[int, ...]
    shed_requests: int
    deadline_seconds: float
    gather_overhead_seconds: float = 0.0
    capacity_rps: float = 0.0                    # saturated pipeline capacity
    shard_batch_latency_seconds: Dict[int, float] = field(default_factory=dict)
    # Autoscale event counters the control loop stamps on interval reports;
    # like every other counter they SUM under :meth:`merge`.
    scale_up_events: int = 0
    scale_down_events: int = 0
    heal_events: int = 0

    # ------------------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return self.report.num_requests

    @property
    def num_shards(self) -> int:
        return len(self.shard_reports)

    @property
    def availability(self) -> float:
        """Fraction of requests fully answered before their deadline."""
        if self.report.num_requests == 0:
            return 0.0
        return 1.0 - self.shed_requests / self.report.num_requests

    @property
    def p50(self) -> float:
        return 0.0 if self.report.num_requests == 0 else self.report.p50

    @property
    def p95(self) -> float:
        return 0.0 if self.report.num_requests == 0 else self.report.p95

    @property
    def p99(self) -> float:
        """Gathered p99 (0.0, not NaN, when nothing was served)."""
        return 0.0 if self.report.num_requests == 0 else self.report.p99

    @property
    def bottleneck_busy_seconds(self) -> float:
        """Busy time of the most loaded shard (the scaling bottleneck)."""
        if not self.shard_reports:
            return 0.0
        return max(r.batch_time_total for r in self.shard_reports.values())

    def cluster_throughput(self) -> float:
        """Answered requests/second limited by the bottleneck shard.

        This is the *achieved* rate for the trace actually served; at low
        offered load padded partial batches keep it far below
        :attr:`capacity_rps`, the saturated pipeline ceiling (the Fig 13
        throughput metric, ``batch_size / slowest-stage latency``) that the
        sim's scaling gate compares. Shed requests are not answered, so a
        run that sheds everything reports 0.0 — never a division error.
        """
        busy = self.bottleneck_busy_seconds
        if busy <= 0.0:
            return 0.0
        answered = self.report.num_requests - self.shed_requests
        return max(0, answered) / busy

    def sla_violations(self, sla_seconds: float) -> int:
        return int(np.count_nonzero(self.report.latencies > sla_seconds))

    def utilisation(self, offered_rps: float) -> float:
        """Offered load over provisioned capacity, NaN/inf-free.

        A zero-capacity report (nothing routable, or a fleet moment priced
        before any shard came up) reports 0.0 rather than dividing — the
        caller that needs "is demand outrunning a dead fleet" reads
        ``capacity_rps == 0`` directly.
        """
        if self.capacity_rps <= 0.0 or offered_rps < 0.0:
            return 0.0
        return offered_rps / self.capacity_rps

    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, reports: Sequence["ClusterServingReport"]
              ) -> "ClusterServingReport":
        """Aggregate interval reports into one fleet-wide view.

        Counters — requests, shed requests, and the autoscale event
        counters — are **summed, never averaged**; latency arrays
        concatenate through :meth:`ServingReport.merge` so merged
        percentiles are percentiles of the union. ``capacity_rps`` is the
        max across constituents (peak provisioned capacity — capacities of
        the *same* fleet at different moments do not add), which also
        makes a zero-capacity constituent merge cleanly: no division, no
        NaN, no inf. Per-node shard reports merge node-wise and
        assignments union.
        """
        if not reports:
            raise ValueError("merge needs at least one report")
        shard_groups: Dict[int, List[ServingReport]] = {}
        assignment: Dict[int, set] = {}
        for interval in reports:
            for node, shard in interval.shard_reports.items():
                shard_groups.setdefault(node, []).append(shard)
            for node, tables in interval.assignment.items():
                assignment.setdefault(node, set()).update(tables)
        unroutable = sorted({table for interval in reports
                             for table in interval.unroutable_tables})
        finite_deadlines = [r.deadline_seconds for r in reports
                            if math.isfinite(r.deadline_seconds)]
        return cls(
            report=ServingReport.merge([r.report for r in reports]),
            fleet=ServingReport.merge([r.fleet for r in reports]),
            shard_reports={node: ServingReport.merge(group)
                           for node, group in shard_groups.items()},
            assignment={node: tuple(sorted(tables))
                        for node, tables in assignment.items()},
            unroutable_tables=tuple(unroutable),
            shed_requests=sum(r.shed_requests for r in reports),
            deadline_seconds=(max(finite_deadlines) if finite_deadlines
                              else math.inf),
            gather_overhead_seconds=max(r.gather_overhead_seconds
                                        for r in reports),
            capacity_rps=max(r.capacity_rps for r in reports),
            shard_batch_latency_seconds={
                node: max(r.shard_batch_latency_seconds.get(node, 0.0)
                          for r in reports)
                for node in sorted({n for r in reports
                                    for n in r.shard_batch_latency_seconds})},
            scale_up_events=sum(r.scale_up_events for r in reports),
            scale_down_events=sum(r.scale_down_events for r in reports),
            heal_events=sum(r.heal_events for r in reports))

    # ------------------------------------------------------------------
    def to_dict(self, sla_seconds: Optional[float] = None
                ) -> Dict[str, object]:
        """JSON-stable digest: simulated quantities only, NaN/inf-free.

        Safe under ``json.dumps(..., allow_nan=False)`` for every report
        the engine can produce — including zero-capacity cells and
        deadline-free runs (an infinite deadline serialises as ``None``).
        """
        digest: Dict[str, object] = {
            "num_requests": self.report.num_requests,
            "num_shards": self.num_shards,
            "assignment": {str(node): list(tables)
                           for node, tables in sorted(self.assignment.items())},
            "unroutable_tables": list(self.unroutable_tables),
            "shed_requests": self.shed_requests,
            "availability": self.availability,
            "deadline_seconds": (self.deadline_seconds
                                 if math.isfinite(self.deadline_seconds)
                                 else None),
            "p50_seconds": self.p50,
            "p95_seconds": self.p95,
            "p99_seconds": self.p99,
            "mean_queue_delay_seconds": self.report.mean_queue_delay,
            "bottleneck_busy_seconds": self.bottleneck_busy_seconds,
            "fleet_busy_seconds": self.fleet.batch_time_total,
            "fleet_batches": self.fleet.num_batches,
            "cluster_throughput_rps": self.cluster_throughput(),
            "capacity_rps": self.capacity_rps,
            "scale_up_events": self.scale_up_events,
            "scale_down_events": self.scale_down_events,
            "heal_events": self.heal_events,
            "shard_batch_latency_seconds": {
                str(node): latency for node, latency
                in sorted(self.shard_batch_latency_seconds.items())},
            "scan_features": self.report.scan_features,
            "dhe_features": self.report.dhe_features,
            "shards": {str(node): {
                "tables": list(self.assignment[node]),
                "num_batches": shard.num_batches,
                "busy_seconds": shard.batch_time_total,
                "p99_seconds": shard.p99,
            } for node, shard in sorted(self.shard_reports.items())},
        }
        if sla_seconds is not None:
            digest["sla_seconds"] = sla_seconds
            digest["sla_violations"] = self.sla_violations(sla_seconds)
            # A shed request never attains its SLA, but its latency is
            # censored at the deadline (which may sit below the SLA), so
            # the raw per-latency attainment is capped at availability —
            # an all-shed run reports 0.0, not a vacuous 1.0.
            digest["sla_attainment"] = (
                0.0 if self.report.num_requests == 0
                else min(self.report.sla_attainment(sla_seconds),
                         self.availability))
        return digest


class ScatterGatherEngine:
    """Splits per-table lookups across shards and gathers the results."""

    def __init__(self, table_sizes: Sequence[int], embedding_dim: int,
                 uniform_shape: Optional[DheShape],
                 thresholds: ThresholdDatabase,
                 router: ShardRouter,
                 varied: bool = True,
                 backend: BackendLike = "modelled",
                 platform: PlatformModel = DEFAULT_PLATFORM,
                 mlp_overhead_seconds: float = MLP_OVERHEAD_SECONDS,
                 gather_overhead_seconds: float = 5e-5,
                 retry: Optional[RetryPolicy] = None,
                 dispatcher: Optional[ResilientDispatcher] = None,
                 cache: Optional["CachePolicy"] = None) -> None:
        if not table_sizes:
            raise ValueError("scatter-gather needs at least one table")
        if cache is not None:
            from repro.cache.policy import CachePolicy

            if not isinstance(cache, CachePolicy):
                # A shared instance would alias batch keys across shards
                # (every shard sees the same public arrival metadata), so
                # the fleet takes a policy and builds one cache per shard.
                raise TypeError(
                    "ScatterGatherEngine takes a CachePolicy (one cache is "
                    "built per shard), not a cache instance")
        check_non_negative("mlp_overhead_seconds", mlp_overhead_seconds)
        check_non_negative("gather_overhead_seconds", gather_overhead_seconds)
        self.table_sizes = tuple(table_sizes)
        self.embedding_dim = embedding_dim
        self.uniform_shape = uniform_shape
        self.thresholds = thresholds
        self.router = router
        self.varied = varied
        # Resolve once so shard engines share one backend (and, for the
        # measured backend, one generator cache).
        self.backend = resolve_backend(backend, uniform_shape, platform)
        self.platform = platform
        self.mlp_overhead_seconds = mlp_overhead_seconds
        self.gather_overhead_seconds = gather_overhead_seconds
        self.retry = retry
        self.dispatcher = dispatcher
        self.cache = cache
        self._engines: Dict[Tuple[int, ...], ExecutionEngine] = {}

    # ------------------------------------------------------------------
    def shard_engine(self, table_ids: Sequence[int]) -> ExecutionEngine:
        """The (cached) embedding-only engine over a shard's routed tables."""
        key = tuple(table_ids)
        if key not in self._engines:
            sizes = [self.table_sizes[table_id] for table_id in key]
            self._engines[key] = ExecutionEngine(
                sizes, self.embedding_dim, self.uniform_shape,
                self.thresholds, varied=self.varied, backend=self.backend,
                platform=self.platform, mlp_overhead_seconds=0.0,
                cache=self.cache)
        return self._engines[key]

    def current_assignment(self, now_seconds: float = 0.0, owner_map=None
                           ) -> Tuple[Dict[int, List[int]], List[int]]:
        """Live (node -> tables, unroutable tables) via the owner map.

        ``owner_map`` defaults to the engine's router; during an epoch
        transition the caller passes the
        :class:`~repro.cluster.migration.TransitioningOwnerMap` instead,
        and in-flight tables fan out to both their source and target
        owners (double-serve).
        """
        source = self.router if owner_map is None else owner_map
        return source.assignment(len(self.table_sizes), now_seconds,
                                 self.dispatcher)

    # ------------------------------------------------------------------
    def serve(self, config: ServingConfig, arrivals: ArrivalsLike,
              policy: Optional[BatchingPolicy] = None,
              owner_map=None) -> ClusterServingReport:
        """Scatter an arrival trace across the live shards and gather.

        Every shard batches the same trace independently (its own
        :class:`~repro.serving.batcher.DynamicBatcher` run priced at the
        shard's table subset); a request completes when its slowest shard
        does, plus the front-end MLP + gather overhead. ``owner_map``
        overrides the router's assignment for the duration of this trace
        (how a migration serves against a transitioning topology).
        """
        queue = (arrivals if isinstance(arrivals, RequestQueue)
                 else RequestQueue(arrivals))
        if policy is not None and self.retry is not None:
            self.retry.validate_against(policy)
        routed, unroutable = self.current_assignment(0.0, owner_map)
        if not routed:
            raise ClusterUnavailableError(
                "no live shard can serve any table; the fleet is out")
        registry = get_registry()
        shard_reports: Dict[int, ServingReport] = {}
        shard_latency: Dict[int, float] = {}
        with registry.span("cluster.scatter_gather", shards=len(routed),
                           requests=len(queue)):
            for node in sorted(routed):
                engine = self.shard_engine(routed[node])
                shard_latency[node] = engine.batch_latency(config)
                with registry.span("cluster.shard_serve", node=node,
                                   tables=len(routed[node])):
                    shard_reports[node] = engine.serve(config, queue, policy)
        capacity = self.capacity_rps(config, shard_latency)
        return self._gather(queue, shard_reports, routed, unroutable,
                            capacity, shard_latency)

    def capacity_rps(self, config: ServingConfig,
                     shard_latency: Dict[int, float]) -> float:
        """Saturated pipeline capacity: batch size over the slowest stage.

        The shards and the front end (MLP + gather) form a two-stage
        pipeline; at saturation every stage streams full batches, so the
        sustainable rate is ``batch_size / max(stage latencies)`` — the
        same batch-over-latency throughput metric Fig 13 plots, which is
        what the sim's scaling gate compares across topologies.
        """
        front_end = (self.mlp_overhead_seconds
                     + self.gather_overhead_seconds * len(shard_latency))
        bottleneck = max(max(shard_latency.values()), front_end)
        if bottleneck <= 0.0:
            return 0.0
        return config.batch_size / bottleneck

    def serve_poisson(self, num_requests: int, rate_rps: float,
                      config: ServingConfig,
                      policy: Optional[BatchingPolicy] = None,
                      rng: SeedLike = None) -> ClusterServingReport:
        """Open-system scatter-gather: Poisson arrivals across the fleet."""
        queue = RequestQueue.poisson(num_requests, rate_rps, rng)
        return self.serve(config, queue, policy)

    # ------------------------------------------------------------------
    def _gather(self, queue: RequestQueue,
                shard_reports: Dict[int, ServingReport],
                routed: Dict[int, List[int]],
                unroutable: List[int],
                capacity: float,
                shard_latency: Dict[int, float]) -> ClusterServingReport:
        """Join the per-shard per-request arrays into the gathered report."""
        nodes = sorted(shard_reports)
        stacked = np.stack([shard_reports[node].latencies for node in nodes])
        queue_stack = np.stack([shard_reports[node].queue_delays
                                for node in nodes])
        overhead = (self.mlp_overhead_seconds
                    + self.gather_overhead_seconds * len(nodes))
        total = stacked.max(axis=0) + overhead
        queue_delays = queue_stack.max(axis=0)

        deadline = (self.retry.deadline_seconds if self.retry is not None
                    else math.inf)
        if unroutable:
            # Some tables have no live owner: every request is missing
            # embeddings and fails at its deadline.
            shed_mask = np.ones(total.shape, dtype=bool)
        else:
            shed_mask = total > deadline
        shed = int(np.count_nonzero(shed_mask))
        if shed and math.isfinite(deadline):
            total = np.where(shed_mask, np.minimum(total, deadline), total)
        service = total - queue_delays

        report = ServingReport.from_components(
            queue_delays=queue_delays, service_latencies=service,
            num_batches=max(r.num_batches for r in shard_reports.values()),
            scan_features=sum(r.scan_features
                              for r in shard_reports.values()),
            dhe_features=sum(r.dhe_features for r in shard_reports.values()),
            batch_time_total=max(r.batch_time_total
                                 for r in shard_reports.values()),
            **_gathered_cache_fields(shard_reports))
        fleet = ServingReport.merge(list(shard_reports.values()))
        registry = get_registry()
        if registry.enabled:
            registry.counter("cluster.requests_total").inc(len(queue))
            registry.counter("cluster.shed_total").inc(shed)
            registry.gauge("cluster.live_shards").set(len(nodes))
            registry.histogram("cluster.request_latency_seconds"
                               ).observe_many(total)
        return ClusterServingReport(
            report=report, fleet=fleet, shard_reports=shard_reports,
            assignment={node: tuple(tables)
                        for node, tables in routed.items()},
            unroutable_tables=tuple(unroutable), shed_requests=shed,
            deadline_seconds=deadline,
            gather_overhead_seconds=self.gather_overhead_seconds,
            capacity_rps=capacity,
            shard_batch_latency_seconds=dict(shard_latency))
