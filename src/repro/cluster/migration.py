"""Live, audited table migration between plan epochs.

Moving tables between nodes is the restructuring analogue of an ORAM
eviction: it happens *ahead of* accesses, against live traffic, and if the
order or pacing of the moves is keyed on observed load it leaks exactly
the per-table heat the paper's defences hide (LAORAM's lesson — the
restructuring must itself stay access-pattern-oblivious). The engine here
makes the whole transition a function of public metadata:

* the **move-set** between two :class:`~repro.cluster.epoch.PlanEpoch`
  snapshots is minimal — only tables whose owner set changed move, which
  the consistent-hash ring keeps at ~``tables x R / nodes`` for a one-node
  reshard (the incrementality the router tests pin);
* moves execute in **bounded-size steps**; while a table is in flight it
  is **double-served** from both its source and target owners, so at
  replication >= 2 no request ever finds the table ownerless and zero
  requests drop across the cutover;
* the **move order** is chosen by a :class:`MigrationPlanner` that — like
  the shard planner — *accepts* the observed workload argument a
  heat-keyed scheduler would want and must ignore it. Every intermediate
  assignment (which tables are pending / in flight / moved at each step)
  is recorded in the ``cluster.migration`` tracer region and replayed
  under contrasting workloads by the
  :class:`~repro.telemetry.audit.LeakageAuditor` in exact mode.
  :class:`HotFirstMigrationPlanner` (move the hottest tables first — the
  "natural" warm-up order) is the in-tree negative control the audit must
  flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.epoch import PlanEpoch
from repro.cluster.placement import PlacementLeakageError
from repro.oblivious.trace import WRITE, MemoryTracer
from repro.serving.batcher import BatchingPolicy
from repro.serving.engine import ArrivalsLike, ServingConfig
from repro.serving.requests import RequestQueue
from repro.telemetry.audit import (
    MODE_EXACT,
    AuditFinding,
    AuditSubject,
    LeakageAuditor,
)
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive

#: tracer region every intermediate migration assignment is recorded under
MIGRATION_REGION = "cluster.migration"

#: phases a table passes through during a migration (trace encoding)
PHASE_PENDING, PHASE_IN_FLIGHT, PHASE_MOVED = 0, 1, 2


@dataclass(frozen=True)
class TableMove:
    """One table's ownership change between epochs."""

    table_id: int
    from_owners: Tuple[int, ...]
    to_owners: Tuple[int, ...]
    new_owners: Tuple[int, ...]      # owners that must receive a copy
    bytes_modelled: int              # footprint x copies provisioned

    def to_dict(self) -> Dict[str, object]:
        return {
            "table_id": self.table_id,
            "from_owners": list(self.from_owners),
            "to_owners": list(self.to_owners),
            "new_owners": list(self.new_owners),
            "bytes_modelled": self.bytes_modelled,
        }


@dataclass(frozen=True)
class MigrationStep:
    """One bounded batch of concurrent table moves."""

    index: int
    moves: Tuple[TableMove, ...]

    @property
    def table_ids(self) -> Tuple[int, ...]:
        return tuple(move.table_id for move in self.moves)

    @property
    def bytes_modelled(self) -> int:
        return sum(move.bytes_modelled for move in self.moves)


@dataclass(frozen=True)
class BandwidthContentionModel:
    """Data-copy traffic contending with serving traffic, per step.

    A migration step streams ``bytes_modelled`` table bytes between nodes
    over the same fabric the scatter-gather fan-out uses. Instead of
    treating the copy as free (the pure byte count PR 5 reported), this
    model prices the contention: the fraction of a step's serving window
    the copy occupies inflates every request latency in that window by up
    to ``contention_weight`` (full overlap doubles nothing worse than
    ``1 + contention_weight``x). The inputs — move-set bytes and the
    public arrival window — are secret-free, so the inflation is a
    function of the plan, never of request content.
    """

    copy_bandwidth_bytes_per_second: float = 12.5e9   # ~100 Gbit/s fabric
    contention_weight: float = 0.8                    # slowdown at full overlap

    def __post_init__(self) -> None:
        check_positive("copy_bandwidth_bytes_per_second",
                       self.copy_bandwidth_bytes_per_second)
        if not 0.0 <= self.contention_weight:
            raise ValueError(f"contention_weight must be >= 0, got "
                             f"{self.contention_weight!r}")

    def copy_seconds(self, bytes_modelled: int) -> float:
        """Wire time to stream one step's copy bytes."""
        return bytes_modelled / self.copy_bandwidth_bytes_per_second

    def multiplier(self, bytes_modelled: int,
                   window_seconds: float) -> float:
        """Service-latency inflation for a step serving ``window_seconds``.

        ``1 + weight x overlap`` where overlap is the copy time's share of
        the window, capped at 1 (a copy longer than the window saturates
        the link for the whole window; it cannot contend more than that).
        A degenerate zero-length window is treated as fully overlapped —
        the conservative direction.
        """
        copy = self.copy_seconds(bytes_modelled)
        if copy <= 0.0:
            return 1.0
        overlap = 1.0 if window_seconds <= 0.0 else min(
            1.0, copy / window_seconds)
        return 1.0 + self.contention_weight * overlap

    def to_dict(self) -> Dict[str, object]:
        return {
            "copy_bandwidth_bytes_per_second":
                self.copy_bandwidth_bytes_per_second,
            "contention_weight": self.contention_weight,
        }


class MigrationPlanner:
    """Orders the move-set by static metadata only (table id).

    ``workload`` exists so :func:`check_oblivious_migration` can verify it
    is ignored — the same enforced-not-assumed contract the shard planner
    honours for placement.
    """

    def move_order(self, moves: Sequence[TableMove],
                   workload: Optional[Sequence[int]] = None
                   ) -> List[TableMove]:
        return sorted(moves, key=lambda move: move.table_id)


class HotFirstMigrationPlanner(MigrationPlanner):
    """The anti-pattern: migrate the hottest tables first.

    Bins the observed workload into per-table heat and schedules the
    hottest moves into the earliest steps — the "natural" order that warms
    the target fastest and leaks per-table popularity through step
    membership. Kept only as the negative control for the migration
    leakage audit; never use it to drive a real migration.
    """

    def move_order(self, moves: Sequence[TableMove],
                   workload: Optional[Sequence[int]] = None
                   ) -> List[TableMove]:
        if workload is None or not moves:
            return super().move_order(moves, workload)
        observed = np.asarray(workload, dtype=np.int64)
        size = max(move.table_id for move in moves) + 1
        heat = np.bincount(observed % size, minlength=size)
        return sorted(moves, key=lambda move: (-int(heat[move.table_id]),
                                               move.table_id))


class TransitioningOwnerMap:
    """The owner view mid-migration: pending / in-flight / moved tables.

    Pending tables route through the source epoch, moved tables through
    the target epoch, and in-flight tables are **double-served**: both the
    first live source-side owner and the first live target-side owner
    carry the table, so a request finds it as long as either side has a
    live replica. Exposes the same ``assignment`` contract as
    :class:`~repro.cluster.router.ShardRouter`, which is what lets the
    scatter-gather engine fan out against a transition without knowing one
    is happening.
    """

    def __init__(self, source: PlanEpoch, target: PlanEpoch,
                 moved: frozenset, in_flight: frozenset) -> None:
        if moved & in_flight:
            raise ValueError("a table cannot be both moved and in flight: "
                             f"{sorted(moved & in_flight)}")
        self.source = source
        self.target = target
        self.moved = moved
        self.in_flight = in_flight

    # ------------------------------------------------------------------
    def owners(self, table_id: int) -> Tuple[int, ...]:
        """Every node holding the table right now (source side first)."""
        if table_id in self.moved:
            return self.target.owners(table_id)
        if table_id in self.in_flight:
            combined = list(self.source.owners(table_id))
            combined += [node for node in self.target.owners(table_id)
                         if node not in combined]
            return tuple(combined)
        return self.source.owners(table_id)

    def _owner_groups(self, table_id: int) -> List[Tuple[int, ...]]:
        """The owner sets that each independently serve the table."""
        if table_id in self.moved:
            return [self.target.owners(table_id)]
        if table_id in self.in_flight:
            return [self.source.owners(table_id),
                    self.target.owners(table_id)]
        return [self.source.owners(table_id)]

    def assignment(self, num_tables: int, now_seconds: float = 0.0,
                   dispatcher=None) -> Tuple[Dict[int, List[int]],
                                             List[int]]:
        """(node -> served table ids, unroutable table ids) right now.

        An in-flight table appears on *both* its source-side and
        target-side serving node — that is the double-serve load the p99
        inflation gate prices — and is unroutable only when every owner on
        both sides is out.
        """
        check_positive("num_tables", num_tables)
        admitted = (None if dispatcher is None
                    else set(dispatcher.admitted(now_seconds)))
        routed: Dict[int, List[int]] = {}
        unroutable: List[int] = []
        for table_id in range(num_tables):
            nodes: List[int] = []
            for group in self._owner_groups(table_id):
                live = (group[0] if admitted is None
                        else next((owner for owner in group
                                   if owner in admitted), None))
                if live is not None and live not in nodes:
                    nodes.append(live)
            if not nodes:
                unroutable.append(table_id)
            for node in nodes:
                routed.setdefault(node, []).append(table_id)
        return routed, unroutable

    def to_dict(self) -> Dict[str, object]:
        return {
            "source_epoch": self.source.epoch,
            "target_epoch": self.target.epoch,
            "moved": sorted(self.moved),
            "in_flight": sorted(self.in_flight),
        }


@dataclass
class MigrationReport:
    """What one executed migration did and what it cost."""

    source_epoch: int
    target_epoch: int
    replication: int
    step_size: int
    moves: Tuple[TableMove, ...]
    step_cells: List[Dict[str, object]] = field(default_factory=list)
    window_latencies: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64))
    num_requests: int = 0
    shed_requests: int = 0
    unroutable_events: int = 0

    # ------------------------------------------------------------------
    @property
    def tables_moved(self) -> int:
        return len(self.moves)

    @property
    def bytes_modelled(self) -> int:
        return sum(move.bytes_modelled for move in self.moves)

    @property
    def num_steps(self) -> int:
        return len(self.step_cells)

    @property
    def availability(self) -> float:
        if self.num_requests == 0:
            return 0.0
        return 1.0 - self.shed_requests / self.num_requests

    @property
    def window_p99(self) -> float:
        """p99 over every request served inside the migration window."""
        if self.window_latencies.size == 0:
            return 0.0
        return float(np.percentile(self.window_latencies, 99))

    def to_dict(self) -> Dict[str, object]:
        return {
            "source_epoch": self.source_epoch,
            "target_epoch": self.target_epoch,
            "replication": self.replication,
            "step_size": self.step_size,
            "tables_moved": self.tables_moved,
            "bytes_modelled": self.bytes_modelled,
            "num_steps": self.num_steps,
            "num_requests": self.num_requests,
            "shed_requests": self.shed_requests,
            "unroutable_events": self.unroutable_events,
            "availability": self.availability,
            "window_p99_seconds": self.window_p99,
            "moves": [move.to_dict() for move in self.moves],
            "steps": self.step_cells,
        }


class MigrationEngine:
    """Computes and executes the epoch transition in bounded, audited steps."""

    def __init__(self, source: PlanEpoch, target: PlanEpoch,
                 step_size: int = 4,
                 planner: Optional[MigrationPlanner] = None,
                 moves: Optional[Sequence[TableMove]] = None,
                 contention: Optional[BandwidthContentionModel] = None
                 ) -> None:
        check_positive("step_size", step_size)
        if source.num_tables != target.num_tables:
            raise ValueError(
                f"epochs place different table sets: {source.num_tables} "
                f"vs {target.num_tables} tables")
        if target.epoch <= source.epoch:
            raise ValueError(
                f"target epoch {target.epoch} must succeed source epoch "
                f"{source.epoch}")
        self.source = source
        self.target = target
        self.step_size = step_size
        self.planner = planner if planner is not None else MigrationPlanner()
        # An explicit move list overrides the epoch diff: how a heal
        # re-replicates a dead node's tables under a plan that did not
        # change (the epoch diff would be empty). Every override move must
        # reference a table both epochs place.
        if moves is not None:
            for move in moves:
                if not 0 <= move.table_id < source.num_tables:
                    raise ValueError(
                        f"override move references table {move.table_id} "
                        f"outside the {source.num_tables}-table plan")
        self._moves_override = (None if moves is None else tuple(moves))
        self.contention = contention

    # ------------------------------------------------------------------
    def move_set(self) -> List[TableMove]:
        """The move-set: the epoch diff, or the explicit override."""
        if self._moves_override is not None:
            return list(self._moves_override)
        moves: List[TableMove] = []
        for table_id in range(self.source.num_tables):
            from_owners = self.source.owners(table_id)
            to_owners = self.target.owners(table_id)
            if set(from_owners) == set(to_owners):
                continue
            new_owners = tuple(node for node in to_owners
                               if node not in from_owners)
            footprint = self.target.footprint_of(table_id)
            moves.append(TableMove(
                table_id=table_id, from_owners=from_owners,
                to_owners=to_owners, new_owners=new_owners,
                bytes_modelled=footprint * len(new_owners)))
        return moves

    def plan_steps(self, workload: Optional[Sequence[int]] = None,
                   tracer: Optional[MemoryTracer] = None
                   ) -> List[MigrationStep]:
        """Chunk the ordered move-set into bounded steps; trace each state.

        The tracer records, per step, every table's phase (pending /
        in-flight / moved) — the full intermediate assignment, since both
        epochs are themselves workload-blind. Any workload-dependent move
        order shows up as trace divergence in the audit.
        """
        ordered = self.planner.move_order(self.move_set(), workload)
        steps = [MigrationStep(index, tuple(ordered[at:at + self.step_size]))
                 for index, at in enumerate(range(0, len(ordered),
                                                  self.step_size))]
        if tracer is not None:
            num_tables = self.source.num_tables
            moved: set = set()
            for step in steps:
                in_flight = set(step.table_ids)
                for table_id in range(num_tables):
                    phase = (PHASE_MOVED if table_id in moved
                             else PHASE_IN_FLIGHT if table_id in in_flight
                             else PHASE_PENDING)
                    tracer.record(
                        WRITE, MIGRATION_REGION,
                        (step.index * num_tables + table_id) * 3 + phase)
                moved |= in_flight
        return steps

    # ------------------------------------------------------------------
    def owner_map_for(self, step_index: int,
                      steps: Sequence[MigrationStep]
                      ) -> TransitioningOwnerMap:
        """The intermediate owner map while ``steps[step_index]`` is in flight."""
        moved = frozenset(table_id for step in steps[:step_index]
                          for table_id in step.table_ids)
        in_flight = frozenset(steps[step_index].table_ids)
        return TransitioningOwnerMap(self.source, self.target, moved,
                                     in_flight)

    def final_owner_map(self) -> TransitioningOwnerMap:
        """The post-cutover map: every move complete, nothing in flight."""
        moved = frozenset(move.table_id for move in self.move_set())
        return TransitioningOwnerMap(self.source, self.target, moved,
                                     frozenset())

    # ------------------------------------------------------------------
    def execute(self, engine, config: ServingConfig, arrivals: ArrivalsLike,
                policy: Optional[BatchingPolicy] = None) -> MigrationReport:
        """Run the migration against live traffic, one trace slice per step.

        ``engine`` is a :class:`~repro.cluster.scatter.ScatterGatherEngine`
        built over the full table set; each step serves its slice of the
        arrival trace against that step's transitioning owner map — the
        requests that arrive during step k are routed by step k's map,
        which is the "route by the epoch a request arrived in" contract
        scaled down to intermediate states.
        """
        queue = (arrivals if isinstance(arrivals, RequestQueue)
                 else RequestQueue(arrivals))
        steps = self.plan_steps()
        report = MigrationReport(
            source_epoch=self.source.epoch, target_epoch=self.target.epoch,
            replication=self.source.replication, step_size=self.step_size,
            moves=tuple(self.planner.move_order(self.move_set())))
        registry = get_registry()
        with registry.span("cluster.migration",
                           source_epoch=self.source.epoch,
                           target_epoch=self.target.epoch,
                           steps=len(steps), tables=report.tables_moved):
            if not steps:
                return report
            slices = np.array_split(queue.arrivals, len(steps))
            window: List[np.ndarray] = []
            for step, chunk in zip(steps, slices):
                owner_map = self.owner_map_for(step.index, steps)
                cell: Dict[str, object] = {
                    "step": step.index,
                    "tables_in_flight": list(step.table_ids),
                    "bytes_modelled": step.bytes_modelled,
                    "num_requests": int(chunk.size),
                    "shed_requests": 0,
                    "unroutable_tables": 0,
                    "p99_seconds": 0.0,
                }
                if chunk.size:
                    result = engine.serve(config, RequestQueue(chunk),
                                          policy, owner_map=owner_map)
                    latencies = result.report.latencies
                    shed = result.shed_requests
                    if self.contention is not None:
                        latencies, shed, contended = self._apply_contention(
                            step, chunk, result)
                        cell.update(contended)
                    window.append(latencies)
                    report.num_requests += result.num_requests
                    report.shed_requests += shed
                    report.unroutable_events += len(
                        result.unroutable_tables)
                    cell["shed_requests"] = shed
                    cell["unroutable_tables"] = len(
                        result.unroutable_tables)
                    cell["p99_seconds"] = (
                        float(np.percentile(latencies, 99))
                        if self.contention is not None else result.p99)
                report.step_cells.append(cell)
            if window:
                report.window_latencies = np.concatenate(window)
        if registry.enabled:
            registry.counter("cluster.migration.steps_total").inc(len(steps))
            registry.counter("cluster.migration.tables_moved_total").inc(
                report.tables_moved)
            registry.counter("cluster.migration.bytes_total").inc(
                report.bytes_modelled)
            registry.counter("cluster.migration.shed_total").inc(
                report.shed_requests)
            registry.gauge("cluster.migration.window_p99_seconds").set(
                report.window_p99)
        return report

    # ------------------------------------------------------------------
    def _apply_contention(self, step: MigrationStep, chunk: np.ndarray,
                          result) -> Tuple[np.ndarray, int,
                                           Dict[str, object]]:
        """Inflate one step's service latencies by its copy contention.

        The step's copy bytes occupy the fabric for part of the step's
        arrival window; the service component (not the queueing component)
        of every request in the window inflates by the model's multiplier,
        and requests the inflation pushes past the deadline are shed with
        censored latencies — so scale events carry a real p99/availability
        cost instead of a free byte count.
        """
        window_seconds = float(chunk[-1] - chunk[0]) if chunk.size > 1 else 0.0
        multiplier = self.contention.multiplier(step.bytes_modelled,
                                                window_seconds)
        queue_delays = result.report.queue_delays
        inflated = queue_delays + ((result.report.latencies - queue_delays)
                                   * multiplier)
        deadline = result.deadline_seconds
        shed = result.shed_requests
        if math.isfinite(deadline):
            # Originally-shed requests sit censored *at* the deadline, so
            # a strict > recount sees them again once inflated; max()
            # keeps the count right for a multiplier of exactly 1.
            shed = max(shed, int(np.count_nonzero(inflated > deadline)))
            inflated = np.minimum(inflated, deadline)
        contended = {
            "copy_seconds": self.contention.copy_seconds(
                step.bytes_modelled),
            "window_seconds": window_seconds,
            "contention_multiplier": multiplier,
        }
        return inflated, shed, contended

    # ------------------------------------------------------------------
    def degrade_in_flight(self, table_id: int, ladder, cause: str,
                          batch_index: int = -1):
        """Degrade a table that is mid-move, counting the transition once.

        A table in its double-serve window is materialised on both its
        source and target owners, but a technique degradation is one
        logical event: the ladder is stepped exactly once and the audit
        gate runs exactly once, regardless of how many replicas currently
        hold the table. Raises if the table has no move (nothing is in
        flight for it).
        """
        if all(move.table_id != table_id for move in self.move_set()):
            raise ValueError(
                f"table {table_id} is not part of this migration's "
                f"move-set; nothing is in flight for it")
        event = ladder.degrade(cause, batch_index)
        if event is not None:
            get_registry().counter(
                "cluster.migration.degradations_total").inc()
        return event


# ----------------------------------------------------------------------
# The migration-level leakage check (mirrors check_oblivious_placement).
# ----------------------------------------------------------------------
def default_migration_workloads(num_tables: int,
                                move_table_ids: Sequence[int],
                                length: int = 64) -> List[Sequence[int]]:
    """Contrasting traffic profiles keyed to the (public) move-set.

    Hammer the first moving table, hammer the last moving table, and a
    uniform sweep — maximum contrast *within the move-set*, which is what
    a heat-keyed move order responds to. The move-set itself is derived
    from the two epochs, both workload-blind, so conditioning the audit
    workloads on it is secret-free.
    """
    check_positive("num_tables", num_tables)
    check_positive("length", length)
    ids = sorted(set(move_table_ids))
    if not ids:
        ids = [0, num_tables - 1]
    return [
        [ids[0]] * length,
        [ids[-1]] * length,
        [index % num_tables for index in range(length)],
    ]


def migration_subject(engine: MigrationEngine,
                      workloads: Optional[Sequence[Sequence[int]]] = None,
                      name: str = "migration-planner",
                      expect_oblivious: bool = True) -> AuditSubject:
    """Wrap a migration as an :class:`AuditSubject`: one replay per workload."""
    if workloads is None:
        workloads = default_migration_workloads(
            engine.source.num_tables,
            [move.table_id for move in engine.move_set()])

    def run(tracer: MemoryTracer, secret: Sequence[int]) -> None:
        engine.plan_steps(workload=secret, tracer=tracer)

    return AuditSubject(name, run, workloads, mode=MODE_EXACT,
                        expect_oblivious=expect_oblivious)


def audit_migration(engine: MigrationEngine,
                    workloads: Optional[Sequence[Sequence[int]]] = None,
                    auditor: Optional[LeakageAuditor] = None,
                    name: str = "migration-planner",
                    expect_oblivious: bool = True) -> AuditFinding:
    """Replay the migration plan across workloads; return the finding."""
    if auditor is None:
        auditor = LeakageAuditor()
    return auditor.audit(migration_subject(engine, workloads, name=name,
                                           expect_oblivious=expect_oblivious))


def check_oblivious_migration(engine: MigrationEngine,
                              workloads: Optional[Sequence[Sequence[int]]]
                              = None,
                              auditor: Optional[LeakageAuditor] = None
                              ) -> AuditFinding:
    """Gate: raise :class:`PlacementLeakageError` if the move order leaks.

    Run before any migration is allowed to execute against live traffic —
    the same loud failure the placement gate gives a frequency-keyed plan.
    """
    finding = audit_migration(engine, workloads, auditor=auditor)
    if finding.leak_detected:
        raise PlacementLeakageError(
            f"move order of {type(engine.planner).__name__} depends on the "
            f"observed workload (trace divergence {finding.divergence:.3f}); "
            f"hot-first migration is a side channel")
    return finding
