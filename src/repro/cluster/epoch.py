"""Plan epochs: versioned, immutable plan snapshots + epoch-aware routing.

The static ``ShardPlan`` answered "where does table t live?" once, at
construction time. A live fleet replans — nodes join, nodes drain — and
the moment plans can change while serving, *which plan a request is routed
by* becomes part of the access pattern. The control plane here keeps that
decision public and deterministic:

* a :class:`PlanEpoch` is an immutable snapshot — a monotonically
  increasing epoch number, the plan, and the router bound to it. Nothing
  about an epoch ever mutates; "changing the plan" means *deriving the
  successor epoch*;
* the :class:`EpochControlPlane` owns the epoch sequence and routes every
  request **by the epoch it arrived in**: a request admitted under epoch
  k is served by epoch k's owner map even if epoch k+1 cuts over while it
  is in flight, so routing depends only on (public) arrival time, never
  on request content;
* replica health carries over: the control plane holds one
  :class:`~repro.resilience.dispatch.ResilientDispatcher` shared by every
  epoch, grown in place when an epoch adds nodes
  (:meth:`~repro.resilience.dispatch.ResilientDispatcher.ensure_replicas`)
  — a breaker that was OPEN before the epoch change is still OPEN after
  it, because a plan change does not heal a sick node.

The move from epoch k to k+1 — who copies which table when — is the
:class:`~repro.cluster.migration.MigrationEngine`'s job; the control plane
only versions, routes, and retires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.placement import ShardPlan
from repro.cluster.router import ShardRouter
from repro.resilience.dispatch import ResilientDispatcher
from repro.telemetry.runtime import get_registry


class UnknownEpochError(KeyError):
    """A request referenced an epoch the control plane never issued
    (or one that was already retired)."""


@dataclass(frozen=True)
class PlanEpoch:
    """One immutable (epoch number, plan, router) snapshot."""

    epoch: int
    plan: ShardPlan
    router: ShardRouter

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")
        if self.router.num_nodes != self.plan.num_nodes:
            raise ValueError(
                f"router spans {self.router.num_nodes} nodes but the plan "
                f"places onto {self.plan.num_nodes}")
        # Bind the router to this epoch: its memoized owner sets are only
        # valid for the plan it was built from.
        self.router.set_epoch(self.epoch)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, epoch: int, plan: ShardPlan, replication: int = 1,
               virtual_nodes: int = 32) -> "PlanEpoch":
        """Snapshot a plan: build the router bound to this epoch."""
        router = ShardRouter(plan.num_nodes, replication=replication,
                             virtual_nodes=virtual_nodes, plan=plan,
                             epoch=epoch)
        return cls(epoch=epoch, plan=plan, router=router)

    def successor(self, plan: ShardPlan,
                  replication: Optional[int] = None) -> "PlanEpoch":
        """Derive epoch k+1 from a new plan (same replication by default)."""
        return PlanEpoch.create(
            self.epoch + 1, plan,
            replication=(self.router.replication if replication is None
                         else replication),
            virtual_nodes=self.router.virtual_nodes)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.plan.num_nodes

    @property
    def replication(self) -> int:
        return self.router.replication

    @property
    def num_tables(self) -> int:
        return len(self.plan.placements)

    def owners(self, table_id: int) -> Tuple[int, ...]:
        return self.router.owners_for(table_id)

    def footprint_of(self, table_id: int) -> int:
        for placement in self.plan.placements:
            if placement.table_id == table_id:
                return placement.footprint_bytes
        raise KeyError(f"no placement for table {table_id}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "num_nodes": self.num_nodes,
            "replication": self.replication,
            "num_tables": self.num_tables,
            "owners": {str(table.table_id): list(self.owners(table.table_id))
                       for table in self.plan.placements},
        }


class EpochControlPlane:
    """The epoch sequence: issue, route-by-arrival-epoch, retire.

    One dispatcher is shared across every epoch so per-replica breaker and
    crash state survives plan changes; :meth:`advance` grows it in place
    when the new epoch spans more nodes.
    """

    def __init__(self, initial: PlanEpoch,
                 dispatcher: Optional[ResilientDispatcher] = None) -> None:
        if dispatcher is not None:
            dispatcher.ensure_replicas(initial.num_nodes)
        self.dispatcher = dispatcher
        self._epochs: Dict[int, PlanEpoch] = {initial.epoch: initial}
        self._current = initial.epoch

    # ------------------------------------------------------------------
    @property
    def current(self) -> PlanEpoch:
        return self._epochs[self._current]

    @property
    def live_epochs(self) -> List[int]:
        """Epochs still routable (oldest first)."""
        return sorted(self._epochs)

    def epoch(self, epoch_id: int) -> PlanEpoch:
        try:
            return self._epochs[epoch_id]
        except KeyError:
            raise UnknownEpochError(
                f"epoch {epoch_id} was never issued or is retired; live "
                f"epochs: {self.live_epochs}") from None

    # ------------------------------------------------------------------
    def advance(self, plan: ShardPlan,
                replication: Optional[int] = None) -> PlanEpoch:
        """Issue the successor epoch; replica health carries over."""
        nxt = self.current.successor(plan, replication=replication)
        if self.dispatcher is not None:
            self.dispatcher.ensure_replicas(nxt.num_nodes)
        self._epochs[nxt.epoch] = nxt
        self._current = nxt.epoch
        registry = get_registry()
        registry.counter("cluster.epochs_total").inc()
        registry.gauge("cluster.current_epoch").set(nxt.epoch)
        return nxt

    def retire_through(self, epoch_id: int,
                       shrink_dispatcher: bool = False) -> None:
        """Drop epochs <= ``epoch_id`` (their in-flight requests drained).

        The current epoch can never be retired: there must always be a
        plan to route new arrivals by. With ``shrink_dispatcher`` the
        shared dispatcher is trimmed to the widest *surviving* epoch once
        the retirement lands — the autoscaler's scale-down completion:
        only after every epoch that routed to the dropped nodes has
        drained is it safe to release their replica slots. The default
        keeps the historical grow-only behaviour.
        """
        if epoch_id >= self._current:
            raise ValueError(
                f"cannot retire the current epoch {self._current}")
        for stale in [e for e in self._epochs if e <= epoch_id]:
            del self._epochs[stale]
        if shrink_dispatcher and self.dispatcher is not None:
            span = max(epoch.num_nodes for epoch in self._epochs.values())
            self.dispatcher.ensure_replicas(
                max(span, self.dispatcher.min_replicas), allow_shrink=True)

    # ------------------------------------------------------------------
    def route(self, table_id: int, epoch: Optional[int] = None,
              now_seconds: float = 0.0) -> Optional[int]:
        """First live owner of the table *under the request's epoch*.

        ``epoch`` is the epoch the request arrived in (default: current).
        Routing by arrival epoch means an in-flight request's fan-out is a
        pure function of public metadata — the epoch counter at its
        arrival — never of anything learned since.
        """
        plan_epoch = self.current if epoch is None else self.epoch(epoch)
        return plan_epoch.router.route(table_id, now_seconds=now_seconds,
                                       dispatcher=self.dispatcher)

    def to_dict(self) -> Dict[str, object]:
        return {
            "current_epoch": self._current,
            "live_epochs": self.live_epochs,
            "epochs": {str(epoch_id): plan_epoch.to_dict()
                       for epoch_id, plan_epoch in
                       sorted(self._epochs.items())},
        }
