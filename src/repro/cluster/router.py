"""Consistent-hash shard routing with replication and breaker failover.

The router answers "which node serves table t right now?". Ownership is
static and data-independent: each table's replica set is its planner
primary (when a :class:`~repro.cluster.placement.ShardPlan` is given)
followed by successors on a consistent-hash ring of virtual nodes, hashed
with SHA-256 over *table id* — never over request content. Liveness is
delegated to a :class:`~repro.resilience.dispatch.ResilientDispatcher`
whose per-node breakers/crash windows decide admission: routing walks the
owner list and returns the first admitted owner, which is what makes a
node kill invisible at replication >= 2 (the sim's zero-loss gate).

Consistent hashing keeps reshards incremental: adding a node remaps only
the tables whose ring arc it captures, which is the seam the ROADMAP's
rebalancing/migration follow-on will build on.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.placement import ShardPlan
from repro.resilience.dispatch import ResilientDispatcher
from repro.utils.validation import check_positive


def ring_hash(key: str) -> int:
    """Deterministic 64-bit ring position (SHA-256 prefix, seed-free)."""
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8],
                          "big")


class ShardRouter:
    """Maps table ids to replica owner sets and routes around dead nodes."""

    def __init__(self, num_nodes: int, replication: int = 1,
                 virtual_nodes: int = 32,
                 plan: Optional[ShardPlan] = None,
                 epoch: int = 0) -> None:
        check_positive("num_nodes", num_nodes)
        check_positive("replication", replication)
        check_positive("virtual_nodes", virtual_nodes)
        if replication > num_nodes:
            raise ValueError(
                f"replication {replication} exceeds num_nodes {num_nodes}; "
                f"a table cannot have more owners than there are nodes")
        if plan is not None and plan.num_nodes != num_nodes:
            raise ValueError(
                f"plan places onto {plan.num_nodes} nodes but the router "
                f"has {num_nodes}")
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        self.num_nodes = num_nodes
        self.replication = replication
        self.virtual_nodes = virtual_nodes
        self.plan = plan
        self.epoch = epoch
        ring: List[Tuple[int, int]] = []
        for node in range(num_nodes):
            for virtual in range(virtual_nodes):
                ring.append((ring_hash(f"node-{node}#vn-{virtual}"), node))
        ring.sort()
        self._ring = ring
        # owners_for memoisation: the ring walk is pure in table id for a
        # fixed epoch, so the owner set is computed once per table and
        # dropped whenever the router is rebound to a new plan epoch.
        self._owners_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def set_epoch(self, epoch: int) -> None:
        """Bind the router to a plan epoch; the owner cache is invalidated."""
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        if epoch != self.epoch:
            self.epoch = epoch
            self.invalidate_owners_cache()

    def invalidate_owners_cache(self) -> None:
        self._owners_cache.clear()

    # ------------------------------------------------------------------
    def _successors(self, table_id: int) -> List[int]:
        """Distinct nodes clockwise from the table's ring position."""
        position = ring_hash(f"table-{int(table_id)}")
        start = 0
        for index, (point, _) in enumerate(self._ring):
            if point >= position:
                start = index
                break
        nodes: List[int] = []
        for offset in range(len(self._ring)):
            _, node = self._ring[(start + offset) % len(self._ring)]
            if node not in nodes:
                nodes.append(node)
            if len(nodes) == self.num_nodes:
                break
        return nodes

    def _compute_owners(self, table_id: int) -> Tuple[int, ...]:
        """The unmemoized ring walk (the parity reference for the cache)."""
        successors = self._successors(table_id)
        if self.plan is not None:
            primary = self.plan.node_of(table_id)
            ordered = [primary] + [node for node in successors
                                   if node != primary]
        else:
            ordered = successors
        return tuple(ordered[:self.replication])

    def owners_for(self, table_id: int) -> Tuple[int, ...]:
        """The table's ordered replica set (primary first), memoized.

        Owner sets are pure in (table id, plan, epoch), so the ring walk
        runs once per table; :meth:`set_epoch` invalidates the cache when
        the router is rebound to a new plan epoch.
        """
        table_id = int(table_id)
        cached = self._owners_cache.get(table_id)
        if cached is None:
            cached = self._compute_owners(table_id)
            self._owners_cache[table_id] = cached
        return cached

    # the historical name; both spellings resolve to the memoized path
    def owners(self, table_id: int) -> Tuple[int, ...]:
        return self.owners_for(table_id)

    # ------------------------------------------------------------------
    def route(self, table_id: int, now_seconds: float = 0.0,
              dispatcher: Optional[ResilientDispatcher] = None
              ) -> Optional[int]:
        """First live owner of the table (None when every owner is out).

        With no dispatcher the primary owner is returned unconditionally;
        with one, admission (breaker not OPEN, not crashed) decides — the
        failover path a replica kill exercises.
        """
        owner_set = self.owners(table_id)
        if dispatcher is None:
            return owner_set[0]
        admitted = set(dispatcher.admitted(now_seconds))
        for owner in owner_set:
            if owner in admitted:
                return owner
        return None

    def assignment(self, num_tables: int, now_seconds: float = 0.0,
                   dispatcher: Optional[ResilientDispatcher] = None
                   ) -> Tuple[Dict[int, List[int]], List[int]]:
        """(node -> routed table ids, unroutable table ids) right now."""
        check_positive("num_tables", num_tables)
        routed: Dict[int, List[int]] = {}
        unroutable: List[int] = []
        for table_id in range(num_tables):
            node = self.route(table_id, now_seconds, dispatcher)
            if node is None:
                unroutable.append(table_id)
            else:
                routed.setdefault(node, []).append(table_id)
        return routed, unroutable

    # ------------------------------------------------------------------
    def ownership_counts(self, num_tables: int) -> List[int]:
        """Tables per node counting every replica (capacity planning view)."""
        counts = [0] * self.num_nodes
        for table_id in range(num_tables):
            for owner in self.owners(table_id):
                counts[owner] += 1
        return counts

    def to_dict(self, num_tables: Optional[int] = None) -> Dict[str, object]:
        digest: Dict[str, object] = {
            "num_nodes": self.num_nodes,
            "replication": self.replication,
            "virtual_nodes": self.virtual_nodes,
            "planned": self.plan is not None,
            "epoch": self.epoch,
        }
        if num_tables is not None:
            digest["owners"] = {str(table_id): list(self.owners(table_id))
                                for table_id in range(num_tables)}
            digest["ownership_counts"] = self.ownership_counts(num_tables)
        return digest


def replica_table_sets(router: ShardRouter, table_sizes: Sequence[int]
                       ) -> Dict[int, List[int]]:
    """node -> every table id it must hold (primary or replica copy).

    This is the *provisioning* view — what each node stores — as opposed to
    :meth:`ShardRouter.assignment`, the *routing* view of who serves what
    right now.
    """
    holdings: Dict[int, List[int]] = {node: []
                                      for node in range(router.num_nodes)}
    for table_id in range(len(table_sizes)):
        for owner in router.owners(table_id):
            holdings[owner].append(table_id)
    return holdings
