"""Sharded multi-node oblivious serving.

Scales the paper's single-host hybrid allocation (Algorithms 2/3) out to a
simulated cluster: capacity-aware, traffic-blind placement
(:mod:`repro.cluster.placement`), consistent-hash routing with replication
and breaker-driven failover (:mod:`repro.cluster.router`), cross-shard
scatter-gather execution (:mod:`repro.cluster.scatter`), and the gated
topology sweep (:mod:`repro.cluster.sim`, ``python -m repro.cluster.sim``).
"""

from repro.cluster.placement import (
    PLACEMENT_REGION,
    FrequencyKeyedPlanner,
    PlacementError,
    PlacementLeakageError,
    ShardPlan,
    ShardPlanner,
    TablePlacement,
    audit_placement,
    check_oblivious_placement,
    default_placement_workloads,
    placement_subject,
)
from repro.cluster.router import ShardRouter, replica_table_sets, ring_hash
# repro.cluster.sim is deliberately NOT imported here: it is the
# ``python -m repro.cluster.sim`` entry point, and importing it from the
# package would shadow the runpy execution (and slow ``import repro.cluster``
# down with the experiment machinery).
from repro.cluster.scatter import (
    ClusterServingReport,
    ClusterUnavailableError,
    ScatterGatherEngine,
)

__all__ = [
    "PLACEMENT_REGION",
    "FrequencyKeyedPlanner",
    "PlacementError",
    "PlacementLeakageError",
    "ShardPlan",
    "ShardPlanner",
    "TablePlacement",
    "audit_placement",
    "check_oblivious_placement",
    "default_placement_workloads",
    "placement_subject",
    "ShardRouter",
    "replica_table_sets",
    "ring_hash",
    "ClusterServingReport",
    "ClusterUnavailableError",
    "ScatterGatherEngine",
]
