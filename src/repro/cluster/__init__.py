"""Sharded multi-node oblivious serving.

Scales the paper's single-host hybrid allocation (Algorithms 2/3) out to a
simulated cluster: capacity-aware, traffic-blind placement
(:mod:`repro.cluster.placement`), consistent-hash routing with replication
and breaker-driven failover (:mod:`repro.cluster.router`), cross-shard
scatter-gather execution (:mod:`repro.cluster.scatter`), the plan-epoch
control plane with live, audited table migration
(:mod:`repro.cluster.epoch`, :mod:`repro.cluster.migration`), the
self-healing elastic autoscaler (:mod:`repro.cluster.autoscale`), and the
gated sweeps (``python -m repro.cluster.sim``,
``python -m repro.cluster.migrate``,
``python -m repro.cluster.autoscale``).
"""

from repro.cluster.autoscale import (
    AUTOSCALE_REGION,
    Autoscaler,
    AutoscaleConfig,
    ClusterSignals,
    HotLoadChasingController,
    ScaleDecision,
    ScalingLeakageError,
    SignalPlane,
    Supervisor,
    audit_scaling,
    check_oblivious_scaling,
    default_scaling_workloads,
    scaling_subject,
)
from repro.cluster.epoch import (
    EpochControlPlane,
    PlanEpoch,
    UnknownEpochError,
)
from repro.cluster.migration import (
    MIGRATION_REGION,
    BandwidthContentionModel,
    HotFirstMigrationPlanner,
    MigrationEngine,
    MigrationPlanner,
    MigrationReport,
    MigrationStep,
    TableMove,
    TransitioningOwnerMap,
    audit_migration,
    check_oblivious_migration,
    default_migration_workloads,
    migration_subject,
)
from repro.cluster.placement import (
    PLACEMENT_REGION,
    FrequencyKeyedPlanner,
    PlacementError,
    PlacementLeakageError,
    RingPlanner,
    ShardPlan,
    ShardPlanner,
    TablePlacement,
    audit_placement,
    check_oblivious_placement,
    default_placement_workloads,
    placement_subject,
)
from repro.cluster.router import ShardRouter, replica_table_sets, ring_hash
# repro.cluster.sim and repro.cluster.migrate are deliberately NOT imported
# here: they are the ``python -m`` entry points, and importing them from the
# package would shadow the runpy execution (and slow ``import repro.cluster``
# down with the experiment machinery).
from repro.cluster.scatter import (
    ClusterServingReport,
    ClusterUnavailableError,
    ScatterGatherEngine,
)

__all__ = [
    "AUTOSCALE_REGION",
    "Autoscaler",
    "AutoscaleConfig",
    "ClusterSignals",
    "HotLoadChasingController",
    "ScaleDecision",
    "ScalingLeakageError",
    "SignalPlane",
    "Supervisor",
    "audit_scaling",
    "check_oblivious_scaling",
    "default_scaling_workloads",
    "scaling_subject",
    "EpochControlPlane",
    "PlanEpoch",
    "UnknownEpochError",
    "MIGRATION_REGION",
    "BandwidthContentionModel",
    "HotFirstMigrationPlanner",
    "MigrationEngine",
    "MigrationPlanner",
    "MigrationReport",
    "MigrationStep",
    "TableMove",
    "TransitioningOwnerMap",
    "audit_migration",
    "check_oblivious_migration",
    "default_migration_workloads",
    "migration_subject",
    "PLACEMENT_REGION",
    "FrequencyKeyedPlanner",
    "PlacementError",
    "PlacementLeakageError",
    "RingPlanner",
    "ShardPlan",
    "ShardPlanner",
    "TablePlacement",
    "audit_placement",
    "check_oblivious_placement",
    "default_placement_workloads",
    "placement_subject",
    "ShardRouter",
    "replica_table_sets",
    "ring_hash",
    "ClusterServingReport",
    "ClusterUnavailableError",
    "ScatterGatherEngine",
]
