"""The autoscale simulator: load ramp + node-kill storm, gated.

Drives the full self-healing elastic loop end to end on the simulated
clock: a Poisson load ramp pushes a 2-node fleet into saturation, the
:class:`~repro.cluster.autoscale.controller.Autoscaler` grows it through
successive plan epochs (each cutover executed live by the
:class:`~repro.cluster.migration.MigrationEngine` under bandwidth
contention), a node is killed mid-run and the
:class:`~repro.cluster.autoscale.supervisor.Supervisor` re-replicates its
tables before the controller is allowed to scale back down. The gates are
the elastic counterpart of ``repro.cluster.sim``'s:

* **convergence** — after the ramp hits peak rate, achieved throughput
  recovers to >= ``CONVERGENCE_FLOOR`` x offered within
  ``CONVERGENCE_BUDGET_TICKS`` decision intervals, and holds there on the
  final plateau;
* **p99 under events** — every scale/heal interval's window p99 stays
  <= ``P99_EVENT_CEILING`` x the most recent steady interval's p99;
* **heal, zero loss** — the node kill at replication 2 sheds nothing
  (failover), the heal migration sheds nothing (double-serve), and the
  fleet ends the storm at full replication health;
* **scaling audit** — the controller's decision trace is byte-identical
  across hot-head / hot-tail / uniform skew profiles in exact mode
  (:func:`~repro.cluster.autoscale.controller.check_oblivious_scaling`),
  and the workload-chasing
  :class:`~repro.cluster.autoscale.controller.HotLoadChasingController`
  negative control is *caught*;
* **audited reshapes** — every plan passes the placement audit and every
  executed migration (scale and heal alike) passes the migration audit;
* **counter integrity** — the autoscale event counters on the merged
  fleet report equal the events the run actually performed (summed,
  never averaged, across interval reports).

Everything derives from one seed; two runs emit byte-identical JSON
(serialised with ``allow_nan=False`` — the report is NaN/inf-free by
construction) and CI pins that with ``cmp``.

CLI::

    python -m repro.cluster.autoscale --seed 7 --json autoscale.json
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.cluster.autoscale.controller import (
    ACTION_DOWN,
    ACTION_UP,
    Autoscaler,
    AutoscaleConfig,
    HotLoadChasingController,
    audit_scaling,
    check_oblivious_scaling,
    default_scaling_workloads,
)
from repro.cluster.autoscale.signals import ClusterSignals, SignalPlane
from repro.cluster.autoscale.supervisor import Supervisor
from repro.cluster.epoch import EpochControlPlane, PlanEpoch
from repro.cluster.migration import (
    BandwidthContentionModel,
    MigrationEngine,
    audit_migration,
)
from repro.cluster.placement import check_oblivious_placement
from repro.cluster.scatter import ClusterServingReport, ScatterGatherEngine
from repro.cluster.sim import build_model, plan_digest
from repro.data import TERABYTE_SPEC, DlrmDatasetSpec
from repro.resilience.dispatch import ResilientDispatcher
from repro.resilience.retry import RetryPolicy
from repro.serving import ServingConfig
from repro.serving.batcher import BatchingPolicy
from repro.serving.requests import RequestQueue

#: the autoscale gates CI enforces (ISSUE 8 acceptance criteria)
CONVERGENCE_FLOOR = 0.9        # achieved / offered after the ramp
CONVERGENCE_BUDGET_TICKS = 6   # intervals allowed to reach the floor
P99_EVENT_CEILING = 2.0        # event-window p99 vs latest steady p99

INTERVAL_SECONDS = 0.25        # one decision interval of simulated time
RAMP_RATES = (2000.0, 4000.0, 6000.0)
PEAK_RATE = 8000.0
PEAK_TICKS = 7
TROUGH_RATE = 2500.0
TROUGH_TICKS = 10
KILL_TICK = 11                 # node kill lands inside the trough
VICTIM = 0

START_NODES = 2
MIN_NODES = 2
MAX_NODES = 5
REPLICATION = 2
HIGH_UTILISATION = 0.85
LOW_UTILISATION = 0.28
BREACH_TICKS = 2
COOLDOWN_TICKS = 1
STEP_SIZE = 4                  # tables per migration step

BATCH = 32
SLA_SECONDS = 0.020
DEADLINE_SECONDS = 0.050

#: stand-in for "down for the whole run" that stays JSON-representable
FOREVER_SECONDS = 1e9


def rate_schedule() -> List[float]:
    """The offered-load timeline: ramp, peak plateau, trough."""
    return (list(RAMP_RATES) + [PEAK_RATE] * PEAK_TICKS
            + [TROUGH_RATE] * TROUGH_TICKS)


def _fleet_capacity(engine: ScatterGatherEngine, config: ServingConfig,
                    owner_map) -> float:
    """*Provisioned* capacity of an owner map (no traffic, health-blind).

    Replicates what :meth:`ScatterGatherEngine.serve` prices — per-shard
    batch latency of the routed table sets through the two-stage pipeline
    — but against the plan's full owner assignment, deliberately ignoring
    replica health: a dead node must surface in the signals' crash counts
    (where it blocks scale-down), not as a phantom utilisation spike that
    resets the controller's streaks.
    """
    routed, _ = owner_map.assignment(len(engine.table_sizes), 0.0, None)
    latency = {node: engine.shard_engine(tuple(routed[node]))
               .batch_latency(config)
               for node in sorted(routed)}
    return engine.capacity_rps(config, latency)


def run_autoscale(seed: int = 0, spec: DlrmDatasetSpec = TERABYTE_SPEC,
                  batch: int = BATCH, sla_seconds: float = SLA_SECONDS
                  ) -> Dict[str, object]:
    """Run the load ramp + kill storm; return the JSON-stable report."""
    rates = rate_schedule()
    ticks = len(rates)
    config = ServingConfig(batch_size=batch, threads=1,
                           sla_seconds=sla_seconds)
    policy = BatchingPolicy(max_batch_size=batch, max_wait_seconds=0.002)
    retry = RetryPolicy(deadline_seconds=DEADLINE_SECONDS)
    dim = spec.embedding_dim
    sizes = spec.table_sizes
    uniform, thresholds = build_model(spec, batch)
    skews = default_scaling_workloads(len(sizes))

    # ------------------------------------------------------------------
    # Plans come from the ring planner (incremental reshards) and every
    # node count's plan passes the placement audit before it may serve.
    base_planner = None
    plans: Dict[int, object] = {}
    plan_audits: List[Dict[str, object]] = []
    placement_ok = True

    def plan_for(nodes: int):
        nonlocal base_planner, placement_ok
        if nodes not in plans:
            from repro.cluster.placement import RingPlanner

            if base_planner is None:
                base_planner = RingPlanner(nodes, thresholds, dim, uniform)
            planner = (base_planner if base_planner.num_nodes == nodes
                       else base_planner.for_nodes(nodes))
            finding = check_oblivious_placement(planner, sizes, config,
                                                workloads=skews)
            placement_ok = placement_ok and finding.passed
            plans[nodes] = planner.plan(sizes, config)
            plan_audits.append({
                "num_nodes": nodes,
                "plan_digest": plan_digest(plans[nodes]),
                "audit_divergence": finding.divergence,
                "audit_passed": finding.passed,
            })
        return plans[nodes]

    dispatcher = ResilientDispatcher(num_replicas=START_NODES,
                                     min_replicas=MIN_NODES)
    epoch0 = PlanEpoch.create(0, plan_for(START_NODES),
                              replication=REPLICATION)
    control = EpochControlPlane(epoch0, dispatcher=dispatcher)
    engine = ScatterGatherEngine(sizes, dim, uniform, thresholds,
                                 epoch0.router, retry=retry,
                                 dispatcher=dispatcher)
    autoscale_config = AutoscaleConfig(
        min_nodes=MIN_NODES, max_nodes=MAX_NODES,
        high_utilisation=HIGH_UTILISATION,
        low_utilisation=LOW_UTILISATION, breach_ticks=BREACH_TICKS,
        cooldown_ticks=COOLDOWN_TICKS)
    autoscaler = Autoscaler(autoscale_config)
    supervisor = Supervisor(dispatcher, confirm_ticks=1)
    plane = SignalPlane(dispatcher, interval_seconds=INTERVAL_SECONDS)
    contention = BandwidthContentionModel()

    pending: Optional[MigrationEngine] = None
    pending_kind: Optional[str] = None
    pending_dead: List[int] = []
    # Event counters accumulate here and are stamped onto the next serve
    # interval's report, so the merged fleet report sums to the run total.
    stamp = {"scale_up_events": 0, "scale_down_events": 0, "heal_events": 0}

    timeline: List[ClusterSignals] = []
    cells: List[Dict[str, object]] = []
    interval_reports: List[ClusterServingReport] = []
    migration_audits: List[Dict[str, object]] = []
    migration_ok = True
    steady_p99 = 0.0
    p99_events_ok = True
    kill_shed = 0
    heal_shed = 0
    heal_unroutable = 0
    replication_restored = False

    for tick in range(ticks):
        now = tick * INTERVAL_SECONDS
        rate = rates[tick]
        num_requests = int(round(rate * INTERVAL_SECONDS))
        queue = RequestQueue.poisson(num_requests, rate,
                                     rng=seed * 1000 + tick)
        if tick == KILL_TICK:
            dispatcher.mark_down(VICTIM, until_seconds=FOREVER_SECONDS,
                                 now_seconds=now)
        cell: Dict[str, object] = {
            "tick": tick,
            "rate_rps": rate,
            "num_requests": num_requests,
            "killed": tick == KILL_TICK,
        }

        if pending is not None:
            migration = pending.execute(engine, config, queue, policy)
            control.retire_through(
                control.current.epoch - 1,
                shrink_dispatcher=pending_kind == ACTION_DOWN)
            if pending_kind == "heal":
                supervisor.mark_replaced(pending_dead)
                heal_shed += migration.shed_requests
                heal_unroutable += migration.unroutable_events
                health = dispatcher.health_summary(now)
                replication_restored = (health["healthy"]
                                        == health["num_replicas"])
                pending_dead = []
            capacity = _fleet_capacity(engine, config,
                                       control.current.router)
            answered = max(0, migration.num_requests
                           - migration.shed_requests)
            signals = plane.snapshot(
                offered_rps=rate,
                achieved_rps=answered / INTERVAL_SECONDS,
                capacity_rps=capacity,
                # Queue and service are not separable inside a migration
                # window; the control law reads utilisation only.
                queue_delay_seconds=0.0,
                shed_requests=migration.shed_requests,
                current_nodes=control.current.num_nodes,
                replication=control.current.replication,
                now_seconds=now)
            p99 = migration.window_p99
            inflation = (p99 / steady_p99 if steady_p99 > 0.0 else 0.0)
            p99_events_ok = (p99_events_ok
                             and inflation <= P99_EVENT_CEILING)
            cell.update({
                "kind": pending_kind,
                "source_epoch": migration.source_epoch,
                "target_epoch": migration.target_epoch,
                "tables_moved": migration.tables_moved,
                "bytes_modelled": migration.bytes_modelled,
                "num_steps": migration.num_steps,
                "shed_requests": migration.shed_requests,
                "unroutable_events": migration.unroutable_events,
                "p99_seconds": p99,
                "steady_p99_seconds": steady_p99,
                "p99_inflation": inflation,
            })
            pending = None
            pending_kind = None
        else:
            result = engine.serve(config, queue, policy,
                                  owner_map=control.current.router)
            result.scale_up_events = stamp["scale_up_events"]
            result.scale_down_events = stamp["scale_down_events"]
            result.heal_events = stamp["heal_events"]
            stamp = {"scale_up_events": 0, "scale_down_events": 0,
                     "heal_events": 0}
            interval_reports.append(result)
            signals = plane.observe(
                result, offered_rps=rate,
                replication=control.current.replication,
                current_nodes=control.current.num_nodes,
                capacity_rps=_fleet_capacity(engine, config,
                                             control.current.router),
                now_seconds=now)
            steady_p99 = result.p99
            if tick == KILL_TICK:
                kill_shed = result.shed_requests
            cell.update({
                "kind": "serve",
                "epoch": control.current.epoch,
                "shed_requests": result.shed_requests,
                "p99_seconds": result.p99,
                "mean_queue_delay_seconds": result.report.mean_queue_delay,
            })

        timeline.append(signals)
        decision = autoscaler.decide(signals)
        if decision.action in (ACTION_UP, ACTION_DOWN):
            source = control.current
            target = control.advance(plan_for(decision.target_nodes))
            candidate = MigrationEngine(source, target,
                                        step_size=STEP_SIZE,
                                        contention=contention)
            if candidate.move_set():
                finding = audit_migration(
                    candidate, name=f"{decision.action}-tick{tick}")
                migration_ok = migration_ok and finding.passed
                migration_audits.append({
                    "tick": tick,
                    "kind": decision.action,
                    "tables": len(candidate.move_set()),
                    "audit_divergence": finding.divergence,
                    "audit_passed": finding.passed,
                })
                pending = candidate
                pending_kind = decision.action
            else:
                # Nothing to copy: the cutover is immediate.
                control.retire_through(
                    control.current.epoch - 1,
                    shrink_dispatcher=decision.action == ACTION_DOWN)
            key = ("scale_up_events" if decision.action == ACTION_UP
                   else "scale_down_events")
            stamp[key] += 1

        dead = supervisor.observe(now)
        if dead and pending is None:
            candidate = supervisor.heal(control, dead, step_size=STEP_SIZE,
                                        contention=contention)
            finding = audit_migration(candidate, name=f"heal-tick{tick}")
            migration_ok = migration_ok and finding.passed
            migration_audits.append({
                "tick": tick,
                "kind": "heal",
                "tables": len(candidate.move_set()),
                "audit_divergence": finding.divergence,
                "audit_passed": finding.passed,
            })
            pending = candidate
            pending_kind = "heal"
            pending_dead = list(dead)
            stamp["heal_events"] += 1

        cell["signals"] = signals.to_dict()
        cell["decision"] = decision.to_dict()
        cell["health"] = dispatcher.health_summary(now)
        cells.append(cell)

    # ------------------------------------------------------------------
    # Leftover event stamps (a decision on the final tick) still count.
    if any(stamp.values()) and interval_reports:
        last = interval_reports[-1]
        last.scale_up_events += stamp["scale_up_events"]
        last.scale_down_events += stamp["scale_down_events"]
        last.heal_events += stamp["heal_events"]

    # ------------------------------------------------------------------
    # Gate: convergence after the ramp, and a stable final plateau.
    first_peak = rates.index(max(rates))
    converged_tick = next(
        (cell["tick"] for cell in cells
         if cell["tick"] >= first_peak
         and cell["signals"]["achieved_rps"]
         >= CONVERGENCE_FLOOR * cell["signals"]["offered_rps"]), None)
    convergence_ok = (converged_tick is not None
                      and converged_tick - first_peak
                      <= CONVERGENCE_BUDGET_TICKS)
    plateau = [cell for cell in cells
               if cell["tick"] >= ticks - 4 and cell["kind"] == "serve"]
    plateau_ok = bool(plateau) and all(
        cell["signals"]["achieved_rps"]
        >= CONVERGENCE_FLOOR * cell["signals"]["offered_rps"]
        for cell in plateau)

    # ------------------------------------------------------------------
    # Gate: the kill + heal lost nothing and redundancy is restored.
    heal_ok = (kill_shed == 0 and heal_shed == 0 and heal_unroutable == 0
               and replication_restored)

    # ------------------------------------------------------------------
    # Gate: scale decisions are skew-invariant (exact mode) and the
    # workload-chasing controller is caught.
    scaling_finding = check_oblivious_scaling(
        lambda: Autoscaler(autoscale_config), timeline, skews)
    negative = audit_scaling(
        lambda: HotLoadChasingController(autoscale_config), timeline,
        skews, name="hot-load-chasing", expect_oblivious=False)

    # ------------------------------------------------------------------
    # Gate: the autoscale counters on the merged fleet report sum to the
    # events this run actually performed.
    merged = ClusterServingReport.merge(interval_reports)
    events = {
        "scale_up_events": sum(1 for cell in cells
                               if cell["decision"]["action"] == ACTION_UP),
        "scale_down_events": sum(
            1 for cell in cells
            if cell["decision"]["action"] == ACTION_DOWN),
        "heal_events": sum(1 for cell in cells
                           if cell["kind"] == "heal"),
    }
    counters_ok = (merged.scale_up_events == events["scale_up_events"]
                   and merged.scale_down_events
                   == events["scale_down_events"]
                   and merged.heal_events == events["heal_events"])

    gates = {
        "convergence": convergence_ok,
        "plateau": plateau_ok,
        "p99_events": p99_events_ok,
        "heal_zero_loss": heal_ok,
        "placement_audit": placement_ok,
        "migration_audit": migration_ok,
        "scaling_audit": scaling_finding.passed,
        "leak_detector_teeth": negative.leak_detected,
        "event_counters_merged": counters_ok,
    }
    gates["passed"] = all(gates.values())
    return {
        "seed": seed,
        "spec": spec.name,
        "batch_size": batch,
        "sla_seconds": sla_seconds,
        "deadline_seconds": DEADLINE_SECONDS,
        "interval_seconds": INTERVAL_SECONDS,
        "ticks": ticks,
        "kill_tick": KILL_TICK,
        "victim": VICTIM,
        "replication": REPLICATION,
        "autoscale_config": autoscale_config.to_dict(),
        "contention": contention.to_dict(),
        "convergence_floor": CONVERGENCE_FLOOR,
        "convergence_budget_ticks": CONVERGENCE_BUDGET_TICKS,
        "p99_event_ceiling": P99_EVENT_CEILING,
        "first_peak_tick": first_peak,
        "converged_tick": converged_tick,
        "final_nodes": control.current.num_nodes,
        "final_epoch": control.current.epoch,
        "events": events,
        "plan_audits": plan_audits,
        "migration_audits": migration_audits,
        "scaling_audit": scaling_finding.to_dict(),
        "negative_audit": negative.to_dict(),
        "intervals": cells,
        "fleet": merged.to_dict(sla_seconds=sla_seconds),
        "gates": gates,
    }


def render(report: Dict[str, object]) -> str:
    """Human-readable storm summary."""
    lines = [f"autoscale storm (seed={report['seed']}, "
             f"spec={report['spec']}, {report['ticks']} ticks x "
             f"{report['interval_seconds']:.2f}s, R={report['replication']}, "
             f"kill@t{report['kill_tick']})"]
    for cell in report["intervals"]:
        signals = cell["signals"]
        decision = cell["decision"]
        verdict = decision["action"]
        if decision["action"] in (ACTION_UP, ACTION_DOWN):
            verdict += (f" {decision['current_nodes']}->"
                        f"{decision['target_nodes']}")
        elif decision["action"] == "blocked":
            verdict += f" ({decision['reason']})"
        lines.append(
            f"  t{cell['tick']:>2} {cell['kind']:>10}"
            f"{' KILL' if cell['killed'] else ''}: "
            f"offered={signals['offered_rps']:>6.0f} "
            f"achieved={signals['achieved_rps']:>6.0f} "
            f"util={signals['utilisation']:.2f} "
            f"nodes={signals['current_nodes']} "
            f"p99={cell['p99_seconds'] * 1e3:6.2f} ms "
            f"shed={cell['shed_requests']:>3} -> {verdict}")
    events = report["events"]
    lines.append(f"  events: up={events['scale_up_events']} "
                 f"down={events['scale_down_events']} "
                 f"heal={events['heal_events']}  "
                 f"converged@t{report['converged_tick']} "
                 f"(peak@t{report['first_peak_tick']})  "
                 f"final nodes={report['final_nodes']} "
                 f"epoch={report['final_epoch']}")
    gates = report["gates"]
    verdicts = "  ".join(f"{name}={'PASS' if ok else 'FAIL'}"
                         for name, ok in gates.items() if name != "passed")
    lines.append(f"  gates: {verdicts}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Self-healing elastic autoscaling over the plan-epoch "
                    "control plane, gated.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic autoscale report")
    args = parser.parse_args(argv)

    report = run_autoscale(seed=args.seed)
    print(render(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
    return 0 if report["gates"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
