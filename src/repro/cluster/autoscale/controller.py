"""The elastic autoscaler: a hysteresis controller that cannot leak.

Scale decisions are the coarsest observable a serving fleet emits — node
counts are visible to anyone watching the rack, so if the controller's
output depends on *what* users asked for (not just *how much*), elasticity
becomes a side channel. The :class:`Autoscaler` therefore derives its
target node count from :class:`~repro.cluster.autoscale.signals
.ClusterSignals` aggregates alone, and — like the shard planner and the
migration planner before it — the obliviousness is *enforced*, not
assumed: :meth:`Autoscaler.decide` accepts the observed workload a
load-chasing controller would want, records every decision in the
``cluster.autoscale`` tracer region, and
:func:`check_oblivious_scaling` replays the controller over the same
signal timeline under contrasting skew profiles in exact mode. A
compliant controller produces one byte-identical decision trace for every
skew; :class:`HotLoadChasingController` (scale toward the hot tables —
the "natural" demand-follower) is the in-tree negative control the audit
must flag.

The control law itself is deliberately boring — utilisation bands with
streak-based hysteresis and a post-decision cooldown:

* utilisation >= ``high_utilisation`` for ``breach_ticks`` consecutive
  snapshots scales up by ``step_nodes`` (capped at ``max_nodes``);
* utilisation <= ``low_utilisation`` for ``breach_ticks`` snapshots
  scales down — unless the fleet is unhealthy (open/half-open breakers
  or crashed replicas: shrinking a degraded fleet trades redundancy for
  savings exactly when redundancy is being consumed) or the target would
  drop below ``max(min_nodes, replication)``, the R-redundancy floor;
* every scale decision starts a ``cooldown_ticks`` hold so the fleet
  observes the *new* capacity before judging it.

Blocked decisions do not reset the breach streak: the moment the blocker
clears, the backlog of evidence still stands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.autoscale.signals import ClusterSignals
from repro.cluster.placement import default_placement_workloads
from repro.oblivious.trace import WRITE, MemoryTracer
from repro.telemetry.audit import (
    MODE_EXACT,
    AuditFinding,
    AuditSubject,
    LeakageAuditor,
)
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive

#: tracer region every scale decision is recorded under
AUTOSCALE_REGION = "cluster.autoscale"

ACTION_HOLD = "hold"
ACTION_UP = "scale-up"
ACTION_DOWN = "scale-down"
ACTION_BLOCKED = "blocked"

#: stable numeric encoding of actions for the trace address
_ACTION_VALUES = {ACTION_HOLD: 0, ACTION_UP: 1, ACTION_DOWN: 2,
                  ACTION_BLOCKED: 3}


class ScalingLeakageError(RuntimeError):
    """A controller's scale decisions depended on the observed workload."""


@dataclass(frozen=True)
class AutoscaleConfig:
    """Bands, hysteresis and floors for the elastic control loop."""

    min_nodes: int
    max_nodes: int
    high_utilisation: float = 0.80
    low_utilisation: float = 0.30
    breach_ticks: int = 2
    cooldown_ticks: int = 1
    step_nodes: int = 1

    def __post_init__(self) -> None:
        check_positive("min_nodes", self.min_nodes)
        check_positive("max_nodes", self.max_nodes)
        check_positive("breach_ticks", self.breach_ticks)
        check_positive("step_nodes", self.step_nodes)
        if self.cooldown_ticks < 0:
            raise ValueError(f"cooldown_ticks must be >= 0, got "
                             f"{self.cooldown_ticks}")
        if self.min_nodes > self.max_nodes:
            raise ValueError(
                f"min_nodes {self.min_nodes} exceeds max_nodes "
                f"{self.max_nodes}")
        if not 0.0 < self.low_utilisation < self.high_utilisation:
            raise ValueError(
                f"need 0 < low_utilisation < high_utilisation, got "
                f"{self.low_utilisation!r} / {self.high_utilisation!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "high_utilisation": self.high_utilisation,
            "low_utilisation": self.low_utilisation,
            "breach_ticks": self.breach_ticks,
            "cooldown_ticks": self.cooldown_ticks,
            "step_nodes": self.step_nodes,
        }


@dataclass(frozen=True)
class ScaleDecision:
    """One tick's verdict: hold, scale, or refuse to scale."""

    tick: int
    action: str
    reason: str
    current_nodes: int
    target_nodes: int

    @property
    def scales(self) -> bool:
        return self.action in (ACTION_UP, ACTION_DOWN)

    def to_dict(self) -> Dict[str, object]:
        return {
            "tick": self.tick,
            "action": self.action,
            "reason": self.reason,
            "current_nodes": self.current_nodes,
            "target_nodes": self.target_nodes,
        }


class Autoscaler:
    """Derives target node counts from secret-free signals, audited."""

    def __init__(self, config: AutoscaleConfig) -> None:
        self.config = config
        self._high_streak = 0
        self._low_streak = 0
        self._cooldown = 0

    # ------------------------------------------------------------------
    def decide(self, signals: ClusterSignals,
               workload: Optional[Sequence[int]] = None,
               tracer: Optional[MemoryTracer] = None) -> ScaleDecision:
        """One control step; records the decision on ``tracer``.

        ``workload`` is the observed index trace a load-chasing controller
        would want; this controller accepts it only so
        :func:`check_oblivious_scaling` can verify it is ignored. The
        trace address encodes (tick, target, action), so any
        workload-dependent decision shows up as exact-mode divergence.
        """
        decision = self._decide(signals, workload)
        if tracer is not None:
            tracer.record(WRITE, AUTOSCALE_REGION,
                          (decision.tick * 1024 + decision.target_nodes) * 4
                          + _ACTION_VALUES[decision.action])
        registry = get_registry()
        if registry.enabled:
            registry.counter("autoscale.decisions_total").inc()
            if decision.action == ACTION_UP:
                registry.counter("autoscale.scale_up_total").inc()
            elif decision.action == ACTION_DOWN:
                registry.counter("autoscale.scale_down_total").inc()
            elif decision.action == ACTION_BLOCKED:
                registry.counter("autoscale.blocked_total").inc()
            registry.gauge("autoscale.target_nodes").set(
                decision.target_nodes)
        return decision

    # ------------------------------------------------------------------
    def _decide(self, signals: ClusterSignals,
                workload: Optional[Sequence[int]]) -> ScaleDecision:
        """The pure control law: signals in, decision out."""
        config = self.config
        current = signals.current_nodes
        if signals.utilisation >= config.high_utilisation:
            self._high_streak += 1
            self._low_streak = 0
        elif signals.utilisation <= config.low_utilisation:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0

        if self._cooldown > 0:
            self._cooldown -= 1
            return ScaleDecision(signals.tick, ACTION_HOLD, "cooldown",
                                 current, current)

        if self._high_streak >= config.breach_ticks:
            target = min(current + config.step_nodes, config.max_nodes)
            if target == current:
                return ScaleDecision(signals.tick, ACTION_BLOCKED,
                                     "at-max-nodes", current, current)
            self._high_streak = 0
            self._cooldown = config.cooldown_ticks
            return ScaleDecision(signals.tick, ACTION_UP,
                                 "high-utilisation", current, target)

        if self._low_streak >= config.breach_ticks:
            floor = max(config.min_nodes, signals.replication)
            target = max(current - config.step_nodes, floor)
            if target == current:
                return ScaleDecision(signals.tick, ACTION_BLOCKED,
                                     "replication-floor", current, current)
            if signals.unhealthy_nodes > 0:
                # Never shrink a degraded fleet; the streak survives so
                # the scale-down fires the tick the fleet heals.
                return ScaleDecision(signals.tick, ACTION_BLOCKED,
                                     "breakers-open", current, current)
            self._low_streak = 0
            self._cooldown = config.cooldown_ticks
            return ScaleDecision(signals.tick, ACTION_DOWN,
                                 "low-utilisation", current, target)

        return ScaleDecision(signals.tick, ACTION_HOLD, "within-band",
                             current, current)


class HotLoadChasingController(Autoscaler):
    """The anti-pattern: chase the hot tables with extra capacity.

    Bins the observed workload into per-table heat and adds a node
    whenever the heat concentrates away from table 0 — the "natural"
    demand-follower that encodes which embeddings are popular into the
    (public) fleet size. Kept only as the negative control for the
    scaling leakage audit and its regression test; never let it drive a
    real fleet.
    """

    def _decide(self, signals: ClusterSignals,
                workload: Optional[Sequence[int]]) -> ScaleDecision:
        decision = super()._decide(signals, workload)
        if workload is None or len(workload) == 0:
            return decision
        observed = np.asarray(workload, dtype=np.int64)
        if int(np.argmax(np.bincount(observed))) == 0:
            return decision
        target = min(decision.target_nodes + 1, self.config.max_nodes)
        return ScaleDecision(decision.tick, ACTION_UP, "hot-load-chase",
                             decision.current_nodes, target)


# ----------------------------------------------------------------------
# The scaling-level leakage check (mirrors check_oblivious_placement).
# ----------------------------------------------------------------------
def default_scaling_workloads(num_tables: int,
                              length: int = 64) -> List[Sequence[int]]:
    """Contrasting skew profiles: hot-head, hot-tail, uniform — the same
    maximum-contrast shapes the placement audit replays under."""
    return default_placement_workloads(num_tables, length)


def scaling_subject(controller_factory: Callable[[], Autoscaler],
                    timeline: Sequence[ClusterSignals],
                    workloads: Sequence[Sequence[int]],
                    name: str = "autoscaler",
                    expect_oblivious: bool = True) -> AuditSubject:
    """Wrap a controller as an :class:`AuditSubject`.

    Each replay builds a *fresh* controller (hysteresis state must not
    carry across secrets) and walks it through the same recorded signal
    timeline; only the workload changes between replays, so any trace
    divergence is the workload's doing.
    """
    if not timeline:
        raise ValueError("scaling audit needs a non-empty signal timeline")

    def run(tracer: MemoryTracer, secret: Sequence[int]) -> None:
        controller = controller_factory()
        for signals in timeline:
            controller.decide(signals, workload=secret, tracer=tracer)

    return AuditSubject(name, run, workloads, mode=MODE_EXACT,
                        expect_oblivious=expect_oblivious)


def audit_scaling(controller_factory: Callable[[], Autoscaler],
                  timeline: Sequence[ClusterSignals],
                  workloads: Sequence[Sequence[int]],
                  auditor: Optional[LeakageAuditor] = None,
                  name: str = "autoscaler",
                  expect_oblivious: bool = True) -> AuditFinding:
    """Replay the controller across skew profiles; return the finding."""
    if auditor is None:
        auditor = LeakageAuditor()
    return auditor.audit(scaling_subject(controller_factory, timeline,
                                         workloads, name=name,
                                         expect_oblivious=expect_oblivious))


def check_oblivious_scaling(controller_factory: Callable[[], Autoscaler],
                            timeline: Sequence[ClusterSignals],
                            workloads: Sequence[Sequence[int]],
                            auditor: Optional[LeakageAuditor] = None
                            ) -> AuditFinding:
    """Gate: raise :class:`ScalingLeakageError` if decisions leak.

    The autoscale sim runs this before its decision trace counts as
    converged — the same loud failure a frequency-keyed plan gets.
    """
    finding = audit_scaling(controller_factory, timeline, workloads,
                            auditor=auditor)
    if finding.leak_detected:
        raise ScalingLeakageError(
            f"scale decisions of {name_of(controller_factory)} depend on "
            f"the observed workload (trace divergence "
            f"{finding.divergence:.3f}); load-chasing elasticity is a "
            f"side channel")
    return finding


def name_of(controller_factory: Callable[[], Autoscaler]) -> str:
    """Best-effort display name for a controller factory."""
    try:
        return type(controller_factory()).__name__
    except Exception:  # pragma: no cover - diagnostics only
        return getattr(controller_factory, "__name__", "controller")
