"""``python -m repro.cluster.autoscale`` — the gated autoscale storm."""

from repro.cluster.autoscale.sim import main

if __name__ == "__main__":
    raise SystemExit(main())
