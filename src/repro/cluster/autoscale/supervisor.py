"""The self-healing supervisor: detect dead replicas, re-replicate.

Failover (the router skipping a crashed owner) keeps requests flowing but
silently spends redundancy: every table the corpse owned is now one
replica short, and a second failure in the wrong place turns "degraded"
into "unroutable". The :class:`Supervisor` closes that loop
deterministically on the simulated clock:

* **detection** is pure breaker/crash-window state — a replica counts as
  dead after ``confirm_ticks`` consecutive observations inside a crash
  window (no heartbeat randomness, no wall clock), read from the same
  :class:`~repro.resilience.dispatch.ResilientDispatcher` every epoch
  shares;
* **healing** goes through the *same* audited path every planned reshape
  uses: the control plane issues a successor epoch for the unchanged plan
  and a :class:`~repro.cluster.migration.MigrationEngine` executes an
  explicit move-set that re-copies every table the dead node owned onto
  its replacement — bounded steps, double-serve, bandwidth contention and
  all. A heal is a migration whose move-set came from the obituary
  instead of the epoch diff;
* once the copies land the caller swaps a fresh machine into the slot
  (:meth:`~repro.resilience.dispatch.ResilientDispatcher
  .replace_replica`) and :meth:`mark_replaced` clears the obituary.

Detection reads only aggregate replica state and the heal move-set is a
function of the (workload-blind) plan plus the public crash event, so the
whole heal path inherits the migration audit's obliviousness story.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.epoch import EpochControlPlane, PlanEpoch
from repro.cluster.migration import (
    BandwidthContentionModel,
    MigrationEngine,
    TableMove,
)
from repro.resilience.dispatch import ResilientDispatcher
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive


class Supervisor:
    """Watches the shared dispatcher; plans re-replication heals."""

    def __init__(self, dispatcher: ResilientDispatcher,
                 confirm_ticks: int = 1) -> None:
        check_positive("confirm_ticks", confirm_ticks)
        self.dispatcher = dispatcher
        self.confirm_ticks = confirm_ticks
        self._crash_streaks: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def observe(self, now_seconds: float) -> List[int]:
        """Confirmed-dead replicas after this observation tick.

        A replica is confirmed dead once it has sat inside a crash window
        for ``confirm_ticks`` consecutive observations — a breaker that
        merely tripped (OPEN but not crashed) is the breaker's own
        half-open probe cycle to handle, not the supervisor's.
        """
        confirmed: List[int] = []
        for index, replica in enumerate(self.dispatcher.replicas):
            if replica.crashed(now_seconds):
                streak = self._crash_streaks.get(index, 0) + 1
                self._crash_streaks[index] = streak
                if streak >= self.confirm_ticks:
                    confirmed.append(index)
            else:
                self._crash_streaks.pop(index, None)
        return confirmed

    # ------------------------------------------------------------------
    def heal_moves(self, epoch: PlanEpoch,
                   dead_nodes: Sequence[int]) -> List[TableMove]:
        """The re-replication move-set: one move per orphaned table.

        For every table whose owner set intersects the dead nodes, the
        surviving owners stream a fresh copy to the replacement machines
        in the dead slots — the owner set itself does not change (the
        plan did not), which is why this is an explicit override rather
        than an epoch diff.
        """
        dead = set(dead_nodes)
        moves: List[TableMove] = []
        for table_id in range(epoch.num_tables):
            owners = epoch.owners(table_id)
            lost = tuple(node for node in owners if node in dead)
            if not lost:
                continue
            survivors = tuple(node for node in owners if node not in dead)
            moves.append(TableMove(
                table_id=table_id, from_owners=survivors, to_owners=owners,
                new_owners=lost,
                bytes_modelled=epoch.footprint_of(table_id) * len(lost)))
        return moves

    def heal(self, control: EpochControlPlane, dead_nodes: Sequence[int],
             step_size: int = 4,
             contention: Optional[BandwidthContentionModel] = None
             ) -> MigrationEngine:
        """Issue the heal epoch and the migration that re-replicates it.

        The successor epoch carries the *same* plan (ownership is
        unchanged; only physical copies are missing), so routing is
        untouched while the copies stream — the dispatcher keeps
        excluding the dead slots until the caller replaces them after the
        migration completes.
        """
        if not dead_nodes:
            raise ValueError("heal needs at least one dead node")
        source = control.current
        target = control.advance(source.plan)
        moves = self.heal_moves(source, dead_nodes)
        get_registry().counter("autoscale.heals_total").inc()
        return MigrationEngine(source, target, step_size=step_size,
                               moves=moves, contention=contention)

    def mark_replaced(self, dead_nodes: Sequence[int]) -> None:
        """Swap fresh machines into the healed slots; clear obituaries."""
        for node in dead_nodes:
            self.dispatcher.replace_replica(node)
            self._crash_streaks.pop(node, None)
