"""The autoscaler's signal plane: secret-free aggregates, nothing else.

An elastic control loop is only as oblivious as its inputs. The moment a
scale decision reads anything keyed on request *content* — per-table hit
counts, per-user queue depth, which embeddings were hot — the fleet size
itself becomes a side channel (a scale-up that fires because table 17 got
popular tells the adversary table 17 got popular). The
:class:`SignalPlane` therefore snapshots only whole-fleet aggregates that
are public under the paper's threat model:

* **offered vs achieved throughput** and the provisioned
  :attr:`~repro.cluster.scatter.ClusterServingReport.capacity_rps` — batch
  counts and pipeline pricing, both functions of the (frequency-blind)
  plan and the public arrival clock;
* **queue depth** as the mean gathered queue delay — padded batches mean
  the queue length is a function of arrival times only;
* **replica health** from
  :meth:`~repro.resilience.dispatch.ResilientDispatcher.health_summary` —
  whole-fleet breaker/crash counts, never per-request state.

Every snapshot is stamped with the simulated tick and exported to the
telemetry registry as ``autoscale.*`` gauges; the
:class:`~repro.cluster.autoscale.controller.Autoscaler` consumes the
frozen :class:`ClusterSignals` and nothing besides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.scatter import ClusterServingReport
from repro.resilience.dispatch import ResilientDispatcher
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ClusterSignals:
    """One decision interval's secret-free aggregate view of the fleet."""

    tick: int
    now_seconds: float
    offered_rps: float
    achieved_rps: float
    capacity_rps: float
    utilisation: float
    queue_delay_seconds: float
    shed_requests: int
    current_nodes: int
    replication: int
    healthy_nodes: int
    open_breakers: int
    half_open_breakers: int
    crashed_nodes: int

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ValueError(f"tick must be >= 0, got {self.tick}")
        check_positive("current_nodes", self.current_nodes)
        check_positive("replication", self.replication)

    @property
    def unhealthy_nodes(self) -> int:
        """Replicas currently out of rotation for any reason."""
        return self.open_breakers + self.half_open_breakers \
            + self.crashed_nodes

    def to_dict(self) -> Dict[str, object]:
        return {
            "tick": self.tick,
            "now_seconds": self.now_seconds,
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "capacity_rps": self.capacity_rps,
            "utilisation": self.utilisation,
            "queue_delay_seconds": self.queue_delay_seconds,
            "shed_requests": self.shed_requests,
            "current_nodes": self.current_nodes,
            "replication": self.replication,
            "healthy_nodes": self.healthy_nodes,
            "open_breakers": self.open_breakers,
            "half_open_breakers": self.half_open_breakers,
            "crashed_nodes": self.crashed_nodes,
        }


class SignalPlane:
    """Assembles :class:`ClusterSignals` on a simulated-clock cadence.

    The plane owns the tick counter (one snapshot per decision interval)
    and the only dispatcher view it ever reads is
    :meth:`~repro.resilience.dispatch.ResilientDispatcher.health_summary`
    — aggregate counts. Both entry points produce identical shapes:
    :meth:`observe` digests a full scatter-gather interval report, and
    :meth:`snapshot` takes the same aggregates as scalars for intervals
    that were served by something other than a plain ``serve`` call (a
    migration window, where the interval's numbers come from a
    :class:`~repro.cluster.migration.MigrationReport`).
    """

    def __init__(self, dispatcher: Optional[ResilientDispatcher] = None,
                 interval_seconds: float = 0.25) -> None:
        check_positive("interval_seconds", interval_seconds)
        self.dispatcher = dispatcher
        self.interval_seconds = interval_seconds
        self._tick = 0

    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """The tick the *next* snapshot will be stamped with."""
        return self._tick

    def snapshot(self, offered_rps: float, achieved_rps: float,
                 capacity_rps: float, queue_delay_seconds: float,
                 shed_requests: int, current_nodes: int, replication: int,
                 now_seconds: float = 0.0) -> ClusterSignals:
        """Freeze one interval's aggregates; advance the tick."""
        utilisation = (offered_rps / capacity_rps
                       if capacity_rps > 0.0 and offered_rps >= 0.0
                       else 0.0)
        health = (self.dispatcher.health_summary(now_seconds)
                  if self.dispatcher is not None
                  else {"healthy": current_nodes, "open_breakers": 0,
                        "half_open_breakers": 0, "crashed": 0})
        signals = ClusterSignals(
            tick=self._tick, now_seconds=now_seconds,
            offered_rps=offered_rps, achieved_rps=achieved_rps,
            capacity_rps=capacity_rps, utilisation=utilisation,
            queue_delay_seconds=queue_delay_seconds,
            shed_requests=shed_requests, current_nodes=current_nodes,
            replication=replication, healthy_nodes=health["healthy"],
            open_breakers=health["open_breakers"],
            half_open_breakers=health["half_open_breakers"],
            crashed_nodes=health["crashed"])
        self._tick += 1
        self._export(signals)
        return signals

    def observe(self, result: ClusterServingReport, offered_rps: float,
                replication: int, current_nodes: Optional[int] = None,
                capacity_rps: Optional[float] = None,
                now_seconds: float = 0.0) -> ClusterSignals:
        """Snapshot a served interval straight from its gathered report.

        ``capacity_rps`` defaults to the report's *live* capacity (what
        the surviving shards can sustain); the sim overrides it with the
        plan's provisioned capacity so that a node kill shows up in the
        health counts, not as a phantom utilisation spike — otherwise a
        death would reset the scale-down streak it is supposed to block.
        """
        answered = max(0, result.num_requests - result.shed_requests)
        return self.snapshot(
            offered_rps=offered_rps,
            achieved_rps=answered / self.interval_seconds,
            capacity_rps=(result.capacity_rps if capacity_rps is None
                          else capacity_rps),
            queue_delay_seconds=result.report.mean_queue_delay,
            shed_requests=result.shed_requests,
            current_nodes=(result.num_shards if current_nodes is None
                           else current_nodes),
            replication=replication, now_seconds=now_seconds)

    # ------------------------------------------------------------------
    def _export(self, signals: ClusterSignals) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.gauge("autoscale.offered_rps").set(signals.offered_rps)
        registry.gauge("autoscale.achieved_rps").set(signals.achieved_rps)
        registry.gauge("autoscale.capacity_rps").set(signals.capacity_rps)
        registry.gauge("autoscale.utilisation").set(signals.utilisation)
        registry.gauge("autoscale.queue_delay_seconds").set(
            signals.queue_delay_seconds)
        registry.gauge("autoscale.current_nodes").set(signals.current_nodes)
        registry.gauge("autoscale.healthy_nodes").set(signals.healthy_nodes)
        registry.gauge("autoscale.crashed_nodes").set(signals.crashed_nodes)
        registry.counter("autoscale.snapshots_total").inc()
