"""Self-healing elastic autoscaling over the plan-epoch control plane.

A secret-free control loop: the :class:`~repro.cluster.autoscale.signals
.SignalPlane` snapshots whole-fleet aggregates on the simulated clock,
the :class:`~repro.cluster.autoscale.controller.Autoscaler` derives
target node counts with hysteresis and cooldown (audited: decisions must
replay byte-identically under contrasting skew profiles), and the
:class:`~repro.cluster.autoscale.supervisor.Supervisor` re-replicates
dead nodes' tables through the same audited migration path every planned
reshape uses. The gated storm lives in ``python -m
repro.cluster.autoscale``.
"""

from repro.cluster.autoscale.controller import (
    ACTION_BLOCKED,
    ACTION_DOWN,
    ACTION_HOLD,
    ACTION_UP,
    AUTOSCALE_REGION,
    Autoscaler,
    AutoscaleConfig,
    HotLoadChasingController,
    ScaleDecision,
    ScalingLeakageError,
    audit_scaling,
    check_oblivious_scaling,
    default_scaling_workloads,
    scaling_subject,
)
from repro.cluster.autoscale.signals import ClusterSignals, SignalPlane
from repro.cluster.autoscale.supervisor import Supervisor

# repro.cluster.autoscale.sim is deliberately NOT imported here: it is the
# ``python -m repro.cluster.autoscale`` entry point (via __main__) and
# importing it eagerly would drag the experiment machinery into every
# ``import repro.cluster``.

__all__ = [
    "ACTION_BLOCKED",
    "ACTION_DOWN",
    "ACTION_HOLD",
    "ACTION_UP",
    "AUTOSCALE_REGION",
    "Autoscaler",
    "AutoscaleConfig",
    "HotLoadChasingController",
    "ScaleDecision",
    "ScalingLeakageError",
    "audit_scaling",
    "check_oblivious_scaling",
    "default_scaling_workloads",
    "scaling_subject",
    "ClusterSignals",
    "SignalPlane",
    "Supervisor",
]
