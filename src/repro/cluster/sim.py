"""The cluster simulator: node count × replication × skew, gated.

Sweeps the Fig 13 Terabyte serving workload across cluster topologies and
enforces the scaling story the ROADMAP's north star needs:

* **placement audit** — every plan that serves traffic first passes
  :func:`~repro.cluster.placement.check_oblivious_placement`, and the sim
  additionally proves the gate has teeth by running the deliberately
  frequency-keyed planner and requiring the auditor to flag it;
* **skew invariance** — the plan digest must be byte-identical under every
  skew profile (hot-head, hot-tail, uniform): observed traffic must not
  move a single table;
* **scaling** — cluster throughput at the largest node count with
  replication 2 must be >= ``SCALING_FLOOR`` x the single-node baseline,
  with p99 inflation <= ``P99_INFLATION_CEILING`` x;
* **failover** — killing one node at replication 2 must lose zero
  requests (the router fails over through the
  :class:`~repro.resilience.dispatch.ResilientDispatcher`).

Everything is derived from one seed (the Poisson arrival trace is the only
random input; placement, routing and pricing are deterministic), and the
emitted JSON contains only simulated quantities — two runs with the same
seed produce byte-identical artifacts; CI pins that with ``cmp``.

CLI::

    python -m repro.cluster.sim --seed 7 --json cluster.json
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.placement import (
    FrequencyKeyedPlanner,
    ShardPlan,
    ShardPlanner,
    audit_placement,
    check_oblivious_placement,
    default_placement_workloads,
)
from repro.cluster.router import ShardRouter
from repro.cluster.scatter import ClusterServingReport, ScatterGatherEngine
from repro.costmodel import DLRM_DHE_UNIFORM_16, DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC, DlrmDatasetSpec
from repro.resilience.dispatch import ResilientDispatcher
from repro.resilience.retry import RetryPolicy
from repro.serving import ServingConfig
from repro.serving.batcher import BatchingPolicy
from repro.serving.requests import RequestQueue

#: the cluster gates CI enforces (ISSUE 4 acceptance criteria)
SCALING_FLOOR = 3.0            # 1 -> 4 nodes at replication 2
P99_INFLATION_CEILING = 2.0    # vs the single-node baseline
AVAILABILITY_FLOOR = 1.0       # zero loss under a single-node kill at R=2

SLA_SECONDS = 0.020
NUM_REQUESTS = 512
RATE_RPS = 2000.0
BATCH = 32
DEADLINE_SECONDS = 0.500
NODE_COUNTS = (1, 2, 4)
REPLICATIONS = (1, 2)

#: stand-in for "down for the whole run" that stays JSON-representable
FOREVER_SECONDS = 1e9

#: per-shard pin budget for the sim's static-residency cache cell
CACHE_BUDGET_BYTES = 64 * 1024 * 1024

#: the skew profiles the sweep replays placement under
SKEW_NAMES = ("hot-head", "hot-tail", "uniform")


def build_model(spec: DlrmDatasetSpec, batch: int):
    """(uniform shape, threshold database) for the spec, as Fig 13 does.

    Shared with :mod:`repro.cluster.migrate` so both sims price tables
    through identical thresholds.
    """
    from repro.hybrid import OfflineProfiler, build_threshold_database

    dim = spec.embedding_dim
    uniform = DLRM_DHE_UNIFORM_16 if dim == 16 else DLRM_DHE_UNIFORM_64
    profiler = OfflineProfiler(uniform)
    profile = profiler.profile(techniques=("scan", "dhe-varied"),
                               dims=(dim,), batches=(batch,),
                               threads_list=(1,))
    thresholds = build_threshold_database(
        profile, dhe_technique="dhe-varied", dims=(dim,), batches=(batch,),
        threads_list=(1,))
    return uniform, thresholds


def plan_digest(plan: ShardPlan) -> str:
    """Content hash of a plan (what the skew-invariance gate compares)."""
    payload = json.dumps(plan.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _skew_workloads(num_tables: int) -> Dict[str, Sequence[int]]:
    """Named skew profiles (same shapes the placement audit contrasts)."""
    head, tail, uniform = default_placement_workloads(num_tables)
    return {"hot-head": head, "hot-tail": tail, "uniform": uniform}


def _cell(nodes: int, replication: int,
          result: ClusterServingReport,
          sla_seconds: float) -> Dict[str, object]:
    digest = result.to_dict(sla_seconds=sla_seconds)
    digest["nodes"] = nodes
    digest["replication"] = replication
    return digest


def run_cluster(seed: int = 0, spec: DlrmDatasetSpec = TERABYTE_SPEC,
                num_requests: int = NUM_REQUESTS,
                rate_rps: float = RATE_RPS, batch: int = BATCH,
                sla_seconds: float = SLA_SECONDS,
                node_counts: Sequence[int] = NODE_COUNTS,
                replications: Sequence[int] = REPLICATIONS
                ) -> Dict[str, object]:
    """Run the full sweep; return the JSON-stable cluster report."""
    node_counts = tuple(sorted(set(node_counts)))
    replications = tuple(sorted(set(replications)))
    config = ServingConfig(batch_size=batch, threads=1,
                           sla_seconds=sla_seconds)
    policy = BatchingPolicy(max_batch_size=batch, max_wait_seconds=0.002)
    retry = RetryPolicy(deadline_seconds=DEADLINE_SECONDS)
    dim = spec.embedding_dim
    sizes = spec.table_sizes
    uniform, thresholds = build_model(spec, batch)
    # One arrival trace for every topology: cells differ only in sharding.
    arrivals = RequestQueue.poisson(num_requests, rate_rps, rng=seed)
    skews = _skew_workloads(len(sizes))

    cells: List[Dict[str, object]] = []
    topologies: List[Dict[str, object]] = []
    baseline: Optional[ClusterServingReport] = None
    best: Dict[Tuple[int, int], ClusterServingReport] = {}
    audits_passed = True
    skew_invariant = True
    for nodes in node_counts:
        planner = ShardPlanner(nodes, thresholds, dim, uniform)
        # The leakage gate: raises PlacementLeakageError on a leaky planner.
        finding = check_oblivious_placement(planner, sizes, config,
                                            workloads=list(skews.values()))
        audits_passed = audits_passed and finding.passed
        # Skew invariance: the plan digest must not move with the workload.
        digests = {name: plan_digest(planner.plan(sizes, config,
                                                  workload=workload))
                   for name, workload in skews.items()}
        invariant = len(set(digests.values())) == 1
        skew_invariant = skew_invariant and invariant
        plan = planner.plan(sizes, config)
        topologies.append({
            "nodes": nodes,
            "plan_digest": plan_digest(plan),
            "plan_digests_by_skew": digests,
            "skew_invariant": invariant,
            "audit_divergence": finding.divergence,
            "audit_passed": finding.passed,
            "latency_imbalance": plan.latency_imbalance(),
            "node_latency_seconds": [plan.node_latency_seconds(node)
                                     for node in range(nodes)],
            "node_footprint_bytes": [plan.node_footprint_bytes(node)
                                     for node in range(nodes)],
        })
        for replication in replications:
            if replication > nodes:
                continue
            router = ShardRouter(nodes, replication=replication, plan=plan)
            engine = ScatterGatherEngine(sizes, dim, uniform, thresholds,
                                         router, retry=retry)
            result = engine.serve(config, arrivals, policy)
            best[(nodes, replication)] = result
            cells.append(_cell(nodes, replication, result, sla_seconds))
            if nodes == 1 and baseline is None:
                baseline = result

    assert baseline is not None  # node_counts is non-empty and validated
    # ------------------------------------------------------------------
    # Gate: scaling + p99 inflation (largest node count at replication 2,
    # falling back to the largest available replication for tiny sweeps).
    top_nodes = node_counts[-1]
    top_repl = max(r for r in replications if r <= top_nodes)
    top = best[(top_nodes, top_repl)]
    # Scaling is compared on saturated capacity (the Fig 13 batch-over-
    # latency throughput metric): at a fixed offered load the shards idle
    # and padded partial batches hide the capacity gain.
    scaling = (top.capacity_rps / baseline.capacity_rps
               if baseline.capacity_rps > 0 else 0.0)
    p99_inflation = (top.p99 / baseline.p99 if baseline.p99 > 0 else 0.0)
    scaling_ok = (scaling >= SCALING_FLOOR if top_nodes > 1
                  else True)  # a 1-node sweep has nothing to scale
    p99_ok = p99_inflation <= P99_INFLATION_CEILING

    # ------------------------------------------------------------------
    # Gate: kill one node of an R=2 topology; the router must fail over
    # through the dispatcher with zero lost requests.
    failover: Dict[str, object] = {"applicable": False}
    failover_ok = True
    if top_nodes >= 2 and 2 in replications:
        planner = ShardPlanner(top_nodes, thresholds, dim, uniform)
        plan = planner.plan(sizes, config)
        router = ShardRouter(top_nodes, replication=2, plan=plan)
        dispatcher = ResilientDispatcher(num_replicas=top_nodes)
        victim = 0
        dispatcher.mark_down(victim, until_seconds=FOREVER_SECONDS,
                             now_seconds=0.0)
        engine = ScatterGatherEngine(sizes, dim, uniform, thresholds,
                                     router, retry=retry,
                                     dispatcher=dispatcher)
        killed = engine.serve(config, arrivals, policy)
        failover_ok = (killed.shed_requests == 0
                       and not killed.unroutable_tables
                       and killed.availability >= AVAILABILITY_FLOOR)
        failover = {
            "applicable": True,
            "nodes": top_nodes,
            "replication": 2,
            "victim": victim,
            "live_shards": killed.num_shards,
            "unroutable_tables": list(killed.unroutable_tables),
            "shed_requests": killed.shed_requests,
            "availability": killed.availability,
            "p99_seconds": killed.p99,
            "zero_loss": failover_ok,
        }

    # ------------------------------------------------------------------
    # Gate: oblivious-safe caching on the top topology. Static whole-table
    # residency (audited: occupancy ignores the request stream) must cut
    # fleet busy time without inflating the gathered p99.
    from repro.cache import CachePolicy, StaticResidencyCache
    from repro.cache.audit import check_oblivious_cache

    cache_policy = CachePolicy("static-residency",
                               budget_bytes=CACHE_BUDGET_BYTES)
    cache_finding = check_oblivious_cache(
        lambda tracer: StaticResidencyCache(cache_policy.budget_bytes,
                                            tracer=tracer),
        name="static-residency")
    cached_planner = ShardPlanner(top_nodes, thresholds, dim, uniform)
    cached_router = ShardRouter(top_nodes, replication=top_repl,
                                plan=cached_planner.plan(sizes, config))
    cached_engine = ScatterGatherEngine(sizes, dim, uniform, thresholds,
                                        cached_router, retry=retry,
                                        cache=cache_policy)
    cached = cached_engine.serve(config, arrivals, policy)
    cache_ok = (cached.p99 <= top.p99
                and (cached.report.cache_hits or 0) > 0
                and cached.fleet.batch_time_total < top.fleet.batch_time_total)
    caching = {
        "policy": cache_policy.kind,
        "budget_bytes": cache_policy.budget_bytes,
        "audit_passed": cache_finding.passed,
        "audit_divergence": cache_finding.divergence,
        "cache_hits": cached.report.cache_hits,
        "cache_misses": cached.report.cache_misses,
        "cache_hit_rate": cached.report.cache_hit_rate,
        "cache_bytes_resident": cached.report.cache_bytes_resident,
        "p99_seconds": cached.p99,
        "uncached_p99_seconds": top.p99,
        "fleet_busy_seconds": cached.fleet.batch_time_total,
        "uncached_fleet_busy_seconds": top.fleet.batch_time_total,
        "improved": cache_ok,
    }

    # ------------------------------------------------------------------
    # Gate with teeth: the frequency-keyed anti-pattern must be *caught*.
    leaky = FrequencyKeyedPlanner(max(node_counts), thresholds, dim, uniform)
    negative = audit_placement(leaky, sizes, config,
                               workloads=list(skews.values()),
                               name="frequency-keyed-planner",
                               expect_oblivious=False)
    negative_ok = negative.leak_detected

    gates = {
        "placement_audit": audits_passed,
        "skew_invariance": skew_invariant,
        "scaling": scaling_ok,
        "p99_inflation": p99_ok,
        "failover_zero_loss": failover_ok,
        "cache_improvement": cache_ok,
        "cache_audit": cache_finding.passed,
        "leak_detector_teeth": negative_ok,
    }
    gates["passed"] = all(gates.values())
    return {
        "seed": seed,
        "spec": spec.name,
        "num_requests": num_requests,
        "rate_rps": rate_rps,
        "batch_size": batch,
        "sla_seconds": sla_seconds,
        "deadline_seconds": DEADLINE_SECONDS,
        "node_counts": list(node_counts),
        "replications": list(replications),
        "skews": list(SKEW_NAMES),
        "scaling_floor": SCALING_FLOOR,
        "p99_inflation_ceiling": P99_INFLATION_CEILING,
        "baseline_capacity_rps": baseline.capacity_rps,
        "baseline_throughput_rps": baseline.cluster_throughput(),
        "baseline_p99_seconds": baseline.p99,
        "top_capacity_rps": top.capacity_rps,
        "top_throughput_rps": top.cluster_throughput(),
        "top_p99_seconds": top.p99,
        "scaling": scaling,
        "p99_inflation": p99_inflation,
        "topologies": topologies,
        "cells": cells,
        "failover": failover,
        "caching": caching,
        "negative_audit": negative.to_dict(),
        "gates": gates,
    }


def render(report: Dict[str, object]) -> str:
    """Human-readable sweep summary."""
    lines = [f"cluster sweep (seed={report['seed']}, "
             f"spec={report['spec']}, {report['num_requests']} requests @ "
             f"{report['rate_rps']:.0f} rps)"]
    for cell in report["cells"]:
        lines.append(
            f"  nodes={cell['nodes']} R={cell['replication']}: "
            f"capacity={cell['capacity_rps']:.0f} rps  "
            f"achieved={cell['cluster_throughput_rps']:.0f} rps  "
            f"p99={cell['p99_seconds'] * 1e3:.3f} ms  "
            f"availability={cell['availability']:.4f}  "
            f"shed={cell['shed_requests']}")
    lines.append(f"  scaling 1->{report['node_counts'][-1]} nodes: "
                 f"{report['scaling']:.2f}x "
                 f"(floor {report['scaling_floor']:.1f}x)  "
                 f"p99 inflation {report['p99_inflation']:.2f}x "
                 f"(ceiling {report['p99_inflation_ceiling']:.1f}x)")
    caching = report["caching"]
    lines.append(
        f"  caching ({caching['policy']}): "
        f"hit_rate={caching['cache_hit_rate']:.3f}  "
        f"fleet busy {caching['uncached_fleet_busy_seconds']:.3f}s -> "
        f"{caching['fleet_busy_seconds']:.3f}s  "
        f"p99 {caching['uncached_p99_seconds'] * 1e3:.3f} -> "
        f"{caching['p99_seconds'] * 1e3:.3f} ms  "
        f"audit={'PASS' if caching['audit_passed'] else 'FAIL'}")
    failover = report["failover"]
    if failover["applicable"]:
        lines.append(f"  failover: killed node {failover['victim']} of "
                     f"{failover['nodes']} (R=2) -> "
                     f"shed={failover['shed_requests']} "
                     f"availability={failover['availability']:.4f} "
                     f"{'ZERO LOSS' if failover['zero_loss'] else 'LOSSY'}")
    gates = report["gates"]
    verdicts = "  ".join(f"{name}={'PASS' if ok else 'FAIL'}"
                         for name, ok in gates.items() if name != "passed")
    lines.append(f"  gates: {verdicts}")
    return "\n".join(lines)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Sweep sharded oblivious serving across cluster "
                    "topologies.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=NUM_REQUESTS)
    parser.add_argument("--rate", type=float, default=RATE_RPS)
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic cluster report")
    args = parser.parse_args(argv)

    report = run_cluster(seed=args.seed, num_requests=args.requests,
                         rate_rps=args.rate)
    print(render(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report["gates"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
