"""Capacity-aware shard placement that is blind to observed traffic.

Partitioning embedding tables across nodes is itself a side channel: a
planner that keys placement on *observed index frequency* (put the hot
tables on the fat node) encodes user behaviour into which node serves which
table — exactly the class of data-dependent layout decision the paper's
threat model forbids (§III: the adversary sees which memory a server
touches, and node identity is the coarsest address bit there is).

:class:`ShardPlanner` therefore partitions by **static table metadata
only** — table id, table size, and the per-technique cost model — and the
invariant is *enforced*, not assumed: the planner accepts the workload
argument a frequency-keyed planner would want, routes every placement
decision through a :class:`~repro.oblivious.trace.MemoryTracer`, and
:func:`check_oblivious_placement` replays the planner under contrasting
workloads with the :class:`~repro.telemetry.audit.LeakageAuditor`. A
compliant planner produces the identical placement trace for every
workload; :class:`FrequencyKeyedPlanner` (kept as the documented
anti-pattern) does not, and the audit flags it.

Costs come from the same seams everything else uses: the hybrid
allocator's thresholds pick scan vs DHE per table (Algorithm 3), the
execution backend prices per-batch latency, and
:mod:`repro.costmodel.memory` prices the footprint of the chosen
representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.latency import DheShape, dhe_varied_shape
from repro.costmodel.memory import dhe_bytes, table_bytes
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.embedding.hybrid import TECHNIQUE_SCAN
from repro.hybrid.allocator import allocate_for_configuration
from repro.hybrid.thresholds import ThresholdDatabase
from repro.oblivious.trace import WRITE, MemoryTracer
from repro.serving.backends import BackendLike, resolve_backend
from repro.serving.engine import ServingConfig
from repro.telemetry.audit import (
    MODE_EXACT,
    AuditFinding,
    AuditSubject,
    LeakageAuditor,
)
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive

#: tracer region every placement decision is recorded under
PLACEMENT_REGION = "cluster.placement"


class PlacementError(ValueError):
    """The table set cannot be placed (e.g. a node capacity is exceeded)."""


class PlacementLeakageError(RuntimeError):
    """A planner's placement depended on the observed workload."""


@dataclass(frozen=True)
class TablePlacement:
    """One table's shard assignment plus the costs that drove it."""

    table_id: int
    table_size: int
    technique: str
    footprint_bytes: int
    latency_seconds: float       # per-batch latency of this table alone
    node: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "table_id": self.table_id,
            "table_size": self.table_size,
            "technique": self.technique,
            "footprint_bytes": self.footprint_bytes,
            "latency_seconds": self.latency_seconds,
            "node": self.node,
        }


@dataclass
class ShardPlan:
    """A full placement of the table set onto ``num_nodes`` shards."""

    num_nodes: int
    batch_size: int
    threads: int
    placements: Tuple[TablePlacement, ...]

    def __post_init__(self) -> None:
        for placement in self.placements:
            if not 0 <= placement.node < self.num_nodes:
                raise ValueError(
                    f"table {placement.table_id} placed on node "
                    f"{placement.node}, but the plan has {self.num_nodes} "
                    f"nodes")

    # ------------------------------------------------------------------
    def node_of(self, table_id: int) -> int:
        for placement in self.placements:
            if placement.table_id == table_id:
                return placement.node
        raise KeyError(f"no placement for table {table_id}")

    def tables_on(self, node: int) -> List[int]:
        return [p.table_id for p in self.placements if p.node == node]

    def node_latency_seconds(self, node: int) -> float:
        return sum(p.latency_seconds for p in self.placements
                   if p.node == node)

    def node_footprint_bytes(self, node: int) -> int:
        return sum(p.footprint_bytes for p in self.placements
                   if p.node == node)

    def latency_imbalance(self) -> float:
        """Max/mean per-node latency load (1.0 = perfectly balanced)."""
        loads = [self.node_latency_seconds(node)
                 for node in range(self.num_nodes)]
        mean = sum(loads) / len(loads)
        if mean <= 0.0:
            return 1.0
        return max(loads) / mean

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_nodes": self.num_nodes,
            "batch_size": self.batch_size,
            "threads": self.threads,
            "latency_imbalance": self.latency_imbalance(),
            "node_latency_seconds": [self.node_latency_seconds(node)
                                     for node in range(self.num_nodes)],
            "node_footprint_bytes": [self.node_footprint_bytes(node)
                                     for node in range(self.num_nodes)],
            "placements": [p.to_dict() for p in self.placements],
        }


class ShardPlanner:
    """Greedy capacity-aware placement keyed on static table metadata only.

    Tables are ordered by per-batch latency (longest-processing-time
    first, table id as the tie-break — both static quantities) and each is
    assigned to the node with the smallest accumulated latency load whose
    memory capacity still fits it. The ``workload`` argument of
    :meth:`plan` exists so the leakage audit can *try* to influence the
    planner; a compliant planner never reads it.
    """

    def __init__(self, num_nodes: int, thresholds: ThresholdDatabase,
                 embedding_dim: int,
                 uniform_shape: Optional[DheShape] = None,
                 varied: bool = True,
                 backend: BackendLike = "modelled",
                 platform: PlatformModel = DEFAULT_PLATFORM,
                 node_capacity_bytes: Optional[int] = None) -> None:
        check_positive("num_nodes", num_nodes)
        check_positive("embedding_dim", embedding_dim)
        if node_capacity_bytes is not None:
            check_positive("node_capacity_bytes", node_capacity_bytes)
        self.num_nodes = num_nodes
        self.thresholds = thresholds
        self.embedding_dim = embedding_dim
        self.uniform_shape = uniform_shape
        self.varied = varied
        self.backend = resolve_backend(backend, uniform_shape, platform)
        self.platform = platform
        self.node_capacity_bytes = node_capacity_bytes

    # ------------------------------------------------------------------
    def table_costs(self, table_sizes: Sequence[int],
                    config: ServingConfig) -> List[TablePlacement]:
        """Per-table technique, footprint and latency (node unassigned)."""
        allocations = allocate_for_configuration(
            table_sizes, self.thresholds, self.embedding_dim,
            config.batch_size, config.threads)
        dhe_technique = "dhe-varied" if self.varied else "dhe-uniform"
        costs = []
        for allocation in allocations:
            if allocation.technique == TECHNIQUE_SCAN:
                technique = TECHNIQUE_SCAN
                footprint = table_bytes(allocation.table_size,
                                        self.embedding_dim)
            else:
                technique = dhe_technique
                if self.uniform_shape is None:
                    raise ValueError("planner needs the DHE uniform shape "
                                     "to price DHE-allocated tables")
                shape = (dhe_varied_shape(allocation.table_size,
                                          self.uniform_shape)
                         if self.varied else self.uniform_shape)
                footprint = dhe_bytes(shape)
            latency = self.backend.technique_latency(
                technique, allocation.table_size, self.embedding_dim,
                config.batch_size, config.threads)
            costs.append(TablePlacement(
                table_id=allocation.feature_index,
                table_size=allocation.table_size, technique=technique,
                footprint_bytes=footprint, latency_seconds=latency,
                node=-1))
        return costs

    def _assignment_order(self, costs: Sequence[TablePlacement],
                          workload: Optional[Sequence[int]]
                          ) -> List[TablePlacement]:
        """LPT order over static costs; ``workload`` is deliberately unread."""
        return sorted(costs, key=lambda c: (-c.latency_seconds, c.table_id))

    def _assign(self, costs: Sequence[TablePlacement],
                workload: Optional[Sequence[int]]) -> Dict[int, int]:
        """table id -> node. The seam epoch-aware planners override."""
        loads = [0.0] * self.num_nodes
        used = [0] * self.num_nodes
        assigned: Dict[int, int] = {}
        for cost in self._assignment_order(costs, workload):
            candidates = [node for node in range(self.num_nodes)
                          if self.node_capacity_bytes is None
                          or used[node] + cost.footprint_bytes
                          <= self.node_capacity_bytes]
            if not candidates:
                raise PlacementError(
                    f"table {cost.table_id} ({cost.footprint_bytes} B) fits "
                    f"no node under capacity {self.node_capacity_bytes} B")
            node = min(candidates, key=lambda n: (loads[n], n))
            loads[node] += cost.latency_seconds
            used[node] += cost.footprint_bytes
            assigned[cost.table_id] = node
        return assigned

    def for_nodes(self, num_nodes: int) -> "ShardPlanner":
        """A planner with identical static config targeting a new fleet size.

        This is the seam the plan-epoch control plane replans through: the
        cost model, thresholds and backend are shared, only the node count
        changes, so successive epochs price tables identically.
        """
        clone = type(self)(num_nodes, self.thresholds, self.embedding_dim,
                           uniform_shape=self.uniform_shape,
                           varied=self.varied, backend=self.backend,
                           platform=self.platform,
                           node_capacity_bytes=self.node_capacity_bytes)
        return clone

    # ------------------------------------------------------------------
    def plan(self, table_sizes: Sequence[int], config: ServingConfig,
             workload: Optional[Sequence[int]] = None,
             tracer: Optional[MemoryTracer] = None) -> ShardPlan:
        """Place every table on a node; record the decisions on ``tracer``.

        ``workload`` is an observed index trace (what a frequency-keyed
        planner would bin into per-table heat). This planner accepts it
        only so :func:`check_oblivious_placement` can verify it is ignored.
        """
        costs = self.table_costs(table_sizes, config)
        assigned = self._assign(costs, workload)
        placements = tuple(
            TablePlacement(cost.table_id, cost.table_size, cost.technique,
                           cost.footprint_bytes, cost.latency_seconds,
                           assigned[cost.table_id])
            for cost in costs)
        if tracer is not None:
            # One event per table, in table-id order: the address encodes
            # the (table -> node) decision, so any workload-dependent
            # placement shows up as trace divergence in the audit.
            for placement in placements:
                tracer.record(WRITE, PLACEMENT_REGION,
                              placement.table_id * self.num_nodes
                              + placement.node)
        get_registry().counter("cluster.plans_total").inc()
        return ShardPlan(self.num_nodes, config.batch_size, config.threads,
                         placements)


class FrequencyKeyedPlanner(ShardPlanner):
    """The anti-pattern: placement keyed on observed index frequency.

    Bins the observed workload into per-table heat and packs hot tables
    first onto the least-hot node — the "natural" load balancer that leaks
    user behaviour through the placement itself. Kept only as the negative
    subject for the planner leakage audit and its regression test; never
    use it to serve traffic.
    """

    def _assignment_order(self, costs: Sequence[TablePlacement],
                          workload: Optional[Sequence[int]]
                          ) -> List[TablePlacement]:
        if workload is None:
            return super()._assignment_order(costs, workload)
        observed = np.asarray(workload, dtype=np.int64)
        heat = np.bincount(observed % max(1, len(costs)),
                           minlength=len(costs))
        return sorted(costs,
                      key=lambda c: (-int(heat[c.table_id]), c.table_id))


class RingPlanner(ShardPlanner):
    """Placement keyed on the consistent-hash ring — the migration planner.

    Each table's primary is its ring owner (SHA-256 over table id, the same
    ring :class:`~repro.cluster.router.ShardRouter` walks), so successive
    plan epochs inherit the ring's incremental-reshard property: growing
    the fleet from N to N+1 nodes remaps only the tables whose ring arc the
    new node captures, which is what keeps the migration move-set minimal.
    Costs (technique, footprint, latency) still come from the static cost
    model; the assignment reads nothing but table ids, so the placement
    audit passes in exact mode like the LPT planner's.
    """

    def _assign(self, costs: Sequence[TablePlacement],
                workload: Optional[Sequence[int]]) -> Dict[int, int]:
        from repro.cluster.router import ShardRouter

        ring = ShardRouter(self.num_nodes, replication=1,
                           virtual_nodes=32)
        return {cost.table_id: ring.owners_for(cost.table_id)[0]
                for cost in costs}


# ----------------------------------------------------------------------
# The planner-level leakage check (reuses LeakageAuditor end to end).
# ----------------------------------------------------------------------
def default_placement_workloads(num_tables: int,
                                length: int = 64
                                ) -> List[Sequence[int]]:
    """Contrasting observed-traffic profiles: hammer the first table,
    hammer the last, and a uniform sweep — the same maximum-contrast shape
    the standing five-subject audit uses for its secrets."""
    check_positive("num_tables", num_tables)
    check_positive("length", length)
    return [
        [0] * length,
        [num_tables - 1] * length,
        [index % num_tables for index in range(length)],
    ]


def placement_subject(planner: ShardPlanner, table_sizes: Sequence[int],
                      config: ServingConfig,
                      workloads: Optional[Sequence[Sequence[int]]] = None,
                      name: str = "shard-planner",
                      expect_oblivious: bool = True) -> AuditSubject:
    """Wrap a planner as an :class:`AuditSubject`: one replay per workload."""
    if workloads is None:
        workloads = default_placement_workloads(len(table_sizes))

    def run(tracer: MemoryTracer, secret: Sequence[int]) -> None:
        planner.plan(table_sizes, config, workload=secret, tracer=tracer)

    return AuditSubject(name, run, workloads, mode=MODE_EXACT,
                        expect_oblivious=expect_oblivious)


def audit_placement(planner: ShardPlanner, table_sizes: Sequence[int],
                    config: ServingConfig,
                    workloads: Optional[Sequence[Sequence[int]]] = None,
                    auditor: Optional[LeakageAuditor] = None,
                    name: str = "shard-planner",
                    expect_oblivious: bool = True) -> AuditFinding:
    """Replay the planner across workloads and return the audit finding."""
    if auditor is None:
        auditor = LeakageAuditor()
    return auditor.audit(placement_subject(planner, table_sizes, config,
                                           workloads, name=name,
                                           expect_oblivious=expect_oblivious))


def check_oblivious_placement(planner: ShardPlanner,
                              table_sizes: Sequence[int],
                              config: ServingConfig,
                              workloads: Optional[Sequence[Sequence[int]]]
                              = None,
                              auditor: Optional[LeakageAuditor] = None
                              ) -> AuditFinding:
    """Gate: raise :class:`PlacementLeakageError` if placement leaks.

    This is the loud failure the cluster simulator and CI run before any
    plan is allowed to serve traffic.
    """
    finding = audit_placement(planner, table_sizes, config, workloads,
                              auditor=auditor)
    if finding.leak_detected:
        raise PlacementLeakageError(
            f"placement of {type(planner).__name__} depends on the observed "
            f"workload (trace divergence {finding.divergence:.3f}); "
            f"frequency-keyed sharding is a side channel")
    return finding
