"""The migration simulator: node add/remove × replication × step size, gated.

Replays the Fig 13 Terabyte serving workload while the fleet reshapes
under it — the plan-epoch control plane issues a successor epoch and the
:class:`~repro.cluster.migration.MigrationEngine` walks the move-set in
bounded steps against live traffic. The gates are the live-migration
counterpart of ``repro.cluster.sim``'s:

* **per-epoch placement audit** — every epoch's planner passes
  :func:`~repro.cluster.placement.check_oblivious_placement` before its
  plan may serve;
* **migration audit** — every intermediate assignment (pending /
  in-flight / moved per step) replays identically under contrasting
  workloads via :func:`~repro.cluster.migration.check_oblivious_migration`,
  and the :class:`~repro.cluster.migration.HotFirstMigrationPlanner`
  negative control must be *caught*;
* **zero loss at R >= 2** — no request drops during or after the
  transition (double-serve covers every in-flight table), including with
  one node killed for the whole migration;
* **p99 inflation** — migration-window p99 <= ``P99_INFLATION_CEILING`` x
  the steady-state p99 (double-serve is bounded extra load, not a stall);
* **incrementality** — the move-set stays within
  ``ceil(tables x R / nodes) + MOVE_SLACK`` (the consistent-hash ring's
  promise that a one-node reshard moves ~1/N of the copies).

Everything derives from one seed; two runs emit byte-identical JSON and
CI pins that with ``cmp``.

CLI::

    python -m repro.cluster.migrate --seed 7 --nodes-before 4 \
        --nodes-after 5 --step-size 2 --json migrate.json
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence

from repro.cluster.epoch import EpochControlPlane, PlanEpoch
from repro.cluster.migration import (
    HotFirstMigrationPlanner,
    MigrationEngine,
    audit_migration,
    check_oblivious_migration,
)
from repro.cluster.placement import (
    RingPlanner,
    check_oblivious_placement,
    default_placement_workloads,
)
from repro.cluster.scatter import ScatterGatherEngine
from repro.cluster.sim import build_model, plan_digest
from repro.data import TERABYTE_SPEC, DlrmDatasetSpec
from repro.resilience.dispatch import ResilientDispatcher
from repro.resilience.retry import RetryPolicy
from repro.serving import ServingConfig
from repro.serving.batcher import BatchingPolicy
from repro.serving.requests import RequestQueue

#: the migration gates CI enforces (ISSUE 5 acceptance criteria)
P99_INFLATION_CEILING = 2.0    # window p99 vs steady state
MOVE_SLACK = 3                 # tables beyond ceil(tables*R/nodes)

SLA_SECONDS = 0.020
NUM_REQUESTS = 384
RATE_RPS = 2000.0
BATCH = 32
DEADLINE_SECONDS = 0.500
NODES_BEFORE = 4
NODES_AFTER = 5
REPLICATIONS = (1, 2)
STEP_SIZES = (2, 4)

#: stand-in for "down for the whole run" that stays JSON-representable
FOREVER_SECONDS = 1e9


def move_bound(num_tables: int, replication: int, num_nodes: int) -> int:
    """The incrementality ceiling: ring reshards move ~R/N of the tables."""
    return math.ceil(num_tables * replication / num_nodes) + MOVE_SLACK


def _scenario(direction: str, src_nodes: int, dst_nodes: int,
              replication: int, step_size: int,
              plans, arrivals, sizes, dim, uniform, thresholds, config,
              policy, retry, steady_cache: Dict) -> Dict[str, object]:
    """Run one (direction, R, step size) migration cell end to end."""
    key = (direction, replication)
    if key not in steady_cache:
        source = PlanEpoch.create(0, plans[src_nodes],
                                  replication=replication)
        control = EpochControlPlane(source)
        target = control.advance(plans[dst_nodes])
        engine = ScatterGatherEngine(sizes, dim, uniform, thresholds,
                                     source.router, retry=retry)
        steady = engine.serve(config, arrivals, policy)
        steady_cache[key] = (source, target, engine, steady)
    source, target, engine, steady = steady_cache[key]

    migrator = MigrationEngine(source, target, step_size=step_size)
    finding = check_oblivious_migration(migrator)
    report = migrator.execute(engine, config, arrivals, policy)
    after = engine.serve(config, arrivals, policy,
                         owner_map=migrator.final_owner_map())

    inflation = (report.window_p99 / steady.p99 if steady.p99 > 0 else 0.0)
    bound = move_bound(len(sizes), replication,
                       max(src_nodes, dst_nodes))
    zero_loss = (report.shed_requests == 0 and report.unroutable_events == 0
                 and after.shed_requests == 0)
    cell = report.to_dict()
    cell.pop("moves")   # per-move detail lives in the steps already
    cell.update({
        "direction": direction,
        "nodes_before": src_nodes,
        "nodes_after": dst_nodes,
        "audit_divergence": finding.divergence,
        "audit_passed": finding.passed,
        "steady_p99_seconds": steady.p99,
        "after_p99_seconds": after.p99,
        "after_shed_requests": after.shed_requests,
        "p99_inflation": inflation,
        "p99_inflation_ok": inflation <= P99_INFLATION_CEILING,
        "move_bound": bound,
        "incremental": report.tables_moved <= bound,
        "zero_loss": zero_loss,
    })
    return cell


def run_migration(seed: int = 0, spec: DlrmDatasetSpec = TERABYTE_SPEC,
                  num_requests: int = NUM_REQUESTS,
                  rate_rps: float = RATE_RPS, batch: int = BATCH,
                  sla_seconds: float = SLA_SECONDS,
                  nodes_before: int = NODES_BEFORE,
                  nodes_after: int = NODES_AFTER,
                  replications: Sequence[int] = REPLICATIONS,
                  step_sizes: Sequence[int] = STEP_SIZES
                  ) -> Dict[str, object]:
    """Run the full migration sweep; return the JSON-stable report."""
    if nodes_before == nodes_after:
        raise ValueError("a migration needs nodes_before != nodes_after")
    replications = tuple(sorted(set(replications)))
    step_sizes = tuple(sorted(set(step_sizes)))
    config = ServingConfig(batch_size=batch, threads=1,
                           sla_seconds=sla_seconds)
    policy = BatchingPolicy(max_batch_size=batch, max_wait_seconds=0.002)
    retry = RetryPolicy(deadline_seconds=DEADLINE_SECONDS)
    dim = spec.embedding_dim
    sizes = spec.table_sizes
    uniform, thresholds = build_model(spec, batch)
    arrivals = RequestQueue.poisson(num_requests, rate_rps, rng=seed)
    workloads = default_placement_workloads(len(sizes))

    # ------------------------------------------------------------------
    # Per-epoch placement audit: every plan that any epoch will serve
    # passes the exact-mode leakage gate first.
    node_counts = sorted({nodes_before, nodes_after})
    base = RingPlanner(node_counts[0], thresholds, dim, uniform)
    plans: Dict[int, object] = {}
    epoch_audits: List[Dict[str, object]] = []
    audits_passed = True
    for nodes in node_counts:
        planner = base if nodes == node_counts[0] else base.for_nodes(nodes)
        finding = check_oblivious_placement(planner, sizes, config,
                                            workloads=workloads)
        audits_passed = audits_passed and finding.passed
        plans[nodes] = planner.plan(sizes, config)
        epoch_audits.append({
            "num_nodes": nodes,
            "plan_digest": plan_digest(plans[nodes]),
            "audit_divergence": finding.divergence,
            "audit_passed": finding.passed,
        })

    # ------------------------------------------------------------------
    # The sweep: add and remove directions x replication x step size.
    scenarios = [("add", nodes_before, nodes_after),
                 ("remove", nodes_after, nodes_before)]
    cells: List[Dict[str, object]] = []
    steady_cache: Dict = {}
    migration_audit_ok = True
    zero_loss_ok = True
    p99_ok = True
    incremental_ok = True
    for direction, src_nodes, dst_nodes in scenarios:
        for replication in replications:
            if replication > min(src_nodes, dst_nodes):
                continue
            for step_size in step_sizes:
                cell = _scenario(direction, src_nodes, dst_nodes,
                                 replication, step_size, plans, arrivals,
                                 sizes, dim, uniform, thresholds, config,
                                 policy, retry, steady_cache)
                cells.append(cell)
                migration_audit_ok = migration_audit_ok and cell["audit_passed"]
                p99_ok = p99_ok and cell["p99_inflation_ok"]
                incremental_ok = incremental_ok and cell["incremental"]
                if replication >= 2:
                    zero_loss_ok = zero_loss_ok and cell["zero_loss"]

    # ------------------------------------------------------------------
    # Gate: kill one node for the entire migration at R=2 — double-serve
    # plus replica failover must still lose nothing, with breaker state
    # carried across the epoch change by the shared dispatcher.
    failover: Dict[str, object] = {"applicable": False}
    failover_ok = True
    if 2 in replications and min(nodes_before, nodes_after) >= 2:
        source = PlanEpoch.create(0, plans[nodes_before], replication=2)
        dispatcher = ResilientDispatcher(
            num_replicas=max(nodes_before, nodes_after))
        control = EpochControlPlane(source, dispatcher=dispatcher)
        target = control.advance(plans[nodes_after])
        victim = 0
        dispatcher.mark_down(victim, until_seconds=FOREVER_SECONDS,
                             now_seconds=0.0)
        engine = ScatterGatherEngine(sizes, dim, uniform, thresholds,
                                     source.router, retry=retry,
                                     dispatcher=dispatcher)
        migrator = MigrationEngine(source, target, step_size=step_sizes[0])
        killed = migrator.execute(engine, config, arrivals, policy)
        failover_ok = (killed.shed_requests == 0
                       and killed.unroutable_events == 0)
        failover = {
            "applicable": True,
            "nodes_before": nodes_before,
            "nodes_after": nodes_after,
            "replication": 2,
            "step_size": step_sizes[0],
            "victim": victim,
            "shed_requests": killed.shed_requests,
            "unroutable_events": killed.unroutable_events,
            "availability": killed.availability,
            "window_p99_seconds": killed.window_p99,
            "zero_loss": failover_ok,
        }

    # ------------------------------------------------------------------
    # Gate with teeth: the hot-first anti-pattern must be *caught*.
    source = PlanEpoch.create(0, plans[nodes_before],
                              replication=max(replications))
    target = source.successor(plans[nodes_after])
    hot = MigrationEngine(source, target, step_size=1,
                          planner=HotFirstMigrationPlanner())
    negative = audit_migration(hot, name="hot-first-migration",
                               expect_oblivious=False)
    negative_ok = negative.leak_detected

    gates = {
        "per_epoch_placement_audit": audits_passed,
        "migration_audit": migration_audit_ok,
        "zero_loss_r2": zero_loss_ok,
        "p99_inflation": p99_ok,
        "incrementality": incremental_ok,
        "failover_zero_loss": failover_ok,
        "leak_detector_teeth": negative_ok,
    }
    gates["passed"] = all(gates.values())
    return {
        "seed": seed,
        "spec": spec.name,
        "num_requests": num_requests,
        "rate_rps": rate_rps,
        "batch_size": batch,
        "sla_seconds": sla_seconds,
        "deadline_seconds": DEADLINE_SECONDS,
        "nodes_before": nodes_before,
        "nodes_after": nodes_after,
        "replications": list(replications),
        "step_sizes": list(step_sizes),
        "p99_inflation_ceiling": P99_INFLATION_CEILING,
        "move_slack": MOVE_SLACK,
        "epoch_audits": epoch_audits,
        "cells": cells,
        "failover": failover,
        "negative_audit": negative.to_dict(),
        "gates": gates,
    }


def render(report: Dict[str, object]) -> str:
    """Human-readable migration sweep summary."""
    lines = [f"migration sweep (seed={report['seed']}, "
             f"spec={report['spec']}, {report['num_requests']} requests @ "
             f"{report['rate_rps']:.0f} rps, "
             f"{report['nodes_before']}<->{report['nodes_after']} nodes)"]
    for cell in report["cells"]:
        lines.append(
            f"  {cell['direction']:>6} {cell['nodes_before']}->"
            f"{cell['nodes_after']} R={cell['replication']} "
            f"step={cell['step_size']}: moved={cell['tables_moved']} "
            f"(<= {cell['move_bound']})  steps={cell['num_steps']}  "
            f"shed={cell['shed_requests']}  "
            f"window p99={cell['window_p99_seconds'] * 1e3:.3f} ms "
            f"({cell['p99_inflation']:.2f}x steady)")
    failover = report["failover"]
    if failover["applicable"]:
        lines.append(
            f"  failover: killed node {failover['victim']} during the "
            f"{failover['nodes_before']}->{failover['nodes_after']} R=2 "
            f"migration -> shed={failover['shed_requests']} "
            f"{'ZERO LOSS' if failover['zero_loss'] else 'LOSSY'}")
    gates = report["gates"]
    verdicts = "  ".join(f"{name}={'PASS' if ok else 'FAIL'}"
                         for name, ok in gates.items() if name != "passed")
    lines.append(f"  gates: {verdicts}")
    return "\n".join(lines)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Migrate embedding tables between plan epochs against "
                    "live traffic, gated.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=NUM_REQUESTS)
    parser.add_argument("--rate", type=float, default=RATE_RPS)
    parser.add_argument("--nodes-before", type=int, default=NODES_BEFORE,
                        help="fleet size of the source epoch "
                             f"(default {NODES_BEFORE})")
    parser.add_argument("--nodes-after", type=int, default=NODES_AFTER,
                        help="fleet size of the target epoch "
                             f"(default {NODES_AFTER})")
    parser.add_argument("--step-size", type=int, default=None,
                        help="tables moved per step (default: sweep "
                             f"{STEP_SIZES})")
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic migration report")
    args = parser.parse_args(argv)

    step_sizes: Sequence[int] = (STEP_SIZES if args.step_size is None
                                 else (args.step_size,))
    report = run_migration(seed=args.seed, num_requests=args.requests,
                           rate_rps=args.rate,
                           nodes_before=args.nodes_before,
                           nodes_after=args.nodes_after,
                           step_sizes=step_sizes)
    print(render(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report["gates"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
