"""The cache-level leakage audit: residency must ignore the request stream.

Cache occupancy is observable state — which buffers exist, which decoder
weights are materialised, which tables are pinned — so a cache whose
admission or eviction decisions key on observed indices leaks exactly the
access pattern the paper's defences hide. This module enforces the
:class:`~repro.cache.policy.SecretIndependentCache` contract the same way
:mod:`repro.cluster.placement` enforces workload-oblivious sharding: every
policy records its decisions in the ``cache.admission``
:class:`~repro.oblivious.trace.MemoryTracer` region, the policy is replayed
across contrasting skew profiles (the *secret* is the observed index
trace), and the :class:`~repro.telemetry.audit.LeakageAuditor` compares the
decision traces in exact mode. A compliant policy produces the identical
trace for every profile; a workload-keyed policy — the in-tree
:class:`~repro.cache.policy.IndexKeyedLRUCache` negative control — does
not, and :func:`check_oblivious_cache` raises :class:`CacheLeakageError`.

The replay streams each secret through the full cache lifecycle: a plan
(static admission, with the secret offered as the ``workload`` argument a
frequency-keyed policy would want), per-batch lookups carrying the secret's
indices, and a generation roll (eviction). Honest policies read none of it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.costmodel.latency import DLRM_DHE_UNIFORM_16
from repro.costmodel.platform import DEFAULT_PLATFORM
from repro.embedding.hybrid import TECHNIQUE_DHE, TECHNIQUE_SCAN
from repro.hybrid.allocator import FeatureAllocation
from repro.oblivious.trace import MemoryTracer
from repro.serving.backends import resolve_backend
from repro.serving.engine import ServingConfig
from repro.telemetry.audit import (
    MODE_EXACT,
    AuditFinding,
    AuditSubject,
    LeakageAuditor,
)
from repro.utils.validation import check_positive

from repro.cache.policy import (
    BatchMetadata,
    CachePricer,
    SecretIndependentCache,
)

CacheFactory = Callable[[Optional[MemoryTracer]], SecretIndependentCache]

#: table sizes of the fixed audit model (two scan-sized, two DHE-sized)
AUDIT_TABLE_SIZES = (64, 256, 4096, 65536)
AUDIT_SCAN_THRESHOLD = 1024
AUDIT_BATCH_SIZE = 8


def audit_allocations(
        table_sizes: Sequence[int] = AUDIT_TABLE_SIZES,
        scan_threshold: int = AUDIT_SCAN_THRESHOLD
) -> List[FeatureAllocation]:
    """The fixed mixed scan/DHE allocation every cache replay plans against."""
    return [FeatureAllocation(index, size,
                              TECHNIQUE_SCAN if size <= scan_threshold
                              else TECHNIQUE_DHE)
            for index, size in enumerate(table_sizes)]


def audit_pricer(batch_size: int = AUDIT_BATCH_SIZE,
                 embedding_dim: int = 16) -> CachePricer:
    """A modelled-cost pricer over the fixed audit model."""
    backend = resolve_backend("modelled", DLRM_DHE_UNIFORM_16,
                              DEFAULT_PLATFORM)
    return CachePricer(backend=backend, embedding_dim=embedding_dim,
                       batch_size=batch_size, threads=1, varied=True,
                       overhead_seconds=0.0,
                       uniform_shape=DLRM_DHE_UNIFORM_16,
                       platform=DEFAULT_PLATFORM)


def default_cache_workloads(num_rows: int = 4096,
                            length: int = 64) -> List[Sequence[int]]:
    """Contrasting observed-index profiles: hammer the first row, hammer
    the last, and a uniform sweep — the same maximum-contrast shape the
    standing five-subject audit and the placement audit use."""
    check_positive("num_rows", num_rows)
    check_positive("length", length)
    return [
        [0] * length,
        [num_rows - 1] * length,
        [index % num_rows for index in range(length)],
    ]


class CacheLeakageError(RuntimeError):
    """A cache's admission/eviction decisions depended on observed indices."""


def replay_cache(cache: SecretIndependentCache, secret: Sequence[int],
                 allocations: Optional[Sequence[FeatureAllocation]] = None,
                 pricer: Optional[CachePricer] = None) -> None:
    """One full cache lifecycle against one observed-index secret.

    Plans against the fixed audit model with the secret offered as
    ``workload``, streams the secret through fixed-shape batches (indices
    exposed so a leaky policy *can* key on them), and rolls two
    generations so eviction decisions land in the trace too. Shared by
    the audit subject and the bench's skew-invariance probe.
    """
    if allocations is None:
        allocations = audit_allocations()
    if pricer is None:
        pricer = audit_pricer()
    config = ServingConfig(batch_size=pricer.batch_size)
    cache.plan(allocations, config, pricer, workload=secret)
    batch = pricer.batch_size
    for start in range(0, len(secret), batch):
        chunk = secret[start:start + batch]
        meta = BatchMetadata(epoch=start // (batch * 4),
                             index_in_epoch=(start // batch) % 4,
                             size=batch)
        cache.batch_seconds(meta, indices=chunk)
    cache.advance_generation()
    cache.advance_generation()


def cache_subject(factory: CacheFactory,
                  workloads: Optional[Sequence[Sequence[int]]] = None,
                  allocations: Optional[Sequence[FeatureAllocation]] = None,
                  pricer: Optional[CachePricer] = None,
                  name: str = "cache",
                  expect_oblivious: bool = True) -> AuditSubject:
    """Wrap a cache factory as an :class:`AuditSubject`.

    Each replay builds a fresh traced cache from ``factory``, plans it
    against the fixed audit model with the secret offered as ``workload``,
    streams the secret through fixed-shape batches (indices exposed so a
    leaky policy *can* key on them), and rolls one generation so eviction
    decisions land in the trace too.
    """
    if workloads is None:
        workloads = default_cache_workloads()

    def run(tracer: MemoryTracer, secret: Sequence[int]) -> None:
        replay_cache(factory(tracer), secret, allocations, pricer)

    return AuditSubject(name, run, workloads, mode=MODE_EXACT,
                        expect_oblivious=expect_oblivious)


def audit_cache(factory: CacheFactory,
                workloads: Optional[Sequence[Sequence[int]]] = None,
                auditor: Optional[LeakageAuditor] = None,
                name: str = "cache",
                expect_oblivious: bool = True) -> AuditFinding:
    """Replay a cache policy across skew profiles; return the finding."""
    if auditor is None:
        auditor = LeakageAuditor()
    return auditor.audit(cache_subject(factory, workloads, name=name,
                                       expect_oblivious=expect_oblivious))


def check_oblivious_cache(factory: CacheFactory,
                          workloads: Optional[Sequence[Sequence[int]]] = None,
                          auditor: Optional[LeakageAuditor] = None,
                          name: str = "cache") -> AuditFinding:
    """Gate: raise :class:`CacheLeakageError` if occupancy is workload-keyed.

    This is the loud failure the cache bench and CI run before any policy
    is allowed to serve traffic.
    """
    finding = audit_cache(factory, workloads, auditor=auditor, name=name)
    if finding.leak_detected:
        raise CacheLeakageError(
            f"cache {name!r} admission depends on the observed request "
            f"stream (trace divergence {finding.divergence:.3f}); "
            f"index-keyed caching is a side channel")
    return finding
