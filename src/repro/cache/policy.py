"""Secret-independent caching: admission keyed on public metadata only.

A hot-embedding cache keyed on *observed indices* is exactly the memory
side channel the paper closes — cache occupancy becomes a function of
secret inputs, so the protected baseline forgoes caching entirely and pays
full DHE/ORAM cost on every lookup. Reuse is nevertheless safe whenever
**residency is a function of public metadata only**. This module provides
the :class:`SecretIndependentCache` protocol and three admission policies
that satisfy it:

* :class:`StaticResidencyCache` — whole-table residency decided by the
  planner from static table metadata (footprint, technique) before any
  request arrives; a resident table is served from its pinned private
  copy, the same residency argument the paper already makes for the DHE
  decoder weights;
* :class:`DecoderWeightCache` — DHE decoder weights and captured lazy
  graphs are public model state; share them across requests, engines and
  plan epochs instead of re-materialising them per serve;
* :class:`BatchResultCache` — batch-level result sharing whose occupancy
  depends only on public arrival metadata (batch shape, arrival epoch,
  batch sequence number), never on which indices were requested; hedged
  mirrors and replica double-serves of the *same scheduled batch* reuse
  the shared result buffer.

Every admission/eviction decision is recorded in the ``cache.admission``
:class:`~repro.oblivious.trace.MemoryTracer` region so the
:class:`~repro.telemetry.audit.LeakageAuditor` can replay a policy across
contrasting skew profiles (:mod:`repro.cache.audit`): a compliant policy
produces the identical decision trace for every workload.
:class:`IndexKeyedLRUCache` — the "natural" hot-index LRU — is kept in
tree as the caught-by-construction negative control; never serve traffic
with it.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.costmodel.latency import dhe_varied_shape
from repro.costmodel.memory import dhe_bytes, table_bytes
from repro.embedding.hybrid import TECHNIQUE_SCAN
from repro.oblivious.trace import READ, WRITE, MemoryTracer
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive, check_positive_finite

#: tracer region every admission/eviction/lookup decision is recorded under
CACHE_REGION = "cache.admission"

#: the admission policies :class:`CachePolicy` can build
CACHE_KINDS = ("static-residency", "decoder-reuse", "batch-shared")

#: per-decoder fixed fetch overhead (page-in + pointer swizzle), seconds
DECODER_FETCH_OVERHEAD_SECONDS = 5e-5


def _stable_address(key: Hashable) -> int:
    """Deterministic int address for a public metadata key.

    ``hash()`` is process-randomised for strings, so trace addresses go
    through SHA-256 of the key's repr — stable across runs and processes.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass
class CacheStats:
    """Counters of one cache instance (cumulative across serves)."""

    hits: int = 0
    misses: int = 0
    admissions: int = 0
    evictions: int = 0
    bytes_resident: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Recomputed from the counters — never an average of averages."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.admissions,
                          self.evictions, self.bytes_resident)

    def to_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "admissions": self.admissions,
            "evictions": self.evictions,
            "bytes_resident": self.bytes_resident,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class BatchMetadata:
    """Public arrival metadata of one scheduled batch.

    This is *everything* an admission policy may key a per-batch decision
    on: the arrival epoch the batch started in, its sequence number within
    that epoch, and the padded batch shape. No field is derived from the
    requested indices.
    """

    epoch: int
    index_in_epoch: int
    size: int

    def key(self) -> Tuple[int, int, int]:
        return (self.epoch, self.index_in_epoch, self.size)


@dataclass(frozen=True)
class CachePricer:
    """Cost-model access the admission policies price decisions through.

    Wraps the engine's execution backend plus the live configuration, so
    policies ask "what does this feature cost, resident vs not?" through
    the same seam everything else prices latency with.
    """

    backend: object                 # any ExecutionBackend (duck-typed)
    embedding_dim: int
    batch_size: int
    threads: int = 1
    varied: bool = True
    overhead_seconds: float = 0.0   # dense MLP stack per batch
    uniform_shape: Optional[object] = None
    platform: Optional[object] = None

    # ------------------------------------------------------------------
    def _dhe_technique(self) -> str:
        return "dhe-varied" if self.varied else "dhe-uniform"

    def feature_seconds(self, allocation) -> float:
        """Full (uncached) per-batch cost of one allocated feature."""
        technique = (TECHNIQUE_SCAN
                     if allocation.technique == TECHNIQUE_SCAN
                     else self._dhe_technique())
        return self.backend.technique_latency(
            technique, allocation.table_size, self.embedding_dim,
            self.batch_size, self.threads)

    def resident_seconds(self, allocation) -> float:
        """Per-batch cost of a whole-table-resident feature.

        A pinned table is served by direct row fetches from the private
        resident copy — the paper's threat model already assumes accesses
        inside the private region are unobservable (that is the entire DHE
        decoder-weight argument), so residency trades footprint for the
        scan/DHE recomputation cost.
        """
        return self.backend.technique_latency(
            "lookup", allocation.table_size, self.embedding_dim,
            self.batch_size, self.threads)

    def batch_seconds(self, allocations: Sequence) -> float:
        """Full per-batch cost of the whole allocation (incl. overhead)."""
        return self.overhead_seconds + sum(self.feature_seconds(a)
                                           for a in allocations)

    def shared_read_seconds(self, allocations: Sequence) -> float:
        """Per-batch cost of reading an already-shared result buffer."""
        rows = max(1, self.batch_size)
        per_feature = self.backend.technique_latency(
            "lookup", rows, self.embedding_dim, self.batch_size,
            self.threads)
        return self.overhead_seconds + per_feature * max(1, len(allocations))

    # ------------------------------------------------------------------
    def footprint_bytes(self, allocation) -> int:
        """Resident footprint of one feature's chosen representation."""
        if allocation.technique == TECHNIQUE_SCAN or self.uniform_shape is None:
            return table_bytes(allocation.table_size, self.embedding_dim)
        shape = (dhe_varied_shape(allocation.table_size, self.uniform_shape)
                 if self.varied else self.uniform_shape)
        return dhe_bytes(shape)

    def table_footprint_bytes(self, allocation) -> int:
        """Footprint of the *materialised whole table* (what pinning costs).

        Whole-table residency serves exact rows by direct fetch, so it must
        pay full table bytes even for a DHE-allocated feature — pinning
        only the (small) decoder would not make row fetches free.
        """
        return table_bytes(allocation.table_size, self.embedding_dim)

    def decoder_setup_seconds(self, allocation) -> float:
        """One-off cost of materialising one decoder's weights."""
        if self.uniform_shape is None:
            return DECODER_FETCH_OVERHEAD_SECONDS
        shape = (dhe_varied_shape(allocation.table_size, self.uniform_shape)
                 if self.varied else self.uniform_shape)
        bandwidth = getattr(self.platform, "scan_dram_bw", 8.8e9)
        return dhe_bytes(shape) / bandwidth + DECODER_FETCH_OVERHEAD_SECONDS

    def result_bytes(self, num_features: int = 1) -> int:
        """Bytes of one shared full-batch result buffer."""
        element = getattr(self.platform, "element_bytes", 4)
        return self.batch_size * self.embedding_dim * element * num_features


class SecretIndependentCache:
    """Protocol for admission policies whose occupancy ignores secrets.

    Lifecycle per serve: the engine calls :meth:`plan` once before any
    request is executed (static admission happens here), schedules batches
    at :meth:`schedule_seconds`, then calls :meth:`batch_seconds` once per
    executed batch with that batch's *public* metadata. ``workload`` and
    ``indices`` arguments exist so the leakage audit can *try* to influence
    a policy; a compliant policy never reads them.

    Subclasses record every admission/eviction/lookup decision through
    :meth:`_record` (the ``cache.admission`` tracer region) — that trace is
    what :func:`repro.cache.audit.check_oblivious_cache` replays across
    contrasting skew profiles.
    """

    name: str = "abstract"
    #: arrival-epoch length the engine derives :class:`BatchMetadata` from;
    #: ``inf`` collapses every batch into epoch 0.
    epoch_seconds: float = math.inf

    def __init__(self, tracer: Optional[MemoryTracer] = None) -> None:
        self.tracer = tracer
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _record(self, op: str, address: int) -> None:
        if self.tracer is not None:
            self.tracer.record(op, CACHE_REGION, address)

    def _count(self, metric: str, amount: int = 1) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(f"cache.{metric}_total").inc(amount)
            registry.gauge("cache.bytes_resident").set(
                self.stats.bytes_resident)

    # ------------------------------------------------------------------
    def plan(self, allocations: Sequence, config, pricer: CachePricer,
             workload: Optional[Sequence[int]] = None) -> None:
        """Static admission before any request arrives (traced)."""
        raise NotImplementedError

    def schedule_seconds(self) -> float:
        """Per-batch service time the batcher schedules with (constant)."""
        raise NotImplementedError

    def batch_seconds(self, meta: BatchMetadata,
                      indices: Optional[Sequence[int]] = None) -> float:
        """Executed service time of one batch; records hits/misses."""
        raise NotImplementedError

    def serve_setup_seconds(self) -> float:
        """One-off setup cost charged to the serve's first batch."""
        return 0.0

    def advance_generation(self) -> None:
        """A new arrival generation began (e.g. a plan epoch rolled).

        Policies with time-scoped occupancy evict here; the default keeps
        everything (whole-table residency and decoder weights are
        epoch-independent).
        """


class StaticResidencyCache(SecretIndependentCache):
    """Whole-table residency decided from static metadata at plan time.

    Tables are admitted smallest-footprint-first (feature index as the
    tie-break — both static quantities) until the byte budget is spent.
    Occupancy never changes while traffic flows: per-batch lookups hit the
    resident features and miss the rest, in the same proportion for every
    workload.
    """

    name = "static-residency"

    def __init__(self, budget_bytes: int,
                 tracer: Optional[MemoryTracer] = None) -> None:
        super().__init__(tracer)
        check_positive("budget_bytes", budget_bytes)
        self.budget_bytes = budget_bytes
        self._resident: Tuple[int, ...] = ()
        self._hit_features = 0
        self._miss_features = 0
        self._service_seconds = 0.0
        self._planned = False

    @property
    def resident_tables(self) -> Tuple[int, ...]:
        return self._resident

    def plan(self, allocations: Sequence, config, pricer: CachePricer,
             workload: Optional[Sequence[int]] = None) -> None:
        """Pin tables by footprint; ``workload`` is deliberately unread."""
        order = sorted(allocations,
                       key=lambda a: (pricer.table_footprint_bytes(a),
                                      a.feature_index))
        resident: List[int] = []
        spent = 0
        for allocation in order:
            footprint = pricer.table_footprint_bytes(allocation)
            admitted = spent + footprint <= self.budget_bytes
            if admitted:
                resident.append(allocation.feature_index)
                spent += footprint
            # One event per admission decision, in deterministic order:
            # the address encodes (feature, verdict).
            self._record(WRITE,
                         allocation.feature_index * 2 + int(admitted))
        self._resident = tuple(sorted(resident))
        resident_set = set(self._resident)
        service = pricer.overhead_seconds
        for allocation in allocations:
            if allocation.feature_index in resident_set:
                service += pricer.resident_seconds(allocation)
            else:
                service += pricer.feature_seconds(allocation)
        self._service_seconds = service
        self._hit_features = len(resident_set)
        self._miss_features = len(allocations) - len(resident_set)
        if not self._planned:
            self.stats.admissions += len(resident_set)
            self.stats.bytes_resident = spent
            self._count("admissions", len(resident_set))
            self._planned = True

    def schedule_seconds(self) -> float:
        return self._service_seconds

    def batch_seconds(self, meta: BatchMetadata,
                      indices: Optional[Sequence[int]] = None) -> float:
        self.stats.hits += self._hit_features
        self.stats.misses += self._miss_features
        self._count("hits", self._hit_features)
        self._count("misses", self._miss_features)
        # The per-batch lookup touches only the (public) batch metadata.
        self._record(READ, _stable_address(meta.key()))
        return self._service_seconds


class DecoderWeightCache(SecretIndependentCache):
    """DHE decoder weights + captured graphs shared across serves/epochs.

    The decoder MLP weights (and the lazy runtime's captured graphs) are
    public model state — identical for every request — so sharing one
    materialised copy across engines, backends and plan epochs leaks
    nothing. Each plan fetches the decoders its allocation needs: a miss
    pays the (modelled) materialisation cost once; every later serve hits.

    The same instance also backs the measured backends: pass it as
    ``MeasuredBackend(weight_cache=...)`` to share live generator objects,
    and :meth:`shared_runtime` hands the lazy backend one process-wide
    :class:`~repro.lazy.NumpyRuntime` so captured graphs persist across
    backend instances.
    """

    name = "decoder-reuse"

    def __init__(self, tracer: Optional[MemoryTracer] = None) -> None:
        super().__init__(tracer)
        self._decoders: Dict[Hashable, int] = {}     # key -> footprint bytes
        self._generators: Dict[Hashable, object] = {}
        self._runtime: Optional[object] = None
        self._service_seconds = 0.0
        self._setup_seconds = 0.0

    def plan(self, allocations: Sequence, config, pricer: CachePricer,
             workload: Optional[Sequence[int]] = None) -> None:
        self._service_seconds = pricer.batch_seconds(allocations)
        setup = 0.0
        for allocation in allocations:
            if allocation.technique == TECHNIQUE_SCAN:
                continue
            key = ("decoder", allocation.table_size, pricer.embedding_dim,
                   pricer.varied)
            hit = key in self._decoders
            if hit:
                self.stats.hits += 1
                self._count("hits")
            else:
                footprint = pricer.footprint_bytes(allocation)
                self._decoders[key] = footprint
                setup += pricer.decoder_setup_seconds(allocation)
                self.stats.misses += 1
                self.stats.admissions += 1
                self.stats.bytes_resident += footprint
                self._count("misses")
                self._count("admissions")
            # Decision address encodes (decoder identity, verdict) — both
            # static metadata.
            self._record(WRITE, _stable_address(key) * 2 + int(hit))
        self._setup_seconds = setup

    def schedule_seconds(self) -> float:
        return self._service_seconds

    def batch_seconds(self, meta: BatchMetadata,
                      indices: Optional[Sequence[int]] = None) -> float:
        self._record(READ, _stable_address(meta.key()))
        return self._service_seconds

    def serve_setup_seconds(self) -> float:
        """Materialisation cost of this plan's decoder misses (one-off)."""
        return self._setup_seconds

    # ------------------------------------------------------------------
    # Live-object sharing for the measured backends
    # ------------------------------------------------------------------
    def generator(self, key: Hashable, builder: Callable[[], object]):
        """Shared generator store (mirrors ``NumpyRuntime.captured``)."""
        generator = self._generators.get(key)
        hit = generator is not None
        if not hit:
            generator = builder()
            self._generators[key] = generator
            footprint = getattr(generator, "footprint_bytes", None)
            footprint = int(footprint()) if callable(footprint) else 0
            self.stats.misses += 1
            self.stats.admissions += 1
            self.stats.bytes_resident += footprint
            self._count("misses")
            self._count("admissions")
        else:
            self.stats.hits += 1
            self._count("hits")
        self._record(WRITE, _stable_address(key) * 2 + int(hit))
        return generator

    def generators_built(self) -> int:
        return len(self._generators)

    def shared_runtime(self):
        """One lazy runtime (and so one captured-graph cache) per policy."""
        if self._runtime is None:
            from repro.lazy import NumpyRuntime

            self._runtime = NumpyRuntime()
        return self._runtime


class BatchResultCache(SecretIndependentCache):
    """Batch-level result sharing keyed on public arrival metadata.

    The first execution of a scheduled batch admits one shared result
    buffer under the key ``(generation, epoch, sequence, shape)`` — all
    public quantities fixed by the arrival trace and the configuration.
    Re-executions of the *same* scheduled batch (a hedged mirror, a
    replica double-serve during migration) hit the buffer and pay only the
    shared read. Rolling to a new generation evicts every buffer of older
    generations; which buffers exist therefore never depends on which
    indices were requested.
    """

    name = "batch-shared"

    def __init__(self, epoch_seconds: float = 0.05, keep_generations: int = 1,
                 tracer: Optional[MemoryTracer] = None) -> None:
        super().__init__(tracer)
        check_positive_finite("epoch_seconds", epoch_seconds)
        check_positive("keep_generations", keep_generations)
        self.epoch_seconds = epoch_seconds
        self.keep_generations = keep_generations
        self._generation = 0
        self._entries: "OrderedDict[Tuple, int]" = OrderedDict()
        self._service_seconds = 0.0
        self._hit_seconds = 0.0
        self._entry_bytes = 0

    def plan(self, allocations: Sequence, config, pricer: CachePricer,
             workload: Optional[Sequence[int]] = None) -> None:
        self._service_seconds = pricer.batch_seconds(allocations)
        self._hit_seconds = min(self._service_seconds,
                                pricer.shared_read_seconds(allocations))
        self._entry_bytes = pricer.result_bytes(len(allocations))

    def schedule_seconds(self) -> float:
        # Conservative: the batcher reserves the full slot; hits simply
        # return early, so queueing is never understated.
        return self._service_seconds

    def batch_seconds(self, meta: BatchMetadata,
                      indices: Optional[Sequence[int]] = None) -> float:
        key = (self._generation,) + meta.key()
        if key in self._entries:
            self.stats.hits += 1
            self._count("hits")
            self._record(READ, _stable_address(key))
            return self._hit_seconds
        self._entries[key] = self._entry_bytes
        self.stats.misses += 1
        self.stats.admissions += 1
        self.stats.bytes_resident += self._entry_bytes
        self._count("misses")
        self._count("admissions")
        self._record(WRITE, _stable_address(key))
        return self._service_seconds

    def advance_generation(self) -> None:
        """Roll the arrival generation; evict everything now out of scope."""
        self._generation += 1
        floor = self._generation - self.keep_generations
        for key in [k for k in self._entries if k[0] < floor]:
            freed = self._entries.pop(key)
            self.stats.evictions += 1
            self.stats.bytes_resident -= freed
            self._count("evictions")
            self._record(WRITE, _stable_address(key))

    def entries(self) -> int:
        return len(self._entries)


class IndexKeyedLRUCache(SecretIndependentCache):
    """The anti-pattern: a hot-embedding LRU keyed on observed indices.

    This is the "natural" cache a throughput-minded engineer reaches for —
    and it is exactly the side channel the paper closes: which rows are
    resident (and which get evicted) is a function of the secret request
    stream, so its admission trace diverges between skew profiles and the
    :class:`~repro.telemetry.audit.LeakageAuditor` flags it. Kept in tree
    only as the negative control for :mod:`repro.cache.audit` and its
    regression tests; :class:`CachePolicy` refuses to build it and it must
    never serve traffic.
    """

    name = "index-keyed-lru"

    def __init__(self, capacity_rows: int,
                 tracer: Optional[MemoryTracer] = None) -> None:
        super().__init__(tracer)
        check_positive("capacity_rows", capacity_rows)
        self.capacity_rows = capacity_rows
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self._service_seconds = 0.0
        self._row_bytes = 0

    def plan(self, allocations: Sequence, config, pricer: CachePricer,
             workload: Optional[Sequence[int]] = None) -> None:
        self._service_seconds = pricer.batch_seconds(allocations)
        element = getattr(pricer.platform, "element_bytes", 4)
        self._row_bytes = pricer.embedding_dim * element

    def schedule_seconds(self) -> float:
        return self._service_seconds

    def batch_seconds(self, meta: BatchMetadata,
                      indices: Optional[Sequence[int]] = None) -> float:
        if indices is None:
            return self._service_seconds
        for index in indices:
            index = int(index)
            if index in self._lru:
                self._lru.move_to_end(index)
                self.stats.hits += 1
                # The leak: the decision trace addresses *are* the secret.
                self._record(READ, index)
                continue
            self._lru[index] = None
            self.stats.misses += 1
            self.stats.admissions += 1
            self.stats.bytes_resident += self._row_bytes
            self._record(WRITE, index)
            if len(self._lru) > self.capacity_rows:
                victim, _ = self._lru.popitem(last=False)
                self.stats.evictions += 1
                self.stats.bytes_resident -= self._row_bytes
                self._record(WRITE, victim)
        return self._service_seconds


@dataclass(frozen=True)
class CachePolicy:
    """Opt-in cache configuration for engines and servers.

    ``kind`` selects one of the three secret-independent admission
    policies (:data:`CACHE_KINDS`); the remaining fields parameterise it.
    The index-keyed LRU is deliberately *not* buildable here — it exists
    only as the audit's negative control.
    """

    kind: str
    budget_bytes: int = 64 * 1024 * 1024      # static-residency pin budget
    epoch_seconds: float = 0.05               # batch-shared arrival epoch
    keep_generations: int = 1                 # batch-shared retention

    def __post_init__(self) -> None:
        if self.kind not in CACHE_KINDS:
            raise ValueError(
                f"unknown cache kind {self.kind!r}; known: "
                + ", ".join(repr(kind) for kind in CACHE_KINDS)
                + " (the index-keyed LRU is a side channel and cannot be "
                  "served)")
        check_positive("budget_bytes", self.budget_bytes)
        check_positive_finite("epoch_seconds", self.epoch_seconds)
        check_positive("keep_generations", self.keep_generations)

    def build(self, tracer: Optional[MemoryTracer] = None
              ) -> SecretIndependentCache:
        """Instantiate the configured policy (optionally traced)."""
        if self.kind == "static-residency":
            return StaticResidencyCache(self.budget_bytes, tracer=tracer)
        if self.kind == "decoder-reuse":
            return DecoderWeightCache(tracer=tracer)
        return BatchResultCache(epoch_seconds=self.epoch_seconds,
                                keep_generations=self.keep_generations,
                                tracer=tracer)


CacheLike = object  # CachePolicy | SecretIndependentCache


def resolve_cache(cache: Optional[CacheLike],
                  tracer: Optional[MemoryTracer] = None
                  ) -> Optional[SecretIndependentCache]:
    """Turn a :class:`CachePolicy` or cache instance into a cache instance.

    Engines accept either: a policy builds a private instance, while a
    pre-built instance is shared verbatim (how the bench shares one
    decoder-weight cache across per-epoch engines).
    """
    if cache is None:
        return None
    if isinstance(cache, CachePolicy):
        return cache.build(tracer=tracer)
    if isinstance(cache, SecretIndependentCache):
        return cache
    required = ("plan", "schedule_seconds", "batch_seconds")
    if all(hasattr(cache, method) for method in required):
        return cache  # duck-typed policies pass through, like backends do
    raise TypeError(f"not a cache policy or cache instance: {cache!r}")
