"""``python -m repro.cache.bench`` — the gated oblivious-caching sim.

Serves the Fig 13 Terabyte workload through the
:class:`~repro.serving.engine.ExecutionEngine` for ``EPOCHS`` plan epochs,
each epoch executing the same Poisson arrival trace twice (a primary serve
plus a hedged mirror — the double-serve pattern the migration engine
already uses), under four scenarios: no cache, static whole-table
residency, DHE decoder-weight reuse (cold-per-epoch vs shared-across-
epochs), and batch-level result sharing. Five gates with teeth:

* **latency_improvement** — static residency beats the uncached baseline
  on merged p50 *and* p99, and batch-result sharing beats it on p50 (its
  mirror serves hit; the primary misses bound the tail);
* **decoder_reuse** — sharing one decoder-weight cache across epochs
  admits each decoder exactly once (cold re-materialises per epoch) and
  spends strictly less busy time;
* **skew_invariance** — every policy's full counter set (hits, misses,
  admissions, evictions, bytes resident) is identical across the
  hot-head / hot-tail / uniform index profiles: occupancy never follows
  the secret;
* **audit_oblivious** — all three policies pass the exact-mode
  :class:`~repro.telemetry.audit.LeakageAuditor` replay of
  :mod:`repro.cache.audit`;
* **leak_detector_teeth** — the in-tree
  :class:`~repro.cache.policy.IndexKeyedLRUCache` negative control is
  flagged, and :func:`~repro.cache.audit.check_oblivious_cache` raises
  :class:`~repro.cache.audit.CacheLeakageError` on it.

The latency win is index-independent by construction — the same numbers
hold on every skew profile, which is the whole point: skewed production
traffic gets the cache win *without* the cache learning the skew.

The JSON report contains only modelled, seed-determined quantities — two
runs with the same seed produce byte-identical files (CI ``cmp``-gates
this). Wall-clock is printed to stdout as information only.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence

from repro.cache.audit import (
    CacheLeakageError,
    cache_subject,
    check_oblivious_cache,
    default_cache_workloads,
    replay_cache,
)
from repro.cache.policy import (
    BatchResultCache,
    CachePolicy,
    DecoderWeightCache,
    IndexKeyedLRUCache,
    SecretIndependentCache,
    StaticResidencyCache,
)
from repro.costmodel import DLRM_DHE_UNIFORM_16, DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC, DlrmDatasetSpec
from repro.oblivious.trace import MemoryTracer
from repro.serving.batcher import BatchingPolicy
from repro.serving.engine import ExecutionEngine, ServingConfig
from repro.serving.report import ServingReport
from repro.serving.requests import RequestQueue
from repro.telemetry.audit import LeakageAuditor

NUM_REQUESTS = 512
RATE_RPS = 2000.0
BATCH = 32
EPOCHS = 3
#: pin budget of the static-residency scenario
BUDGET_BYTES = 64 * 1024 * 1024
#: arrival-epoch length of the batch-shared scenario
EPOCH_SECONDS = 0.05
#: capacity of the negative-control index LRU (rows)
LRU_CAPACITY_ROWS = 256

SKEW_NAMES = ("hot-head", "hot-tail", "uniform")


def build_model(spec: DlrmDatasetSpec, batch: int):
    """(uniform shape, thresholds) exactly as the cluster sim prices them."""
    from repro.hybrid import OfflineProfiler, build_threshold_database

    dim = spec.embedding_dim
    uniform = DLRM_DHE_UNIFORM_16 if dim == 16 else DLRM_DHE_UNIFORM_64
    profiler = OfflineProfiler(uniform)
    profile = profiler.profile(techniques=("scan", "dhe-varied"),
                               dims=(dim,), batches=(batch,),
                               threads_list=(1,))
    thresholds = build_threshold_database(
        profile, dhe_technique="dhe-varied", dims=(dim,), batches=(batch,),
        threads_list=(1,))
    return uniform, thresholds


def _summary(name: str, reports: Sequence[ServingReport],
             cache: Optional[SecretIndependentCache] = None
             ) -> Dict[str, object]:
    merged = ServingReport.merge(list(reports))
    summary: Dict[str, object] = {
        "name": name,
        "num_requests": merged.num_requests,
        "num_batches": merged.num_batches,
        "p50_seconds": merged.p50,
        "p95_seconds": merged.p95,
        "p99_seconds": merged.p99,
        "busy_seconds": merged.batch_time_total,
        "throughput_rps": merged.throughput(),
        "cache_hits": merged.cache_hits,
        "cache_misses": merged.cache_misses,
        "cache_hit_rate": merged.cache_hit_rate,
    }
    if cache is not None:
        summary["cache"] = cache.stats.to_dict()
    return summary


def run_bench(seed: int = 0, spec: DlrmDatasetSpec = TERABYTE_SPEC,
              num_requests: int = NUM_REQUESTS, rate_rps: float = RATE_RPS,
              batch: int = BATCH, epochs: int = EPOCHS) -> Dict[str, object]:
    """The full scenario sweep + gates; deterministic for a given seed."""
    dim = spec.embedding_dim
    sizes = spec.table_sizes
    uniform, thresholds = build_model(spec, batch)
    config = ServingConfig(batch_size=batch, threads=1)
    policy = BatchingPolicy(max_batch_size=batch, max_wait_seconds=0.002)
    # One arrival trace for every scenario and epoch: scenarios differ
    # only in admission policy, epochs model successive plan epochs that
    # replay comparable traffic.
    arrivals = RequestQueue.poisson(num_requests, rate_rps, rng=seed)

    def engine(cache=None) -> ExecutionEngine:
        return ExecutionEngine(sizes, dim, uniform, thresholds, varied=True,
                               cache=cache)

    # --- no-cache baseline ---------------------------------------------
    base_engine = engine()
    base_reports = [base_engine.serve(config, arrivals, policy)
                    for _ in range(2 * epochs)]

    # --- static whole-table residency ----------------------------------
    residency = StaticResidencyCache(BUDGET_BYTES)
    residency_engine = engine(cache=residency)
    residency_reports = [residency_engine.serve(config, arrivals, policy)
                         for _ in range(2 * epochs)]

    # --- decoder-weight reuse: cold per epoch vs shared across epochs ---
    cold_reports: List[ServingReport] = []
    cold_admissions = 0
    for _ in range(epochs):
        cold_cache = DecoderWeightCache()
        cold_engine = engine(cache=cold_cache)
        cold_reports.append(cold_engine.serve(config, arrivals, policy))
        cold_reports.append(cold_engine.serve(config, arrivals, policy))
        cold_admissions += cold_cache.stats.admissions
    shared_cache = DecoderWeightCache()
    shared_reports: List[ServingReport] = []
    for _ in range(epochs):
        shared_engine = engine(cache=shared_cache)  # fresh engine, one cache
        shared_reports.append(shared_engine.serve(config, arrivals, policy))
        shared_reports.append(shared_engine.serve(config, arrivals, policy))

    # --- batch-level result sharing (primary + hedged mirror) -----------
    batch_cache = BatchResultCache(epoch_seconds=EPOCH_SECONDS,
                                   keep_generations=1)
    batch_engine = engine(cache=batch_cache)
    batch_reports: List[ServingReport] = []
    for _ in range(epochs):
        batch_reports.append(batch_engine.serve(config, arrivals, policy))
        batch_reports.append(batch_engine.serve(config, arrivals, policy))
        batch_cache.advance_generation()

    scenarios = [
        _summary("baseline", base_reports),
        _summary("static-residency", residency_reports, residency),
        _summary("decoder-reuse-cold", cold_reports),
        _summary("decoder-reuse-shared", shared_reports, shared_cache),
        _summary("batch-shared", batch_reports, batch_cache),
    ]
    by_name = {scenario["name"]: scenario for scenario in scenarios}

    # --- gate: latency improvement --------------------------------------
    base = by_name["baseline"]
    latency_ok = (
        by_name["static-residency"]["p50_seconds"] < base["p50_seconds"]
        and by_name["static-residency"]["p99_seconds"] < base["p99_seconds"]
        and by_name["batch-shared"]["p50_seconds"] < base["p50_seconds"])

    # --- gate: decoder reuse (counted builds, not wall-clock) ------------
    _, num_dhe = residency_engine.allocation_counts(config)
    shared_stats = shared_cache.stats
    decoder_ok = (shared_stats.admissions == num_dhe
                  and cold_admissions == num_dhe * epochs
                  and shared_stats.hits > 0
                  and by_name["decoder-reuse-shared"]["busy_seconds"]
                  < by_name["decoder-reuse-cold"]["busy_seconds"])

    # --- gate: skew invariance (full counter set, per policy) ------------
    factories: Dict[str, Callable[[Optional[MemoryTracer]],
                                  SecretIndependentCache]] = {
        "static-residency": lambda t: StaticResidencyCache(BUDGET_BYTES,
                                                           tracer=t),
        "decoder-reuse": lambda t: DecoderWeightCache(tracer=t),
        "batch-shared": lambda t: BatchResultCache(
            epoch_seconds=EPOCH_SECONDS, tracer=t),
    }
    workloads = default_cache_workloads()
    skew_stats: Dict[str, List[Dict[str, object]]] = {}
    for name, factory in factories.items():
        per_skew = []
        for workload in workloads:
            probe = factory(None)
            replay_cache(probe, workload)
            per_skew.append(probe.stats.to_dict())
        skew_stats[name] = per_skew
    skew_ok = all(
        all(stats == per_skew[0] for stats in per_skew[1:])
        for per_skew in skew_stats.values())

    # --- gates: leakage audit + detector teeth ---------------------------
    auditor = LeakageAuditor()
    audit_report = auditor.run(
        [cache_subject(factory, workloads, name=name)
         for name, factory in factories.items()]
        + [cache_subject(
            lambda t: IndexKeyedLRUCache(LRU_CAPACITY_ROWS, tracer=t),
            workloads, name="index-keyed-lru", expect_oblivious=False)])
    audit_ok = all(audit_report.finding(name).passed for name in factories)
    lru_flagged = audit_report.finding("index-keyed-lru").leak_detected
    try:
        check_oblivious_cache(
            lambda t: IndexKeyedLRUCache(LRU_CAPACITY_ROWS, tracer=t),
            workloads, name="index-keyed-lru")
        lru_raised = False
    except CacheLeakageError:
        lru_raised = True
    teeth_ok = lru_flagged and lru_raised

    gates = {
        "latency_improvement": latency_ok,
        "decoder_reuse": decoder_ok,
        "skew_invariance": skew_ok,
        "audit_oblivious": audit_ok,
        "leak_detector_teeth": teeth_ok,
    }
    gates["passed"] = all(gates.values())

    return {
        "seed": seed,
        "spec": spec.name,
        "num_requests": num_requests,
        "rate_rps": rate_rps,
        "batch_size": batch,
        "epochs": epochs,
        "budget_bytes": BUDGET_BYTES,
        "epoch_seconds": EPOCH_SECONDS,
        "lru_capacity_rows": LRU_CAPACITY_ROWS,
        "skews": list(SKEW_NAMES),
        "dhe_features": num_dhe,
        "decoder_admissions_cold": cold_admissions,
        "decoder_admissions_shared": shared_stats.admissions,
        "scenarios": scenarios,
        "skew_stats": skew_stats,
        "audit": audit_report.to_dict(),
        "gates": gates,
    }


def render(report: Dict[str, object]) -> str:
    """Human-readable sweep summary (deterministic, mirrors the JSON)."""
    lines = [f"cache bench (seed={report['seed']}, spec={report['spec']}, "
             f"{report['num_requests']} requests x "
             f"{report['epochs']} epochs x 2 serves @ "
             f"{report['rate_rps']:.0f} rps)"]
    for scenario in report["scenarios"]:
        hit_rate = scenario["cache_hit_rate"]
        cached = scenario["cache_hits"] is not None
        lines.append(
            f"  {scenario['name']:>21}: "
            f"p50={scenario['p50_seconds'] * 1e3:.3f} ms  "
            f"p99={scenario['p99_seconds'] * 1e3:.3f} ms  "
            f"busy={scenario['busy_seconds']:.3f} s  "
            + (f"hit-rate={hit_rate:.3f}" if cached else "uncached"))
    lines.append(
        f"  decoder admissions: shared={report['decoder_admissions_shared']} "
        f"cold={report['decoder_admissions_cold']} "
        f"(DHE features={report['dhe_features']})")
    gates = report["gates"]
    verdicts = "  ".join(f"{name}={'PASS' if ok else 'FAIL'}"
                         for name, ok in gates.items() if name != "passed")
    lines.append(f"  gates: {verdicts}")
    return "\n".join(lines)


def _wallclock_note(seed: int) -> str:
    """Informational wall-clock of one cached vs uncached serve (stdout
    only, never in the JSON)."""
    import time

    spec = TERABYTE_SPEC
    uniform, thresholds = build_model(spec, BATCH)
    config = ServingConfig(batch_size=BATCH)
    arrivals = RequestQueue.poisson(NUM_REQUESTS, RATE_RPS, rng=seed)
    plain = ExecutionEngine(spec.table_sizes, spec.embedding_dim, uniform,
                            thresholds)
    cached = ExecutionEngine(spec.table_sizes, spec.embedding_dim, uniform,
                             thresholds,
                             cache=CachePolicy("static-residency",
                                               budget_bytes=BUDGET_BYTES))
    start = time.perf_counter()
    plain.serve(config, arrivals)
    plain_s = time.perf_counter() - start
    start = time.perf_counter()
    cached.serve(config, arrivals)
    cached_s = time.perf_counter() - start
    return (f"wall-clock (informational, one serve): uncached "
            f"{plain_s * 1e3:.1f}ms vs cached {cached_s * 1e3:.1f}ms "
            f"simulator overhead")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Oblivious-safe caching sweep: latency win, skew "
                    "invariance, and leakage gates.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic bench report")
    parser.add_argument("--no-timing", action="store_true",
                        help="skip the informational wall-clock comparison")
    args = parser.parse_args(argv)

    report = run_bench(seed=args.seed)
    print(render(report))
    if not args.no_timing:
        print(_wallclock_note(args.seed))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report["gates"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
