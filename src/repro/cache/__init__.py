"""Oblivious-safe embedding caching: residency from public metadata only.

See :mod:`repro.cache.policy` for the admission policies,
:mod:`repro.cache.audit` for the leakage gate, and
``python -m repro.cache.bench`` for the gated latency bench.
"""

from repro.cache.audit import (
    CacheLeakageError,
    audit_cache,
    cache_subject,
    check_oblivious_cache,
    default_cache_workloads,
    replay_cache,
)
from repro.cache.policy import (
    CACHE_KINDS,
    CACHE_REGION,
    BatchMetadata,
    BatchResultCache,
    CachePolicy,
    CachePricer,
    CacheStats,
    DecoderWeightCache,
    IndexKeyedLRUCache,
    SecretIndependentCache,
    StaticResidencyCache,
    resolve_cache,
)

__all__ = [
    "CACHE_KINDS",
    "CACHE_REGION",
    "BatchMetadata",
    "BatchResultCache",
    "CacheLeakageError",
    "CachePolicy",
    "CachePricer",
    "CacheStats",
    "DecoderWeightCache",
    "IndexKeyedLRUCache",
    "SecretIndependentCache",
    "StaticResidencyCache",
    "audit_cache",
    "cache_subject",
    "check_oblivious_cache",
    "default_cache_workloads",
    "replay_cache",
    "resolve_cache",
]
