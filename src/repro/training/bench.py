"""``python -m repro.training.bench`` — the gated secure-training harness.

Runs the full secure-online-training pipeline (DynamicBatcher lookahead ->
batched lookahead ORAM -> repro.nn autograd -> oblivious gradient
write-back) for Path *and* Circuit ORAM tables, each in two arms: the
batched lookahead mode and the value-identical sequential fallback. Seven
gates with teeth:

* **loss_decrease** — the CTR loss goes down over the run (tail-window
  mean below head-window mean) for both schemes: the gradients really do
  flow through the ORAM and back;
* **posmap_amortization** — the batched position-map pass cuts
  position-map memory operations per access by >= 1.5x at batch 16
  (measured: 16x — one oblivious full-map pass per batch instead of one
  per access);
* **bucket_io_amortization** — shared path fetches cut bucket I/O per
  access (Path >= 1.3x from the union fetch; Circuit >= 1.05x — its reads
  are single-block so only the fetch sweep dedups);
* **value_parity** — the batched arm's per-step losses and final table
  contents are *bit-identical* to the sequential arm's, for both schemes;
* **audit_exact** — the batched decision traces replay byte-identical
  across contrasting secret batches
  (:class:`~repro.telemetry.audit.LeakageAuditor` exact mode);
* **audit_structural** — the raw tree/stash/posmap memory traces are
  structurally equivalent across the same contrasting batches;
* **leak_detector_teeth** — the in-tree
  :class:`~repro.oram.lookahead.SequentialLeakingBatcher` negative
  control (trace length follows index multiplicity) is flagged.

The JSON report contains only seed-determined quantities — two runs with
the same seed produce byte-identical files (CI ``cmp``-gates this).
Wall-clock is printed to stdout as information only.
"""

from __future__ import annotations

import json
from typing import Dict, List

import numpy as np

from repro.oram.lookahead import contrasting_batches, lookahead_subjects
from repro.telemetry.audit import LeakageAuditor
from repro.training.loop import TrainingConfig, TrainingLoop, TrainingReport

STEPS = 16
BATCH = 16
SCHEMES = ("path", "circuit")
#: minimum batched-over-sequential reduction factors at batch 16
POSMAP_AMORTIZATION_MIN = 1.5
BUCKET_IO_AMORTIZATION_MIN = {"path": 1.3, "circuit": 1.05}

_PLAN_SUBJECTS = ("path-lookahead-plan", "circuit-lookahead-plan")
_MEMORY_SUBJECTS = ("path-lookahead-memory", "circuit-lookahead-memory")
_LEAKY_SUBJECT = "sequential-leaking-batcher"


def _run_arm(scheme: str, batched: bool, seed: int) -> tuple:
    loop = TrainingLoop(TrainingConfig(steps=STEPS, batch_size=BATCH,
                                       scheme=scheme, batched=batched),
                        seed=seed)
    return loop.run(), loop.table_weights()


def _arm_summary(report: TrainingReport) -> Dict[str, object]:
    first, last = report.loss_window_means()
    return {
        "first_window_loss": first,
        "last_window_loss": last,
        "losses": report.losses,
        "total_accesses": report.total_accesses(),
        "posmap_ops_per_access": report.posmap_ops_per_access(),
        "bucket_io_per_access": report.bucket_io_per_access(),
        "stash_high_water": report.stash_high_water(),
    }


def run_bench(seed: int = 0) -> Dict[str, object]:
    """Both schemes x both arms + the leakage audit; seed-deterministic."""
    schemes: Dict[str, Dict[str, object]] = {}
    loss_ok = True
    posmap_ok = True
    bucket_ok = True
    parity_ok = True
    for scheme in SCHEMES:
        batched_report, batched_weights = _run_arm(scheme, True, seed)
        seq_report, seq_weights = _run_arm(scheme, False, seed)

        first, last = batched_report.loss_window_means()
        loss_ok = loss_ok and last < first

        posmap_ratio = (seq_report.posmap_ops_per_access()
                        / batched_report.posmap_ops_per_access())
        posmap_ok = posmap_ok and posmap_ratio >= POSMAP_AMORTIZATION_MIN
        bucket_ratio = (seq_report.bucket_io_per_access()
                        / batched_report.bucket_io_per_access())
        bucket_ok = bucket_ok and (
            bucket_ratio >= BUCKET_IO_AMORTIZATION_MIN[scheme])

        same_losses = batched_report.losses == seq_report.losses
        same_weights = all(
            np.array_equal(a, b)
            for a, b in zip(batched_weights, seq_weights))
        parity_ok = parity_ok and same_losses and same_weights

        schemes[scheme] = {
            "batched": _arm_summary(batched_report),
            "sequential": _arm_summary(seq_report),
            "posmap_amortization": posmap_ratio,
            "bucket_io_amortization": bucket_ratio,
            "value_parity": bool(same_losses and same_weights),
        }

    # --- leakage audit + negative-control teeth --------------------------
    auditor = LeakageAuditor()
    audit_report = auditor.run(lookahead_subjects(batch_size=BATCH,
                                                  seed=seed))
    exact_ok = all(audit_report.finding(name).passed
                   for name in _PLAN_SUBJECTS)
    structural_ok = all(audit_report.finding(name).passed
                        for name in _MEMORY_SUBJECTS)
    teeth_ok = audit_report.finding(_LEAKY_SUBJECT).leak_detected

    gates = {
        "loss_decrease": loss_ok,
        "posmap_amortization": posmap_ok,
        "bucket_io_amortization": bucket_ok,
        "value_parity": parity_ok,
        "audit_exact": exact_ok,
        "audit_structural": structural_ok,
        "leak_detector_teeth": teeth_ok,
    }
    gates["passed"] = all(gates.values())

    return {
        "seed": seed,
        "steps": STEPS,
        "batch_size": BATCH,
        "schemes": schemes,
        "posmap_amortization_min": POSMAP_AMORTIZATION_MIN,
        "bucket_io_amortization_min": dict(BUCKET_IO_AMORTIZATION_MIN),
        "contrasting_batches": [
            [[int(v) for v in batch] for batch in secret]
            for secret in contrasting_batches(32, batch_size=BATCH)],
        "audit": audit_report.to_dict(),
        "gates": gates,
    }


def render(report: Dict[str, object]) -> str:
    """Human-readable summary (deterministic, mirrors the JSON)."""
    lines = [f"training bench (seed={report['seed']}, "
             f"{report['steps']} steps x batch {report['batch_size']})"]
    for scheme, data in report["schemes"].items():
        batched = data["batched"]
        lines.append(
            f"  {scheme:>7}: loss {batched['first_window_loss']:.4f} -> "
            f"{batched['last_window_loss']:.4f}  "
            f"posmap x{data['posmap_amortization']:.2f}  "
            f"bucket-io x{data['bucket_io_amortization']:.2f}  "
            f"stash-hw {batched['stash_high_water']}  "
            f"parity={'ok' if data['value_parity'] else 'BROKEN'}")
    gates = report["gates"]
    verdicts = "  ".join(f"{name}={'PASS' if ok else 'FAIL'}"
                         for name, ok in gates.items() if name != "passed")
    lines.append(f"  gates: {verdicts}")
    return "\n".join(lines)


def _wallclock_note(seed: int) -> str:
    """Informational wall-clock of one batched vs sequential run (stdout
    only, never in the JSON)."""
    import time

    timings: List[str] = []
    for batched in (True, False):
        start = time.perf_counter()
        _run_arm("path", batched, seed)
        elapsed = time.perf_counter() - start
        timings.append(f"{'batched' if batched else 'sequential'} "
                       f"{elapsed * 1e3:.0f}ms")
    return ("wall-clock (informational, path scheme): "
            + " vs ".join(timings))


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Secure online training over batched lookahead ORAM: "
                    "loss, amortization, parity, and leakage gates.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic bench report")
    parser.add_argument("--no-timing", action="store_true",
                        help="skip the informational wall-clock comparison")
    args = parser.parse_args(argv)

    report = run_bench(seed=args.seed)
    print(render(report))
    if not args.no_timing:
        print(_wallclock_note(args.seed))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report["gates"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
