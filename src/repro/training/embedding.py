"""Embedding table trained *inside* a tree ORAM (online updates).

The inference-only ORAM generators in :mod:`repro.embedding.oram_embedding`
assume the table is trained elsewhere and loaded. Online training breaks
that split: every step reads a batch of rows *and* writes their updated
values back, and the write pattern leaks the same secret indices the read
pattern does. :class:`OnlineOramEmbedding` closes the loop by routing both
directions through the batched lookahead path
(:mod:`repro.oram.lookahead`):

* ``forward(indices)`` serves the whole batch with one
  ``access_batch`` call (one shared fetch per unique path, one batched
  position-map pass) and, in training mode, remembers the output tensor so
  the row gradients can be recovered after ``backward()``;
* ``apply_gradients(lr)`` re-issues the *same slot list* as the forward
  batch with per-slot ``update_fn``\\ s fused into the lookahead batch: the
  first occurrence of each id applies the full accumulated row gradient,
  duplicate occurrences apply the identity. The write batch is therefore
  trace-shaped exactly like the read batch — gradient multiplicity (how
  often an id repeats, i.e. how popular a row is) never surfaces.

The batcher's lookahead hook feeds :meth:`announce`, letting the table
plan/verify the exact id sequence a formed serving batch will request.
"""

from __future__ import annotations

from typing import Optional, Type

import numpy as np

from repro.costmodel.latency import oram_latency
from repro.costmodel.memory import tree_oram_bytes
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.embedding.base import EmbeddingGenerator
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.oblivious.trace import MemoryTracer
from repro.oram.circuit_oram import CircuitORAM
from repro.oram.controller import OramController
from repro.oram.path_oram import PathORAM
from repro.oram.ring_oram import RingORAM
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive

#: cost-model scheme name per controller class (for the analytic models)
_SCHEMES = {PathORAM: "path", CircuitORAM: "circuit", RingORAM: "ring"}


class OnlineOramEmbedding(EmbeddingGenerator):
    """Trainable embedding table whose rows live in a tree ORAM."""

    technique = "oram-online"
    is_oblivious = True

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 oram_class: Type[OramController] = PathORAM,
                 weight: Optional[np.ndarray] = None,
                 rng: SeedLike = None,
                 tracer: Optional[MemoryTracer] = None,
                 stash_capacity: Optional[int] = None,
                 batched: bool = True,
                 **oram_kwargs) -> None:
        super().__init__(num_embeddings, embedding_dim)
        generator = new_rng(rng)
        if weight is None:
            weight = generator.normal(0.0, 0.1,
                                      size=(num_embeddings, embedding_dim))
        weight = np.asarray(weight, dtype=np.float64)
        if weight.shape != (num_embeddings, embedding_dim):
            raise ValueError(
                f"weight shape {weight.shape} != "
                f"({num_embeddings}, {embedding_dim})")
        self.scheme = _SCHEMES.get(oram_class, "path")
        if stash_capacity is None:
            # Batched fetches transiently hold a whole batch's union of
            # paths; a table-sized persistent bound keeps small training
            # tables out of StashOverflowError territory.
            stash_capacity = num_embeddings
        self.oram = oram_class(num_embeddings, embedding_dim,
                               initial_payloads=weight, rng=generator,
                               tracer=tracer, stash_capacity=stash_capacity,
                               **oram_kwargs)
        self.batched = batched
        if not batched:
            # Instance attribute shadows the class flag: access_batch takes
            # the value-identical sequential fallback. This is the baseline
            # arm of the batched-vs-sequential parity and amortization
            # measurements.
            self.oram.SUPPORTS_LOOKAHEAD = False
        #: (flat ids, forward output) of the batch awaiting its gradient
        self._pending: Optional[tuple] = None
        #: ids announced by the batcher's lookahead hook, not yet served
        self._announced: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Serving-batcher lookahead contract
    # ------------------------------------------------------------------
    def announce(self, block_ids) -> None:
        """Register the id sequence the next forward batch will request.

        This is the consumer end of
        :class:`~repro.serving.batcher.DynamicBatcher`'s ``lookahead``
        hook: the batcher hands over each formed batch's ids before
        dispatch, and the next :meth:`forward` must match them exactly.
        """
        block_ids = np.asarray(block_ids, dtype=np.int64).reshape(-1)
        self._check_indices(block_ids)
        if block_ids.size == 0:
            # Zero ids announced (an empty batch window) is a no-op:
            # registering an empty expectation would wrongly reject the
            # next real forward batch.
            return
        self._announced = block_ids

    def _consume_announcement(self, flat: np.ndarray) -> None:
        if self._announced is None:
            return
        announced, self._announced = self._announced, None
        if not np.array_equal(announced, flat):
            raise ValueError(
                f"forward batch ids do not match the announced lookahead "
                f"batch ({flat.tolist()} vs {announced.tolist()})")

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, indices) -> Tensor:
        indices = self._check_indices(indices)
        flat = indices.reshape(-1)
        self._consume_announcement(flat)
        if flat.size:
            rows = self.oram.access_batch([int(v) for v in flat])
        else:
            rows = np.zeros((0, self.embedding_dim))
        out = Tensor(rows.reshape(*indices.shape, self.embedding_dim),
                     requires_grad=self.training and is_grad_enabled())
        if out.requires_grad:
            self._pending = (flat.copy(), out)
        return out

    def apply_gradients(self, lr: float) -> float:
        """One SGD step on the rows touched by the last forward batch.

        The write batch reuses the forward batch's slot list verbatim:
        the first occurrence of each id subtracts ``lr`` times the row's
        *accumulated* gradient (duplicates are summed, matching dense
        scatter-add semantics); later occurrences apply the identity.
        Either way every slot costs exactly one fused lookahead access,
        so the write trace is independent of index multiplicity.

        Returns the L2 norm of the accumulated row gradients.
        """
        check_positive("lr", lr)
        if self._pending is None:
            raise RuntimeError(
                "no pending forward batch — run a training-mode forward "
                "(and backward) before apply_gradients()")
        flat, out = self._pending
        self._pending = None
        if out.grad is None:
            raise RuntimeError(
                "forward output has no gradient — call backward() on the "
                "loss before apply_gradients()")
        grads = np.asarray(out.grad,
                           dtype=np.float64).reshape(-1, self.embedding_dim)
        totals: dict = {}
        first_slot: dict = {}
        for slot, block_id in enumerate(flat):
            bid = int(block_id)
            if bid in totals:
                totals[bid] = totals[bid] + grads[slot]
            else:
                totals[bid] = grads[slot].copy()
                first_slot[bid] = slot
        update_fns = []
        for slot, block_id in enumerate(flat):
            bid = int(block_id)
            if first_slot[bid] == slot:
                update_fns.append(
                    lambda row, total=totals[bid]: row - lr * total)
            else:
                update_fns.append(lambda row: row)
        self.oram.access_batch([int(v) for v in flat],
                               update_fns=update_fns)
        return float(np.sqrt(sum(float(np.sum(total * total))
                                 for total in totals.values())))

    def discard_gradients(self) -> None:
        """Drop the pending forward batch without writing anything back."""
        self._pending = None

    # ------------------------------------------------------------------
    # Maintenance / cost model
    # ------------------------------------------------------------------
    def load_weights(self, weight: np.ndarray) -> None:
        """Refresh all rows (e.g. warm-start from an offline checkpoint)."""
        self.oram.load_blocks(np.asarray(weight, dtype=np.float64))

    def dump_weights(self) -> np.ndarray:
        """Read the full table back out (test/checkpoint convenience).

        Each row read is a real ORAM access, so this perturbs leaves and
        stash state — fine for parity checks and checkpoints, not for use
        mid-trace-audit.
        """
        return np.stack([self.oram.read(row)
                         for row in range(self.num_embeddings)])

    def modelled_latency(self, batch: int, threads: int = 1,
                         platform: PlatformModel = DEFAULT_PLATFORM) -> float:
        return oram_latency(self.scheme, self.num_embeddings,
                            self.embedding_dim, batch, threads, platform)

    def footprint_bytes(self) -> int:
        return tree_oram_bytes(self.num_embeddings, self.embedding_dim,
                               scheme=self.scheme)
