"""Secure online training of embedding tables (the LAORAM workload).

Gradient write-backs leak the same index access pattern reads do, so the
training loop routes them through the *same* oblivious batched ORAM path
used for the forward lookups: :class:`OnlineOramEmbedding` serves each
forward batch with one lookahead access and writes the row gradients back
as a second lookahead batch over the identical slot list, while
:class:`TrainingLoop` drives a DLRM through the existing ``repro.nn``
autograd with the dense weights updated in place by ``repro.nn.optim``.
Gated end-to-end by ``python -m repro.training.bench`` (registry id
``train``); threat model and design in docs/TRAINING.md.
"""

from repro.training.embedding import OnlineOramEmbedding
from repro.training.loop import (
    StepMetrics,
    TrainingConfig,
    TrainingLoop,
    TrainingReport,
    build_training_loop,
)

__all__ = [
    "OnlineOramEmbedding",
    "StepMetrics",
    "TrainingConfig",
    "TrainingLoop",
    "TrainingReport",
    "build_training_loop",
]
