"""End-to-end secure online training: batcher -> lookahead ORAM -> autograd.

One :class:`TrainingLoop` run wires the whole pipeline together:

1. a synthetic CTR trace is pushed through the serving
   :class:`~repro.serving.batcher.DynamicBatcher`, whose ``lookahead`` hook
   hands each *formed* batch's sparse ids over before dispatch;
2. each formed batch is announced to the per-feature
   :class:`~repro.training.embedding.OnlineOramEmbedding` tables and served
   with one batched lookahead ORAM access per table;
3. the DLRM forward/backward runs through ``repro.nn`` autograd;
   embedding-row gradients are written back through the *same* oblivious
   batched path, and the dense (MLP) weights are updated in place by a
   ``repro.nn.optim`` optimizer — so lazily captured graphs replay the
   fresh values without re-capture.

The loop is deterministic given ``(config, seed)``; ``batched=False``
builds the identical model over the sequential ORAM fallback, which is the
baseline arm of the value-parity and amortization gates in
``repro.training.bench``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.data.criteo import DlrmDatasetSpec, SyntheticCtrDataset
from repro.models.dlrm import DLRM
from repro.nn.losses import bce_with_logits
from repro.nn.optim import Adam, Optimizer, SGD
from repro.oram.circuit_oram import CircuitORAM
from repro.oram.path_oram import PathORAM
from repro.serving.batcher import BatchingPolicy, DynamicBatcher, ScheduledBatch
from repro.training.embedding import OnlineOramEmbedding
from repro.utils.rng import new_rng
from repro.utils.validation import check_in, check_positive

_ORAM_CLASSES = {"path": PathORAM, "circuit": CircuitORAM}


@dataclass(frozen=True)
class TrainingConfig:
    """One secure-online-training run (small by design: it is a gate)."""

    steps: int = 24
    batch_size: int = 16
    scheme: str = "path"                 # "path" | "circuit"
    table_sizes: Tuple[int, ...] = (64, 64)
    num_dense: int = 4
    embedding_dim: int = 8
    bottom_hidden: int = 16
    top_hidden: int = 16
    optimizer: str = "adam"              # dense-weight optimizer
    dense_lr: float = 0.02
    momentum: float = 0.9                # SGD only
    embedding_lr: float = 0.1
    batched: bool = True
    #: arrival trace shape fed to the DynamicBatcher. The wait bound is
    #: generous so every training batch forms full and deterministically.
    arrival_rate_rps: float = 256.0
    service_seconds: float = 0.004
    max_wait_seconds: float = 1e6

    def __post_init__(self) -> None:
        check_positive("steps", self.steps)
        check_positive("batch_size", self.batch_size)
        check_in("scheme", self.scheme, tuple(_ORAM_CLASSES))
        check_in("optimizer", self.optimizer, ("adam", "sgd"))
        check_positive("dense_lr", self.dense_lr)
        check_positive("embedding_lr", self.embedding_lr)
        check_positive("arrival_rate_rps", self.arrival_rate_rps)
        check_positive("service_seconds", self.service_seconds)

    def to_dict(self) -> Dict:
        return {
            "steps": self.steps,
            "batch_size": self.batch_size,
            "scheme": self.scheme,
            "table_sizes": list(self.table_sizes),
            "num_dense": self.num_dense,
            "embedding_dim": self.embedding_dim,
            "optimizer": self.optimizer,
            "dense_lr": self.dense_lr,
            "embedding_lr": self.embedding_lr,
            "batched": self.batched,
        }


@dataclass(frozen=True)
class StepMetrics:
    """Loss and ORAM work done by one training step (deltas, not totals)."""

    step: int
    loss: float
    embedding_grad_norm: float
    oram_accesses: int
    posmap_ops: int
    bucket_io: int
    stash_high_water: int

    def to_dict(self) -> Dict:
        return {
            "step": self.step,
            "loss": self.loss,
            "embedding_grad_norm": self.embedding_grad_norm,
            "oram_accesses": self.oram_accesses,
            "posmap_ops": self.posmap_ops,
            "bucket_io": self.bucket_io,
            "stash_high_water": self.stash_high_water,
        }


@dataclass
class TrainingReport:
    """Everything a gate needs to judge one training run."""

    config: TrainingConfig
    seed: int
    steps: List[StepMetrics] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def losses(self) -> List[float]:
        return [m.loss for m in self.steps]

    def loss_window_means(self, window: int = 4) -> Tuple[float, float]:
        """Mean loss over the first and last ``window`` steps."""
        losses = self.losses
        window = min(window, len(losses))
        return (float(np.mean(losses[:window])),
                float(np.mean(losses[-window:])))

    def total_accesses(self) -> int:
        return sum(m.oram_accesses for m in self.steps)

    def posmap_ops_per_access(self) -> float:
        return sum(m.posmap_ops for m in self.steps) / max(
            1, self.total_accesses())

    def bucket_io_per_access(self) -> float:
        return sum(m.bucket_io for m in self.steps) / max(
            1, self.total_accesses())

    def stash_high_water(self) -> int:
        return max((m.stash_high_water for m in self.steps), default=0)

    def to_dict(self) -> Dict:
        first, last = self.loss_window_means()
        return {
            "config": self.config.to_dict(),
            "seed": self.seed,
            "steps": [m.to_dict() for m in self.steps],
            "summary": {
                "first_window_loss": first,
                "last_window_loss": last,
                "total_accesses": self.total_accesses(),
                "posmap_ops_per_access": self.posmap_ops_per_access(),
                "bucket_io_per_access": self.bucket_io_per_access(),
                "stash_high_water": self.stash_high_water(),
            },
        }


class TrainingLoop:
    """Drives secure online training of a DLRM over ORAM-resident tables."""

    def __init__(self, config: TrainingConfig = TrainingConfig(),
                 seed: int = 0) -> None:
        self.config = config
        self.seed = int(seed)
        spec = DlrmDatasetSpec(name="train-synthetic",
                               num_dense=config.num_dense,
                               table_sizes=tuple(config.table_sizes),
                               embedding_dim=config.embedding_dim)
        self.dataset = SyntheticCtrDataset(spec, seed=self.seed)

        # One generator feeds model init and every per-table ORAM, in a
        # fixed construction order, so (config, seed) pins the whole run.
        generator = new_rng(self.seed)
        oram_class = _ORAM_CLASSES[config.scheme]
        self.embeddings: List[OnlineOramEmbedding] = []

        def factory(size: int, dim: int) -> OnlineOramEmbedding:
            emb = OnlineOramEmbedding(size, dim, oram_class=oram_class,
                                      rng=generator, batched=config.batched)
            self.embeddings.append(emb)
            return emb

        self.model = DLRM(
            spec, factory,
            bottom_sizes=(config.num_dense, config.bottom_hidden,
                          config.embedding_dim),
            top_hidden_sizes=(config.top_hidden,),
            rng=generator)
        self.optimizer = self._build_optimizer()
        self.batcher = DynamicBatcher(
            BatchingPolicy(max_batch_size=config.batch_size,
                           max_wait_seconds=config.max_wait_seconds),
            lookahead=self._on_batch_formed)
        self._formed: List[Tuple[ScheduledBatch, np.ndarray]] = []

    def _build_optimizer(self) -> Optimizer:
        # model.parameters() holds only the dense MLP weights — the
        # embedding rows live in the ORAMs, not in autograd Parameters.
        params = list(self.model.parameters())
        if self.config.optimizer == "sgd":
            return SGD(params, lr=self.config.dense_lr,
                       momentum=self.config.momentum)
        return Adam(params, lr=self.config.dense_lr)

    def _on_batch_formed(self, batch: ScheduledBatch,
                         block_ids: np.ndarray) -> None:
        """The DynamicBatcher lookahead consumer: queue formed batches."""
        self._formed.append((batch, np.asarray(block_ids)))

    # ------------------------------------------------------------------
    def run(self) -> TrainingReport:
        config = self.config
        num_requests = config.steps * config.batch_size
        drawn = [self.dataset.batch(config.batch_size)
                 for _ in range(config.steps)]
        dense = np.concatenate([b.dense for b in drawn])
        sparse = np.concatenate([b.sparse for b in drawn])
        labels = np.concatenate([b.labels for b in drawn])

        # The serving seam: requests arrive as a trace, the batcher forms
        # the training batches, and its lookahead hook hands each batch's
        # ids over before dispatch.
        arrivals = np.arange(num_requests) / config.arrival_rate_rps
        self._formed.clear()
        self.batcher.schedule(arrivals,
                              lambda n: config.service_seconds,
                              block_ids=sparse)

        report = TrainingReport(config=config, seed=self.seed)
        self.model.train()
        posmap_before = self._posmap_ops()
        io_before = self._bucket_io()
        accesses_before = self._accesses()
        for step, (batch, ids) in enumerate(self._formed):
            for feature, embedding in enumerate(self.embeddings):
                embedding.announce(ids[:, feature])
            self.optimizer.zero_grad()
            logits = self.model(dense[batch.first:batch.last],
                                sparse[batch.first:batch.last])
            loss = bce_with_logits(logits, labels[batch.first:batch.last])
            loss.backward()
            grad_norm = 0.0
            for embedding in self.embeddings:
                grad_norm += embedding.apply_gradients(config.embedding_lr)
            self.optimizer.step()

            posmap_now = self._posmap_ops()
            io_now = self._bucket_io()
            accesses_now = self._accesses()
            report.steps.append(StepMetrics(
                step=step,
                loss=float(loss.item()),
                embedding_grad_norm=float(grad_norm),
                oram_accesses=accesses_now - accesses_before,
                posmap_ops=posmap_now - posmap_before,
                bucket_io=io_now - io_before,
                stash_high_water=max(
                    emb.oram.stash.peak_occupancy
                    for emb in self.embeddings)))
            posmap_before, io_before = posmap_now, io_now
            accesses_before = accesses_now
        return report

    # ------------------------------------------------------------------
    def _posmap_ops(self) -> int:
        return sum(emb.oram.position_map_ops() for emb in self.embeddings)

    def _bucket_io(self) -> int:
        return sum(emb.oram.stats.bucket_reads + emb.oram.stats.bucket_writes
                   for emb in self.embeddings)

    def _accesses(self) -> int:
        return sum(emb.oram.stats.accesses for emb in self.embeddings)

    def table_weights(self) -> List[np.ndarray]:
        """Current contents of every embedding table (parity checks)."""
        return [emb.dump_weights() for emb in self.embeddings]


def build_training_loop(seed: int = 0, **overrides) -> TrainingLoop:
    """Convenience constructor: config overrides as keyword arguments."""
    return TrainingLoop(TrainingConfig(**overrides), seed=seed)
